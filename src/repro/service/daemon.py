"""The analysis daemon: warm state, bounded concurrency, HTTP+JSON.

Two layers, deliberately separable:

* :class:`AnalysisService` — the transport-free core.  It owns the
  registered streams (keyed by content fingerprint), one shared
  :class:`~repro.engine.SweepEngine` (``async`` backend + sweep cache:
  every request of every client warms the same store), and a
  :class:`~repro.engine.JobQueue` that bounds the backlog, enforces
  per-request deadlines, and coalesces identical in-flight requests.
  Tests drive this object directly — no sockets required.
* the HTTP handler + :func:`serve` — a thin JSON wire over the core
  (stdlib :mod:`http.server`; the daemon adds no dependencies).

API sketch (all JSON unless noted)::

    GET    /v1/health            liveness + queue/engine statistics
    POST   /v1/streams           upload an event file body (TSV/CSV);
                                 query: columns, format, directed
                                 -> {"fingerprint": ...}   (idempotent)
    GET    /v1/streams           registered streams
    POST   /v1/datasets          {"name", "root"?, "verify"?} — register a
                                 dataset from the partitioned catalog
                                 (:mod:`repro.datasets.catalog`) without
                                 materializing it; partitions load lazily
                                 when the first analysis touches them
                                 -> {"fingerprint": ...}
    POST   /v1/append           {"fingerprint", "events": [[u, v, t], ...]}
                                 -> {"fingerprint": grown, "parent": ...};
                                 the grown stream registers alongside its
                                 parent and analyses of it reuse the
                                 parent's warm series and scan state
    POST   /v1/analyze           {"fingerprint", "measures", "num_deltas",
                                  "method", "refine", "validate",
                                  "timeout"} -> 202 {"job_id", ...}
    POST   /v1/sweep             {"fingerprint", "measures", "num_deltas",
                                  "timeout"} -> 202 {"job_id", ...}
    GET    /v1/jobs              every job's status
    GET    /v1/jobs/<id>         one job's status
    GET    /v1/jobs/<id>/result  the result; ?wait=SECONDS long-polls
    DELETE /v1/jobs/<id>         cancel the job
    POST   /v1/shutdown          stop the daemon (used by smoke tests)

**Coalescing semantics.**  Two analyze submissions are *identical* when
their stream fingerprint, measure tokens (parameters included), Δ-grid
size, selection method, refinement rounds, and validate flag all match.
An identical submission arriving while the first is queued or running
does not start new work: it attaches to the in-flight computation, may
extend (never tighten) its deadline, and receives the identical result
object.  A submission arriving *after* completion starts a new job, but
the sweep cache serves it without recomputing — warm repeats perform
zero scans.

**Error mapping** (mirrored by the client): admission-control rejection
→ 429, unknown stream/job → 404, result not ready → 409, cancelled or
deadline-expired job → 504 (the body names the task the plan stopped
at), invalid request → 400, anything else → 500.  Bodies are
``{"error": message, "kind": ...}``.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from urllib.parse import parse_qs, urlparse

from repro.core import analyze_stream, log_delta_grid
from repro.datasets import open_dataset
from repro.engine import (
    JobQueue,
    SweepCache,
    SweepEngine,
    normalize_measures,
    parse_measures_arg,
    plan_measure_sweep,
)
from repro.engine.jobs import DONE, FAILED, CANCELLED, Job
from repro.linkstream import read_csv, read_tsv
from repro.linkstream.stream import LinkStream
from repro.reporting import render_analysis
from repro.utils.errors import (
    AdmissionError,
    JobCancelled,
    ReproError,
    ServiceError,
)
from repro.utils.timeunits import format_duration

#: Service protocol version (the ``/v1/`` URL prefix).
API_VERSION = "v1"


def _coalesce_key(kind: str, fingerprint: str, specs, **params) -> str:
    """Identity of a request for coalescing: the stream fingerprint, the
    measure tokens (parameters included), and every sweep-shaping
    parameter.  Matches the cache-key identity, so coalesced requests
    are exactly those whose results would be bit-identical anyway."""
    payload = repr(
        (
            kind,
            fingerprint,
            tuple(m.token() for m in specs),
            tuple(sorted(params.items())),
        )
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


class AnalysisService:
    """Transport-free service core: streams, engine, job queue.

    Parameters
    ----------
    backend:
        Engine backend spec (default ``"async"`` — the shared thread
        pool all jobs' sweeps run on).
    jobs:
        Backend worker count (default: the CPU count).
    runners:
        Concurrent jobs; each runner blocks on its job's sweeps, the
        parallelism lives in the backend pool below.
    max_pending:
        Admission limit — queued computations beyond this are rejected
        with a 429-style :class:`~repro.utils.errors.AdmissionError`.
    default_timeout:
        Deadline (seconds) applied to requests that don't set their own.
    cache_dir:
        Optional persistent sweep-cache directory.
    """

    def __init__(
        self,
        *,
        backend: str = "async",
        jobs: int | None = None,
        runners: int = 4,
        max_pending: int = 32,
        default_timeout: float | None = None,
        cache_dir: str | None = None,
    ) -> None:
        self.engine = SweepEngine(
            backend,
            jobs=jobs,
            cache=SweepCache.build(disk_dir=cache_dir),
        )
        self.queue = JobQueue(runners=runners, max_pending=max_pending)
        self.default_timeout = default_timeout
        self._streams: dict[str, LinkStream] = {}
        self._lock = threading.Lock()

    # -- streams -----------------------------------------------------------

    def register_stream(self, stream: LinkStream) -> str:
        """Register a stream under its content fingerprint (idempotent:
        re-uploading the same events lands on the same entry)."""
        fingerprint = stream.fingerprint()
        with self._lock:
            self._streams.setdefault(fingerprint, stream)
        return fingerprint

    def register_stream_text(
        self,
        text: str,
        *,
        columns: str = "u v t",
        fmt: str = "tsv",
        directed: bool = True,
    ) -> str:
        """Register a stream from an uploaded event-file body."""
        reader = read_csv if fmt == "csv" else read_tsv
        handle = tempfile.NamedTemporaryFile(
            "w", suffix=f".{fmt}", encoding="utf-8", delete=False
        )
        try:
            handle.write(text)
            handle.close()
            stream = reader(handle.name, columns=columns, directed=directed)
        finally:
            os.unlink(handle.name)
        return self.register_stream(stream)

    def register_dataset(
        self, name: str, *, root: str | None = None, verify: bool = False
    ) -> str:
        """Register a dataset from the partitioned catalog by name.

        The stream arrives as a lazy :class:`PartitionedStorage` handle:
        its fingerprint comes from the catalog manifest, so registration
        opens no partition files, and analyses load only the partitions
        their windows overlap.  Cache keys match the in-memory stream's
        bit for bit, so a sweep warmed offline serves here without a
        single scan.
        """
        stream = open_dataset(name, root=root, verify=verify)
        return self.register_stream(stream)

    def stream(self, fingerprint: str) -> LinkStream:
        with self._lock:
            stream = self._streams.get(fingerprint)
        if stream is None:
            raise ServiceError(
                f"unknown stream fingerprint {fingerprint!r}; upload it first",
                status=404,
            )
        return stream

    def _resolve_node(self, stream: LinkStream, value) -> int:
        if isinstance(value, bool):
            raise ServiceError(
                f"node must be an index or label, got {value!r}", status=400
            )
        try:
            return stream.index_of(value)
        except ReproError:
            if isinstance(value, int) and value >= 0:
                # A node index beyond the current set: unlabeled streams
                # grow on append (extend rejects growth for labeled ones).
                return value
            raise

    def append_events(self, fingerprint: str, events) -> dict:
        """Append an event batch to a registered stream.

        ``events`` is a list of ``[u, v, t]`` triples; ``u``/``v`` are
        node labels (for labeled streams) or indices, ``t`` must be
        strictly later than the stream's last event (the append-only
        contract — violations map to 400).  The grown stream registers
        under its own fingerprint *alongside* its parent, whose
        fingerprint stays valid; because the chained fingerprint links
        the two, any analysis of the grown stream reuses the parent's
        warm series, scan checkpoints, and cached sweep results, and
        only re-examines the appended suffix.  Coalescing is untouched:
        requests against the new fingerprint coalesce among themselves.
        """
        stream = self.stream(fingerprint)
        rows = []
        for entry in events:
            if not isinstance(entry, (list, tuple)) or len(entry) != 3:
                raise ServiceError(
                    "each appended event must be a [u, v, t] triple",
                    status=400,
                )
            u, v, t = entry
            if not isinstance(t, (int, float)) or isinstance(t, bool):
                raise ServiceError(
                    f"timestamp must be a number, got {t!r}", status=400
                )
            rows.append(
                (self._resolve_node(stream, u), self._resolve_node(stream, v), t)
            )
        grown = stream.extend(rows)
        new_fingerprint = self.register_stream(grown)
        return {
            "fingerprint": new_fingerprint,
            "parent": fingerprint,
            "appended": len(rows),
            "num_events": grown.num_events,
            "num_nodes": grown.num_nodes,
        }

    def list_streams(self) -> list[dict]:
        with self._lock:
            streams = dict(self._streams)
        return [
            {
                "fingerprint": fingerprint,
                "num_events": stream.num_events,
                "num_nodes": stream.num_nodes,
                "span": stream.t_max - stream.t_min,
            }
            for fingerprint, stream in sorted(streams.items())
        ]

    # -- job submission ----------------------------------------------------

    def _parse_measures(self, measures) -> tuple:
        if measures is None:
            measures = "occupancy"
        if isinstance(measures, str):
            return parse_measures_arg(measures)
        return normalize_measures(measures)

    def submit_analyze(
        self,
        fingerprint: str,
        *,
        measures="occupancy",
        num_deltas: int = 40,
        method: str = "mk",
        refine: int = 0,
        validate: bool = False,
        timeout: float | None = None,
    ) -> Job:
        """Queue a full ``analyze`` of a registered stream.

        Defaults mirror the CLI (``validate`` included — off unless
        asked, so warm repeats touch no scan at all), and the rendered
        result text is bit-identical to offline ``repro analyze``.
        """
        stream = self.stream(fingerprint)
        specs = self._parse_measures(measures)
        key = _coalesce_key(
            "analyze",
            fingerprint,
            specs,
            num_deltas=num_deltas,
            method=method,
            refine=refine,
            validate=validate,
        )
        engine = self.engine

        def run_analysis() -> dict:
            report = analyze_stream(
                stream,
                validate=validate,
                measures=specs,
                num_deltas=num_deltas,
                method=method,
                refine_rounds=refine,
                engine=engine,
            )
            return {
                "kind": "analyze",
                "fingerprint": fingerprint,
                "gamma": report.gamma,
                "gamma_human": format_duration(report.gamma),
                "text": render_analysis(report),
            }

        return self.queue.submit(
            run_analysis,
            key=key,
            timeout=self.default_timeout if timeout is None else timeout,
            label=f"analyze {fingerprint[:12]}",
        )

    def submit_sweep(
        self,
        fingerprint: str,
        *,
        measures="occupancy",
        num_deltas: int = 40,
        timeout: float | None = None,
    ) -> Job:
        """Queue a raw measure sweep (no γ selection): every measure at
        every grid Δ, summarized per point."""
        stream = self.stream(fingerprint)
        specs = self._parse_measures(measures)
        key = _coalesce_key("sweep", fingerprint, specs, num_deltas=num_deltas)
        engine = self.engine

        def run_sweep() -> dict:
            deltas = log_delta_grid(stream, num=num_deltas)
            tasks = plan_measure_sweep(deltas, specs)
            results = engine.run(stream, tasks)
            summaries: dict[str, list[str]] = {m.name: [] for m in specs}
            for per_delta in results:
                for spec in specs:
                    value = per_delta[spec.name]
                    describe = getattr(value, "describe", None)
                    summaries[spec.name].append(
                        describe() if callable(describe) else repr(value)
                    )
            return {
                "kind": "sweep",
                "fingerprint": fingerprint,
                "deltas": [float(d) for d in deltas],
                "measures": [m.name for m in specs],
                "summaries": summaries,
            }

        return self.queue.submit(
            run_sweep,
            key=key,
            timeout=self.default_timeout if timeout is None else timeout,
            label=f"sweep {fingerprint[:12]}",
        )

    # -- job inspection ----------------------------------------------------

    def _job(self, job_id: str) -> Job:
        job = self.queue.job(job_id)
        if job is None:
            raise ServiceError(f"unknown job {job_id!r}", status=404)
        return job

    def status(self, job_id: str) -> dict:
        return self.describe_job(self._job(job_id))

    @staticmethod
    def describe_job(job: Job) -> dict:
        record = {
            "job_id": job.id,
            "state": job.state,
            "label": job.label,
            "coalesced": job.coalesced,
        }
        error = job.error
        if error is not None:
            record["error"] = str(error)
        return record

    def result(self, job_id: str, *, wait: float | None = None) -> dict:
        """A finished job's result payload.

        ``wait`` long-polls up to that many seconds.  A job that is
        still live afterwards raises 409; a cancelled job raises 504
        with the cancellation message (which names the task the plan
        stopped at when a deadline cut a sweep short); a failed job
        raises 500 carrying the failure.
        """
        job = self._job(job_id)
        if wait:
            job.wait(wait)
        state = job.state
        if state == DONE:
            return {"job_id": job.id, "state": state, "result": job.result(0)}
        if state == CANCELLED:
            raise ServiceError(f"job {job.id} cancelled: {job.error}", status=504)
        if state == FAILED:
            raise ServiceError(f"job {job.id} failed: {job.error}", status=500)
        raise ServiceError(
            f"job {job.id} not done yet (state: {state}); poll again or "
            "pass ?wait=SECONDS",
            status=409,
        )

    def cancel(self, job_id: str) -> dict:
        job = self._job(job_id)
        job.cancel()
        return self.describe_job(job)

    def stats(self) -> dict:
        return {
            "status": "ok",
            "api": API_VERSION,
            "streams": len(self._streams),
            "queue": self.queue.stats(),
            "backend": repr(self.engine.backend),
        }

    def close(self) -> None:
        self.queue.close()
        self.engine.close()

    def __enter__(self) -> "AnalysisService":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


# ---------------------------------------------------------------------------
# The HTTP transport.
# ---------------------------------------------------------------------------

_ERROR_KINDS = {
    404: "not_found",
    409: "pending",
    429: "admission",
    504: "cancelled",
    400: "bad_request",
    500: "internal",
}


class _ServiceHandler(BaseHTTPRequestHandler):
    """JSON wire over :class:`AnalysisService` (one instance per request,
    many at once — the server is threading)."""

    server_version = "repro-serve/" + API_VERSION
    protocol_version = "HTTP/1.1"

    @property
    def service(self) -> AnalysisService:
        return self.server.service  # type: ignore[attr-defined]

    def log_message(self, format, *args):  # noqa: A002 - stdlib signature
        if getattr(self.server, "verbose", False):
            super().log_message(format, *args)

    # -- plumbing ----------------------------------------------------------

    def _send_json(self, status: int, payload: dict) -> None:
        body = json.dumps(payload).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _send_error(self, status: int, message: str) -> None:
        kind = _ERROR_KINDS.get(status, "error")
        self._send_json(status, {"error": message, "kind": kind})

    def _read_body(self) -> bytes:
        length = int(self.headers.get("Content-Length") or 0)
        return self.rfile.read(length) if length else b""

    def _read_json(self) -> dict:
        body = self._read_body()
        if not body:
            return {}
        try:
            payload = json.loads(body)
        except json.JSONDecodeError as exc:
            raise ServiceError(f"invalid JSON body: {exc}", status=400) from None
        if not isinstance(payload, dict):
            raise ServiceError("JSON body must be an object", status=400)
        return payload

    def _dispatch(self, method: str) -> None:
        url = urlparse(self.path)
        query = {key: values[-1] for key, values in parse_qs(url.query).items()}
        parts = [part for part in url.path.split("/") if part]
        try:
            if not parts or parts[0] != API_VERSION:
                raise ServiceError(
                    f"unknown path {url.path!r} (API is under /{API_VERSION}/)",
                    status=404,
                )
            self._route(method, parts[1:], query)
        except AdmissionError as exc:
            self._send_error(429, str(exc))
        except JobCancelled as exc:
            self._send_error(504, str(exc))
        except ServiceError as exc:
            self._send_error(exc.status or 500, str(exc))
        except ReproError as exc:
            self._send_error(400, str(exc))
        except Exception as exc:  # pragma: no cover - defensive
            self._send_error(500, f"{type(exc).__name__}: {exc}")

    def _route(self, method: str, parts: list[str], query: dict) -> None:
        service = self.service
        route = (method, *parts[:1])
        if route == ("GET", "health"):
            self._send_json(200, service.stats())
        elif route == ("GET", "streams"):
            self._send_json(200, {"streams": service.list_streams()})
        elif route == ("POST", "streams"):
            text = self._read_body().decode("utf-8")
            fingerprint = service.register_stream_text(
                text,
                columns=query.get("columns", "u v t"),
                fmt=query.get("format", "tsv"),
                directed=query.get("directed", "1") not in ("0", "false", "no"),
            )
            self._send_json(201, {"fingerprint": fingerprint})
        elif route == ("POST", "datasets"):
            payload = self._read_json()
            name = payload.get("name")
            if not name:
                raise ServiceError(
                    "missing 'name' (a catalog dataset name)", status=400
                )
            fingerprint = service.register_dataset(
                name,
                root=payload.get("root"),
                verify=bool(payload.get("verify", False)),
            )
            self._send_json(201, {"fingerprint": fingerprint, "name": name})
        elif route == ("POST", "append"):
            payload = self._read_json()
            fingerprint = payload.get("fingerprint")
            if not fingerprint:
                raise ServiceError("missing 'fingerprint'", status=400)
            events = payload.get("events")
            if not isinstance(events, list):
                raise ServiceError(
                    "missing 'events' (a list of [u, v, t] triples)",
                    status=400,
                )
            self._send_json(200, service.append_events(fingerprint, events))
        elif route in (("POST", "analyze"), ("POST", "sweep")):
            payload = self._read_json()
            fingerprint = payload.get("fingerprint")
            if not fingerprint:
                raise ServiceError("missing 'fingerprint'", status=400)
            common = {
                "measures": payload.get("measures", "occupancy"),
                "num_deltas": int(payload.get("num_deltas", 40)),
                "timeout": payload.get("timeout"),
            }
            if parts[0] == "analyze":
                job = service.submit_analyze(
                    fingerprint,
                    method=payload.get("method", "mk"),
                    refine=int(payload.get("refine", 0)),
                    validate=bool(payload.get("validate", False)),
                    **common,
                )
            else:
                job = service.submit_sweep(fingerprint, **common)
            self._send_json(202, service.describe_job(job))
        elif route == ("GET", "jobs") and len(parts) == 1:
            self._send_json(
                200,
                {"jobs": [service.describe_job(j) for j in service.queue.jobs()]},
            )
        elif parts[:1] == ["jobs"] and len(parts) >= 2:
            job_id = parts[1]
            if method == "GET" and len(parts) == 3 and parts[2] == "result":
                wait = float(query["wait"]) if "wait" in query else None
                self._send_json(200, service.result(job_id, wait=wait))
            elif method == "GET" and len(parts) == 2:
                self._send_json(200, service.status(job_id))
            elif method == "DELETE" and len(parts) == 2:
                self._send_json(200, service.cancel(job_id))
            else:
                raise ServiceError(f"unknown route {self.path!r}", status=404)
        elif route == ("POST", "shutdown"):
            self._send_json(200, {"status": "shutting down"})
            threading.Thread(target=self.server.shutdown, daemon=True).start()
        else:
            raise ServiceError(f"unknown route {self.path!r}", status=404)

    # -- verbs -------------------------------------------------------------

    def do_GET(self) -> None:  # noqa: N802 - stdlib naming
        self._dispatch("GET")

    def do_POST(self) -> None:  # noqa: N802
        self._dispatch("POST")

    def do_DELETE(self) -> None:  # noqa: N802
        self._dispatch("DELETE")


class ServiceServer(ThreadingHTTPServer):
    """The daemon's HTTP server: threading (each request handled on its
    own thread; the heavy lifting is delegated to the shared queue and
    engine anyway), bound to one :class:`AnalysisService`."""

    daemon_threads = True

    def __init__(self, address, service: AnalysisService, *, verbose: bool = False):
        super().__init__(address, _ServiceHandler)
        self.service = service
        self.verbose = verbose


def serve(
    host: str = "127.0.0.1",
    port: int = 8765,
    *,
    service: AnalysisService | None = None,
    verbose: bool = False,
    **service_kwargs,
) -> None:
    """Run the analysis daemon until interrupted (or ``POST
    /v1/shutdown``).  ``service_kwargs`` go to :class:`AnalysisService`
    when no pre-built ``service`` is passed."""
    owns = service is None
    if service is None:
        service = AnalysisService(**service_kwargs)
    server = ServiceServer((host, port), service, verbose=verbose)
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        server.server_close()
        if owns:
            service.close()
