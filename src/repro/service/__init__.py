"""The analysis service: a long-lived daemon serving repro analyses.

Offline, every ``repro analyze`` pays process startup, a cold
aggregation memo, and a cold sweep cache.  The service keeps all of that
warm in one process: :class:`AnalysisService` owns the streams (by
content fingerprint), one shared :class:`~repro.engine.SweepEngine` on
the ``async`` backend, and a :class:`~repro.engine.JobQueue` providing
admission control, per-request deadlines, and request coalescing.  The
HTTP daemon (:func:`serve`, CLI ``repro serve``) is a thin JSON
transport over that core; :class:`ServiceClient` (CLI ``repro
submit`` / ``status`` / ``fetch``) is its mirror image.

Served analyze responses are **bit-identical** to offline ``repro
analyze`` output: both sides render through
:func:`repro.reporting.render_analysis`.
"""

from repro.service.client import ServiceClient
from repro.service.daemon import AnalysisService, serve

__all__ = ["AnalysisService", "ServiceClient", "serve"]
