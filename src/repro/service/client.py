"""Client for the analysis daemon: the offline UX, served.

:class:`ServiceClient` wraps the daemon's JSON API in methods mirroring
the service core, over stdlib :mod:`urllib.request` (no dependencies,
same as the daemon).  Errors map back onto the library's exception
hierarchy, so code written against the offline API keeps its ``except``
clauses: a 429 admission rejection raises
:class:`~repro.utils.errors.AdmissionError`, a cancelled or
deadline-expired job raises :class:`~repro.utils.errors.JobCancelled`
(message intact — it still names the task the plan stopped at), and
everything else raises :class:`~repro.utils.errors.ServiceError`
carrying the HTTP status.
"""

from __future__ import annotations

import json
from urllib import error as urlerror
from urllib import request as urlrequest
from urllib.parse import urlencode

from repro.utils.errors import AdmissionError, JobCancelled, ServiceError

#: Error ``kind`` in a daemon response body -> the exception it becomes.
_KIND_ERRORS = {
    "admission": AdmissionError,
    "cancelled": JobCancelled,
}


class ServiceClient:
    """Talk to a running ``repro serve`` daemon.

    Parameters
    ----------
    base_url:
        Daemon address, e.g. ``"http://127.0.0.1:8765"``.
    timeout:
        Socket timeout (seconds) for each HTTP call — transport-level,
        distinct from the per-job deadlines the daemon enforces.
    """

    def __init__(self, base_url: str = "http://127.0.0.1:8765", *, timeout: float = 30.0) -> None:
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout

    # -- plumbing ----------------------------------------------------------

    def _request(
        self,
        method: str,
        path: str,
        *,
        query: dict | None = None,
        json_body: dict | None = None,
        raw_body: bytes | None = None,
    ) -> dict:
        url = f"{self.base_url}{path}"
        if query:
            url += "?" + urlencode(query)
        data = None
        headers = {"Accept": "application/json"}
        if json_body is not None:
            data = json.dumps(json_body).encode("utf-8")
            headers["Content-Type"] = "application/json"
        elif raw_body is not None:
            data = raw_body
            headers["Content-Type"] = "application/octet-stream"
        req = urlrequest.Request(url, data=data, headers=headers, method=method)
        try:
            with urlrequest.urlopen(req, timeout=self.timeout) as response:
                return json.loads(response.read().decode("utf-8"))
        except urlerror.HTTPError as exc:
            raise self._map_error(exc) from None
        except urlerror.URLError as exc:
            raise ServiceError(
                f"cannot reach analysis daemon at {self.base_url}: {exc.reason}"
            ) from None

    @staticmethod
    def _map_error(exc: urlerror.HTTPError) -> Exception:
        try:
            payload = json.loads(exc.read().decode("utf-8"))
            message = payload["error"]
            kind = payload.get("kind", "error")
        except Exception:
            message, kind = f"HTTP {exc.code}: {exc.reason}", "error"
        error_cls = _KIND_ERRORS.get(kind)
        if error_cls is not None:
            return error_cls(message)
        return ServiceError(message, status=exc.code)

    # -- API ---------------------------------------------------------------

    def health(self) -> dict:
        return self._request("GET", "/v1/health")

    def upload_stream(
        self,
        path: str,
        *,
        columns: str = "u v t",
        fmt: str = "tsv",
        directed: bool = True,
    ) -> str:
        """Upload an event file; returns the stream's fingerprint
        (idempotent — same events, same fingerprint, no duplicate)."""
        with open(path, "rb") as handle:
            body = handle.read()
        return self.upload_stream_bytes(
            body, columns=columns, fmt=fmt, directed=directed
        )

    def upload_stream_bytes(
        self,
        body: bytes,
        *,
        columns: str = "u v t",
        fmt: str = "tsv",
        directed: bool = True,
    ) -> str:
        response = self._request(
            "POST",
            "/v1/streams",
            query={
                "columns": columns,
                "format": fmt,
                "directed": "1" if directed else "0",
            },
            raw_body=body,
        )
        return response["fingerprint"]

    def register_dataset(
        self, name: str, *, root: str | None = None, verify: bool = False
    ) -> str:
        """Register a partitioned catalog dataset by name (the daemon
        resolves ``root`` or its own ``REPRO_DATASETS_DIR``); returns the
        stream's fingerprint without materializing any partition."""
        payload: dict = {"name": name, "verify": verify}
        if root is not None:
            payload["root"] = root
        return self._request("POST", "/v1/datasets", json_body=payload)[
            "fingerprint"
        ]

    def streams(self) -> list[dict]:
        return self._request("GET", "/v1/streams")["streams"]

    def append(self, fingerprint: str, events) -> dict:
        """Append ``[u, v, t]`` triples to a registered stream.

        Returns the daemon's record for the grown stream —
        ``{"fingerprint", "parent", "appended", "num_events",
        "num_nodes"}``.  Analyze the returned fingerprint: the daemon
        reuses the parent's warm aggregation and scan state, so only
        the appended suffix is re-examined.  Out-of-order events are
        rejected (the append-only contract).
        """
        return self._request(
            "POST",
            "/v1/append",
            json_body={"fingerprint": fingerprint, "events": list(events)},
        )

    def analyze(
        self,
        fingerprint: str,
        *,
        measures: str = "occupancy",
        num_deltas: int = 40,
        method: str = "mk",
        refine: int = 0,
        validate: bool = False,
        timeout: float | None = None,
    ) -> dict:
        """Submit an analyze job; returns its status record (``job_id``,
        ``state``, ``coalesced``) without waiting."""
        payload = {
            "fingerprint": fingerprint,
            "measures": measures,
            "num_deltas": num_deltas,
            "method": method,
            "refine": refine,
            "validate": validate,
        }
        if timeout is not None:
            payload["timeout"] = timeout
        return self._request("POST", "/v1/analyze", json_body=payload)

    def sweep(
        self,
        fingerprint: str,
        *,
        measures: str = "occupancy",
        num_deltas: int = 40,
        timeout: float | None = None,
    ) -> dict:
        payload = {
            "fingerprint": fingerprint,
            "measures": measures,
            "num_deltas": num_deltas,
        }
        if timeout is not None:
            payload["timeout"] = timeout
        return self._request("POST", "/v1/sweep", json_body=payload)

    def status(self, job_id: str) -> dict:
        return self._request("GET", f"/v1/jobs/{job_id}")

    def jobs(self) -> list[dict]:
        return self._request("GET", "/v1/jobs")["jobs"]

    def fetch(self, job_id: str, *, wait: float | None = None) -> dict:
        """A finished job's result payload; ``wait`` long-polls."""
        query = {"wait": f"{wait:g}"} if wait is not None else None
        response = self._request("GET", f"/v1/jobs/{job_id}/result", query=query)
        return response["result"]

    def cancel(self, job_id: str) -> dict:
        return self._request("DELETE", f"/v1/jobs/{job_id}")

    def shutdown(self) -> dict:
        """Ask the daemon to stop serving (it finishes in-flight work)."""
        return self._request("POST", "/v1/shutdown")
