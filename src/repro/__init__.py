"""repro — reproduction of *Non-Altering Time Scales for Aggregation of
Dynamic Networks into Series of Graphs* (Léo, Crespelle & Fleury,
CoNEXT 2015).

Quickstart::

    from repro import LinkStream, occupancy_method

    stream = LinkStream.from_triples([("a", "b", 0), ("b", "c", 5), ...])
    result = occupancy_method(stream)
    print(result.describe())      # the saturation scale gamma

    # The stream grew?  Append in order (index triples) and re-analyze —
    # cached prefix aggregations splice and checkpointed scans resume,
    # so only the appended suffix is recomputed (bit-identical to
    # from-scratch; see *Streaming appends* below):
    a, c = stream.index_of("a"), stream.index_of("c")
    grown = stream.extend([(a, c, 9)])
    print(occupancy_method(grown).describe())

Every scan-backed quantity above runs on the batched backward-scan
kernel by default; ``REPRO_SCAN_KERNEL=legacy`` (or
``scan_series(..., kernel="legacy")``) switches to the per-source
reference loop — bit-identical, just slower — see *Scan kernels* below.

Traces too big to re-read whole?  Ingest once into a partitioned
dataset catalog and analyze spans out of core (see *Dataset catalog &
out-of-core streams* below)::

    from repro.datasets import ingest_file, open_dataset

    ingest_file("trace.tsv.gz", "mytrace", root="~/datasets")
    lazy = open_dataset("mytrace", root="~/datasets")   # manifest only
    result = occupancy_method(lazy)     # same gamma, same cache keys

Contributing code?  ``repro lint src/repro`` checks the project
invariants described below before the test suite ever runs.

Packages
--------
``repro.linkstream``
    Link-stream container, IO, operations, statistics.
``repro.graphseries``
    Snapshots, graph series, aggregation engines, graph metrics.
``repro.temporal``
    Backward reachability scan producing minimal trips (the O(nM)
    engine), forward scans, brute-force oracles.
``repro.core``
    The occupancy method, occupancy distributions, uniformity
    statistics, loss validation, classical sweeps.
``repro.generators`` / ``repro.datasets``
    Synthetic families of Section 6, replicas of the four traces, and
    the on-disk dataset catalog (``repro datasets``).
``repro.storage``
    Columnar storage backends behind :class:`LinkStream`: the in-memory
    default and the partitioned out-of-core backend.
``repro.baselines``
    Related-work aggregation-scale selectors for comparison.
``repro.reporting``
    Plain-text tables and ASCII charts used by the bench harness.
``repro.engine``
    Sweep-execution engine: task planning, pluggable backends, caching,
    cancellation, and the bounded job queue.
``repro.service``
    Long-lived analysis daemon (``repro serve``), HTTP/JSON API, and
    the matching client.

One scan, many measures
-----------------------
Everything measured at one aggregation period — the occupancy
distribution, the classical parameters, the snapshot metrics — derives
from the same two artifacts: the series ``G_Δ`` and one backward
reachability scan over it.  The engine therefore treats *measures* as
first-class (:class:`~repro.engine.MeasureSpec`): each Δ of a sweep is
one fused :class:`~repro.engine.AnalysisTask` that aggregates once,
scans once with every requested measure's collector riding the same
pass (distance statistics included — they are an ordinary mergeable
accumulator, :class:`~repro.temporal.DistanceTotals`), and emits one
result per measure.  ``analyze_stream(stream, measures=("occupancy",
"classical"))`` — CLI: ``repro analyze --measures occupancy,classical``
— computes Figure 2's top *and* bottom rows from exactly one
aggregation and one scan per Δ, bit-identical to running the sweeps
separately.  Results are cached per measure, so a warm occupancy cache
plus a cold classical request re-scans each Δ exactly once, computing
only the missing measure; aggregated series themselves are shared
through :func:`~repro.graphseries.aggregate_cached`, a process-wide
content-keyed memo warmed by sweeps and one-shot helpers alike.

Six measures ship built in: ``occupancy``, ``classical``, ``metrics``,
``trips`` (bounded minimal-trip samples with exact trip/hop/duration
totals), ``components`` (per-window component-size histograms), and
``reachability`` (per-pair earliest-arrival summaries from the scan's
arrival matrix).  Measures take parameters straight from the CLI —
``repro analyze --measures occupancy,trips:max_samples=64,seed=3`` —
and each parameter set caches under its own key.  Companion measures
also ride :func:`~repro.core.gamma_stability`'s subsample sweeps
(``measures=`` forwards through), surfacing per-resample values at each
elected γ in ``StabilityResult.companions_at_gamma``.

Writing a measure
-----------------
The measure layer is an **open plugin registry**
(:func:`~repro.engine.register_measure`): third-party code adds
measures at runtime, no engine changes required.  A measure is a frozen
dataclass subclassing :class:`~repro.engine.MeasureSpec`; its fields
are its parameter schema — hashed into its cache key automatically and
parseable from the CLI's ``name:key=value`` syntax::

    from dataclasses import dataclass
    from repro import occupancy_method
    from repro.engine import MeasureSpec, register_measure
    from repro.temporal import CountingCollector

    @register_measure
    @dataclass(frozen=True)
    class HopCount(MeasureSpec):
        scale: float = 1.0          # a parameter (cache-keyed, CLI-settable)

        scans = True                # rides the single backward scan

        @property
        def name(self) -> str:
            return "hop_count"

        def make_collector(self):
            return CountingCollector()

        def finalize(self, delta, geometry, payload, collectors):
            merged = CountingCollector()
            for collector in collectors:
                merged.merge(collector)         # the shard-merge rule
            return self.scale * merged.num_trips

    result = occupancy_method(stream, measures=("hop_count",))
    result.companions["hop_count"]              # one value per Δ

A measure declares how it feeds (``scans`` measures contribute a scan
consumer — a trip collector with ``record`` or a state accumulator with
``observe_row``/``close_run``/``begin``; ``has_payload`` measures do
per-series work in ``series_payload``), how shards merge
(``finalize`` receives one collector per destination shard and must
fold into fresh accumulators), and how dearly its results cache
(``cache_weight`` ranks recompute cost for the disk store's eviction
sweep; ``scoring_fields`` names pure post-processing parameters
excluded from shard-entry identity).  Registered measures run
everywhere built-ins do — fused tasks, all backends, within-Δ sharding,
per-measure caching, ``analyze_stream``, the CLI — with bit-identical
results by construction.

Scan kernels
------------
The backward reachability scan — the ``O(nM)`` engine every measure
rides — ships two interchangeable kernels
(:func:`repro.temporal.scan_series`, ``kernel=`` /
``REPRO_SCAN_KERNEL``):

* ``batched`` (the default) vectorizes each window across *all* source
  rows at once: the ``(arrival, hops)`` state stays packed into single
  int64 lexicographic keys for the whole scan, segment minima run as
  bucketed padded gathers, and collectors/accumulators are fed whole
  batches (``record_batch`` / ``observe_rows``, with a per-source
  adapter for consumers that only implement the classic protocol).
* ``legacy`` is the original one-Python-iteration-per-source loop,
  kept selectable as the in-tree oracle.

Both kernels are **bit-identical** — same trips in the same order, same
collector and accumulator state, across directed/undirected input,
``targets`` shards, ``include_self``, and every backend — so the kernel
choice is deliberately *not* part of any cache key, and caches warmed
by either kernel serve the other.  Reach for ``legacy`` when auditing a
result against the reference implementation, when bisecting a suspected
kernel bug (``benchmarks/bench_ablation_scan_kernel.py`` pins the >= 3x
speedup *and* the equivalence), or from third-party consumers that want
the strict one-``record``-call-per-source feeding order without the
batch adapter in between.

Engine & caching
----------------
Every Δ sweep (the occupancy method, classical sweeps, stability and
per-period analyses) runs through :mod:`repro.engine`: the grid becomes
a plan of independent fused per-Δ tasks dispatched by a pluggable
backend — serial (the default, bit-identical to a plain loop), a thread
pool, or a chunked process pool — behind a content-addressed result
cache keyed on the stream fingerprint plus the Δ and per-measure
parameters.  Re-running a sweep, refining a grid, or re-analyzing the
same stream never recomputes a sweep point; with a disk cache the reuse
survives across processes.  ``REPRO_CACHE_MAX_BYTES`` (or
``DiskStore(max_bytes=...)``) caps the disk store: once it outgrows the
cap, entries are swept cheapest-to-recompute first (each measure's
``cache_weight`` — snapshot metrics age out long before trip samples),
least-recently-used first within a weight.  ``repro cache stats`` /
``repro cache clear`` manage the store from the command line, and
``repro cache prewarm EVENTS --measures ...`` replays a sweep spec into
it so later analyses of the same stream start fully warm.

Select the backend per call (``occupancy_method(stream,
engine="process")``), via a configured engine (``SweepEngine("thread",
jobs=8)``), process-wide through the ``REPRO_ENGINE`` environment
variable (``serial``, ``thread``, ``process``, or ``thread:8``), or on
the command line (``repro analyze --backend process --jobs 8
--cache-dir ~/.cache/repro``).  ``REPRO_CACHE_DIR`` adds a persistent
on-disk store to the default engine.  All backends and cache states
return bit-identical γ and per-Δ scores.

Sharded evaluation
------------------
Grid parallelism stops helping exactly where sweeps are slowest: the
coarse-Δ tail and refinement rounds, where a handful of huge ``O(nM)``
backward scans each pin a single worker.  The engine therefore also
parallelizes *within* one Δ.  The scan's arrival-matrix columns are
independent dynamic programs (one per trip destination), so a Δ
evaluation splits into destination-partition shards
(:class:`~repro.engine.tasks.AnalysisShardTask`): each shard scans a
node subset's incoming trips with a proportionally smaller state, and
the shard collectors merge back — integer-exact — into the very
accumulators an unsharded scan would have produced.  Sharded results
are bit-identical to unsharded ones on every backend.

The default policy is ``auto``: shard a task into ``ceil(workers /
tasks)`` pieces only when the plan has fewer tasks than the backend has
workers.  Control it per call (``occupancy_method(stream,
engine="process", shards=8)``), per engine (``SweepEngine("process",
shards="auto")``), process-wide (``REPRO_SHARDS``), or on the command
line (``repro analyze --backend process --jobs 8 --shards auto``).
Sharding composes with measure fusion: every collector of the fused
task restricts to the shard's destinations and merges integer-exactly
(occupancy histograms and distance sums alike).  Shard results carry
their shard spec in the cache key, and merged per-measure results are
stored under the ordinary measure keys, so sharded and unsharded runs
warm each other.

Streaming appends
-----------------
Link streams are observed, not designed — they *grow*.  Re-analyzing
after every batch of new events from scratch costs the full ``O(nM)``
scan each time, even though everything before the append point is
untouched.  The append pipeline makes growth incremental end to end:

* **Append-only extension.**  ``stream.extend(events)`` (triples or
  three arrays) returns a new stream whose arrays are bit-identical to
  a from-scratch build over the concatenated events.  Every appended
  timestamp must be strictly greater than ``t_max`` —
  :class:`~repro.utils.errors.AppendOrderError` otherwise — which is
  exactly what keeps the old events a literal prefix of the new arrays.
* **Prefix-aware fingerprints.**  The grown stream records its
  ancestry on ``fingerprint_chain`` (one ``(num_events, fingerprint)``
  entry per append), and ``prefix_fingerprint(k)`` recovers any
  recorded time-prefix's content hash without rehashing events.  Cache
  keys stay purely content-derived.
* **Spliced aggregation.**  A warm per-Δ series for the base stream is
  reused verbatim: :func:`~repro.graphseries.aggregate_prefix_extended`
  re-windows only the appended suffix and splices it onto the cached
  prefix — bit-identical to aggregating the grown stream whole.
* **Settled-boundary scan resume.**  The backward scan checkpoints its
  packed per-window state at ~``sqrt(num_windows)`` boundaries (memory
  capped, ``REPRO_CHECKPOINT_MAX_BYTES``).  On re-analysis after an
  append, the scan restarts from the new end and stops at the first
  checkpoint whose incoming state matches the recorded one — the
  *settled boundary* — splicing every earlier window's collector and
  accumulator contributions from the recorded segment spans.  Dense
  appends settle after roughly the appended windows plus one
  checkpoint stride; a zero-event append performs zero scans.

The engine drives all of this through
:class:`~repro.engine.IncrementalScanSession`, a process-wide
content-keyed store (``REPRO_INCREMENTAL_MAX_BYTES`` caps it;
``REPRO_INCREMENTAL=0`` disables reuse entirely, ``repro cache stats``
reports it) — so a warm sweep on a grown stream re-scans only the
unsettled windows of each Δ, on either scan kernel, sharded or not,
with results bit-identical to a cold run
(``benchmarks/bench_ablation_incremental_append.py`` pins the >= 3x
wall-clock win, the counter-verified work bounds, and the equivalence).
The daemon exposes the same pipeline over HTTP: ``POST /v1/append``
(CLI: ``repro append FINGERPRINT events.tsv``) extends a registered
stream into a new registered stream with lineage, so streaming sources
can feed a warm service and every re-analysis stays incremental.

Dataset catalog & out-of-core streams
-------------------------------------
A :class:`LinkStream` no longer assumes its events live in RAM: the
columnar arrays sit behind a :class:`~repro.storage.StreamStorage`
backend.  The in-memory :class:`~repro.storage.ColumnarStorage` default
is bit-identical to the historical layout — same fingerprints, same
cache keys — while :class:`~repro.storage.PartitionedStorage` keeps
events sharded on disk as sorted per-time-range ``.npz`` column files
under a JSON manifest.  Metadata queries (``num_events``, ``t_min``/
``t_max``, ``fingerprint()``) answer straight from the manifest without
touching event bytes, and ``slice_time`` opens only the partitions
overlapping the requested range (``repro.storage.STORAGE_COUNTS``
instruments opens/prunes/materializations).

The catalog layer (:mod:`repro.datasets.catalog`) names such stores:
``repro datasets ingest mytrace --events trace.tsv.gz`` cuts a raw
event file into partitions under ``$REPRO_DATASETS_DIR/mytrace``
(chunked reading, ``REPRO_INGEST_CHUNK_EVENTS``; partition size,
``REPRO_PARTITION_EVENTS``), recording content hashes per partition and
the stream fingerprint in the manifest.  ``repro datasets list | info
[--verify] | index`` inspect, integrity-check, and rebuild the
manifest; :func:`~repro.datasets.open_dataset` returns a lazy
partition-backed stream whose analyses are bit-identical to the
in-memory ones on both scan kernels — cache entries warmed by either
serve the other.  Corruption never passes silently: a missing or
bit-flipped partition raises
:class:`~repro.utils.errors.StorageError` naming the exact file.

Sweeps prune with the storage: ``plan_measure_sweep(deltas, measures,
span=(start, end))`` (or ``AnalysisTask(..., span=...)``) restricts
every task to the half-open time span *through the backend*, so a
catalog-backed sweep loads exactly the partitions its windows cover —
``benchmarks/bench_ablation_out_of_core.py`` counter-asserts the
pruning and pins the allocation peak below full materialization.
Span-less tasks keep their historical cache keys byte for byte.  The
daemon joins in through ``POST /v1/datasets``
(:meth:`~repro.service.ServiceClient.register_dataset`): a catalog
dataset registers by name without materializing, and jobs against it
slice partitions on demand.

Serving analyses
----------------
Every one-shot ``repro analyze`` pays process startup and cold caches.
``repro serve`` keeps them warm instead: a long-lived daemon
(:mod:`repro.service`, stdlib HTTP — no dependencies) owns one
:class:`~repro.engine.SweepEngine` (async backend, shared worker pool,
memory+disk sweep cache, process-wide series memo) and serves analyze
and sweep requests over a small JSON API.  Streams register once by
content fingerprint (``POST /v1/streams`` — idempotent), jobs are
asynchronous (``POST /v1/analyze`` returns a job id immediately;
``GET /v1/jobs/<id>/result?wait=`` long-polls), and the rendered report
is bit-identical to offline ``repro analyze`` on the same events.

The daemon degrades gracefully under load rather than falling over:
a bounded backlog turns excess requests away with 429 (admission
control, :class:`~repro.utils.errors.AdmissionError`); per-request
deadlines ride a :class:`~repro.engine.CancelToken` into the engine and
cancel mid-plan, naming the exact task the sweep stopped at
(:class:`~repro.utils.errors.JobCancelled`, HTTP 504); and identical
in-flight requests *coalesce* — N clients asking for the same
fingerprint, Δ grid, and measures attach to one computation and share
its result, with the shared deadline extended to the most patient
requester.  Warm repeats perform zero scans.

Client side: ``repro submit events.tsv --url http://host:8765 --wait``
uploads, analyzes, and prints the same text the offline CLI would;
``repro status`` / ``repro fetch JOB`` poll and retrieve; programmatic
access goes through :class:`~repro.service.ServiceClient`, which maps
API errors back onto this library's exception hierarchy.  ``repro
measures list`` (or ``repro analyze --measures-list``) prints every
registered measure with its parameter schema, types, and defaults —
including measures installed by third-party packages through the
``repro.measures`` entry-point group, discovered automatically at
registry first use (``--format json`` emits the same records
machine-readably).

Project invariants
------------------
Four conventions carry the repo's correctness story, and ``repro
lint`` (:mod:`repro.lint`) enforces them statically — CI runs it as a
gating job next to the tests:

* **Cache-key completeness.**  A measure's frozen-dataclass fields are
  its cache identity; a parameter added as a plain class attribute
  silently escapes ``token()`` and collides in the cache (the
  ``include_isolated`` bug PR 4 fixed by hand).  Key-builder functions
  must fold a literal ``*_VERSION`` constant into their payload so
  key-shape changes are invalidated by a reviewable bump.  Rules:
  ``cache-key-unhashed-field``, ``cache-key-scoring-fields``,
  ``cache-key-version``.
* **Determinism.**  In ``engine/``, ``temporal/``, ``graphseries/``,
  ``core/`` and ``storage/`` results are pure functions of the stream
  and the parameters: no iteration over sets without ``sorted(...)``, no
  ``random.*`` / ``time.time()`` / ``id()`` / ``hash()`` (randomness
  routes through :mod:`repro.utils.rng`, clocks are explicit and
  monotonic), no float accumulation inside integer-exact collectors —
  the bit-identity contract PRs 1–3 prove backend × shard × cache.
  Rules: ``unsorted-set-iteration``, ``nondeterministic-call``,
  ``float-accumulation``.
* **Collector contract.**  Any class with ``record`` feeds the sharded
  backward scan (PR 2), so it must also define in-place ``merge`` and
  the ``empty`` property, or shard reassembly silently drops its
  state.  Rules: ``collector-contract``, ``collector-merge-inplace``.
* **Lock discipline.**  In ``engine/``, ``service/`` (the daemon of
  PR 5) and ``storage/`` (whose lazily-cached columns are shared
  across service threads) — and in ``tests/``, whose lock-owning
  doubles model those classes — a lock-owning class writes its private
  state only inside
  ``with self.<lock>:`` (or ``__init__``; helpers called with the lock
  held are named ``*_locked``), and the cross-module lock-acquisition
  order must be acyclic.  Rules: ``unlocked-attribute-write``,
  ``lock-order-cycle``.

Exemptions are explicit and visible: a trailing ``# repro:
ignore[rule-id] -- reason`` comment suppresses one finding on that
line, and suppressed findings still show up in the report counts.  New
rules subclass :class:`repro.lint.Rule` — see :mod:`repro.lint` for
the how-to.
"""

from repro.core import (
    OccupancyDistribution,
    SaturationResult,
    classical_sweep,
    elongation_curve,
    log_delta_grid,
    occupancy_method,
    transition_loss_curve,
)
from repro.engine import SweepCache, SweepEngine
from repro.graphseries import GraphSeries, Snapshot, aggregate
from repro.linkstream import IntervalStream, LinkStream

__version__ = "1.5.0"

__all__ = [
    "LinkStream",
    "IntervalStream",
    "GraphSeries",
    "Snapshot",
    "aggregate",
    "occupancy_method",
    "SaturationResult",
    "OccupancyDistribution",
    "log_delta_grid",
    "classical_sweep",
    "transition_loss_curve",
    "elongation_curve",
    "SweepEngine",
    "SweepCache",
    "__version__",
]
