"""repro — reproduction of *Non-Altering Time Scales for Aggregation of
Dynamic Networks into Series of Graphs* (Léo, Crespelle & Fleury,
CoNEXT 2015).

Quickstart::

    from repro import LinkStream, occupancy_method

    stream = LinkStream.from_triples([("a", "b", 0), ("b", "c", 5), ...])
    result = occupancy_method(stream)
    print(result.describe())      # the saturation scale gamma

Packages
--------
``repro.linkstream``
    Link-stream container, IO, operations, statistics.
``repro.graphseries``
    Snapshots, graph series, aggregation engines, graph metrics.
``repro.temporal``
    Backward reachability scan producing minimal trips (the O(nM)
    engine), forward scans, brute-force oracles.
``repro.core``
    The occupancy method, occupancy distributions, uniformity
    statistics, loss validation, classical sweeps.
``repro.generators`` / ``repro.datasets``
    Synthetic families of Section 6 and replicas of the four traces.
``repro.baselines``
    Related-work aggregation-scale selectors for comparison.
``repro.reporting``
    Plain-text tables and ASCII charts used by the bench harness.
"""

from repro.core import (
    OccupancyDistribution,
    SaturationResult,
    classical_sweep,
    elongation_curve,
    log_delta_grid,
    occupancy_method,
    transition_loss_curve,
)
from repro.graphseries import GraphSeries, Snapshot, aggregate
from repro.linkstream import IntervalStream, LinkStream

__version__ = "1.0.0"

__all__ = [
    "LinkStream",
    "IntervalStream",
    "GraphSeries",
    "Snapshot",
    "aggregate",
    "occupancy_method",
    "SaturationResult",
    "OccupancyDistribution",
    "log_delta_grid",
    "classical_sweep",
    "transition_loss_curve",
    "elongation_curve",
    "__version__",
]
