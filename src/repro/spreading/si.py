"""Susceptible-Infected simulation on streams and series.

An SI process starts from a seed node; every event ``(u, v, t)`` whose
source is already infected *strictly before* ``t`` transmits to ``v``
with probability β (time causality — Remark 1 of the paper — means a
node infected by an event cannot retransmit within the same instant or
window).  With β = 1 the infected set at ``+∞`` is exactly the temporal
reachability set of the seed, which ties the simulator to the
reachability engine and gives tests a ground truth.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.graphseries.series import GraphSeries
from repro.linkstream.stream import LinkStream
from repro.temporal.reachability import _expand_undirected, _stream_groups
from repro.utils.errors import ValidationError
from repro.utils.rng import ensure_rng


@dataclass(frozen=True)
class SpreadResult:
    """Outcome of one SI run.

    ``infection_time[v]`` is the time (stream) or window index (series)
    at which ``v`` became infected, ``+inf`` if never; the seed carries
    its start time.
    """

    seed: int
    start_time: float
    beta: float
    infection_time: np.ndarray

    @property
    def infected(self) -> np.ndarray:
        """Indices of nodes reached by the process (seed included)."""
        return np.flatnonzero(np.isfinite(self.infection_time))

    @property
    def outbreak_size(self) -> int:
        return int(np.isfinite(self.infection_time).sum())

    def outbreak_curve(self, times: np.ndarray) -> np.ndarray:
        """Cumulative number of infected nodes at each query time."""
        finite = np.sort(self.infection_time[np.isfinite(self.infection_time)])
        return np.searchsorted(finite, np.asarray(times), side="right")


def _run_si(
    groups,
    num_nodes: int,
    seed: int,
    start_time: float,
    beta: float,
    rng: np.random.Generator | None,
) -> np.ndarray:
    infection = np.full(num_nodes, np.inf)
    infection[seed] = start_time
    for time_value, us, vs in groups:
        if time_value < start_time:
            continue
        # Infected strictly before this instant/window can transmit
        # (the seed transmits from start_time onward, inclusive).
        contagious = infection < time_value
        contagious[seed] = infection[seed] <= time_value
        candidates = contagious[us] & ~np.isfinite(infection[vs])
        if beta < 1.0 and rng is not None:
            candidates &= rng.random(us.size) < beta
        hit = np.unique(vs[candidates])
        infection[hit] = time_value
    return infection


def si_spread_stream(
    stream: LinkStream,
    seed_node: int,
    start_time: float,
    *,
    beta: float = 1.0,
    seed: int | np.random.Generator | None = None,
) -> SpreadResult:
    """Run an SI process over the raw link stream.

    With ``beta = 1`` the result is deterministic and equals temporal
    reachability from ``(seed_node, start_time)``.
    """
    _check_args(stream.num_nodes, seed_node, beta)
    rng = ensure_rng(seed) if beta < 1.0 else None
    groups = list(_stream_groups(stream))
    groups.reverse()  # ascending time
    if not stream.directed:
        groups = [
            (t, *(_expand_undirected(u, v))) for t, u, v in groups
        ]
    infection = _run_si(
        groups, stream.num_nodes, seed_node, start_time, beta, rng
    )
    return SpreadResult(seed_node, start_time, beta, infection)


def si_spread_series(
    series: GraphSeries,
    seed_node: int,
    start_step: int,
    *,
    beta: float = 1.0,
    seed: int | np.random.Generator | None = None,
) -> SpreadResult:
    """Run an SI process over an aggregated series.

    Transmission uses window indices: a node infected in window ``k``
    transmits from window ``k+1`` onward — the aggregated analogue of
    strict time causality.  Note the information loss at work: within a
    window the true event order is unknown, so the aggregate both
    *denies* same-window chains the stream would have allowed and
    *backdates* events that actually preceded the start time inside the
    seed window; the simulated outbreak diverges from the stream's as Δ
    grows.
    """
    _check_args(series.num_nodes, seed_node, beta)
    rng = ensure_rng(seed) if beta < 1.0 else None
    groups = []
    for step, u, v in series.edge_groups():
        if not series.directed:
            u, v = _expand_undirected(u, v)
        groups.append((step, u, v))
    infection = _run_si(
        groups, series.num_nodes, seed_node, float(start_step), beta, rng
    )
    return SpreadResult(seed_node, float(start_step), beta, infection)


def _check_args(num_nodes: int, seed_node: int, beta: float) -> None:
    if not 0 <= seed_node < num_nodes:
        raise ValidationError(f"seed node {seed_node} out of range")
    if not 0.0 < beta <= 1.0:
        raise ValidationError(f"beta must be in (0, 1], got {beta}")
