"""Spreading processes on link streams and graph series.

The paper's motivation is that diffusion phenomena (epidemics,
information cascades) follow temporal paths, so aggregation beyond the
saturation scale corrupts their substrate.  This package makes that
concrete: susceptible-infected (SI) processes run on both the raw
stream and an aggregated series, and their disagreement is measured as
a function of the aggregation period.
"""

from repro.spreading.fidelity import (
    FidelityCurve,
    FidelityPoint,
    reachability_fidelity,
)
from repro.spreading.si import (
    SpreadResult,
    si_spread_series,
    si_spread_stream,
)

__all__ = [
    "si_spread_stream",
    "si_spread_series",
    "SpreadResult",
    "reachability_fidelity",
    "FidelityCurve",
    "FidelityPoint",
]
