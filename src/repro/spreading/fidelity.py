"""Spreading fidelity of aggregated series vs the original stream.

For a sample of (seed, start-time) pairs, compare the set of nodes an
SI process reaches on the raw stream against the set it reaches on the
series aggregated at Δ (same absolute start).  The Jaccard similarity
of the two outbreak sets, averaged over seeds, is the **spreading
fidelity** of Δ — a direct, simulation-level reading of the alteration
the occupancy method detects: fidelity stays near 1 below the
saturation scale and degrades beyond it.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.graphseries.aggregation import aggregate_cached, window_index
from repro.linkstream.stream import LinkStream
from repro.spreading.si import si_spread_series, si_spread_stream
from repro.utils.errors import ValidationError
from repro.utils.rng import ensure_rng


@dataclass(frozen=True)
class FidelityPoint:
    """Fidelity summary of one aggregation period."""

    delta: float
    mean_jaccard: float
    mean_size_ratio: float
    num_probes: int


@dataclass(frozen=True)
class FidelityCurve:
    """Fidelity over a Δ grid."""

    points: list[FidelityPoint]

    @property
    def deltas(self) -> np.ndarray:
        return np.array([p.delta for p in self.points])

    @property
    def mean_jaccards(self) -> np.ndarray:
        return np.array([p.mean_jaccard for p in self.points])

    def fidelity_at(self, delta: float) -> float:
        idx = int(np.argmin(np.abs(self.deltas - delta)))
        return float(self.mean_jaccards[idx])


def _sample_probes(
    stream: LinkStream, num_probes: int, rng: np.random.Generator
) -> list[tuple[int, float]]:
    """(seed node, start time) pairs anchored on actual events.

    Seeds are event sources (so the process has a chance to move) and
    start times the matching event times, sampled uniformly from the
    first 80% of the span to leave room to spread.
    """
    horizon = stream.t_min + 0.8 * stream.span
    eligible = np.flatnonzero(stream.timestamps <= horizon)
    if not eligible.size:
        eligible = np.arange(stream.num_events)
    chosen = rng.choice(eligible, size=min(num_probes, eligible.size), replace=False)
    return [
        (int(stream.sources[i]), float(stream.timestamps[i])) for i in chosen
    ]


def reachability_fidelity(
    stream: LinkStream,
    deltas: np.ndarray,
    *,
    num_probes: int = 30,
    seed: int | np.random.Generator | None = 0,
    origin: float | None = None,
) -> FidelityCurve:
    """Deterministic (β = 1) spreading fidelity per aggregation period.

    With β = 1 the outbreak equals the temporal reachability set, so
    this measures exactly the propagation structure the paper is about
    — no Monte-Carlo noise, same probes across all Δ.
    """
    if stream.num_events < 2:
        raise ValidationError("need events to probe spreading fidelity")
    rng = ensure_rng(seed)
    if origin is None:
        origin = stream.t_min
    probes = _sample_probes(stream, num_probes, rng)
    stream_sets = []
    for node, t_start in probes:
        result = si_spread_stream(stream, node, t_start)
        stream_sets.append(set(result.infected.tolist()))

    points = []
    for delta in np.asarray(deltas, dtype=np.float64):
        # Shares the process-wide series memo with the sweep engine, so
        # probing Δ values a sweep already aggregated costs no window
        # pass.
        series = aggregate_cached(stream, float(delta), origin=origin)
        jaccards = []
        ratios = []
        for (node, t_start), truth in zip(probes, stream_sets):
            start_step = int(window_index(np.array([t_start]), float(delta), origin)[0])
            result = si_spread_series(series, node, start_step)
            approx = set(result.infected.tolist())
            union = truth | approx
            inter = truth & approx
            jaccards.append(len(inter) / len(union) if union else 1.0)
            ratios.append(len(approx) / len(truth) if truth else 1.0)
        points.append(
            FidelityPoint(
                delta=float(delta),
                mean_jaccard=float(np.mean(jaccards)),
                mean_size_ratio=float(np.mean(ratios)),
                num_probes=len(probes),
            )
        )
    return FidelityCurve(points)
