"""The on-disk dataset catalog (``repro datasets ingest|index|list|info``).

A *catalog* is a directory of named datasets, each stored in the
time-partitioned layout of :class:`repro.storage.PartitionedStorage`:

.. code-block:: text

    <catalog-root>/
      irvine/
        manifest.json
        bucket-00000/part-000000_<t0>_<t1>.npz
        ...
      enron-2001/
        ...

The root comes from ``--root`` on the CLI or the ``REPRO_DATASETS_DIR``
environment variable.  Ingesting computes the stream's content
fingerprint from the full sorted columns — the *same* recipe (and
therefore the same hex digest) as an in-memory build — and records it
in the manifest, so opening a dataset by name yields a lazy
:class:`~repro.linkstream.LinkStream` whose engine cache keys, sweep
results, and service responses are bit-identical to loading the raw
file into memory.  Prefix fingerprints at partition cuts are recorded
as the stream's :attr:`~repro.linkstream.LinkStream.fingerprint_chain`
so incremental warm-append reuse survives the round trip through disk.

``reindex`` rebuilds a manifest from the partition files themselves
(redvox-style: the structured filenames carry index and time span, the
array bytes carry everything else) — the recovery path after manual
file surgery or a lost manifest.
"""

from __future__ import annotations

import hashlib
import os
import re
import zipfile
from collections.abc import Hashable, Iterable
from pathlib import Path

import numpy as np

from repro.linkstream.io import read_event_arrays
from repro.linkstream.stream import LinkStream
from repro.storage.partitioned import (
    MANIFEST_NAME,
    PartitionedStorage,
    chain_boundaries,
    chain_manifest_digest,
    parse_partition_filename,
    partition_content_hash,
    partition_events_default,
    plan_partition_cuts,
    write_manifest,
)
from repro.utils.errors import StorageError

CATALOG_ROOT_ENV_VAR = "REPRO_DATASETS_DIR"

_NAME_PATTERN = re.compile(r"^[A-Za-z0-9][A-Za-z0-9._-]*$")


def catalog_root(root: str | Path | None = None) -> str:
    """Resolve the catalog directory (argument wins over environment)."""
    if root is not None:
        return str(root)
    env = os.environ.get(CATALOG_ROOT_ENV_VAR)
    if env:
        return env
    raise StorageError(
        "no catalog root configured: pass --root / root= or set "
        f"{CATALOG_ROOT_ENV_VAR}"
    )


def dataset_dir(name: str, root: str | Path | None = None) -> str:
    """Directory of dataset ``name`` inside the catalog."""
    if not _NAME_PATTERN.match(name):
        raise StorageError(
            f"invalid dataset name {name!r} (letters, digits, '.', '_', '-')"
        )
    return os.path.join(catalog_root(root), name)


def ingest_stream(
    stream: LinkStream,
    name: str,
    *,
    root: str | Path | None = None,
    partition_events: int | None = None,
    overwrite: bool = False,
) -> dict:
    """Write ``stream`` into the catalog as dataset ``name``.

    The stream's canonical columns are cut into partitions (about
    ``partition_events`` each, ``REPRO_PARTITION_EVENTS`` by default;
    runs of equal timestamps are never split), each partition is
    content-hashed, and the manifest records the stream fingerprint,
    the chained partition digest, and prefix fingerprints at up to
    :data:`~repro.storage.partitioned.CHAIN_MAX` partition cuts.
    Returns the manifest dict.
    """
    target = dataset_dir(name, root)
    if os.path.exists(os.path.join(target, MANIFEST_NAME)) and not overwrite:
        raise StorageError(
            f"dataset {name!r} already exists at {target} "
            "(pass overwrite/--force to replace it)"
        )
    if partition_events is None:
        partition_events = partition_events_default()
    cuts = plan_partition_cuts(stream.timestamps, partition_events)
    chain = tuple(
        (count, stream.prefix_fingerprint(count))
        for count in chain_boundaries(cuts)
    )
    labels: list[Hashable] | None = stream.labels
    if labels == list(range(stream.num_nodes)):
        # Identity labels carry no information; store null so the
        # reopened stream is `==` to the ingested one.
        labels = None
    storage = PartitionedStorage.from_events(
        stream.sources,
        stream.targets,
        stream.timestamps,
        path=target,
        directed=stream.directed,
        num_nodes=stream.num_nodes,
        labels=labels,
        fingerprint=stream.fingerprint(),
        chain=chain,
        partition_events=partition_events,
        name=name,
    )
    return storage.manifest


def ingest_file(
    path: str | Path,
    name: str,
    *,
    root: str | Path | None = None,
    fmt: str = "tsv",
    columns: str = "u v t",
    directed: bool = True,
    partition_events: int | None = None,
    chunk_events: int | None = None,
    overwrite: bool = False,
) -> dict:
    """Ingest a raw event file (tsv/csv/jsonl, ``.gz`` ok) by name.

    The file is parsed in bounded chunks
    (:func:`repro.linkstream.io.read_event_arrays`,
    ``REPRO_INGEST_CHUNK_EVENTS``) so peak parse memory is one chunk of
    Python objects plus the packed columns.  Returns the manifest dict.
    """
    u, v, t, labels = read_event_arrays(
        path, fmt=fmt, columns=columns, chunk_events=chunk_events
    )
    stream = LinkStream(
        u, v, t, directed=directed, num_nodes=len(labels), labels=labels
    )
    return ingest_stream(
        stream,
        name,
        root=root,
        partition_events=partition_events,
        overwrite=overwrite,
    )


def open_dataset(
    name: str, *, root: str | Path | None = None, verify: bool = False
) -> LinkStream:
    """Open catalog dataset ``name`` as a lazy partition-backed stream.

    Only the manifest is read: the returned stream answers
    ``num_events``/``t_min``/``t_max``/``fingerprint()`` from metadata,
    and ``slice_time`` prunes to overlapping partitions before any
    event bytes load.  With ``verify=True`` every partition's content
    hash is checked against the manifest as it is read (corruption
    raises :class:`~repro.utils.errors.StorageError` naming the file).
    """
    storage = PartitionedStorage.open(dataset_dir(name, root), verify=verify)
    manifest = storage.manifest
    labels: Iterable[Hashable] | None = manifest["labels"]
    return LinkStream.from_storage(
        storage,
        directed=manifest["directed"],
        num_nodes=manifest["num_nodes"],
        labels=labels,
        fingerprint=manifest["fingerprint"],
    )


def list_datasets(root: str | Path | None = None) -> list[dict]:
    """Summaries of every dataset in the catalog, sorted by name."""
    base = catalog_root(root)
    if not os.path.isdir(base):
        return []
    summaries = []
    for entry in sorted(os.listdir(base)):
        if os.path.exists(os.path.join(base, entry, MANIFEST_NAME)):
            summaries.append(dataset_info(entry, root=root))
    return summaries


def dataset_info(name: str, *, root: str | Path | None = None) -> dict:
    """Manifest-level summary of one dataset (no event bytes read)."""
    storage = PartitionedStorage.open(dataset_dir(name, root))
    manifest = storage.manifest
    return {
        "name": name,
        "events": manifest["num_events"],
        "timestamps": manifest["num_timestamps"],
        "nodes": manifest["num_nodes"],
        "directed": manifest["directed"],
        "time_dtype": manifest["time_dtype"],
        "t_min": manifest["t_min"],
        "t_max": manifest["t_max"],
        "partitions": len(manifest["partitions"]),
        "fingerprint": manifest["fingerprint"],
        "manifest_digest": manifest["manifest_digest"],
    }


def reindex_dataset(name: str, *, root: str | Path | None = None) -> dict:
    """Rebuild ``manifest.json`` from the partition files on disk.

    Partition files are discovered by glob over the bucketed layout and
    ordered by the index their structured filenames carry; per-partition
    stats and content hashes are recomputed from the array bytes, and
    the stream fingerprint is recomputed by streaming the columns across
    partitions (one partition in memory at a time).  Stream-level
    metadata that bytes cannot reveal (directedness, labels, a larger
    declared node count) is carried over from the existing manifest when
    one is present.  The fingerprint chain is preserved when the rebuilt
    fingerprint matches the prior manifest (content unchanged), and
    dropped otherwise.
    """
    target = dataset_dir(name, root)
    if not os.path.isdir(target):
        raise StorageError(f"no dataset directory at {target}")
    previous: dict | None = None
    manifest_path = os.path.join(target, MANIFEST_NAME)
    if os.path.exists(manifest_path):
        previous = PartitionedStorage.open(target).manifest

    directory = Path(target)
    found = sorted(directory.glob("bucket-*/part-*.npz"))
    if not found and previous is None:
        raise StorageError(f"no partition files under {target}")

    indexed: list[tuple[int, Path]] = []
    for file_path in found:
        index, _, _ = parse_partition_filename(file_path.name, "f")
        indexed.append((index, file_path))
    indexed.sort()

    entries: list[dict] = []
    total_events = 0
    distinct_total = 0
    previous_t_max: float | None = None
    node_hi = -1
    time_dtype: np.dtype | None = None
    t_min_overall: float | None = None
    t_max_overall: float | None = None
    for _index, file_path in indexed:
        u, v, t = _load_raw_partition(file_path)
        if time_dtype is None:
            time_dtype = t.dtype
            t_min_overall = t[0].item() if t.size else None
        elif t.dtype != time_dtype:
            raise StorageError(
                f"corrupt partition file: {file_path} "
                f"(time dtype {t.dtype.str} != {time_dtype.str})"
            )
        if t.size:
            if previous_t_max is not None and t[0].item() <= previous_t_max:
                raise StorageError(
                    f"corrupt partition file: {file_path} (time span overlaps "
                    "the previous partition)"
                )
            previous_t_max = t[-1].item()
            t_max_overall = t[-1].item()
            node_hi = max(node_hi, int(max(u.max(), v.max())))
        distinct_total += int(np.unique(t).size)
        entries.append(
            {
                "index": len(entries),
                "file": os.path.relpath(file_path, target).replace(os.sep, "/"),
                "events": int(t.size),
                "num_timestamps": int(np.unique(t).size),
                "t_min": t[0].item() if t.size else None,
                "t_max": t[-1].item() if t.size else None,
                "node_min": int(min(u.min(), v.min())) if t.size else 0,
                "node_max": int(max(u.max(), v.max())) if t.size else 0,
                "sha256": partition_content_hash(u, v, t),
            }
        )
        total_events += int(t.size)

    if time_dtype is None:
        time_dtype = np.dtype(
            previous["time_dtype"] if previous is not None else "<f8"
        )
    directed = previous["directed"] if previous is not None else True
    labels = previous["labels"] if previous is not None else None
    num_nodes = node_hi + 1
    if previous is not None:
        num_nodes = max(num_nodes, int(previous["num_nodes"]))

    fingerprint = _streaming_fingerprint(
        target,
        [entry["file"] for entry in entries],
        directed=bool(directed),
        num_nodes=num_nodes,
        time_dtype=time_dtype,
    )
    chain = []
    if previous is not None and previous.get("fingerprint") == fingerprint:
        chain = previous.get("chain", [])

    manifest = {
        "format": "repro-catalog-v1",
        "name": name,
        "directed": bool(directed),
        "num_nodes": int(num_nodes),
        "labels": labels,
        "time_dtype": time_dtype.str,
        "num_events": total_events,
        "num_timestamps": distinct_total,
        "t_min": t_min_overall,
        "t_max": t_max_overall,
        "fingerprint": fingerprint,
        "chain": chain,
        "partition_events": (
            previous["partition_events"]
            if previous is not None
            else partition_events_default()
        ),
        "manifest_digest": chain_manifest_digest(
            [entry["sha256"] for entry in entries]
        ),
        "partitions": entries,
    }
    write_manifest(target, manifest)
    return manifest


def _load_raw_partition(
    file_path: Path,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Load one partition's columns for reindexing (errors name the file)."""
    try:
        with np.load(file_path) as archive:
            u = np.ascontiguousarray(archive["u"], dtype=np.int64)
            v = np.ascontiguousarray(archive["v"], dtype=np.int64)
            t = np.ascontiguousarray(archive["t"])
    except (OSError, ValueError, EOFError, KeyError, zipfile.BadZipFile) as error:
        raise StorageError(
            f"corrupt partition file: {file_path} ({error})"
        ) from error
    if not (u.shape == v.shape == t.shape) or u.ndim != 1:
        raise StorageError(
            f"corrupt partition file: {file_path} (mismatched column shapes)"
        )
    return u, v, t


def _streaming_fingerprint(
    target: str,
    files: list[str],
    *,
    directed: bool,
    num_nodes: int,
    time_dtype: np.dtype,
) -> str:
    """Stream fingerprint recomputed one partition at a time.

    Identical to :meth:`LinkStream.fingerprint`: header, then all
    source bytes, then all target bytes, then all timestamp bytes — so
    the columns are walked once per column, holding a single partition
    in memory at a time.
    """
    digest = hashlib.sha256()
    digest.update(
        f"v1|{int(directed)}|{num_nodes}|{time_dtype.str}|".encode()
    )
    for column in ("u", "v", "t"):
        for relative in files:
            u, v, t = _load_raw_partition(Path(target) / relative)
            arrays = {"u": u, "v": v, "t": t}
            digest.update(arrays[column].tobytes())
    return digest.hexdigest()
