"""Specifications and loaders for the four CoNEXT trace replicas.

Published statistics (paper Section 5):

=============== ====== ======= ========= =================== =========
trace            nodes  events  span      activity (/p/day)   γ (paper)
=============== ====== ======= ========= =================== =========
Irvine           1 509  48 000  48 days   0.66                18 h
Facebook         3 387  11 991  1 month   0.12                46 h
Enron              150  15 951  year 2001 0.29                78 h
Manufacturing      153  82 894  8 months  2.22                12 h
=============== ====== ======= ========= =================== =========

Two scales per dataset:

* ``"full"`` — the published sizes (minutes per sweep on a laptop);
* ``"paper"`` — reduced node count and span with the **same per-capita
  daily activity and rhythm**, so the saturation-scale phenomenology is
  preserved while sweeps run in seconds.  This is the default used by
  tests and benches; set ``REPRO_FULL_SCALE=1`` to make the bench
  harness use the full sizes.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.generators.replica import ReplicaParameters, circadian_replica
from repro.linkstream.stream import LinkStream
from repro.utils.errors import ValidationError
from repro.utils.timeunits import DAY, HOUR


@dataclass(frozen=True)
class ScaleSpec:
    """Concrete generation sizes for one scale of one dataset."""

    num_nodes: int
    num_events: int
    span_days: float


@dataclass(frozen=True)
class DatasetSpec:
    """Metadata of one trace and its replica parameters."""

    key: str
    name: str
    description: str
    full: ScaleSpec
    paper: ScaleSpec
    gamma_paper_hours: float
    activity_paper: float  # messages per person per day, as published
    day_night_contrast: float
    weekend_factor: float
    activity_exponent: float
    contacts_per_node: int

    def scale(self, name: str) -> ScaleSpec:
        if name == "full":
            return self.full
        if name == "paper":
            return self.paper
        raise ValidationError(f"unknown scale {name!r}; use 'paper' or 'full'")

    def replica_parameters(self, scale: str) -> ReplicaParameters:
        sizes = self.scale(scale)
        return ReplicaParameters(
            num_nodes=sizes.num_nodes,
            num_events=sizes.num_events,
            span=sizes.span_days * DAY,
            directed=True,
            activity_exponent=self.activity_exponent,
            contacts_per_node=self.contacts_per_node,
            day_night_contrast=self.day_night_contrast,
            weekend_factor=self.weekend_factor,
        )

    @property
    def gamma_paper_seconds(self) -> float:
        return self.gamma_paper_hours * HOUR


def _reduced(nodes: int, span_days: float, activity: float) -> ScaleSpec:
    """A reduced scale preserving the per-capita daily activity."""
    return ScaleSpec(
        num_nodes=nodes,
        num_events=int(round(activity * nodes * span_days)),
        span_days=span_days,
    )


DATASETS: dict[str, DatasetSpec] = {
    "irvine": DatasetSpec(
        key="irvine",
        name="UC Irvine messages",
        description="48 000 messages among 1 509 students of an online "
        "community over 48 days (Panzarasa et al.)",
        full=ScaleSpec(1509, 48000, 48.0),
        paper=_reduced(300, 16.0, 0.66),
        gamma_paper_hours=18.0,
        activity_paper=0.66,
        day_night_contrast=8.0,
        weekend_factor=0.6,
        activity_exponent=1.3,
        contacts_per_node=12,
    ),
    "facebook": DatasetSpec(
        key="facebook",
        name="Facebook wall posts",
        description="11 991 wall posts among 3 387 users over one month "
        "(Viswanath et al.)",
        full=ScaleSpec(3387, 11991, 30.0),
        paper=_reduced(400, 30.0, 0.12),
        gamma_paper_hours=46.0,
        activity_paper=0.12,
        day_night_contrast=5.0,
        weekend_factor=0.8,
        activity_exponent=1.2,
        contacts_per_node=8,
    ),
    "enron": DatasetSpec(
        key="enron",
        name="Enron e-mails",
        description="15 951 e-mails among 150 employees during 2001 "
        "(Klimt & Yang)",
        full=ScaleSpec(150, 15951, 365.0),
        paper=_reduced(150, 112.0, 0.29),
        gamma_paper_hours=78.0,
        activity_paper=0.29,
        day_night_contrast=10.0,
        weekend_factor=0.25,
        activity_exponent=1.2,
        contacts_per_node=15,
    ),
    "manufacturing": DatasetSpec(
        key="manufacturing",
        name="Manufacturing e-mails",
        description="82 894 internal e-mails among 153 employees over 8 "
        "months (Michalski et al.)",
        full=ScaleSpec(153, 82894, 243.0),
        paper=_reduced(153, 28.0, 2.22),
        gamma_paper_hours=12.0,
        activity_paper=2.22,
        day_night_contrast=12.0,
        weekend_factor=0.15,
        activity_exponent=1.1,
        contacts_per_node=18,
    ),
}


def available_datasets() -> list[str]:
    """Keys accepted by :func:`load`."""
    return sorted(DATASETS)


def dataset_spec(name: str) -> DatasetSpec:
    """Metadata of one dataset."""
    try:
        return DATASETS[name]
    except KeyError:
        raise ValidationError(
            f"unknown dataset {name!r}; available: {available_datasets()}"
        ) from None


def load(name: str, *, scale: str = "paper", seed: int = 0) -> LinkStream:
    """Generate the replica stream for a dataset at the requested scale.

    Deterministic for a given ``(name, scale, seed)``.
    """
    spec = dataset_spec(name)
    return circadian_replica(spec.replica_parameters(scale), seed=seed)
