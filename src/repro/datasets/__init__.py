"""Dataset registry: replicas of the paper's four traces.

The original traces (UC Irvine messages, Facebook wall posts, Enron
e-mails, Manufacturing e-mails) are public but unavailable offline;
:func:`load` generates statistical replicas matched on the published
node count, event count, span and per-capita activity (see DESIGN.md §3
for the substitution argument).
"""

from repro.datasets.catalog import (
    CATALOG_ROOT_ENV_VAR,
    dataset_info,
    ingest_file,
    ingest_stream,
    list_datasets,
    open_dataset,
    reindex_dataset,
)
from repro.datasets.registry import (
    DATASETS,
    DatasetSpec,
    available_datasets,
    dataset_spec,
    load,
)

__all__ = [
    "CATALOG_ROOT_ENV_VAR",
    "DATASETS",
    "DatasetSpec",
    "available_datasets",
    "dataset_info",
    "dataset_spec",
    "ingest_file",
    "ingest_stream",
    "list_datasets",
    "load",
    "open_dataset",
    "reindex_dataset",
]
