"""Minimal-trip containers and per-pair indexes.

A *trip* ``(u, v, t_dep, t_arr)`` states that some temporal path leaves
``u`` and reaches ``v`` within ``[t_dep, t_arr]``; it is *minimal* when no
trip of the same pair fits in a strictly smaller interval (Definition 5).
Minimal trips of a pair form a Pareto staircase: sorted by departure,
arrivals are strictly increasing too.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.utils.errors import ValidationError


@dataclass(frozen=True)
class TripSet:
    """Columnar set of minimal trips.

    Attributes
    ----------
    u, v:
        Node indices per trip.
    dep, arr:
        Departure and arrival *time values* — window indices for a graph
        series, raw timestamps for a link stream.
    hops:
        Minimum hop count among temporal paths realizing the trip.
    durations:
        Trip durations under the right convention: ``arr - dep + 1`` for a
        graph series (each index is a window of time), ``arr - dep`` for a
        link stream (Definition 4).
    """

    u: np.ndarray
    v: np.ndarray
    dep: np.ndarray
    arr: np.ndarray
    hops: np.ndarray
    durations: np.ndarray

    def __post_init__(self) -> None:
        lengths = {
            self.u.size,
            self.v.size,
            self.dep.size,
            self.arr.size,
            self.hops.size,
            self.durations.size,
        }
        if len(lengths) != 1:
            raise ValidationError("TripSet arrays must have equal length")

    def __len__(self) -> int:
        return self.u.size

    def occupancy_rates(self) -> np.ndarray:
        """``hops / duration`` per trip (Definition 7).

        Raises if any trip has zero duration (possible for link-stream
        trips made of a single event; occupancy is a graph-series notion).
        """
        if np.any(self.durations <= 0):
            raise ValidationError("occupancy undefined for zero-duration trips")
        return self.hops / self.durations

    def select(self, mask: np.ndarray) -> "TripSet":
        """Subset of trips selected by a boolean mask."""
        return TripSet(
            self.u[mask],
            self.v[mask],
            self.dep[mask],
            self.arr[mask],
            self.hops[mask],
            self.durations[mask],
        )

    def as_tuples(self) -> list[tuple[int, int, float, float, int]]:
        """Trips as ``(u, v, dep, arr, hops)`` tuples (small sets / tests)."""
        return [
            (int(a), int(b), c.item(), d.item(), int(e))
            for a, b, c, d, e in zip(self.u, self.v, self.dep, self.arr, self.hops)
        ]


class PairTripIndex:
    """Per-pair index over a :class:`TripSet` answering window queries.

    The elongation validator (Definition 8) needs, for a series minimal
    trip, the minimum duration among the *stream's* minimal trips of the
    same pair lying inside an absolute time window.  Minimal trips of a
    pair are Pareto-sorted, so a window query reduces to a contiguous
    slice: departures >= a form a suffix, arrivals <= b form a prefix.
    """

    def __init__(self, trips: TripSet, num_nodes: int) -> None:
        self._num_nodes = int(num_nodes)
        key = trips.u.astype(np.int64) * num_nodes + trips.v
        order = np.lexsort((trips.dep, key))
        self._key = key[order]
        self._dep = np.asarray(trips.dep, dtype=np.float64)[order]
        self._arr = np.asarray(trips.arr, dtype=np.float64)[order]
        self._dur = self._arr - self._dep
        unique_keys, starts = np.unique(self._key, return_index=True)
        self._pair_start = dict(zip(unique_keys.tolist(), starts.tolist()))
        self._pair_end = dict(
            zip(unique_keys.tolist(), np.append(starts[1:], self._key.size).tolist())
        )

    @property
    def num_trips(self) -> int:
        return self._key.size

    def pair_slice(self, u: int, v: int) -> tuple[np.ndarray, np.ndarray]:
        """Sorted ``(dep, arr)`` arrays of the pair's minimal trips."""
        key = u * self._num_nodes + v
        start = self._pair_start.get(key)
        if start is None:
            empty = np.empty(0)
            return empty, empty
        end = self._pair_end[key]
        return self._dep[start:end], self._arr[start:end]

    def min_duration_in_window(self, u: int, v: int, start: float, end: float) -> float | None:
        """Minimum ``arr - dep`` among the pair's trips inside ``[start, end]``.

        Returns ``None`` when no trip of the pair fits in the window.
        """
        key = u * self._num_nodes + v
        lo = self._pair_start.get(key)
        if lo is None:
            return None
        hi = self._pair_end[key]
        dep = self._dep[lo:hi]
        arr = self._arr[lo:hi]
        i0 = int(np.searchsorted(dep, start, side="left"))
        i1 = int(np.searchsorted(arr, end, side="right"))
        if i0 >= i1:
            return None
        return float(self._dur[lo + i0 : lo + i1].min())


def check_pareto(trips: TripSet) -> bool:
    """Verify the Pareto-staircase invariant of a minimal-trip set.

    For each pair, sorting by departure must sort arrivals strictly
    increasingly (no trip may contain another).  Used by tests.
    """
    if not len(trips):
        return True
    num_nodes = int(max(trips.u.max(), trips.v.max())) + 1
    key = trips.u.astype(np.int64) * num_nodes + trips.v
    order = np.lexsort((trips.dep, key))
    key_sorted = key[order]
    dep_sorted = np.asarray(trips.dep)[order]
    arr_sorted = np.asarray(trips.arr)[order]
    same_pair = key_sorted[1:] == key_sorted[:-1]
    dep_increasing = dep_sorted[1:] > dep_sorted[:-1]
    arr_increasing = arr_sorted[1:] > arr_sorted[:-1]
    return bool(np.all(~same_pair | (dep_increasing & arr_increasing)))
