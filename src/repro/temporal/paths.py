"""Forward temporal-path algorithms: single-source scans and path recovery.

These complement the backward scan (which produces *all* minimal trips at
once): the forward scan answers single-(source, departure) questions and
can reconstruct an explicit minimum-hop earliest-arrival temporal path —
used by examples, and by tests as an independent implementation to check
the backward engine against.

The forward scan keeps, per node, the **Pareto frontier of (arrival,
hops) states**: arrivals increasing, hop counts strictly decreasing.  A
single earliest-arrival value per node would not suffice for hop
counts — the minimum-hop path realizing a trip may relay through a node
using one of its *later but fewer-hop* states.
"""

from __future__ import annotations

from bisect import bisect_left
from dataclasses import dataclass

import numpy as np

from repro.graphseries.series import GraphSeries
from repro.linkstream.stream import LinkStream
from repro.temporal.reachability import HOP_INF, _expand_undirected, _stream_groups
from repro.utils.errors import ValidationError


def _forward_groups(obj: GraphSeries | LinkStream):
    """Ascending ``(time, u, v)`` hop groups for a series or a stream."""
    if isinstance(obj, GraphSeries):
        for step, u, v in obj.edge_groups():
            if not obj.directed:
                u, v = _expand_undirected(u, v)
            yield step, u, v
    elif isinstance(obj, LinkStream):
        groups = list(_stream_groups(obj))
        for time_value, u, v in reversed(groups):
            if not obj.directed:
                u, v = _expand_undirected(u, v)
            yield time_value, u, v
    else:
        raise ValidationError(f"expected GraphSeries or LinkStream, got {type(obj).__name__}")


@dataclass
class _NodeStates:
    """Pareto frontier of one node: arrivals ascending, hops descending."""

    arrivals: list
    hops: list
    parents: list  # (predecessor node, hop time) per state

    def min_hops_before(self, time_value) -> int | None:
        """Fewest hops among states arriving strictly before ``time_value``."""
        idx = bisect_left(self.arrivals, time_value)
        if idx == 0:
            return None
        return self.hops[idx - 1]

    def push(self, arrival, hop_count: int, parent) -> bool:
        """Insert a state unless dominated; returns whether it was kept."""
        if self.hops and self.hops[-1] <= hop_count:
            return False  # an earlier-or-equal arrival already does better
        self.arrivals.append(arrival)
        self.hops.append(hop_count)
        self.parents.append(parent)
        return True

    def state_with_hops(self, hop_count: int) -> int:
        """Index of the (unique) state with exactly ``hop_count`` hops."""
        # hops is strictly decreasing: binary search on the negated list.
        lo, hi = 0, len(self.hops) - 1
        while lo <= hi:
            mid = (lo + hi) // 2
            if self.hops[mid] == hop_count:
                return mid
            if self.hops[mid] > hop_count:
                lo = mid + 1
            else:
                hi = mid - 1
        raise ValidationError(f"no state with {hop_count} hops")


def _scan_states(
    obj: GraphSeries | LinkStream,
    source: int,
    depart_time: float,
) -> list[_NodeStates]:
    """Build every node's Pareto (arrival, hops) frontier from one departure."""
    if not isinstance(obj, (GraphSeries, LinkStream)):
        raise ValidationError(f"expected GraphSeries or LinkStream, got {type(obj).__name__}")
    n = obj.num_nodes
    states = [_NodeStates([], [], []) for __ in range(n)]
    for time_value, us, vs in _forward_groups(obj):
        if time_value < depart_time:
            continue
        # Collect the best candidate per target from pre-group states
        # (same-group hops must not chain — Remark 1).
        candidates: dict[int, tuple[int, int]] = {}
        for x, v in zip(us.tolist(), vs.tolist()):
            relay_hops = states[x].min_hops_before(time_value)
            if x == source:
                relay_hops = 0 if relay_hops is None else min(relay_hops, 0)
            if relay_hops is None:
                continue
            hop_count = relay_hops + 1
            if v not in candidates or hop_count < candidates[v][0]:
                candidates[v] = (hop_count, x)
        for v, (hop_count, x) in candidates.items():
            states[v].push(time_value, hop_count, (x, time_value))
    return states


def forward_earliest_arrival(
    obj: GraphSeries | LinkStream,
    source: int,
    depart_time: float,
    *,
    with_states: bool = False,
):
    """Earliest arrival (and min hops at that arrival) from one departure.

    Computes, for every node ``v``, the minimal arrival time among
    temporal paths leaving ``source`` at time >= ``depart_time``, and the
    minimum hop count among paths achieving exactly that arrival.  The
    source's own entry is its earliest *return* time (via a cycle),
    matching the backward engine's diagonal.

    Returns ``(arrival, hops)`` arrays (``inf`` / ``HOP_INF`` when
    unreachable); with ``with_states`` also the per-node Pareto
    frontiers.
    """
    states = _scan_states(obj, source, depart_time)
    n = obj.num_nodes
    arrival = np.full(n, np.inf)
    hops = np.full(n, HOP_INF, dtype=np.int64)
    for v in range(n):
        if states[v].arrivals:
            arrival[v] = states[v].arrivals[0]
            hops[v] = states[v].hops[0]
    if with_states:
        return arrival, hops, states
    return arrival, hops


def earliest_arrival_path(
    obj: GraphSeries | LinkStream,
    source: int,
    target: int,
    depart_time: float,
) -> list[tuple[int, int, float]] | None:
    """An explicit min-hop earliest-arrival temporal path, or ``None``.

    The returned path is a list of hops ``(u, v, time)`` with strictly
    increasing times, leaving ``source`` at >= ``depart_time`` and
    reaching ``target`` at its earliest possible arrival with the fewest
    hops possible for that arrival.
    """
    if source == target:
        raise ValidationError("source and target must differ")
    __, __, states = forward_earliest_arrival(
        obj, source, depart_time, with_states=True
    )
    if not states[target].arrivals:
        return None
    # Walk back: from the target's earliest-arrival state, repeatedly
    # jump to the predecessor's state with one fewer hop (unique on a
    # Pareto frontier), until the hop count reaches 1 (a direct hop from
    # the source).
    path: list[tuple[int, int, float]] = []
    node = target
    index = 0  # earliest-arrival state
    while True:
        frontier = states[node]
        hop_count = frontier.hops[index]
        x, t = frontier.parents[index]
        path.append((x, node, t))
        if hop_count == 1:
            break
        node = x
        index = states[node].state_with_hops(hop_count - 1)
    path.reverse()
    return path


def temporal_path_is_valid(
    obj: GraphSeries | LinkStream,
    path: list[tuple[int, int, float]],
) -> bool:
    """Check a hop list against Definitions 2/3: edges exist, endpoints
    chain, and times strictly increase."""
    if not path:
        return False
    hop_index: dict[float, set[tuple[int, int]]] = {}
    for time_value, us, vs in _forward_groups(obj):
        hop_index[time_value] = set(zip(us.tolist(), vs.tolist()))
    previous_head = None
    previous_time = None
    for u, v, t in path:
        if previous_head is not None and u != previous_head:
            return False
        if previous_time is not None and t <= previous_time:
            return False
        if (u, v) not in hop_index.get(t, set()):
            return False
        previous_head, previous_time = v, t
    return True
