"""Collector protocol for the reachability scan.

The backward scan discovers minimal trips in bulk (one batch per source
node per window).  Collectors consume those batches; different analyses
need different materializations (full trip lists for validation,
occupancy histograms for the saturation sweep, bare counts for metrics),
so the engine is decoupled from storage via this small protocol.

Every built-in collector implements the **shard contract** the engine's
within-Δ sharding relies on: an in-place ``merge(other)`` that absorbs a
sibling collector fed from a disjoint destination shard, and an
``empty`` property flagging a collector that has seen no trips yet (a
legitimately common state for a shard whose nodes receive nothing).
Merging disjoint shards reproduces exactly what an unsharded scan would
have collected.

The batched scan kernel feeds collectors whole *multi-source* batches —
one flattened array set per window chunk — through ``record_batch``,
with ``sources`` as an array parallel to ``targets`` (rows sorted by
source, then destination: exactly the order per-source ``record`` calls
would arrive in).  ``record_batch`` is optional: every built-in
implements it natively (vectorized, bit-identical to the equivalent
``record`` calls), and consumers without it are fed through
:func:`record_batch_fallback`, which re-slices the batch into legacy
per-source ``record`` calls — so third-party collectors keep working
unchanged under either kernel.
"""

from __future__ import annotations

from typing import Protocol

import numpy as np

from repro.temporal.trips import TripSet
from repro.utils.errors import ValidationError


class TripCollector(Protocol):
    """Anything that can consume minimal-trip batches from the scan."""

    def record(
        self,
        source: int,
        dep: float,
        targets: np.ndarray,
        arrivals: np.ndarray,
        hops: np.ndarray,
        durations: np.ndarray,
    ) -> None:
        """Consume one batch of minimal trips departing ``source`` at ``dep``."""
        ...


def record_batch_fallback(
    collector,
    sources: np.ndarray,
    dep: float,
    targets: np.ndarray,
    arrivals: np.ndarray,
    hops: np.ndarray,
    durations: np.ndarray,
) -> None:
    """Feed a multi-source batch to a ``record``-only collector.

    The adapter behind the batched kernel's consumer feed: slices the
    flattened batch back into one ``record`` call per source, in the
    order the rows arrive (sources nondecreasing — the legacy kernel's
    emission order), so a collector that never heard of ``record_batch``
    sees byte-for-byte the same call sequence the legacy kernel makes.
    """
    if not sources.size:
        return
    starts = np.flatnonzero(
        np.concatenate([[True], sources[1:] != sources[:-1]])
    )
    ends = np.append(starts[1:], sources.size)
    for lo, hi in zip(starts, ends):
        collector.record(
            int(sources[lo]),
            dep,
            targets[lo:hi],
            arrivals[lo:hi],
            hops[lo:hi],
            durations[lo:hi],
        )


def _mix64(values: np.ndarray) -> np.ndarray:
    """SplitMix64 finalizer over a ``uint64`` array (wraps mod 2**64)."""
    values = (values ^ (values >> np.uint64(30))) * np.uint64(0xBF58476D1CE4E5B9)
    values = (values ^ (values >> np.uint64(27))) * np.uint64(0x94D049BB133111EB)
    return values ^ (values >> np.uint64(31))


def trip_priorities(
    u: np.ndarray,
    v: np.ndarray,
    dep: np.ndarray,
    arr: np.ndarray,
    seed: int = 0,
) -> np.ndarray:
    """Deterministic pseudo-random ``uint64`` priority per trip.

    A pure function of the trip identity ``(u, v, dep, arr)`` and the
    seed — independent of scan order, shard layout, and platform — so
    "keep the ``k`` smallest priorities" is a well-defined sample of a
    trip *set*: taking the bottom-k of a union equals unioning bottom-k
    sketches, which is exactly what shard merging needs to stay
    bit-identical.  Time values are hashed through their ``float64`` bit
    pattern (window indices are integers, exact far beyond any feasible
    series length).
    """
    h = _mix64(u.astype(np.uint64) + np.uint64(seed & 0xFFFFFFFFFFFFFFFF))
    h = _mix64(h ^ v.astype(np.uint64))
    h = _mix64(h ^ np.asarray(dep, dtype=np.float64).view(np.uint64))
    h = _mix64(h ^ np.asarray(arr, dtype=np.float64).view(np.uint64))
    return h


class TripListCollector:
    """Materializes minimal trips into a :class:`TripSet`.

    Parameters
    ----------
    max_trips:
        Optional cap on the number of *retained* trips.  ``None`` (the
        default) keeps every trip.  With a cap, the collector keeps the
        ``max_trips`` trips with the smallest :func:`trip_priorities`
        values — a reservoir-style uniform sample that is a pure
        function of the trip set, so capped collectors fed from disjoint
        destination shards :meth:`merge` back into exactly the sample an
        unsharded capped scan retains.  Exact totals (trip count, hop
        and duration sums) keep counting *all* trips regardless of the
        cap.
    seed:
        Priority seed for the capped sample (part of the sample's
        identity; ignored without a cap).
    """

    def __init__(self, *, max_trips: int | None = None, seed: int = 0) -> None:
        if max_trips is not None and max_trips < 1:
            raise ValidationError("max_trips must be a positive integer")
        self._max_trips = max_trips
        self._seed = int(seed)
        self._u: list[np.ndarray] = []
        self._v: list[np.ndarray] = []
        self._dep: list[np.ndarray] = []
        self._arr: list[np.ndarray] = []
        self._hops: list[np.ndarray] = []
        self._dur: list[np.ndarray] = []
        self._retained = 0
        self.num_recorded = 0
        self.hops_total = 0
        self.duration_total = 0

    @property
    def max_trips(self) -> int | None:
        return self._max_trips

    @property
    def seed(self) -> int:
        return self._seed

    @property
    def empty(self) -> bool:
        """Whether the collector has seen no trips yet (shard contract)."""
        return not self.num_recorded

    def record(
        self,
        source: int,
        dep: float,
        targets: np.ndarray,
        arrivals: np.ndarray,
        hops: np.ndarray,
        durations: np.ndarray,
    ) -> None:
        count = targets.size
        if not count:
            return
        self.num_recorded += count
        self.hops_total += int(hops.sum())
        self.duration_total += durations.sum().item()
        self._u.append(np.full(count, source, dtype=np.int64))
        self._v.append(targets.copy())
        self._dep.append(np.full(count, dep))
        self._arr.append(arrivals.copy())
        self._hops.append(hops.copy())
        self._dur.append(durations.copy())
        self._retained += count
        self._maybe_compact()

    def record_batch(
        self,
        sources: np.ndarray,
        dep: float,
        targets: np.ndarray,
        arrivals: np.ndarray,
        hops: np.ndarray,
        durations: np.ndarray,
    ) -> None:
        """Consume one multi-source batch (the batched kernel's feed).

        Appends the whole batch as one chunk.  Bit-identical to the
        per-source :meth:`record` calls of
        :func:`record_batch_fallback`: the totals are integer sums and
        the retained set is a pure function of the trip multiset (the
        bottom-``max_trips`` priority sketch), so batch boundaries never
        show in :meth:`trips`.
        """
        count = targets.size
        if not count:
            return
        self.num_recorded += count
        self.hops_total += int(hops.sum())
        self.duration_total += durations.sum().item()
        self._u.append(sources.astype(np.int64, copy=True))
        self._v.append(targets.copy())
        self._dep.append(np.full(count, dep))
        self._arr.append(arrivals.copy())
        self._hops.append(hops.copy())
        self._dur.append(durations.copy())
        self._retained += count
        self._maybe_compact()

    def _maybe_compact(self, *, force: bool = False) -> None:
        """Shrink the retained rows back to the bottom-``max_trips`` of
        the priority order (total order: priority, then trip identity,
        so the retained set never depends on arrival order)."""
        cap = self._max_trips
        if cap is None or not self._retained:
            return
        if not force and self._retained <= max(2 * cap, cap + 256):
            return
        u = np.concatenate(self._u)
        v = np.concatenate(self._v)
        dep = np.concatenate(self._dep)
        arr = np.concatenate(self._arr)
        hops = np.concatenate(self._hops)
        dur = np.concatenate(self._dur)
        if u.size > cap:
            priority = trip_priorities(u, v, dep, arr, seed=self._seed)
            order = np.lexsort((arr, dep, v, u, priority))[:cap]
            u, v, dep, arr, hops, dur = (
                u[order], v[order], dep[order], arr[order], hops[order], dur[order]
            )
        self._u, self._v, self._dep = [u], [v], [dep]
        self._arr, self._hops, self._dur = [arr], [hops], [dur]
        self._retained = u.size

    def merge(self, other: "TripListCollector") -> "TripListCollector":
        """Absorb another collector's batches (in-place; returns ``self``).

        Used to reassemble shard-restricted scans: each shard sees a
        disjoint subset of the trips, so concatenating batch lists loses
        nothing.  Batch order follows merge order, not global scan order.
        Capped collectors must share ``max_trips`` and ``seed``; the
        merged retained set is the bottom-``max_trips`` of the union —
        identical to an unsharded capped collection.
        """
        if not isinstance(other, TripListCollector):
            raise ValidationError(
                f"cannot merge TripListCollector with {type(other).__name__}"
            )
        if (self._max_trips, self._seed) != (other._max_trips, other._seed):
            raise ValidationError(
                "cannot merge trip collectors with different caps or seeds: "
                f"({self._max_trips}, {self._seed}) vs "
                f"({other._max_trips}, {other._seed})"
            )
        self._u.extend(other._u)
        self._v.extend(other._v)
        self._dep.extend(other._dep)
        self._arr.extend(other._arr)
        self._hops.extend(other._hops)
        self._dur.extend(other._dur)
        self._retained += other._retained
        self.num_recorded += other.num_recorded
        self.hops_total += other.hops_total
        self.duration_total += other.duration_total
        self._maybe_compact()
        return self

    def segment_handoff(self) -> "TripListCollector":
        """Freeze this collector as a scan segment; return its successor.

        The **checkpoint contract** behind incremental scan resume: at a
        checkpointed window boundary the scan swaps in the returned
        fresh collector (same cap and seed — the sample identity) and
        keeps feeding *it*, leaving ``self`` holding exactly the trips
        of one contiguous window span.  Cached spans are later spliced
        into a resumed scan's collectors via :meth:`merge`, which reads
        but never mutates the absorbed side — so a cached segment stays
        pristine across any number of reuses.
        """
        return TripListCollector(max_trips=self._max_trips, seed=self._seed)

    def trips(self) -> TripSet:
        """Assemble the retained batches into one :class:`TripSet`."""
        self._maybe_compact(force=True)
        if not self._u or not self._retained:
            empty = np.empty(0, dtype=np.int64)
            return TripSet(empty, empty.copy(), np.empty(0), np.empty(0), empty.copy(), np.empty(0))
        return TripSet(
            np.concatenate(self._u),
            np.concatenate(self._v),
            np.concatenate(self._dep),
            np.concatenate(self._arr),
            np.concatenate(self._hops),
            np.concatenate(self._dur),
        )


class CountingCollector:
    """Counts trips and tracks hop/duration extrema without storing them."""

    def __init__(self) -> None:
        self.num_trips = 0
        self.max_hops = 0
        self.max_duration = 0.0

    @property
    def empty(self) -> bool:
        """Whether the collector has seen no trips yet (shard contract)."""
        return not self.num_trips

    def record(
        self,
        source: int,
        dep: float,
        targets: np.ndarray,
        arrivals: np.ndarray,
        hops: np.ndarray,
        durations: np.ndarray,
    ) -> None:
        if not targets.size:
            return
        self.num_trips += targets.size
        self.max_hops = max(self.max_hops, int(hops.max()))
        self.max_duration = max(self.max_duration, float(durations.max()))

    def record_batch(
        self,
        sources: np.ndarray,
        dep: float,
        targets: np.ndarray,
        arrivals: np.ndarray,
        hops: np.ndarray,
        durations: np.ndarray,
    ) -> None:
        """Consume one multi-source batch (the batched kernel's feed).

        Counts and maxima are order-free, so one batch fold is trivially
        identical to the per-source calls.
        """
        if not targets.size:
            return
        self.num_trips += targets.size
        self.max_hops = max(self.max_hops, int(hops.max()))
        self.max_duration = max(self.max_duration, float(durations.max()))

    def merge(self, other: "CountingCollector") -> "CountingCollector":
        """Absorb another collector's tallies (in-place; returns ``self``)."""
        self.num_trips += other.num_trips
        self.max_hops = max(self.max_hops, other.max_hops)
        self.max_duration = max(self.max_duration, other.max_duration)
        return self

    def segment_handoff(self) -> "CountingCollector":
        """Freeze this collector as a scan segment; return its successor
        (see :meth:`TripListCollector.segment_handoff`).  Counts and
        maxima are order-free folds, so a fresh collector is all the
        successor needs."""
        return CountingCollector()


class ChainCollector:
    """Fans every batch out to several collectors.

    :func:`~repro.temporal.reachability.scan_series` accepts a sequence
    of consumers directly (the fused measure pipeline), which is the
    preferred spelling; this wrapper remains for callers that need a
    single collector-shaped object (e.g. :func:`scan_stream` pipelines
    built around one collector slot).

    The chain satisfies the same shard contract as its children:
    :meth:`merge` zips two equal-shape chains together (child ``i``
    absorbs the other chain's child ``i``), and :attr:`empty` reports
    whether every child is empty — so a chained consumer survives
    destination sharding exactly like a bare collector.
    """

    def __init__(self, *collectors: TripCollector) -> None:
        self._collectors = collectors

    @property
    def collectors(self) -> tuple:
        """The wrapped collectors, in fan-out order."""
        return self._collectors

    @property
    def empty(self) -> bool:
        """Whether every wrapped collector is empty (shard contract).

        An empty chain (no children) is vacuously empty.  Children must
        expose ``empty`` themselves — all built-in collectors do.
        """
        return all(collector.empty for collector in self._collectors)

    def record(
        self,
        source: int,
        dep: float,
        targets: np.ndarray,
        arrivals: np.ndarray,
        hops: np.ndarray,
        durations: np.ndarray,
    ) -> None:
        for collector in self._collectors:
            collector.record(source, dep, targets, arrivals, hops, durations)

    def record_batch(
        self,
        sources: np.ndarray,
        dep: float,
        targets: np.ndarray,
        arrivals: np.ndarray,
        hops: np.ndarray,
        durations: np.ndarray,
    ) -> None:
        """Fan one multi-source batch out to every child — natively when
        the child implements ``record_batch``, through
        :func:`record_batch_fallback` (per-source ``record`` calls in
        legacy order) otherwise."""
        for collector in self._collectors:
            record_batch = getattr(collector, "record_batch", None)
            if record_batch is not None:
                record_batch(sources, dep, targets, arrivals, hops, durations)
            else:
                record_batch_fallback(
                    collector, sources, dep, targets, arrivals, hops, durations
                )

    def merge(self, other: "ChainCollector") -> "ChainCollector":
        """Absorb another chain child-by-child (in-place; returns ``self``).

        The chains must have the same length; child ``i`` merges the
        other chain's child ``i`` via its own ``merge``, which also
        enforces the children's type compatibility.
        """
        if not isinstance(other, ChainCollector):
            raise ValidationError(
                f"cannot merge ChainCollector with {type(other).__name__}"
            )
        if len(self._collectors) != len(other._collectors):
            raise ValidationError(
                f"cannot merge chains of {len(self._collectors)} and "
                f"{len(other._collectors)} collectors"
            )
        for mine, theirs in zip(self._collectors, other._collectors):
            mine.merge(theirs)
        return self

    def segment_handoff(self) -> "ChainCollector":
        """Freeze this chain as a scan segment; return a successor chain
        of the children's own handoffs (see
        :meth:`TripListCollector.segment_handoff`).  Every child must
        support the checkpoint contract itself."""
        successors = []
        for collector in self._collectors:
            handoff = getattr(collector, "segment_handoff", None)
            if handoff is None:
                raise ValidationError(
                    f"{type(collector).__name__} does not support "
                    "segment_handoff; cannot checkpoint a chain around it"
                )
            successors.append(handoff())
        return ChainCollector(*successors)
