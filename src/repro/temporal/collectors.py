"""Collector protocol for the reachability scan.

The backward scan discovers minimal trips in bulk (one batch per source
node per window).  Collectors consume those batches; different analyses
need different materializations (full trip lists for validation,
occupancy histograms for the saturation sweep, bare counts for metrics),
so the engine is decoupled from storage via this small protocol.
"""

from __future__ import annotations

from typing import Protocol

import numpy as np

from repro.temporal.trips import TripSet


class TripCollector(Protocol):
    """Anything that can consume minimal-trip batches from the scan."""

    def record(
        self,
        source: int,
        dep: float,
        targets: np.ndarray,
        arrivals: np.ndarray,
        hops: np.ndarray,
        durations: np.ndarray,
    ) -> None:
        """Consume one batch of minimal trips departing ``source`` at ``dep``."""
        ...


class TripListCollector:
    """Materializes every minimal trip into a :class:`TripSet`."""

    def __init__(self) -> None:
        self._u: list[np.ndarray] = []
        self._v: list[np.ndarray] = []
        self._dep: list[np.ndarray] = []
        self._arr: list[np.ndarray] = []
        self._hops: list[np.ndarray] = []
        self._dur: list[np.ndarray] = []

    def record(
        self,
        source: int,
        dep: float,
        targets: np.ndarray,
        arrivals: np.ndarray,
        hops: np.ndarray,
        durations: np.ndarray,
    ) -> None:
        count = targets.size
        if not count:
            return
        self._u.append(np.full(count, source, dtype=np.int64))
        self._v.append(targets.copy())
        self._dep.append(np.full(count, dep))
        self._arr.append(arrivals.copy())
        self._hops.append(hops.copy())
        self._dur.append(durations.copy())

    def merge(self, other: "TripListCollector") -> "TripListCollector":
        """Absorb another collector's batches (in-place; returns ``self``).

        Used to reassemble shard-restricted scans: each shard sees a
        disjoint subset of the trips, so concatenating batch lists loses
        nothing.  Batch order follows merge order, not global scan order.
        """
        self._u.extend(other._u)
        self._v.extend(other._v)
        self._dep.extend(other._dep)
        self._arr.extend(other._arr)
        self._hops.extend(other._hops)
        self._dur.extend(other._dur)
        return self

    def trips(self) -> TripSet:
        """Assemble the collected batches into one :class:`TripSet`."""
        if not self._u:
            empty = np.empty(0, dtype=np.int64)
            return TripSet(empty, empty.copy(), np.empty(0), np.empty(0), empty.copy(), np.empty(0))
        return TripSet(
            np.concatenate(self._u),
            np.concatenate(self._v),
            np.concatenate(self._dep),
            np.concatenate(self._arr),
            np.concatenate(self._hops),
            np.concatenate(self._dur),
        )


class CountingCollector:
    """Counts trips and tracks hop/duration extrema without storing them."""

    def __init__(self) -> None:
        self.num_trips = 0
        self.max_hops = 0
        self.max_duration = 0.0

    def record(
        self,
        source: int,
        dep: float,
        targets: np.ndarray,
        arrivals: np.ndarray,
        hops: np.ndarray,
        durations: np.ndarray,
    ) -> None:
        if not targets.size:
            return
        self.num_trips += targets.size
        self.max_hops = max(self.max_hops, int(hops.max()))
        self.max_duration = max(self.max_duration, float(durations.max()))

    def merge(self, other: "CountingCollector") -> "CountingCollector":
        """Absorb another collector's tallies (in-place; returns ``self``)."""
        self.num_trips += other.num_trips
        self.max_hops = max(self.max_hops, other.max_hops)
        self.max_duration = max(self.max_duration, other.max_duration)
        return self


class ChainCollector:
    """Fans every batch out to several collectors.

    :func:`~repro.temporal.reachability.scan_series` accepts a sequence
    of consumers directly (the fused measure pipeline), which is the
    preferred spelling; this wrapper remains for callers that need a
    single collector-shaped object (e.g. :func:`scan_stream` pipelines
    built around one collector slot).
    """

    def __init__(self, *collectors: TripCollector) -> None:
        self._collectors = collectors

    def record(
        self,
        source: int,
        dep: float,
        targets: np.ndarray,
        arrivals: np.ndarray,
        hops: np.ndarray,
        durations: np.ndarray,
    ) -> None:
        for collector in self._collectors:
            collector.record(source, dep, targets, arrivals, hops, durations)
