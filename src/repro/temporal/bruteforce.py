"""Brute-force reference implementations (test oracles).

Two independent ways to recompute what the backward engine produces:

* :func:`enumerate_temporal_paths` — exhaustive DFS over every temporal
  path (Definitions 2/3 taken literally), tractable only for toy inputs;
  the ground truth for trips, minimality and hop counts.
* :func:`bruteforce_minimal_trips` — repeated forward scans, one per
  (source, departure) pair: quadratic-ish but independent of the
  backward engine's staging logic.

The test suite cross-validates all three implementations on random
instances.  The same file holds the oracles for the engine's measure
layer: :func:`bruteforce_pair_reachability` recomputes the
``reachability`` measure's per-pair earliest-arrival sums from repeated
forward scans, and :func:`bruteforce_component_sizes` recomputes
connected-component sizes by plain BFS (independent of the union-find
behind the ``components`` measure).
"""

from __future__ import annotations

import numpy as np

from repro.graphseries.series import GraphSeries
from repro.linkstream.stream import LinkStream
from repro.temporal.paths import _forward_groups, forward_earliest_arrival
from repro.temporal.trips import TripSet
from repro.utils.errors import ValidationError


def enumerate_temporal_paths(
    obj: GraphSeries | LinkStream,
    *,
    max_hops: int = 8,
) -> list[list[tuple[int, int, float]]]:
    """Every temporal path with at most ``max_hops`` hops (DFS).

    Paths are hop lists ``[(u, v, t), ...]`` with strictly increasing
    times.  Node repetition is allowed (Definition 2 constrains only the
    chaining and the times), so the count explodes quickly — keep inputs
    tiny.
    """
    groups = list(_forward_groups(obj))
    hops_by_time = [
        (time_value, list(zip(us.tolist(), vs.tolist()))) for time_value, us, vs in groups
    ]
    total_hops = sum(len(h) for __, h in hops_by_time)
    if total_hops > 64:
        raise ValidationError(
            f"{total_hops} hops is too many for exhaustive path enumeration"
        )
    paths: list[list[tuple[int, int, float]]] = []

    def extend(path: list[tuple[int, int, float]], head: int, last_time: float) -> None:
        if len(path) >= max_hops:
            return
        for time_value, hop_list in hops_by_time:
            if time_value <= last_time:
                continue
            for u, v in hop_list:
                if u == head:
                    new_path = path + [(u, v, time_value)]
                    paths.append(new_path)
                    extend(new_path, v, time_value)

    for time_value, hop_list in hops_by_time:
        for u, v in hop_list:
            start = [(u, v, time_value)]
            paths.append(start)
            extend(start, v, time_value)
    return paths


def minimal_trips_from_paths(
    paths: list[list[tuple[int, int, float]]],
    *,
    include_self: bool = False,
) -> list[tuple[int, int, float, float, int]]:
    """Reduce an exhaustive path list to minimal trips from first principles.

    Applies Definitions 5 and 7 literally: a path from ``u`` to ``v``
    realizes the trip interval ``[t_first, t_last]``; a trip is minimal
    when no other trip interval of the same pair is strictly included in
    it; its hop count is the minimum over realizing paths.

    Returns ``(u, v, dep, arr, min_hops)`` tuples sorted for comparison.
    """
    by_pair: dict[tuple[int, int], dict[tuple[float, float], int]] = {}
    for path in paths:
        u = path[0][0]
        v = path[-1][1]
        if u == v and not include_self:
            continue
        dep, arr = path[0][2], path[-1][2]
        intervals = by_pair.setdefault((u, v), {})
        key = (dep, arr)
        hops = len(path)
        if key not in intervals or hops < intervals[key]:
            intervals[key] = hops
    trips: list[tuple[int, int, float, float, int]] = []
    for (u, v), intervals in by_pair.items():
        for (dep, arr), hops in intervals.items():
            minimal = True
            for (dep2, arr2) in intervals:
                if dep2 >= dep and arr2 <= arr and (dep2, arr2) != (dep, arr):
                    minimal = False
                    break
            if minimal:
                trips.append((u, v, dep, arr, hops))
    trips.sort()
    return trips


def bruteforce_earliest_arrival(
    obj: GraphSeries | LinkStream,
    source: int,
    depart_time: float,
    *,
    max_hops: int = 8,
) -> np.ndarray:
    """Earliest arrivals from exhaustive path enumeration (toy inputs)."""
    arrival = np.full(obj.num_nodes, np.inf)
    for path in enumerate_temporal_paths(obj, max_hops=max_hops):
        if path[0][0] == source and path[0][2] >= depart_time:
            v = path[-1][1]
            arrival[v] = min(arrival[v], path[-1][2])
    return arrival


def bruteforce_minimal_trips(
    obj: GraphSeries | LinkStream,
    *,
    include_self: bool = False,
) -> TripSet:
    """All minimal trips via repeated forward scans (mid-size test oracle).

    For each source and each candidate departure time, a trip
    ``(u, v, dep, EA)`` is minimal iff departing at the *next* candidate
    time arrives strictly later; hop counts come with the forward scan.
    """
    if isinstance(obj, GraphSeries):
        depart_values = [float(s) for s in obj.nonempty_steps()]
        duration_extra = 1.0
    elif isinstance(obj, LinkStream):
        depart_values = [t.item() for t in obj.distinct_timestamps()]
        duration_extra = 0.0
    else:
        raise ValidationError(f"expected GraphSeries or LinkStream, got {type(obj).__name__}")

    n = obj.num_nodes
    rows_u, rows_v, rows_dep, rows_arr, rows_hops = [], [], [], [], []
    for source in range(n):
        later_arrival = np.full(n, np.inf)
        for dep in reversed(depart_values):
            arrival, hops = forward_earliest_arrival(obj, source, dep)
            improved = arrival < later_arrival
            if not include_self:
                improved[source] = False
            for v in np.nonzero(improved)[0]:
                rows_u.append(source)
                rows_v.append(int(v))
                rows_dep.append(dep)
                rows_arr.append(float(arrival[v]))
                rows_hops.append(int(hops[v]))
            later_arrival = arrival
    dep_arr = np.asarray(rows_dep)
    arr_arr = np.asarray(rows_arr)
    return TripSet(
        np.asarray(rows_u, dtype=np.int64),
        np.asarray(rows_v, dtype=np.int64),
        dep_arr,
        arr_arr,
        np.asarray(rows_hops, dtype=np.int64),
        arr_arr - dep_arr + duration_extra,
    )


def bruteforce_pair_reachability(
    series: GraphSeries,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Per-pair earliest-arrival sums via one forward scan per
    ``(source, departure step)`` — the oracle for the engine's
    ``reachability`` measure.

    Returns ``(reach_steps, dist_sum, hops_sum)`` as exact ``int64``
    matrices: for every ordered pair ``(u, v)`` of distinct nodes,
    ``reach_steps[u, v]`` counts the departure steps ``t`` in
    ``[0, num_steps)`` from which ``u`` reaches ``v``; ``dist_sum``
    sums the corresponding ``arrival - t + 1`` distances (window
    counts); ``hops_sum`` sums the minimum hop counts at those earliest
    arrivals.  Diagonal entries are zero (pairs of distinct nodes).
    Quadratic-ish — small series only.
    """
    if not isinstance(series, GraphSeries):
        raise ValidationError(
            f"expected a GraphSeries, got {type(series).__name__}"
        )
    n = series.num_nodes
    reach = np.zeros((n, n), dtype=np.int64)
    dist = np.zeros((n, n), dtype=np.int64)
    hops_sum = np.zeros((n, n), dtype=np.int64)
    for source in range(n):
        for t in range(series.num_steps):
            arrival, hops = forward_earliest_arrival(series, source, float(t))
            finite = np.isfinite(arrival)
            finite[source] = False
            reach[source, finite] += 1
            dist[source, finite] += (
                arrival[finite].astype(np.int64) - t + 1
            )
            hops_sum[source, finite] += hops[finite]
    return reach, dist, hops_sum


def bruteforce_component_sizes(
    num_nodes: int, u: np.ndarray, v: np.ndarray
) -> list[int]:
    """Connected-component sizes of one edge list, by plain BFS.

    Weak connectivity (direction ignored), isolated nodes not reported —
    the same convention as
    :func:`repro.graphseries.metrics.component_sizes`, computed without
    the union-find: the oracle for the ``components`` measure.  Returns
    the sizes in descending order.
    """
    adjacency: dict[int, set[int]] = {}
    for a, b in zip(u.tolist(), v.tolist()):
        adjacency.setdefault(a, set()).add(b)
        adjacency.setdefault(b, set()).add(a)
    seen: set[int] = set()
    sizes: list[int] = []
    for start in adjacency:
        if start in seen:
            continue
        queue = [start]
        seen.add(start)
        size = 0
        while queue:
            node = queue.pop()
            size += 1
            for neighbour in sorted(adjacency[node]):
                if neighbour not in seen:
                    seen.add(neighbour)
                    queue.append(neighbour)
        sizes.append(size)
    return sorted(sizes, reverse=True)
