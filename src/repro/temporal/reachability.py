"""Backward reachability scan — the paper's ``O(nM)`` dynamic program.

Section 5 sketches the algorithm: *"a dynamic programming scheme going
backward in time: at one step, knowing all the minimal trips of the
series starting not before time k+1, the algorithm computes the minimal
trips starting exactly at time k, their duration and their minimum
number of hops."*

Concretely, the scan maintains two ``n x n`` matrices while sweeping the
windows ``k = K .. 1``:

* ``A[u, v]`` — earliest arrival at ``v`` among temporal paths leaving
  ``u`` at time >= ``k`` (the next window to be processed);
* ``H[u, v]`` — minimum hop count among the paths achieving ``A[u, v]``.

Processing window ``k``, a hop ``(u, w)`` reaches ``v`` at time ``k`` if
``w == v`` and otherwise at ``A_next[w, v]`` (the continuation departs at
``>= k+1``: two links of one window never chain — Remark 1 of the
paper).  Whenever the best candidate strictly improves on
``A_next[u, v]``, the quadruplet ``(u, v, k, arrival)`` is a **minimal
trip**: departing later arrives strictly later, and every path achieving
this arrival makes its first hop exactly at ``k``.  Candidates tying on
arrival keep the smaller hop count, so ``H`` stays exact.

Each window touches only the rows of its edge sources, with all reads
staged from a pre-window copy, giving ``O(n · |E_k|)`` work per window —
``O(nM)`` overall, matching the paper's claim.  The same core runs on a
raw link stream by treating each distinct timestamp as a window and
switching the duration convention from ``arr - dep + 1`` (window counts)
to ``arr - dep`` (Definition 4).

Scan kernels
------------
Two kernels implement the identical per-window update rule:

* ``batched`` (the default) — every source-row update within a window is
  independent by construction (continuation reads come from the
  pre-window stash, never from intra-window writes), so the kernel
  vectorizes across sources.  It keeps each ``(A, H)`` cell packed into
  a single int64 lexicographic key ``A * K + H`` for the *whole* scan
  (``K`` and the infinity sentinel are analytic scan-wide constants:
  arrivals are window indices and no minimal trip exceeds ``num_steps``
  hops), so one vectorized minimum over the packed keys — segment minima
  via size-bucketed padded gathers over the hop rows sorted by source —
  selects the earliest arrival with the fewest-hops tie-break for free.
  Direct-hop arrivals scatter in one shot and all updated rows commit
  with a single fancy-indexed write; rows unpack back into ``(A, H)``
  only where a consumer looks at them.  The staged ``(hops × width)``
  working set is chunked (whole sources per chunk) to bound memory.
  Consumers are fed in batch too: collectors via ``record_batch`` and
  accumulators via ``observe_rows`` when they implement them, through a
  per-source adapter loop otherwise — so third-party consumers keep
  working unchanged.
* ``legacy`` — the original per-source Python loop, kept selectable as
  the in-tree oracle.

Both kernels are bit-identical — same trips in the same order, same
collector states, same accumulator sums — across directed/undirected
input, ``targets`` shards, ``include_self``, and every backend, so the
kernel is *not* part of any cache key.  Select it per call
(``scan_series(series, kernel="legacy")``) or process-wide via
``REPRO_SCAN_KERNEL=batched|legacy``.  :data:`SCAN_ROWS`,
:data:`SCAN_WINDOWS` and :data:`SCAN_BATCHES` tally how much work each
kernel did (per process), next to the pass counter :data:`SCAN_COUNTS`.

One scan, many measures
-----------------------
:func:`scan_series` accepts a *set* of consumers and feeds them all from
a single backward pass, so evaluating several measures of one aggregated
series (occupancy rates, distance statistics, full trip lists) costs one
scan, not one scan per measure.  Two consumer shapes exist:

* **trip collectors** (anything with ``record(...)`` — the
  :class:`~repro.temporal.collectors.TripCollector` protocol) receive
  every minimal-trip batch the scan discovers;
* **state accumulators** (anything with ``observe_row(...)`` /
  ``close_run(...)`` — see :class:`DistanceTotals`) watch the arrival
  matrix itself and fold per-departure-step quantities in closed form.
  An accumulator may additionally define ``begin(num_nodes, num_steps,
  cols)``, called once before the backward pass with the scan's exact
  geometry (``cols`` is the target restriction, ``None`` for a full
  scan), and ``finish()``, called once after it — the hooks per-pair
  accumulators use to allocate their state and fold its tail.

:class:`DistanceTotals` is the accumulator behind the classical distance
statistics (Figure 2 bottom); it used to be hard-wired into the scan via
a ``compute_distances`` flag and is now an ordinary member of the
consumer set, mergeable across destination shards exactly like the trip
collectors.  :class:`EarliestArrivalAccumulator` keeps the same sums
*per ordered pair* instead of globally — the state behind the engine's
``reachability`` measure.

The recursion couples the *rows* of the state (row ``u`` reads the rows
of ``u``'s out-neighbours) but never its columns: ``A[u, v]`` depends
only on entries ``A[w, v]`` of the same column ``v``.  Each column — one
trip destination — is therefore an independent dynamic program, which is
what :func:`scan_series`'s ``targets=`` restriction exploits: the state
shrinks to the chosen columns, per-window work drops proportionally, and
the trips found are exactly the full scan's trips whose destination lies
in the subset.  Disjoint target subsets covering ``V`` partition the
trip set — and partition the finite arrival entries, so a restricted
:class:`DistanceTotals` holds exactly the full scan's contributions for
its columns.  Sharded scans therefore merge back bit-identically for
*every* measure (the engine's within-Δ sharding,
:mod:`repro.engine.tasks`).
"""

from __future__ import annotations

import os
from collections.abc import Iterator, Sequence
from dataclasses import dataclass

import numpy as np

from repro.graphseries.series import GraphSeries
from repro.linkstream.stream import LinkStream
from repro.utils.errors import ValidationError

#: Sentinel for "unreachable" in integer arrival matrices.  Kept far from
#: the dtype maximum so that ``+ 1`` arithmetic can never overflow.
INT_INF = np.iinfo(np.int64).max // 4
#: Sentinel for "no hop count" (unreachable entries).
HOP_INF = np.iinfo(np.int64).max // 4

#: Scan instrumentation: how many backward passes this process has run.
#: The measure-fusion tests and benches assert "one scan per Δ" against
#: these counters; they are plain tallies with no behavioural effect
#: (each worker process keeps its own).
SCAN_COUNTS = {"series": 0, "stream": 0}
#: Per-kernel work tallies (same no-behaviour caveats as
#: :data:`SCAN_COUNTS`): ``SCAN_ROWS`` counts source-row updates,
#: ``SCAN_WINDOWS`` nonempty windows processed, and ``SCAN_BATCHES``
#: state commits — one per chunk for the batched kernel, one per row for
#: the legacy loop.  Tests and benches assert how much work a scan did,
#: not just that one happened: the two kernels must agree on rows and
#: windows while ``batched`` commits in far fewer batches.
SCAN_ROWS = {"batched": 0, "legacy": 0}
SCAN_WINDOWS = {"batched": 0, "legacy": 0}
SCAN_BATCHES = {"batched": 0, "legacy": 0}

#: The kernels selectable by ``scan_series(kernel=...)`` and the
#: ``REPRO_SCAN_KERNEL`` environment variable.
SCAN_KERNELS = ("batched", "legacy")

#: Upper bound on the cells (hop rows × state width) the batched kernel
#: stages per chunk; chunks always hold whole sources.  At int64 this
#: bounds each staged continuation matrix near 8 MB.  Overridable via
#: ``REPRO_SCAN_BATCH_CELLS`` (tests force tiny budgets to exercise the
#: multi-chunk path; the value never affects results, only peak memory).
BATCH_CELL_BUDGET = 1 << 20


def _resolve_kernel(kernel: str | None) -> str:
    """Validate an explicit kernel choice or read ``REPRO_SCAN_KERNEL``."""
    if kernel is None:
        kernel = os.environ.get("REPRO_SCAN_KERNEL", "") or "batched"
    if kernel not in SCAN_KERNELS:
        raise ValidationError(
            f"unknown scan kernel {kernel!r}; expected one of {SCAN_KERNELS}"
        )
    return kernel


def _batch_cell_budget() -> int:
    """The chunk budget, env-overridable (minimum one row's width)."""
    override = os.environ.get("REPRO_SCAN_BATCH_CELLS", "")
    if override:
        try:
            budget = int(override)
        except ValueError:
            raise ValidationError(
                f"REPRO_SCAN_BATCH_CELLS must be an integer, got {override!r}"
            ) from None
        if budget < 1:
            raise ValidationError(
                f"REPRO_SCAN_BATCH_CELLS must be positive, got {budget}"
            )
        return budget
    return BATCH_CELL_BUDGET


@dataclass(frozen=True)
class DistanceStats:
    """Aggregate distance statistics over all pairs and departure steps.

    ``mean_distance_steps`` is the mean of ``d_time(u, v, t)`` (in window
    counts) over every ordered pair ``u != v`` and every departure step
    ``t`` with a finite distance; ``mean_distance_hops`` averages
    ``d_hops`` over the same support.  Multiply the former by Δ to get the
    paper's *distance in absolute time*.
    """

    mean_distance_steps: float
    mean_distance_hops: float
    reachable_fraction: float
    reachable_count: int


class DistanceTotals:
    """Accumulates the classical distance sums from a backward scan.

    The scan exposes two hooks.  :meth:`observe_row` sees every state-row
    update (the pre- and post-window arrival/hop rows of the touched
    source) and maintains the current window-state totals ``S = Σ A``,
    ``C = #finite``, ``SH = Σ H`` over finite non-diagonal entries.
    :meth:`close_run` folds those totals into the departure-step sums for
    a run of steps over which the state is constant (every step between
    two nonempty windows sees the same reachability picture), in closed
    form.

    All sums are kept as exact Python integers — every contribution is an
    integer, so the accumulated totals are associative under
    :meth:`merge` regardless of shard layout or merge order, and the
    final means divide once at :meth:`stats` time.  (The former
    float-accumulation path agreed bit-for-bit below 2**53 but was
    neither shard-stable nor exact beyond it.)

    A scan restricted to a destination subset (``targets=``) accumulates
    exactly the full scan's contributions for its columns: columns are
    independent dynamic programs and the diagonal entry ``(u, u)`` lives
    in exactly one shard.  Disjoint shards covering the node set
    therefore :meth:`merge` back into precisely the unrestricted
    accumulator.
    """

    __slots__ = ("S", "C", "SH", "dist_sum", "hops_sum", "count_sum")

    def __init__(self) -> None:
        self.S = 0
        self.C = 0
        self.SH = 0
        self.dist_sum = 0
        self.hops_sum = 0
        self.count_sum = 0

    def observe_row(
        self,
        source: int,
        step: int,
        old_A: np.ndarray,
        old_H: np.ndarray,
        new_A: np.ndarray,
        new_H: np.ndarray,
        self_col: int,
    ) -> None:
        """Fold one source-row update into the window-state totals.

        ``source`` is the node whose state row was updated and ``step``
        the window being processed (both unused here — the totals are
        global and folded run-wise through :meth:`close_run` — but part
        of the accumulator contract so per-pair accumulators can fold
        row-wise instead).  ``self_col`` is the column position of the
        row's own node (the diagonal entry, excluded from distance
        statistics), or -1 when the scan's target restriction excludes
        that node.
        """
        old_finite = old_A < INT_INF
        new_finite = new_A < INT_INF
        if self_col >= 0:
            old_finite[self_col] = False
            new_finite[self_col] = False
        self.S += int(new_A[new_finite].sum()) - int(old_A[old_finite].sum())
        self.C += int(new_finite.sum()) - int(old_finite.sum())
        self.SH += int(new_H[new_finite].sum()) - int(old_H[old_finite].sum())

    def observe_rows(
        self,
        sources: np.ndarray,
        step: int,
        old_A: np.ndarray,
        old_H: np.ndarray,
        new_A: np.ndarray,
        new_H: np.ndarray,
        self_cols: np.ndarray,
    ) -> None:
        """Vectorized :meth:`observe_row` over one batch of source rows.

        ``old_A``/``old_H``/``new_A``/``new_H`` are ``(len(sources),
        width)`` matrices, ``self_cols`` the per-row diagonal column
        (-1 where the target restriction excludes the row's node).  The
        totals are sums of exact integers, so folding the whole batch at
        once is bit-identical to per-row :meth:`observe_row` calls.
        """
        old_finite = old_A < INT_INF
        new_finite = new_A < INT_INF
        diag_rows = np.flatnonzero(self_cols >= 0)
        if diag_rows.size:
            old_finite[diag_rows, self_cols[diag_rows]] = False
            new_finite[diag_rows, self_cols[diag_rows]] = False
        self.S += int(new_A[new_finite].sum()) - int(old_A[old_finite].sum())
        self.C += int(new_finite.sum()) - int(old_finite.sum())
        self.SH += int(new_H[new_finite].sum()) - int(old_H[old_finite].sum())

    def close_run(self, t_low: int, t_high: int) -> None:
        """Fold the current state into the sums for departures in
        ``[t_low, t_high]``.

        For each departure step ``t`` in the run, every finite entry
        contributes ``A - t + 1`` to the distance-in-steps sum and ``H``
        to the hops sum; with ``S``, ``C``, ``SH`` constant across the
        run this folds into closed form.
        """
        if t_high < t_low:
            return
        run_len = t_high - t_low + 1
        t_total = (t_low + t_high) * run_len // 2
        self.dist_sum += run_len * (self.S + self.C) - self.C * t_total
        self.hops_sum += run_len * self.SH
        self.count_sum += run_len * self.C

    def merge(self, other: "DistanceTotals") -> "DistanceTotals":
        """Absorb another accumulator's sums (in-place; returns ``self``).

        The inverse of sharding a scan: accumulators fed from disjoint
        target shards of the same series sum back — all six tallies are
        exact integers — to precisely the accumulator an unrestricted
        scan would have produced.
        """
        if not isinstance(other, DistanceTotals):
            raise ValidationError(
                f"cannot merge DistanceTotals with {type(other).__name__}"
            )
        self.S += other.S
        self.C += other.C
        self.SH += other.SH
        self.dist_sum += other.dist_sum
        self.hops_sum += other.hops_sum
        self.count_sum += other.count_sum
        return self

    def segment_handoff(self) -> "DistanceTotals":
        """Freeze this accumulator as a scan segment; return its successor.

        The checkpoint contract of incremental scan resume: at a
        checkpointed window boundary the scan swaps in the returned
        accumulator, which *takes over* the live window-state totals
        ``S``/``C``/``SH`` (they describe the scan state, not this
        span's contributions) and keeps folding; ``self`` keeps only the
        departure-run sums it accumulated — exactly one window span's
        contribution, splicable via :meth:`absorb_segment`.
        """
        live = DistanceTotals()
        live.S, live.C, live.SH = self.S, self.C, self.SH
        self.S = self.C = self.SH = 0
        return live

    def absorb_segment(self, other: "DistanceTotals") -> "DistanceTotals":
        """Add a cached span's *contributions* (in-place; returns ``self``).

        Unlike :meth:`merge` — the shard rule, which also sums the
        window-state totals — splicing a contiguous window span must add
        only the departure-run sums: the span's ``S``/``C``/``SH`` are
        scan state already carried forward by the handoff chain (zero on
        stored segments), never a contribution.  Reads but never mutates
        ``other``, so cached segments survive any number of splices.
        """
        if not isinstance(other, DistanceTotals):
            raise ValidationError(
                f"cannot splice DistanceTotals with {type(other).__name__}"
            )
        self.dist_sum += other.dist_sum
        self.hops_sum += other.hops_sum
        self.count_sum += other.count_sum
        return self

    def stats(self, num_nodes: int, num_steps: int) -> DistanceStats:
        """Assemble the accumulated sums into :class:`DistanceStats`.

        ``num_nodes`` and ``num_steps`` give the support of the means —
        the *full* series geometry, so shard accumulators must be merged
        first (a lone shard would report a fraction over the wrong
        denominator).
        """
        total_possible = num_nodes * (num_nodes - 1) * num_steps
        count = self.count_sum
        return DistanceStats(
            mean_distance_steps=self.dist_sum / count if count else float("inf"),
            mean_distance_hops=self.hops_sum / count if count else float("inf"),
            reachable_fraction=count / total_possible if total_possible else 0.0,
            reachable_count=count,
        )


class EarliestArrivalAccumulator:
    """Per-pair earliest-arrival sums from a backward scan.

    The same closed-form departure-run folding as
    :class:`DistanceTotals`, kept *per ordered pair* instead of
    globally: for every source ``u`` and every scanned destination
    column ``c`` the accumulator counts the departure steps from which
    ``u`` reaches ``c`` (``reach_steps``) and sums the corresponding
    distances in window counts (``dist_sum``, each finite entry
    contributing ``A - t + 1`` per departure step ``t``) and minimum hop
    counts (``hops_sum``).  All three are exact ``int64`` matrices of
    shape ``(num_nodes, num_columns)``, column ``j`` describing
    destination node ``cols[j]``.

    Folding is **row-wise**: a state row only changes when the scan
    updates it, so each row's current values are constant over the
    departure steps between two of its updates.  :meth:`observe_row`
    folds the outgoing values over that interval in closed form — ``O(
    width)`` per row update, the same order as the update itself — and
    :meth:`finish` folds each row's final values down to departure step
    0.  (:meth:`close_run`, the global-run hook, is a deliberate no-op
    here.)  A target-restricted scan accumulates exactly the full
    scan's columns for its ``cols`` (columns are independent dynamic
    programs), so disjoint destination shards reassemble the full
    matrices by plain column scatter — the shard-merge rule of the
    engine's ``reachability`` measure.

    Diagonal entries (``cols[j] == u``) are accumulated like any other
    and must be masked by the consumer (the measure zeroes them, per the
    paper's pairs-of-distinct-nodes convention).
    """

    __slots__ = (
        "num_nodes",
        "num_steps",
        "cols",
        "reach_steps",
        "dist_sum",
        "hops_sum",
        "_A",
        "_H",
        "_row_hi",
    )

    def __init__(self) -> None:
        self.num_nodes = 0
        self.num_steps = 0
        self.cols: np.ndarray | None = None
        self.reach_steps: np.ndarray | None = None
        self.dist_sum: np.ndarray | None = None
        self.hops_sum: np.ndarray | None = None
        self._A: np.ndarray | None = None
        self._H: np.ndarray | None = None
        self._row_hi: np.ndarray | None = None

    def begin(
        self, num_nodes: int, num_steps: int, cols: np.ndarray | None
    ) -> None:
        """Allocate state for a scan of ``num_nodes`` rows over the
        destination columns ``cols`` (``None`` = the full node set)."""
        self.num_nodes = int(num_nodes)
        self.num_steps = int(num_steps)
        self.cols = (
            np.arange(num_nodes, dtype=np.int64)
            if cols is None
            else np.asarray(cols, dtype=np.int64)
        )
        width = self.cols.size
        self.reach_steps = np.zeros((num_nodes, width), dtype=np.int64)
        self.dist_sum = np.zeros((num_nodes, width), dtype=np.int64)
        self.hops_sum = np.zeros((num_nodes, width), dtype=np.int64)
        self._A = np.full((num_nodes, width), INT_INF, dtype=np.int64)
        self._H = np.full((num_nodes, width), HOP_INF, dtype=np.int64)
        #: Highest departure step whose contribution for the row's
        #: *current* values is still pending.  The initial all-infinite
        #: rows contribute nothing, so starting at the last step is safe.
        self._row_hi = np.full(num_nodes, num_steps - 1, dtype=np.int64)

    def _fold_row(
        self,
        source: int,
        A_row: np.ndarray,
        H_row: np.ndarray,
        t_low: int,
        t_high: int,
    ) -> None:
        """Fold one row's constant values over departures ``[t_low, t_high]``."""
        if t_high < t_low:
            return
        finite = A_row < INT_INF
        if not finite.any():
            return
        run_len = t_high - t_low + 1
        t_total = (t_low + t_high) * run_len // 2
        self.reach_steps[source, finite] += run_len
        self.dist_sum[source, finite] += run_len * (A_row[finite] + 1) - t_total
        self.hops_sum[source, finite] += run_len * H_row[finite]

    def observe_row(
        self,
        source: int,
        step: int,
        old_A: np.ndarray,
        old_H: np.ndarray,
        new_A: np.ndarray,
        new_H: np.ndarray,
        self_col: int,
    ) -> None:
        """Fold the outgoing row values, then mirror the update.

        The row's old values were the reachability picture for every
        departure step in ``(step, row_hi]`` — no lower window has
        touched the row in between.
        """
        k = int(step)
        self._fold_row(source, old_A, old_H, k + 1, int(self._row_hi[source]))
        self._A[source] = new_A
        self._H[source] = new_H
        self._row_hi[source] = k

    def observe_rows(
        self,
        sources: np.ndarray,
        step: int,
        old_A: np.ndarray,
        old_H: np.ndarray,
        new_A: np.ndarray,
        new_H: np.ndarray,
        self_cols: np.ndarray,
    ) -> None:
        """Vectorized :meth:`observe_row` over one batch of source rows.

        Folds every row's outgoing values over its pending departure run
        ``[step + 1, row_hi]`` in one closed-form pass (all integer
        arithmetic, so bit-identical to per-row folding), then mirrors
        the whole batch.  ``sources`` are unique within a window by
        construction, so the fancy-indexed ``+=`` never collides.
        """
        k = int(step)
        t_hi = self._row_hi[sources]
        run_len = t_hi - k  # run [k + 1, t_hi] has t_hi - k steps
        active = run_len > 0
        finite = (old_A < INT_INF) & active[:, None]
        if finite.any():
            run = run_len[:, None]
            t_total = ((k + 1 + t_hi) * run_len // 2)[:, None]
            # Mask *before* multiplying: run * INT_INF would wrap int64.
            a = np.where(finite, old_A, 0)
            h = np.where(finite, old_H, 0)
            self.reach_steps[sources] += np.where(finite, run, 0)
            self.dist_sum[sources] += np.where(
                finite, run * (a + 1) - t_total, 0
            )
            self.hops_sum[sources] += np.where(finite, run * h, 0)
        self._A[sources] = new_A
        self._H[sources] = new_H
        self._row_hi[sources] = k

    def close_run(self, t_low: int, t_high: int) -> None:
        """No-op: folding happens row-wise (see the class docstring)."""

    def finish(self) -> None:
        """Fold every row's final values over the remaining departures
        ``[0, row_hi]`` (called once by the scan, after the last window).

        The mirrored scan state is dead afterwards and is released —
        shard accumulators land in the sweep cache, which should carry
        the three result matrices, not two garbage state copies too.
        """
        if self._A is None:
            return
        for source in range(self.num_nodes):
            self._fold_row(
                source,
                self._A[source],
                self._H[source],
                0,
                int(self._row_hi[source]),
            )
        self._A = None
        self._H = None
        self._row_hi = None

    def segment_handoff(self) -> "EarliestArrivalAccumulator":
        """Freeze this accumulator as a scan segment; return its successor.

        The checkpoint contract of incremental scan resume: the
        successor takes over the *live* mirrored scan state (``_A``/
        ``_H``/``_row_hi`` — including each row's pending departure-run
        obligation) with fresh zero contribution matrices, while
        ``self`` keeps exactly the contributions folded so far: one
        window span, splicable via :meth:`absorb_segment`.  ``self`` is
        sealed (state dropped without folding — its pending runs moved
        to the successor) just like :meth:`finish` leaves a completed
        accumulator.
        """
        live = EarliestArrivalAccumulator()
        live.num_nodes = self.num_nodes
        live.num_steps = self.num_steps
        live.cols = self.cols
        live.reach_steps = np.zeros_like(self.reach_steps)
        live.dist_sum = np.zeros_like(self.dist_sum)
        live.hops_sum = np.zeros_like(self.hops_sum)
        live._A = self._A
        live._H = self._H
        live._row_hi = self._row_hi
        self._A = None
        self._H = None
        self._row_hi = None
        return live

    def absorb_segment(
        self, other: "EarliestArrivalAccumulator"
    ) -> "EarliestArrivalAccumulator":
        """Add a cached span's contribution matrices (in-place; returns
        ``self``).  Both sides must cover the same destination columns.
        Reads but never mutates ``other``, so cached segments survive
        any number of splices."""
        if not isinstance(other, EarliestArrivalAccumulator):
            raise ValidationError(
                "cannot splice EarliestArrivalAccumulator with "
                f"{type(other).__name__}"
            )
        if self.cols is None or other.cols is None or not np.array_equal(
            self.cols, other.cols
        ):
            raise ValidationError(
                "cannot splice reachability segments over different "
                "destination columns"
            )
        self.reach_steps += other.reach_steps
        self.dist_sum += other.dist_sum
        self.hops_sum += other.hops_sum
        return self


@dataclass(frozen=True)
class ScanResult:
    """Outcome of a backward scan."""

    num_trips: int
    num_steps: int


#: Default byte budget for one scan's checkpointed state copies
#: (overridable via ``REPRO_CHECKPOINT_MAX_BYTES``).  When a scan's
#: planned checkpoints would exceed it, later (deeper) captures are
#: skipped — keeping the near-end checkpoints, which are the ones a
#: future append actually settles against.
CHECKPOINT_MAX_BYTES = 256 * 1024 * 1024


def _checkpoint_max_bytes() -> int:
    """The checkpoint byte budget, env-overridable."""
    override = os.environ.get("REPRO_CHECKPOINT_MAX_BYTES", "")
    if override:
        try:
            budget = int(override)
        except ValueError:
            raise ValidationError(
                "REPRO_CHECKPOINT_MAX_BYTES must be an integer, got "
                f"{override!r}"
            ) from None
        if budget < 0:
            raise ValidationError(
                f"REPRO_CHECKPOINT_MAX_BYTES must be non-negative, got {budget}"
            )
        return budget
    return CHECKPOINT_MAX_BYTES


class ScanCheckpoint:
    """One frozen window-boundary state of a backward scan.

    Captured at the *top* of the scan iteration for ``window`` — before
    that iteration's departure-run close and before the window's hops
    apply — so it is the exact incoming state a later scan reaches when
    it arrives at the same window.  ``last_processed`` is the previous
    (higher) nonempty window already applied; a resumed scan may only
    settle here when its own previous window matches, otherwise the
    pending departure run differs.  The state is stored **canonically
    unpacked** (``A``/``H`` with the :data:`INT_INF`/:data:`HOP_INF`
    sentinels): packed keys depend on the series length through ``K``,
    which an append changes, while the canonical form is comparable
    across any two scans of the same node set — and across both kernels.
    """

    __slots__ = ("window", "last_processed", "A", "H")

    def __init__(
        self, window: int, last_processed: int, A: np.ndarray, H: np.ndarray
    ) -> None:
        A.setflags(write=False)
        H.setflags(write=False)
        self.window = int(window)
        self.last_processed = int(last_processed)
        self.A = A
        self.H = H

    @property
    def nbytes(self) -> int:
        return int(self.A.nbytes) + int(self.H.nbytes)


class CheckpointRecorder:
    """Collects bounded checkpoints and consumer spans during one scan.

    Pass one to :func:`scan_series` (``checkpoints=``) to capture resume
    state: at selected window boundaries the scan snapshots its state as
    a :class:`ScanCheckpoint` and hands every consumer off to a fresh
    successor (``segment_handoff``), so ``spans[i]`` ends up holding
    exactly the consumers' contributions from ``checkpoints[i]``'s
    window down to the next boundary (the last span runs to the end of
    the scan, terminal folds included).  ``span_trips[i]`` counts the
    trips recorded in that span.  Consumers live *before* the first
    checkpoint (the caller's own objects) are never stored — they become
    the assembled result.

    Capture points are chosen by iteration index from the scan's start
    (descending windows, so early iterations sit near the stream's end —
    where future appends settle): every power of two, plus every
    multiple of a stride ≈ √(nonempty windows), subject to the byte
    budget.
    """

    def __init__(self, *, max_bytes: int | None = None) -> None:
        self.checkpoints: list[ScanCheckpoint] = []
        self.spans: list[tuple] = []
        self.span_trips: list[int] = []
        self._max_bytes = (
            _checkpoint_max_bytes() if max_bytes is None else int(max_bytes)
        )
        self._bytes = 0
        self._stride = 1

    def begin(self, num_windows: int) -> None:
        """Size the capture stride for a scan of ``num_windows`` nonempty
        windows (keeps the checkpoint count near ``O(√num_windows)``)."""
        self._stride = max(int(np.sqrt(max(num_windows, 1))), 1)

    def wants(self, iteration: int) -> bool:
        """Whether the scan should capture before iteration ``iteration``
        (0-based from the scan's start; the incoming state of iteration 0
        is all-infinite and never worth storing)."""
        if iteration < 1:
            return False
        if iteration & (iteration - 1) == 0:
            return True
        return iteration % self._stride == 0

    def capture(
        self, window: int, last_processed: int, A: np.ndarray, H: np.ndarray
    ) -> bool:
        """Store one checkpoint; ``False`` when the byte budget is spent
        (the scan then simply keeps feeding the current span)."""
        cost = int(A.nbytes) + int(H.nbytes)
        if self._bytes + cost > self._max_bytes:
            return False
        self.checkpoints.append(ScanCheckpoint(window, last_processed, A, H))
        self._bytes += cost
        return True

    def store_span(self, consumers, trips: int) -> None:
        """Record one completed span's frozen consumers and trip count."""
        self.spans.append(tuple(consumers))
        self.span_trips.append(int(trips))

    def adopt_tail(
        self,
        checkpoints: Sequence[ScanCheckpoint],
        spans: Sequence[tuple],
        span_trips: Sequence[int],
    ) -> None:
        """Append a settled scan's reused tail (shared, immutable refs
        from the previous record) so the new record stays complete."""
        self.checkpoints.extend(checkpoints)
        self.spans.extend(spans)
        self.span_trips.extend(span_trips)
        self._bytes += sum(c.nbytes for c in checkpoints)

    @property
    def nbytes(self) -> int:
        """Bytes held by the recorded checkpoint states."""
        return self._bytes


class ResumePlan:
    """Cached checkpoints a resumed scan may settle against.

    Built from a previous scan's record over a *prefix* of the current
    series: only checkpoints strictly below ``limit`` (the straddle
    window — the first window any appended event touches) are
    candidates, since above it the two series differ.  Checkpoint
    windows descend in capture order, so the eligible ones are a
    contiguous tail slice, keeping span alignment intact.
    """

    def __init__(
        self,
        checkpoints: Sequence[ScanCheckpoint],
        spans: Sequence[tuple],
        span_trips: Sequence[int],
        *,
        limit: int,
    ) -> None:
        if not len(checkpoints) == len(spans) == len(span_trips):
            raise ValidationError(
                "resume plan needs one span and trip count per checkpoint"
            )
        first = len(checkpoints)
        for i, ckpt in enumerate(checkpoints):
            if ckpt.window < limit:
                first = i
                break
        self._checkpoints = list(checkpoints[first:])
        self._spans = list(spans[first:])
        self._span_trips = [int(t) for t in span_trips[first:]]
        self._by_window = {
            ckpt.window: i for i, ckpt in enumerate(self._checkpoints)
        }

    def __len__(self) -> int:
        return len(self._checkpoints)

    def candidate(self, window: int) -> tuple[int, ScanCheckpoint] | None:
        """The eligible checkpoint at ``window`` (with its index), if any."""
        index = self._by_window.get(int(window))
        if index is None:
            return None
        return index, self._checkpoints[index]

    def tail(
        self, index: int
    ) -> tuple[list[ScanCheckpoint], list[tuple], list[int]]:
        """Everything from checkpoint ``index`` down: the reusable tail."""
        return (
            self._checkpoints[index:],
            self._spans[index:],
            self._span_trips[index:],
        )


def _absorb_span(original, part) -> None:
    """Fold one cached span consumer into the caller's consumer.

    Accumulators splice via ``absorb_segment`` (contributions only);
    trip collectors via their shard ``merge``, which reads but never
    mutates the absorbed side — both leave the cached segment pristine.
    """
    absorb = getattr(original, "absorb_segment", None)
    if absorb is not None:
        absorb(part)
    else:
        original.merge(part)


def _require_segment_support(items) -> None:
    """Checkpointing/resume demands the handoff contract of every consumer."""
    for item in items:
        if not hasattr(item, "segment_handoff"):
            raise ValidationError(
                f"{type(item).__name__} does not support segment_handoff; "
                "checkpointed scans need every consumer to implement the "
                "checkpoint contract"
            )


def _split_consumers(collector) -> tuple[list, list]:
    """Normalize the ``collector`` argument into (trip collectors,
    state accumulators).

    Accepts ``None``, a single consumer, or a sequence of consumers.
    Trip collectors implement ``record`` (the
    :class:`~repro.temporal.collectors.TripCollector` protocol); state
    accumulators implement ``observe_row`` (:class:`DistanceTotals`).
    """
    if collector is None:
        return [], []
    items = (
        list(collector)
        if isinstance(collector, (list, tuple))
        else [collector]
    )
    trip_collectors: list = []
    accumulators: list = []
    for item in items:
        if hasattr(item, "observe_row"):
            accumulators.append(item)
        elif hasattr(item, "record"):
            trip_collectors.append(item)
        else:
            raise ValidationError(
                f"{type(item).__name__} is neither a trip collector "
                "(record) nor a state accumulator (observe_row)"
            )
    return trip_collectors, accumulators


def _expand_undirected(u: np.ndarray, v: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Turn undirected edges into both directed hops."""
    return np.concatenate([u, v]), np.concatenate([v, u])


def _process_group(
    A: np.ndarray,
    H: np.ndarray,
    time_value,
    us: np.ndarray,
    vs: np.ndarray,
    collectors: list,
    include_self: bool,
    duration_extra,
    accumulators: list,
    col_of: np.ndarray | None = None,
    cols: np.ndarray | None = None,
) -> int:
    """Apply one window's hops to the state; returns trips recorded.

    The **legacy** kernel: one Python iteration per source row, kept
    selectable (``kernel="legacy"``) as the in-tree oracle for the
    batched kernel (:func:`_process_group_batched`) and still used by
    :func:`scan_stream`.

    ``us``/``vs`` are directed hops (already expanded for undirected
    input), deduplicated within the group.  All continuation reads come
    from a pre-window stash so intra-window updates never chain.  Every
    trip collector receives every batch; every accumulator sees every
    row update.

    When the scan is restricted to a destination subset, ``cols`` holds
    the selected node ids (the state's column order) and ``col_of`` maps
    node id -> column position (-1 for excluded nodes); both are ``None``
    for a full scan.
    """
    order = np.argsort(us, kind="stable")
    us = us[order]
    vs = vs[order]
    sources, starts = np.unique(us, return_index=True)
    ends = np.append(starts[1:], us.size)
    involved = np.unique(np.concatenate([sources, vs]))
    stash_A = A[involved].copy()
    stash_H = H[involved].copy()
    trips_recorded = 0
    SCAN_WINDOWS["legacy"] += 1
    SCAN_ROWS["legacy"] += sources.size
    SCAN_BATCHES["legacy"] += sources.size

    for i in range(sources.size):
        u = int(sources[i])
        targets = vs[starts[i] : ends[i]]
        w_pos = np.searchsorted(involved, targets)
        cont_A = stash_A[w_pos]
        cont_H = stash_H[w_pos]
        if targets.size == 1:
            arr = cont_A[0].copy()
            hop = cont_H[0] + 1
        else:
            arr = cont_A.min(axis=0)
            hop = np.where(cont_A == arr[None, :], cont_H, HOP_INF).min(axis=0) + 1
        # A direct hop arrives at the current window itself, always earlier
        # than any continuation (which departs at the *next* window).
        if col_of is None:
            arr[targets] = time_value
            hop[targets] = 1
        else:
            tpos = col_of[targets]
            tpos = tpos[tpos >= 0]
            arr[tpos] = time_value
            hop[tpos] = 1

        u_pos = int(np.searchsorted(involved, u))
        old_A = stash_A[u_pos]
        old_H = stash_H[u_pos]
        improved = arr < old_A
        tie_better = (~improved) & (arr == old_A) & (hop < old_H)
        new_A = np.where(improved, arr, old_A)
        new_H = np.where(improved | tie_better, hop, old_H)
        A[u] = new_A
        H[u] = new_H

        if accumulators:
            self_col = u if col_of is None else int(col_of[u])
            for accumulator in accumulators:
                accumulator.observe_row(
                    u, time_value, old_A, old_H, new_A, new_H, self_col
                )

        record = improved.copy()
        if not include_self:
            if col_of is None:
                record[u] = False
            else:
                u_col = col_of[u]
                if u_col >= 0:
                    record[u_col] = False
        chosen = np.nonzero(record)[0]
        trips_recorded += chosen.size
        if collectors and chosen.size:
            arrivals = new_A[chosen]
            node_targets = chosen if cols is None else cols[chosen]
            hops = new_H[chosen]
            durations = arrivals - time_value + duration_extra
            for collector in collectors:
                collector.record(
                    u, time_value, node_targets, arrivals, hops, durations
                )
    return trips_recorded


def _chunk_bounds(seg_sizes: np.ndarray, max_rows: int) -> np.ndarray:
    """Greedy chunking of source segments: as many whole segments per
    chunk as fit ``max_rows`` hop rows (always at least one).

    Returns the chunk boundaries as indices into the segment list
    (length ``num_chunks + 1``, starting 0, ending ``seg_sizes.size``).
    """
    cum = np.cumsum(seg_sizes)
    bounds = [0]
    while bounds[-1] < seg_sizes.size:
        lo = bounds[-1]
        base = int(cum[lo - 1]) if lo else 0
        hi = int(np.searchsorted(cum, base + max_rows, side="right"))
        bounds.append(max(hi, lo + 1))
    return np.asarray(bounds, dtype=np.int64)


def _unpack_rows(
    P_rows: np.ndarray, K: int, a_inf: int
) -> tuple[np.ndarray, np.ndarray]:
    """Unpack packed-key rows back into ``(A, H)`` with the sentinels
    restored.  Committed infinite cells are always the canonical
    ``a_inf * K + (K - 1)`` (never the incremented ``(a_inf + 1) * K``
    candidate form, which loses every lexicographic minimum against it),
    so the fixup mask is exactly ``A == a_inf``.
    """
    A = P_rows // K
    H = P_rows - A * K
    infinite = A == a_inf
    A[infinite] = INT_INF
    H[infinite] = HOP_INF
    return A, H


def _process_group_batched(
    P: np.ndarray,
    K: int,
    a_inf: int,
    time_value,
    us: np.ndarray,
    vs: np.ndarray,
    collectors: list,
    include_self: bool,
    duration_extra,
    accumulators: list,
    col_of: np.ndarray | None = None,
    cols: np.ndarray | None = None,
) -> int:
    """Apply one window's hops to the packed state; returns trips
    recorded.  Bit-identical to :func:`_process_group`.

    ``P`` is the scan state with each ``(arrival, hop)`` pair packed
    into a single int64 lexicographic key ``A * K + H`` — ``K`` above
    every finite hop the scan can produce, ``a_inf`` above every window
    index, infinite cells at the ``a_inf * K + (K - 1)`` sentinel.  The
    state stays packed across the whole scan (:func:`scan_series` picks
    the caps analytically and unpacks rows only on demand), so a window
    costs one stash gather and one commit write instead of separate
    arrival/hop passes.

    Within a window, every source-row update is independent: all
    continuation reads come from the pre-window stash, never from
    intra-window writes.  So instead of looping sources in Python, the
    kernel sorts the hops by source once, takes every segment minimum of
    the packed keys in one pass — arrival first, hop tie-break for free
    — scatters every direct-hop arrival at once, and commits all updated
    source rows with a single fancy-indexed write.  The segment minima
    themselves use size-bucketed padded gathers reduced along the pad
    axis (a ``np.minimum.reduceat``-style segment reduction, but
    vectorizable: reduceat's scalar inner loop is several times slower
    per cell); padding repeats each segment's first row, which is
    idempotent under ``min``.  Trip collectors are fed one flattened
    batch per chunk (``record_batch`` when they implement it) and
    accumulators one row-matrix batch (``observe_rows``); consumers
    without the batch methods fall back to their per-source/per-row
    protocol in exactly the legacy order.

    The staged working set — up to ``(hops × width)`` continuation cells,
    inflated at most 50% by pad rows — is chunked over whole sources
    (:func:`_chunk_bounds`) so a dense window on a wide state never
    materializes much more than the cell budget at once.  Chunking
    cannot change results: chunks hold whole sources, and sources are
    independent.
    """
    from repro.temporal.collectors import record_batch_fallback

    order = np.argsort(us, kind="stable")
    us = us[order]
    vs = vs[order]
    sources, starts = np.unique(us, return_index=True)
    ends = np.append(starts[1:], us.size)
    involved = np.unique(np.concatenate([sources, vs]))
    # Fancy indexing already copies: this is the pre-window stash.
    stash_P = P[involved]
    width = P.shape[1]

    seg_sizes = ends - starts
    max_rows = max(_batch_cell_budget() // max(width, 1), 1)
    bounds = _chunk_bounds(seg_sizes, max_rows)
    w_pos = np.searchsorted(involved, vs)
    trips_recorded = 0
    SCAN_WINDOWS["batched"] += 1
    SCAN_ROWS["batched"] += sources.size
    SCAN_BATCHES["batched"] += bounds.size - 1

    for lo, hi in zip(bounds[:-1], bounds[1:]):
        row_lo = starts[lo]
        row_hi = ends[hi - 1]
        chunk_vs = vs[row_lo:row_hi]
        chunk_sources = sources[lo:hi]
        chunk_w_pos = w_pos[row_lo:row_hi]
        rel_starts = starts[lo:hi] - row_lo
        sizes = seg_sizes[lo:hi]
        nseg = hi - lo
        # Segment minima of the packed keys: bucket segments by size
        # class (1, 2, 3, 4, 6, 9, ... — a 1.5x progression bounds pad
        # waste at 50%), gather each bucket padded to its class width —
        # repeating the first row, min-idempotent — and reduce along the
        # pad axis in one vectorized sweep per bucket.
        P_cand = np.empty((nseg, width), dtype=np.int64)
        pending = np.ones(nseg, dtype=bool)
        k = 1
        while pending.any():
            sel = np.flatnonzero(pending & (sizes <= k))
            if sel.size:
                if k == 1:
                    P_cand[sel] = stash_P[chunk_w_pos[rel_starts[sel]]]
                else:
                    pad = np.minimum(
                        np.arange(k, dtype=np.int64), sizes[sel][:, None] - 1
                    )
                    rows_idx = rel_starts[sel][:, None] + pad
                    P_cand[sel] = stash_P[chunk_w_pos[rows_idx]].min(axis=1)
                pending[sel] = False
            k = k + 1 if k < 4 else k * 3 // 2
        # The continuation costs one more hop: with H < K packed in the
        # low digit, + 1 increments the hop component alone.  All-
        # infinite segments carry (a_inf * K + K - 1) + 1 = (a_inf + 1)
        # * K, which still sorts above every real candidate and the
        # stashed infinity — exactly legacy's never-committed
        # HOP_INF + 1.
        P_cand += 1
        # A direct hop arrives at the current window itself, always
        # earlier than any continuation (which departs at the *next*
        # window).  (source, target) pairs are unique within a window,
        # so the scatter never collides.
        seg_ids = np.repeat(np.arange(nseg, dtype=np.int64), sizes)
        direct = time_value * K + 1
        if col_of is None:
            P_cand[seg_ids, chunk_vs] = direct
        else:
            tpos = col_of[chunk_vs]
            keep = tpos >= 0
            P_cand[seg_ids[keep], tpos[keep]] = direct

        # Compare and commit entirely in key space: `candidate < floor`
        # (floor = the old keys' arrival component alone) is legacy's
        # `arr < old_A` — strict arrival improvement, the trip-record
        # condition, independent of either hop count — and the
        # lexicographic minimum with the old keys is legacy's
        # improved/tie-better selection: a tie on arrival resolves to
        # the smaller hop via the low digit.
        u_pos = np.searchsorted(involved, chunk_sources)
        old_P = stash_P[u_pos]
        old_floor = old_P // K
        old_floor *= K
        improved = P_cand < old_floor
        new_P = np.minimum(P_cand, old_P, out=P_cand)
        P[chunk_sources] = new_P

        if col_of is None:
            self_cols = chunk_sources
        else:
            self_cols = col_of[chunk_sources]
        if accumulators:
            old_A, old_H = _unpack_rows(old_P, K, a_inf)
            new_A, new_H = _unpack_rows(new_P, K, a_inf)
            for accumulator in accumulators:
                observe_rows = getattr(accumulator, "observe_rows", None)
                if observe_rows is not None:
                    observe_rows(
                        chunk_sources, time_value, old_A, old_H, new_A,
                        new_H, self_cols,
                    )
                else:
                    # Per-row adapter: third-party accumulators keep
                    # their observe_row protocol, fed in legacy
                    # (source) order.
                    for i in range(chunk_sources.size):
                        accumulator.observe_row(
                            int(chunk_sources[i]), time_value, old_A[i],
                            old_H[i], new_A[i], new_H[i],
                            int(self_cols[i]),
                        )

        record = improved  # dead after the commit: safe to mutate
        if not include_self:
            diag_rows = np.flatnonzero(self_cols >= 0)
            if diag_rows.size:
                record[diag_rows, self_cols[diag_rows]] = False
        # C-order nonzero: rows ascending, columns ascending within a
        # row — exactly the legacy source-by-source emission order.
        row_idx, col_idx = np.nonzero(record)
        trips_recorded += row_idx.size
        if collectors and row_idx.size:
            trip_sources = chunk_sources[row_idx]
            # Recorded cells improved, hence are finite: unpacking the
            # gathered keys needs no sentinel fixup.
            cells = new_P[row_idx, col_idx]
            arrivals = cells // K
            hops_out = cells - arrivals * K
            node_targets = col_idx if cols is None else cols[col_idx]
            durations = arrivals - time_value + duration_extra
            for collector in collectors:
                record_batch = getattr(collector, "record_batch", None)
                if record_batch is not None:
                    record_batch(
                        trip_sources, time_value, node_targets, arrivals,
                        hops_out, durations,
                    )
                else:
                    record_batch_fallback(
                        collector, trip_sources, time_value, node_targets,
                        arrivals, hops_out, durations,
                    )
    return trips_recorded


def _target_columns(
    targets, num_nodes: int
) -> tuple[np.ndarray | None, np.ndarray | None, int]:
    """Validate a destination restriction; returns ``(cols, col_of, width)``.

    ``cols`` is the sorted, deduplicated node-id subset (the state's
    column order), ``col_of`` the node-id -> column-position map (-1 for
    excluded nodes).  ``targets=None`` means the full node set, encoded
    as ``(None, None, num_nodes)`` so the unrestricted scan pays nothing.
    """
    if targets is None:
        return None, None, num_nodes
    cols = np.unique(np.asarray(targets, dtype=np.int64))
    if not cols.size:
        raise ValidationError("target restriction must name at least one node")
    if cols[0] < 0 or cols[-1] >= num_nodes:
        raise ValidationError(
            f"target node indices must lie in [0, {num_nodes}), "
            f"got range [{cols[0]}, {cols[-1]}]"
        )
    col_of = np.full(num_nodes, -1, dtype=np.int64)
    col_of[cols] = np.arange(cols.size, dtype=np.int64)
    return cols, col_of, int(cols.size)


def scan_series(
    series: GraphSeries,
    collector=None,
    *,
    include_self: bool = False,
    targets: np.ndarray | None = None,
    kernel: str | None = None,
    checkpoints: CheckpointRecorder | None = None,
    resume: ResumePlan | None = None,
) -> ScanResult:
    """Run the backward scan over a graph series.

    Parameters
    ----------
    series:
        The aggregated series ``G_Δ``.
    collector:
        One consumer, a sequence of consumers, or ``None`` to only count
        trips.  Trip collectors (``record``) receive every minimal trip
        found (durations in window counts, ``arr - dep + 1``); state
        accumulators (``observe_row`` — e.g. :class:`DistanceTotals` for
        the classical distance statistics) watch the arrival-matrix rows
        themselves.  All consumers are fed from this **single** backward
        pass — the primitive behind the engine's fused measure pipeline.
    include_self:
        Whether to report cyclic trips ``u -> ... -> u`` (the paper
        considers pairs of distinct nodes; off by default).  Applies to
        every trip collector of the set; distance accumulators always
        exclude the diagonal, per the definition.
    targets:
        Optional node-id subset restricting the scan to minimal trips
        *arriving* in the subset.  The arrival-matrix columns are
        independent dynamic programs (see the module docstring), so the
        restricted scan does proportionally less work and feeds every
        consumer exactly the full scan's contributions for destinations
        in ``targets`` — the primitive behind within-Δ sharding.  A
        restricted :class:`DistanceTotals` holds partial sums; merge the
        shards before calling :meth:`~DistanceTotals.stats`.
    kernel:
        ``"batched"`` (the default), ``"legacy"``, or ``None`` to read
        ``REPRO_SCAN_KERNEL``.  Both kernels are bit-identical (see the
        module docstring's *Scan kernels* section), so the choice never
        enters a cache key; ``legacy`` is the in-tree oracle the batched
        kernel is verified against.
    checkpoints:
        Optional :class:`CheckpointRecorder` capturing bounded scan-state
        snapshots plus per-span consumer contributions for later resume.
        Requires every consumer to implement ``segment_handoff``.
    resume:
        Optional :class:`ResumePlan` from a previous scan of a time
        prefix of this series.  The scan proceeds normally from the
        newest window; on reaching a cached checkpoint whose incoming
        state (and pending departure run) matches exactly — the
        **settled boundary** — it stops and splices every earlier
        window's cached contributions into the consumers instead of
        recomputing them.  The assembled consumers, the trip count, and
        any new record are bit-identical to a from-scratch scan: the
        backward DP's state at a boundary *is* its entire memory of the
        windows above it.

    Both options change only how much work is redone, never any result.
    """
    SCAN_COUNTS["series"] += 1
    batched = _resolve_kernel(kernel) == "batched"
    n = series.num_nodes
    items = (
        []
        if collector is None
        else list(collector)
        if isinstance(collector, (list, tuple))
        else [collector]
    )
    originals = list(items)
    if checkpoints is not None or resume is not None:
        _require_segment_support(items)
    collectors, accumulators = _split_consumers(items)
    cols, col_of, width = _target_columns(targets, n)
    for accumulator in accumulators:
        # Geometry hook: per-pair accumulators allocate their state from
        # the scan's exact shape (row count, destination columns).
        begin = getattr(accumulator, "begin", None)
        if begin is not None:
            begin(n, series.num_steps, cols)
    recorder = checkpoints
    if recorder is not None:
        recorder.begin(int(series.nonempty_steps().size))
    # Analytic packing caps for the batched kernel: arrivals and window
    # indices are < num_steps, and no minimal trip can take more than
    # num_steps hops (each hop departs one window later).  Both caps are
    # scan-wide constants, so the state stays packed for the whole scan.
    # Were the packed keys ever to overflow int64 (num_steps near 2**31),
    # the whole scan falls back to the legacy kernel — bit-identical by
    # contract — and is tallied as legacy work.
    a_inf = max(int(series.num_steps), 1)
    K = a_inf + 2
    if a_inf + 2 > (1 << 62) // K:
        batched = False
    if batched:
        P = np.full((n, width), a_inf * K + (K - 1), dtype=np.int64)
    else:
        A = np.full((n, width), INT_INF, dtype=np.int64)
        H = np.full((n, width), HOP_INF, dtype=np.int64)

    def canonical_state() -> tuple[np.ndarray, np.ndarray]:
        # Kernel-agnostic state copies with the canonical sentinels, the
        # form checkpoints are stored and compared in.
        if batched:
            return _unpack_rows(P, K, a_inf)
        return A.copy(), H.copy()

    num_trips = 0
    last_processed: int | None = None
    iteration = 0
    captures = 0
    span_trip_base = 0
    settled_index: int | None = None
    #: Consumer spans to fold into the caller's consumers at the end —
    #: frozen handoff spans from this scan, then (when settled) the
    #: reused cached tail, in scan order.
    assembly: list[tuple] = []

    for step, u, v in series.edge_groups(reverse=True):
        if resume is not None and last_processed is not None:
            found = resume.candidate(step)
            if found is not None and found[1].last_processed == last_processed:
                cur_A, cur_H = canonical_state()
                ckpt = found[1]
                if np.array_equal(cur_A, ckpt.A) and np.array_equal(
                    cur_H, ckpt.H
                ):
                    settled_index = found[0]
                    break
        if recorder is not None and recorder.wants(iteration):
            ck_A, ck_H = canonical_state()
            # last_processed is never None here: wants() skips iteration 0.
            if recorder.capture(step, last_processed, ck_A, ck_H):
                if captures:
                    recorder.store_span(items, num_trips - span_trip_base)
                    assembly.append(tuple(items))
                captures += 1
                span_trip_base = num_trips
                items = [item.segment_handoff() for item in items]
                collectors, accumulators = _split_consumers(items)
        if accumulators and last_processed is not None:
            # The current state (built from windows > step) is the exact
            # reachability picture for every departure step t in
            # [step + 1, last_processed]: no edges exist in between.
            for accumulator in accumulators:
                accumulator.close_run(step + 1, last_processed)
        if not series.directed:
            u, v = _expand_undirected(u, v)
        if batched:
            num_trips += _process_group_batched(
                P, K, a_inf, step, u, v, collectors, include_self, 1,
                accumulators, col_of, cols,
            )
        else:
            num_trips += _process_group(
                A, H, step, u, v, collectors, include_self, 1,
                accumulators, col_of, cols,
            )
        last_processed = step
        iteration += 1

    if settled_index is not None:
        # Settled: every window at and below the boundary is served from
        # cache.  One final handoff freezes the live consumers (sealing
        # the caller's objects when no capture happened yet — their scan
        # state moved to the discarded successor, exactly like finish
        # without re-folding runs the cached tail already covers).
        frozen = tuple(items)
        items = [item.segment_handoff() for item in items]
        if captures:
            if recorder is not None:
                recorder.store_span(frozen, num_trips - span_trip_base)
            assembly.append(frozen)
        tail_ckpts, tail_spans, tail_trips = resume.tail(settled_index)
        num_trips += sum(tail_trips)
        if recorder is not None:
            recorder.adopt_tail(tail_ckpts, tail_spans, tail_trips)
        assembly.extend(tail_spans)
    else:
        if accumulators and last_processed is not None:
            # Departures at or below the earliest nonempty window all see
            # the final state.
            for accumulator in accumulators:
                accumulator.close_run(0, last_processed)
        for accumulator in accumulators:
            # Completion hook: row-wise accumulators fold their tails here.
            finish = getattr(accumulator, "finish", None)
            if finish is not None:
                finish()
        if captures:
            if recorder is not None:
                recorder.store_span(items, num_trips - span_trip_base)
            assembly.append(tuple(items))

    for span in assembly:
        for original, part in zip(originals, span):
            _absorb_span(original, part)
    return ScanResult(num_trips=num_trips, num_steps=series.num_steps)


def series_distance_stats(
    series: GraphSeries,
    *,
    targets: np.ndarray | None = None,
) -> DistanceStats:
    """Classical distance statistics of a series in one dedicated scan.

    Convenience wrapper over ``scan_series(series, DistanceTotals())`` —
    the measure pipeline (:mod:`repro.engine.tasks`) fuses the same
    accumulator with other measures instead of paying a scan per measure.
    With ``targets`` the statistics cover only trips arriving in the
    subset (the means and fraction are still normalized by the full
    geometry — merge shard accumulators yourself when sharding).
    """
    totals = DistanceTotals()
    scan_series(series, totals, targets=targets)
    return totals.stats(series.num_nodes, series.num_steps)


def _blocked_block_cols(n: int, block_cols: int | None) -> int:
    """Resolve the destination-block width for blocked pair reachability.

    Explicit argument wins; else ``REPRO_REACH_BLOCK_COLS``; else a width
    sized so one block's working set (three int64 accumulator matrices
    plus scan state, ~48 bytes per cell) stays near 64 MiB.
    """
    if block_cols is None:
        raw = os.environ.get("REPRO_REACH_BLOCK_COLS")
        if raw is not None:
            try:
                block_cols = int(raw)
            except ValueError:
                raise ValidationError(
                    f"REPRO_REACH_BLOCK_COLS must be an integer, got {raw!r}"
                ) from None
    if block_cols is None:
        return max(1, min(n, (64 << 20) // (48 * max(n, 1))))
    if block_cols < 1:
        raise ValidationError(
            f"block_cols must be a positive integer, got {block_cols}"
        )
    return int(block_cols)


def blocked_pair_reachability(
    series: GraphSeries,
    *,
    block_cols: int | None = None,
    kernel: str | None = None,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Full per-pair reachability matrices, computed in destination blocks.

    Returns ``(reach_steps, dist_sum, hops_sum)`` — three int64
    ``(n, n)`` matrices with zero diagonals, bit-identical to
    :func:`repro.temporal.bruteforce.bruteforce_pair_reachability` — by
    chunking :class:`EarliestArrivalAccumulator` over destination-column
    blocks of ``block_cols`` columns.  The arrival-matrix columns are
    independent dynamic programs, so each block is an ordinary
    ``targets=``-restricted scan and its accumulator matrices scatter
    into the full result; peak accumulator memory drops from
    ``O(n * n)`` to ``O(n * block_cols)`` per block (the three output
    matrices still hold ``n * n``).

    ``block_cols`` defaults to ``REPRO_REACH_BLOCK_COLS`` or an
    automatic width targeting ~64 MiB of per-block working set.
    """
    n = series.num_nodes
    width = _blocked_block_cols(n, block_cols)
    reach = np.zeros((n, n), dtype=np.int64)
    dist = np.zeros((n, n), dtype=np.int64)
    hops = np.zeros((n, n), dtype=np.int64)
    for lo in range(0, n, width):
        cols = np.arange(lo, min(lo + width, n), dtype=np.int64)
        accumulator = EarliestArrivalAccumulator()
        scan_series(series, accumulator, targets=cols, kernel=kernel)
        reach[:, cols] = accumulator.reach_steps
        dist[:, cols] = accumulator.dist_sum
        hops[:, cols] = accumulator.hops_sum
    idx = np.arange(n)
    reach[idx, idx] = 0
    dist[idx, idx] = 0
    hops[idx, idx] = 0
    return reach, dist, hops


def _stream_groups(stream: LinkStream) -> Iterator[tuple[float, np.ndarray, np.ndarray]]:
    """Yield ``(timestamp, u, v)`` per distinct timestamp, latest first.

    Pairs are deduplicated within each timestamp group.
    """
    t = stream.timestamps
    u = stream.sources
    v = stream.targets
    n = stream.num_nodes
    if not t.size:
        return
    # Events are already time-sorted; find group boundaries.
    boundaries = np.flatnonzero(t[1:] != t[:-1]) + 1
    starts = np.concatenate([[0], boundaries])
    ends = np.concatenate([boundaries, [t.size]])
    for i in range(starts.size - 1, -1, -1):
        lo, hi = starts[i], ends[i]
        gu, gv = u[lo:hi], v[lo:hi]
        if hi - lo > 1:
            key = gu * n + gv
            __, keep = np.unique(key, return_index=True)
            gu, gv = gu[keep], gv[keep]
        yield t[lo].item(), gu, gv


def scan_stream(
    stream: LinkStream,
    collector=None,
    *,
    include_self: bool = False,
) -> ScanResult:
    """Run the backward scan directly on a link stream.

    Each distinct timestamp is one "window"; durations follow the
    link-stream convention ``arr - dep`` (Definition 4), so single-event
    trips have duration 0.  Used to compute the original stream's minimal
    trips and shortest transitions for the validation measures
    (Section 8).  ``collector`` accepts one trip collector or a sequence
    of them; state accumulators are series-only (the closed-form run
    folding assumes integer window indices).

    Stream scans always run the legacy per-source kernel: float
    timestamps make trip durations float, and a batched collector feed
    would sum them in a different association order than per-source
    ``record`` calls — the one case where batching is not bit-exact.
    Series scans (integer window indices, integer durations) are where
    the hot sweeps live; they default to the batched kernel.
    """
    SCAN_COUNTS["stream"] += 1
    n = stream.num_nodes
    collectors, accumulators = _split_consumers(collector)
    if accumulators:
        raise ValidationError(
            "state accumulators (distance statistics) are defined on "
            "aggregated series; scan_stream only feeds trip collectors"
        )
    float_time = stream.timestamps.dtype.kind == "f"
    if float_time:
        A = np.full((n, n), np.inf, dtype=np.float64)
        duration_extra = 0.0
    else:
        A = np.full((n, n), INT_INF, dtype=np.int64)
        duration_extra = 0
    H = np.full((n, n), HOP_INF, dtype=np.int64)
    num_trips = 0
    num_groups = 0
    for time_value, u, v in _stream_groups(stream):
        num_groups += 1
        if not stream.directed:
            u, v = _expand_undirected(u, v)
        num_trips += _process_group(
            A, H, time_value, u, v, collectors, include_self, duration_extra, []
        )
    return ScanResult(num_trips=num_trips, num_steps=num_groups)
