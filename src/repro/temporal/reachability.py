"""Backward reachability scan — the paper's ``O(nM)`` dynamic program.

Section 5 sketches the algorithm: *"a dynamic programming scheme going
backward in time: at one step, knowing all the minimal trips of the
series starting not before time k+1, the algorithm computes the minimal
trips starting exactly at time k, their duration and their minimum
number of hops."*

Concretely, the scan maintains two ``n x n`` matrices while sweeping the
windows ``k = K .. 1``:

* ``A[u, v]`` — earliest arrival at ``v`` among temporal paths leaving
  ``u`` at time >= ``k`` (the next window to be processed);
* ``H[u, v]`` — minimum hop count among the paths achieving ``A[u, v]``.

Processing window ``k``, a hop ``(u, w)`` reaches ``v`` at time ``k`` if
``w == v`` and otherwise at ``A_next[w, v]`` (the continuation departs at
``>= k+1``: two links of one window never chain — Remark 1 of the
paper).  Whenever the best candidate strictly improves on
``A_next[u, v]``, the quadruplet ``(u, v, k, arrival)`` is a **minimal
trip**: departing later arrives strictly later, and every path achieving
this arrival makes its first hop exactly at ``k``.  Candidates tying on
arrival keep the smaller hop count, so ``H`` stays exact.

Each window touches only the rows of its edge sources, with all reads
staged from a pre-window copy, giving ``O(n · |E_k|)`` work per window —
``O(nM)`` overall, matching the paper's claim.  The same core runs on a
raw link stream by treating each distinct timestamp as a window and
switching the duration convention from ``arr - dep + 1`` (window counts)
to ``arr - dep`` (Definition 4).

The recursion couples the *rows* of the state (row ``u`` reads the rows
of ``u``'s out-neighbours) but never its columns: ``A[u, v]`` depends
only on entries ``A[w, v]`` of the same column ``v``.  Each column — one
trip destination — is therefore an independent dynamic program, which is
what :func:`scan_series`'s ``targets=`` restriction exploits: the state
shrinks to the chosen columns, per-window work drops proportionally, and
the trips found are exactly the full scan's trips whose destination lies
in the subset.  Disjoint target subsets covering ``V`` partition the
trip set, so sharded scans merge back bit-identically (the engine's
within-Δ sharding, :mod:`repro.engine.tasks`).
"""

from __future__ import annotations

from collections.abc import Iterator
from dataclasses import dataclass

import numpy as np

from repro.graphseries.series import GraphSeries
from repro.linkstream.stream import LinkStream
from repro.temporal.collectors import TripCollector
from repro.utils.errors import ValidationError

#: Sentinel for "unreachable" in integer arrival matrices.  Kept far from
#: the dtype maximum so that ``+ 1`` arithmetic can never overflow.
INT_INF = np.iinfo(np.int64).max // 4
#: Sentinel for "no hop count" (unreachable entries).
HOP_INF = np.iinfo(np.int64).max // 4


@dataclass(frozen=True)
class DistanceStats:
    """Aggregate distance statistics over all pairs and departure steps.

    ``mean_distance_steps`` is the mean of ``d_time(u, v, t)`` (in window
    counts) over every ordered pair ``u != v`` and every departure step
    ``t`` with a finite distance; ``mean_distance_hops`` averages
    ``d_hops`` over the same support.  Multiply the former by Δ to get the
    paper's *distance in absolute time*.
    """

    mean_distance_steps: float
    mean_distance_hops: float
    reachable_fraction: float
    reachable_count: int


@dataclass(frozen=True)
class ScanResult:
    """Outcome of a backward scan."""

    num_trips: int
    num_steps: int
    distances: DistanceStats | None


def _expand_undirected(u: np.ndarray, v: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Turn undirected edges into both directed hops."""
    return np.concatenate([u, v]), np.concatenate([v, u])


def _process_group(
    A: np.ndarray,
    H: np.ndarray,
    time_value,
    us: np.ndarray,
    vs: np.ndarray,
    collector: TripCollector | None,
    include_self: bool,
    duration_extra,
    totals: dict | None,
    col_of: np.ndarray | None = None,
    cols: np.ndarray | None = None,
) -> int:
    """Apply one window's hops to the state; returns trips recorded.

    ``us``/``vs`` are directed hops (already expanded for undirected
    input), deduplicated within the group.  All continuation reads come
    from a pre-window stash so intra-window updates never chain.

    When the scan is restricted to a destination subset, ``cols`` holds
    the selected node ids (the state's column order) and ``col_of`` maps
    node id -> column position (-1 for excluded nodes); both are ``None``
    for a full scan.
    """
    order = np.argsort(us, kind="stable")
    us = us[order]
    vs = vs[order]
    sources, starts = np.unique(us, return_index=True)
    ends = np.append(starts[1:], us.size)
    involved = np.unique(np.concatenate([sources, vs]))
    stash_A = A[involved].copy()
    stash_H = H[involved].copy()
    trips_recorded = 0

    for i in range(sources.size):
        u = int(sources[i])
        targets = vs[starts[i] : ends[i]]
        w_pos = np.searchsorted(involved, targets)
        cont_A = stash_A[w_pos]
        cont_H = stash_H[w_pos]
        if targets.size == 1:
            arr = cont_A[0].copy()
            hop = cont_H[0] + 1
        else:
            arr = cont_A.min(axis=0)
            hop = np.where(cont_A == arr[None, :], cont_H, HOP_INF).min(axis=0) + 1
        # A direct hop arrives at the current window itself, always earlier
        # than any continuation (which departs at the *next* window).
        if col_of is None:
            arr[targets] = time_value
            hop[targets] = 1
        else:
            tpos = col_of[targets]
            tpos = tpos[tpos >= 0]
            arr[tpos] = time_value
            hop[tpos] = 1

        u_pos = int(np.searchsorted(involved, u))
        old_A = stash_A[u_pos]
        old_H = stash_H[u_pos]
        improved = arr < old_A
        tie_better = (~improved) & (arr == old_A) & (hop < old_H)
        new_A = np.where(improved, arr, old_A)
        new_H = np.where(improved | tie_better, hop, old_H)
        A[u] = new_A
        H[u] = new_H

        if totals is not None:
            old_finite = old_A < totals["inf"]
            new_finite = new_A < totals["inf"]
            old_finite[u] = False
            new_finite[u] = False
            totals["S"] += int(new_A[new_finite].sum()) - int(old_A[old_finite].sum())
            totals["C"] += int(new_finite.sum()) - int(old_finite.sum())
            totals["SH"] += int(new_H[new_finite].sum()) - int(old_H[old_finite].sum())

        record = improved.copy()
        if not include_self:
            if col_of is None:
                record[u] = False
            else:
                u_col = col_of[u]
                if u_col >= 0:
                    record[u_col] = False
        chosen = np.nonzero(record)[0]
        trips_recorded += chosen.size
        if collector is not None and chosen.size:
            arrivals = new_A[chosen]
            collector.record(
                u,
                time_value,
                chosen if cols is None else cols[chosen],
                arrivals,
                new_H[chosen],
                arrivals - time_value + duration_extra,
            )
    return trips_recorded


def _target_columns(
    targets, num_nodes: int
) -> tuple[np.ndarray | None, np.ndarray | None, int]:
    """Validate a destination restriction; returns ``(cols, col_of, width)``.

    ``cols`` is the sorted, deduplicated node-id subset (the state's
    column order), ``col_of`` the node-id -> column-position map (-1 for
    excluded nodes).  ``targets=None`` means the full node set, encoded
    as ``(None, None, num_nodes)`` so the unrestricted scan pays nothing.
    """
    if targets is None:
        return None, None, num_nodes
    cols = np.unique(np.asarray(targets, dtype=np.int64))
    if not cols.size:
        raise ValidationError("target restriction must name at least one node")
    if cols[0] < 0 or cols[-1] >= num_nodes:
        raise ValidationError(
            f"target node indices must lie in [0, {num_nodes}), "
            f"got range [{cols[0]}, {cols[-1]}]"
        )
    col_of = np.full(num_nodes, -1, dtype=np.int64)
    col_of[cols] = np.arange(cols.size, dtype=np.int64)
    return cols, col_of, int(cols.size)


def scan_series(
    series: GraphSeries,
    collector: TripCollector | None = None,
    *,
    include_self: bool = False,
    compute_distances: bool = False,
    targets: np.ndarray | None = None,
) -> ScanResult:
    """Run the backward scan over a graph series.

    Parameters
    ----------
    series:
        The aggregated series ``G_Δ``.
    collector:
        Receives every minimal trip found (durations in window counts,
        ``arr - dep + 1``).  ``None`` to only count trips.
    include_self:
        Whether to report cyclic trips ``u -> ... -> u`` (the paper
        considers pairs of distinct nodes; off by default).
    compute_distances:
        Also accumulate the classical distance statistics
        (:class:`DistanceStats`) over *all* departure steps — the
        quantities plotted in Figure 2 bottom.  Costs nothing extra per
        window beyond the touched rows, plus a closed-form fill-in for
        runs of empty windows.
    targets:
        Optional node-id subset restricting the scan to minimal trips
        *arriving* in the subset.  The arrival-matrix columns are
        independent dynamic programs (see the module docstring), so the
        restricted scan does proportionally less work and finds exactly
        the full scan's trips with destination in ``targets`` — the
        primitive behind within-Δ sharding.  Incompatible with
        ``compute_distances`` (distance statistics are defined over all
        pairs).
    """
    n = series.num_nodes
    if targets is not None and compute_distances:
        raise ValidationError(
            "distance statistics are defined over all node pairs; "
            "drop the targets restriction or compute_distances"
        )
    cols, col_of, width = _target_columns(targets, n)
    A = np.full((n, width), INT_INF, dtype=np.int64)
    H = np.full((n, width), HOP_INF, dtype=np.int64)
    totals = {"S": 0, "C": 0, "SH": 0, "inf": INT_INF} if compute_distances else None

    dist_sum = 0.0
    hops_sum = 0.0
    count_sum = 0
    num_trips = 0
    last_processed: int | None = None

    for step, u, v in series.edge_groups(reverse=True):
        if totals is not None and last_processed is not None:
            # The current state (built from windows > step) is the exact
            # reachability picture for every departure step t in
            # [step + 1, last_processed]: no edges exist in between.
            dist_sum, hops_sum, count_sum = _accumulate_run(
                totals, step + 1, last_processed, dist_sum, hops_sum, count_sum
            )
        if not series.directed:
            u, v = _expand_undirected(u, v)
        num_trips += _process_group(
            A, H, step, u, v, collector, include_self, 1, totals, col_of, cols
        )
        last_processed = step

    distances: DistanceStats | None = None
    if totals is not None:
        if last_processed is not None:
            # Departures at or below the earliest nonempty window all see
            # the final state.
            dist_sum, hops_sum, count_sum = _accumulate_run(
                totals, 0, last_processed, dist_sum, hops_sum, count_sum
            )
        total_possible = n * (n - 1) * series.num_steps
        distances = DistanceStats(
            mean_distance_steps=dist_sum / count_sum if count_sum else float("inf"),
            mean_distance_hops=hops_sum / count_sum if count_sum else float("inf"),
            reachable_fraction=count_sum / total_possible if total_possible else 0.0,
            reachable_count=count_sum,
        )
    return ScanResult(num_trips=num_trips, num_steps=series.num_steps, distances=distances)


def _accumulate_run(
    totals: dict,
    t_low: int,
    t_high: int,
    dist_sum: float,
    hops_sum: float,
    count_sum: int,
) -> tuple[float, float, int]:
    """Fold the state into the distance sums for departures in [t_low, t_high].

    For each departure step ``t`` in the run, every finite entry
    contributes ``A - t + 1`` to the distance-in-steps sum and ``H`` to
    the hops sum; with ``S = Σ A``, ``C = #finite``, ``SH = Σ H`` constant
    across the run this folds into closed form.
    """
    if t_high < t_low:
        return dist_sum, hops_sum, count_sum
    run_len = t_high - t_low + 1
    t_total = (t_low + t_high) * run_len // 2
    dist_sum += run_len * (totals["S"] + totals["C"]) - totals["C"] * t_total
    hops_sum += run_len * totals["SH"]
    count_sum += run_len * totals["C"]
    return dist_sum, hops_sum, count_sum


def _stream_groups(stream: LinkStream) -> Iterator[tuple[float, np.ndarray, np.ndarray]]:
    """Yield ``(timestamp, u, v)`` per distinct timestamp, latest first.

    Pairs are deduplicated within each timestamp group.
    """
    t = stream.timestamps
    u = stream.sources
    v = stream.targets
    n = stream.num_nodes
    if not t.size:
        return
    # Events are already time-sorted; find group boundaries.
    boundaries = np.flatnonzero(t[1:] != t[:-1]) + 1
    starts = np.concatenate([[0], boundaries])
    ends = np.concatenate([boundaries, [t.size]])
    for i in range(starts.size - 1, -1, -1):
        lo, hi = starts[i], ends[i]
        gu, gv = u[lo:hi], v[lo:hi]
        if hi - lo > 1:
            key = gu * n + gv
            __, keep = np.unique(key, return_index=True)
            gu, gv = gu[keep], gv[keep]
        yield t[lo].item(), gu, gv


def scan_stream(
    stream: LinkStream,
    collector: TripCollector | None = None,
    *,
    include_self: bool = False,
) -> ScanResult:
    """Run the backward scan directly on a link stream.

    Each distinct timestamp is one "window"; durations follow the
    link-stream convention ``arr - dep`` (Definition 4), so single-event
    trips have duration 0.  Used to compute the original stream's minimal
    trips and shortest transitions for the validation measures
    (Section 8).
    """
    n = stream.num_nodes
    float_time = stream.timestamps.dtype.kind == "f"
    if float_time:
        A = np.full((n, n), np.inf, dtype=np.float64)
        duration_extra = 0.0
    else:
        A = np.full((n, n), INT_INF, dtype=np.int64)
        duration_extra = 0
    H = np.full((n, n), HOP_INF, dtype=np.int64)
    num_trips = 0
    num_groups = 0
    for time_value, u, v in _stream_groups(stream):
        num_groups += 1
        if not stream.directed:
            u, v = _expand_undirected(u, v)
        num_trips += _process_group(
            A, H, time_value, u, v, collector, include_self, duration_extra, None
        )
    return ScanResult(num_trips=num_trips, num_steps=num_groups, distances=None)
