"""Temporal reachability engine.

Implements the paper's ``O(nM)`` backward dynamic program (Section 5)
computing earliest-arrival / minimum-hop information and emitting all
**minimal trips** (Definition 5) of a graph series or of a raw link
stream, plus reference brute-force implementations used to verify it.
"""

from repro.temporal.bruteforce import (
    bruteforce_component_sizes,
    bruteforce_earliest_arrival,
    bruteforce_minimal_trips,
    bruteforce_pair_reachability,
    enumerate_temporal_paths,
    minimal_trips_from_paths,
)
from repro.temporal.collectors import (
    ChainCollector,
    CountingCollector,
    TripCollector,
    TripListCollector,
    record_batch_fallback,
    trip_priorities,
)
from repro.temporal.paths import (
    earliest_arrival_path,
    forward_earliest_arrival,
    temporal_path_is_valid,
)
from repro.temporal.reachability import (
    SCAN_BATCHES,
    SCAN_KERNELS,
    SCAN_ROWS,
    SCAN_WINDOWS,
    CheckpointRecorder,
    DistanceStats,
    DistanceTotals,
    EarliestArrivalAccumulator,
    ResumePlan,
    ScanCheckpoint,
    ScanResult,
    blocked_pair_reachability,
    scan_series,
    scan_stream,
    series_distance_stats,
)
from repro.temporal.trips import PairTripIndex, TripSet, check_pareto

__all__ = [
    "TripSet",
    "PairTripIndex",
    "check_pareto",
    "minimal_trips_from_paths",
    "TripCollector",
    "TripListCollector",
    "CountingCollector",
    "ChainCollector",
    "trip_priorities",
    "record_batch_fallback",
    "scan_series",
    "scan_stream",
    "blocked_pair_reachability",
    "ScanCheckpoint",
    "CheckpointRecorder",
    "ResumePlan",
    "SCAN_KERNELS",
    "SCAN_ROWS",
    "SCAN_WINDOWS",
    "SCAN_BATCHES",
    "series_distance_stats",
    "ScanResult",
    "DistanceStats",
    "DistanceTotals",
    "EarliestArrivalAccumulator",
    "forward_earliest_arrival",
    "earliest_arrival_path",
    "temporal_path_is_valid",
    "bruteforce_earliest_arrival",
    "bruteforce_minimal_trips",
    "bruteforce_pair_reachability",
    "bruteforce_component_sizes",
    "enumerate_temporal_paths",
]
