"""Graph-series substrate.

Aggregating a link stream on time windows yields a *series of graphs*
(Definition 1 of the paper): one snapshot per window, whose edges are the
node pairs having at least one event inside the window.  This package
provides the compact :class:`GraphSeries` container, the aggregation
engines (disjoint windows per the paper, plus the overlapping /
cumulative / adaptive variants its related-work section surveys), and
per-snapshot graph metrics.
"""

from repro.graphseries.aggregation import (
    aggregate,
    aggregate_adaptive,
    aggregate_cached,
    aggregate_cumulative,
    aggregate_overlapping,
    clear_aggregate_cache,
    window_index,
)
from repro.graphseries.metrics import (
    SeriesMetrics,
    connected_component_sizes,
    series_metrics,
    snapshot_metrics,
)
from repro.graphseries.series import GraphSeries
from repro.graphseries.snapshot import Snapshot

__all__ = [
    "Snapshot",
    "GraphSeries",
    "aggregate",
    "aggregate_cached",
    "clear_aggregate_cache",
    "aggregate_overlapping",
    "aggregate_cumulative",
    "aggregate_adaptive",
    "window_index",
    "snapshot_metrics",
    "series_metrics",
    "SeriesMetrics",
    "connected_component_sizes",
]
