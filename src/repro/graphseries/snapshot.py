"""A single aggregated graph (one window of the series)."""

from __future__ import annotations

from collections.abc import Iterator

import numpy as np

from repro.utils.errors import AggregationError


class Snapshot:
    """A static graph on ``num_nodes`` nodes with a fixed edge list.

    Edges are stored as parallel index arrays; duplicates are not allowed
    (aggregation deduplicates).  For undirected snapshots edges are
    canonical (``u < v``).
    """

    __slots__ = ("_num_nodes", "_u", "_v", "_directed", "_adjacency")

    def __init__(
        self,
        num_nodes: int,
        u: np.ndarray,
        v: np.ndarray,
        *,
        directed: bool = True,
    ) -> None:
        self._num_nodes = int(num_nodes)
        u = np.asarray(u, dtype=np.int64)
        v = np.asarray(v, dtype=np.int64)
        if u.shape != v.shape or u.ndim != 1:
            raise AggregationError("edge arrays must be 1-d and of equal length")
        if u.size:
            if min(u.min(), v.min()) < 0 or max(u.max(), v.max()) >= num_nodes:
                raise AggregationError("edge endpoint out of range")
            if np.any(u == v):
                raise AggregationError("snapshots cannot contain self-loops")
        if not directed:
            swap = u > v
            u, v = np.where(swap, v, u), np.where(swap, u, v)
        order = np.lexsort((v, u))
        self._u = u[order]
        self._v = v[order]
        self._directed = bool(directed)
        self._adjacency: dict[int, set[int]] | None = None

    @property
    def num_nodes(self) -> int:
        return self._num_nodes

    @property
    def num_edges(self) -> int:
        return self._u.size

    @property
    def directed(self) -> bool:
        return self._directed

    @property
    def edge_sources(self) -> np.ndarray:
        return self._u

    @property
    def edge_targets(self) -> np.ndarray:
        return self._v

    def edges(self) -> Iterator[tuple[int, int]]:
        """Iterate edges as ``(u, v)`` index pairs."""
        for u, v in zip(self._u, self._v):
            yield int(u), int(v)

    def _adjacency_map(self) -> dict[int, set[int]]:
        if self._adjacency is None:
            adjacency: dict[int, set[int]] = {}
            for u, v in self.edges():
                adjacency.setdefault(u, set()).add(v)
                if not self._directed:
                    adjacency.setdefault(v, set()).add(u)
            self._adjacency = adjacency
        return self._adjacency

    def has_edge(self, u: int, v: int) -> bool:
        """Whether the snapshot contains edge ``(u, v)`` (order-free if undirected)."""
        return v in self._adjacency_map().get(u, ())

    def successors(self, u: int) -> list[int]:
        """Out-neighbors of ``u`` (all neighbors if undirected)."""
        return sorted(self._adjacency_map().get(u, ()))

    def degree_counts(self) -> np.ndarray:
        """Total degree per node (in + out for directed snapshots)."""
        counts = np.zeros(self._num_nodes, dtype=np.int64)
        np.add.at(counts, self._u, 1)
        np.add.at(counts, self._v, 1)
        return counts

    def density(self) -> float:
        """Edges over possible edges (``n(n-1)`` directed, halved otherwise)."""
        n = self._num_nodes
        if n < 2:
            return 0.0
        possible = n * (n - 1) if self._directed else n * (n - 1) // 2
        return self.num_edges / possible

    def non_isolated_count(self) -> int:
        """Number of nodes with at least one incident edge."""
        if not self.num_edges:
            return 0
        return int(np.union1d(self._u, self._v).size)

    def to_networkx(self):
        """Export to a :mod:`networkx` graph (optional dependency)."""
        import networkx as nx

        graph = nx.DiGraph() if self._directed else nx.Graph()
        graph.add_nodes_from(range(self._num_nodes))
        graph.add_edges_from(self.edges())
        return graph

    def __repr__(self) -> str:
        kind = "directed" if self._directed else "undirected"
        return f"Snapshot({kind}, {self._num_nodes} nodes, {self.num_edges} edges)"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Snapshot):
            return NotImplemented
        return (
            self._num_nodes == other._num_nodes
            and self._directed == other._directed
            and np.array_equal(self._u, other._u)
            and np.array_equal(self._v, other._v)
        )
