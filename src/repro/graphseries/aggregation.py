"""Aggregation of link streams into graph series.

:func:`aggregate` implements Definition 1 of the paper — disjoint windows
of constant length Δ, window ``k`` covering ``[origin + kΔ, origin + (k+1)Δ)``
(0-based here; the paper indexes from 1).  The paper's exact-divisor
constraint ``Δ = T/K`` is relaxed to a half-open cover, which any Δ sweep
needs in practice.

The related-work section of the paper surveys three other window
policies, all provided here for comparison studies: overlapping windows,
cumulative windows (all starting at the beginning of the study), and
adaptive variable-length windows that close once the forming snapshot
"matures" (its density stabilizes), after Soundarajan et al.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Any

import numpy as np

from repro.graphseries.series import GraphSeries
from repro.linkstream.stream import LinkStream
from repro.utils.errors import AggregationError

#: Aggregation instrumentation: how many series this process has
#: materialized from scratch (``"aggregate"``) and how many were spliced
#: from a cached prefix after an append (``"incremental"``; these do
#: *not* bump ``"aggregate"`` — the whole point is that no full
#: re-windowing happened).  Cache hits served by :func:`aggregate_cached`
#: count under neither.  The measure-fusion and incremental-append tests
#: and benches assert against these tallies; they have no behavioural
#: effect.
AGGREGATION_COUNTS = {"aggregate": 0, "incremental": 0}


def window_index(
    times: np.ndarray, delta: float, origin: float
) -> np.ndarray:
    """0-based index of the length-``delta`` window containing each time."""
    if delta <= 0:
        raise AggregationError(f"window length must be positive, got {delta}")
    return np.floor((np.asarray(times) - origin) / delta).astype(np.int64)


def _dedup_rows(
    step: np.ndarray, u: np.ndarray, v: np.ndarray
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Keep one row per distinct ``(step, u, v)``, lexsorted.

    Deduplicates column-wise rather than through a packed composite key
    ``(step * n + u) * n + v``: that key silently wraps int64 once
    ``num_steps * n**2`` exceeds 2**63, at which point distinct rows can
    collide (dropped edges) or equal rows can land apart (surviving
    duplicates).  ``np.lexsort`` + neighbor comparison needs no products,
    so it is exact for any ``num_steps``/``num_nodes``.
    """
    if not step.size:
        return step, u, v
    order = np.lexsort((v, u, step))
    step, u, v = step[order], u[order], v[order]
    keep = np.empty(step.size, dtype=bool)
    keep[0] = True
    keep[1:] = (step[1:] != step[:-1]) | (u[1:] != u[:-1]) | (v[1:] != v[:-1])
    return step[keep], u[keep], v[keep]


def aggregate(
    stream: LinkStream,
    delta: float,
    *,
    origin: float | None = None,
) -> GraphSeries:
    """Aggregate ``stream`` on disjoint windows of length ``delta``.

    Definition 1 of the paper: snapshot ``k`` holds edge ``(u, v)`` iff
    some event ``(u, v, t)`` has ``t`` inside window ``k``.

    Parameters
    ----------
    stream:
        The link stream to aggregate.
    delta:
        Window length, in the stream's time unit.  Must be positive.
    origin:
        Absolute start of window 0; defaults to ``stream.t_min``.
    """
    if not stream.num_events:
        raise AggregationError("cannot aggregate an empty stream")
    if delta <= 0:
        raise AggregationError(f"window length must be positive, got {delta}")
    AGGREGATION_COUNTS["aggregate"] += 1
    if origin is None:
        origin = stream.t_min
    elif origin > stream.t_min:
        raise AggregationError("origin must not be after the first event")
    steps = window_index(stream.timestamps, delta, origin)
    num_steps = int(steps.max()) + 1
    if not stream.directed:
        swap = stream.sources > stream.targets
        u = np.where(swap, stream.targets, stream.sources)
        v = np.where(swap, stream.sources, stream.targets)
    else:
        u, v = stream.sources, stream.targets
    steps, u, v = _dedup_rows(steps, u.copy(), v.copy())
    return GraphSeries(
        stream.num_nodes,
        num_steps,
        steps,
        u,
        v,
        directed=stream.directed,
        delta=float(delta),
        origin=float(origin),
    )


#: Small per-process memo of aggregated series, keyed on content
#: (stream fingerprint, Δ, origin), so every consumer of the same
#: ``G_Δ`` — the shards of one sweep task, a one-shot occupancy call, a
#: validation pass — shares one materialization instead of re-windowing
#: the stream.  Content keys can never serve a stale series; the bound
#: keeps a long sweep from hoarding memory.
_SERIES_MEMO: OrderedDict[tuple, Any] = OrderedDict()
#: Keys currently being aggregated, so concurrent callers wanting one Δ
#: wait for the first thread's result instead of all recomputing it.
_SERIES_IN_FLIGHT: dict[tuple, threading.Event] = {}
_SERIES_MEMO_LOCK = threading.Lock()
_SERIES_MEMO_MAX = 4


def clear_aggregate_cache() -> None:
    """Drop all memoized aggregated series (in this process).

    The memo deliberately outlives individual sweeps — validation and
    one-shot helpers re-read the series a sweep just built — and is
    bounded to the :data:`_SERIES_MEMO_MAX` most recent entries, so at
    most that many aggregated series stay pinned.  Call this to release
    the memory sooner (e.g. after analyzing a very large stream in a
    long-lived process).  Pool worker processes keep their own bounded
    memos; those die with the pool.
    """
    with _SERIES_MEMO_LOCK:
        _SERIES_MEMO.clear()


def aggregate_cached(
    stream: LinkStream,
    delta: float,
    *,
    origin: float | None = None,
) -> GraphSeries:
    """:func:`aggregate`, behind the process-wide bounded series memo.

    Bit-identical to :func:`aggregate` — a :class:`GraphSeries` is
    immutable, so sharing one instance is free correctness-wise.  Use it
    anywhere a ``(stream, Δ)`` aggregation may repeat: the engine's
    fused per-Δ tasks, their destination shards, and the one-shot
    helpers (:func:`~repro.core.occupancy.stream_occupancy_at`,
    validation, spreading fidelity) all route through here, so an
    interactive call warms the same memo a sweep reads.  Thread-safe;
    concurrent requests for one key aggregate once.
    """
    # An explicit origin equal to the default (the first event) keys the
    # same as no origin: the series are identical, and callers that
    # resolve the default themselves (validation) must still hit entries
    # warmed by callers that do not (the sweep engine).
    if origin is not None and float(origin) == stream.t_min:
        origin = None
    key = (
        stream.fingerprint(),
        repr(float(delta)),
        None if origin is None else repr(float(origin)),
    )
    with _SERIES_MEMO_LOCK:
        if key in _SERIES_MEMO:
            _SERIES_MEMO.move_to_end(key)
            return _SERIES_MEMO[key]
        pending = _SERIES_IN_FLIGHT.get(key)
        if pending is None:
            _SERIES_IN_FLIGHT[key] = threading.Event()
    if pending is not None:
        pending.wait()
        with _SERIES_MEMO_LOCK:
            series = _SERIES_MEMO.get(key)
        if series is not None:
            return series
        # The computing thread failed or the entry was evicted under
        # memory pressure; fall through and aggregate locally.
        return aggregate(stream, float(delta), origin=origin)
    try:
        series = aggregate(stream, float(delta), origin=origin)
        with _SERIES_MEMO_LOCK:
            _SERIES_MEMO[key] = series
            _SERIES_MEMO.move_to_end(key)
            while len(_SERIES_MEMO) > _SERIES_MEMO_MAX:
                _SERIES_MEMO.popitem(last=False)
        return series
    finally:
        with _SERIES_MEMO_LOCK:
            event = _SERIES_IN_FLIGHT.pop(key, None)
        if event is not None:
            event.set()


def lookup_memoized_series(
    stream: LinkStream,
    delta: float,
    *,
    origin: float | None = None,
) -> GraphSeries | None:
    """The memoized series for ``(stream, Δ, origin)``, or ``None``.

    A read-only probe of the :func:`aggregate_cached` memo that never
    aggregates on a miss — the incremental-append path uses it to decide
    between reusing a warm series and splicing one from a cached prefix.
    """
    if origin is not None and float(origin) == stream.t_min:
        origin = None
    key = (
        stream.fingerprint(),
        repr(float(delta)),
        None if origin is None else repr(float(origin)),
    )
    with _SERIES_MEMO_LOCK:
        series = _SERIES_MEMO.get(key)
        if series is not None:
            _SERIES_MEMO.move_to_end(key)
        return series


def memoize_series(
    stream: LinkStream,
    delta: float,
    series: GraphSeries,
    *,
    origin: float | None = None,
) -> None:
    """Insert a series into the :func:`aggregate_cached` memo.

    The incremental-append path materializes spliced series outside
    :func:`aggregate_cached`; registering them here under the same
    content key lets every sibling consumer (shards of one sweep task,
    validation passes) share the splice exactly as they would share a
    from-scratch aggregation.  Keys are content-derived, so a wrong
    series cannot be installed for a key without breaking the stream
    fingerprint itself.
    """
    if origin is not None and float(origin) == stream.t_min:
        origin = None
    key = (
        stream.fingerprint(),
        repr(float(delta)),
        None if origin is None else repr(float(origin)),
    )
    with _SERIES_MEMO_LOCK:
        _SERIES_MEMO[key] = series
        _SERIES_MEMO.move_to_end(key)
        while len(_SERIES_MEMO) > _SERIES_MEMO_MAX:
            _SERIES_MEMO.popitem(last=False)


def aggregate_prefix_extended(
    stream: LinkStream,
    delta: float,
    *,
    prefix_series: GraphSeries,
    prefix_events: int,
    origin: float | None = None,
) -> GraphSeries:
    """Aggregate an extended stream by splicing a cached prefix series.

    ``prefix_series`` must be the aggregation (same ``delta``/``origin``)
    of the stream's first ``prefix_events`` events — the state before an
    :meth:`~repro.linkstream.stream.LinkStream.extend`.  Appends are
    strictly time-increasing, so every window entirely before the
    *straddle window* (the window containing the first appended event)
    is unchanged: its deduplicated edge rows are taken verbatim from the
    prefix series, and only events from the straddle window onward are
    re-windowed and re-deduplicated.  The result is bit-identical to
    :func:`aggregate` on the full stream — prefix rows and suffix rows
    occupy disjoint step ranges, so their concatenation is exactly the
    full lexsorted dedup.

    Counts under ``AGGREGATION_COUNTS["incremental"]`` (not
    ``"aggregate"``).  Raises :class:`AggregationError` when the prefix
    series does not match the requested geometry (different Δ, origin,
    node count, or directedness) — callers fall back to
    :func:`aggregate`.
    """
    if delta <= 0:
        raise AggregationError(f"window length must be positive, got {delta}")
    if not 0 < prefix_events < stream.num_events:
        raise AggregationError(
            f"prefix of {prefix_events} events cannot splice a stream of "
            f"{stream.num_events}"
        )
    if origin is None:
        origin = stream.t_min
    elif origin > stream.t_min:
        raise AggregationError("origin must not be after the first event")
    if (
        prefix_series.num_nodes != stream.num_nodes
        or prefix_series.directed != stream.directed
        or prefix_series.delta != float(delta)
        or prefix_series.origin is None
        or prefix_series.origin != float(origin)
    ):
        raise AggregationError(
            "prefix series does not match the stream geometry "
            "(delta/origin/nodes/directedness)"
        )
    times = stream.timestamps
    steps_all = window_index(times, delta, origin)
    straddle = int(steps_all[prefix_events])
    # Every appended event is at or after the straddle window, and the
    # suffix boundary in the *event* arrays is where windows first reach
    # it (monotone in t) — possibly before the append point, when old
    # events share the straddle window.
    lo = int(np.searchsorted(steps_all, straddle, side="left"))
    AGGREGATION_COUNTS["incremental"] += 1
    if not stream.directed:
        swap = stream.sources[lo:] > stream.targets[lo:]
        u_suffix = np.where(swap, stream.targets[lo:], stream.sources[lo:])
        v_suffix = np.where(swap, stream.sources[lo:], stream.targets[lo:])
    else:
        u_suffix = stream.sources[lo:].copy()
        v_suffix = stream.targets[lo:].copy()
    s_suffix, u_suffix, v_suffix = _dedup_rows(
        steps_all[lo:], u_suffix, v_suffix
    )
    cut = int(np.searchsorted(prefix_series.edge_steps, straddle, side="left"))
    num_steps = int(s_suffix[-1]) + 1 if s_suffix.size else prefix_series.num_steps
    return GraphSeries(
        stream.num_nodes,
        num_steps,
        np.concatenate([prefix_series.edge_steps[:cut], s_suffix]),
        np.concatenate([prefix_series.edge_sources[:cut], u_suffix]),
        np.concatenate([prefix_series.edge_targets[:cut], v_suffix]),
        directed=stream.directed,
        delta=float(delta),
        origin=float(origin),
    )


def aggregate_overlapping(
    stream: LinkStream,
    delta: float,
    stride: float,
    *,
    origin: float | None = None,
) -> GraphSeries:
    """Aggregate on overlapping windows: window ``k`` covers
    ``[origin + k·stride, origin + k·stride + delta)``.

    With ``stride == delta`` this reduces to :func:`aggregate`.  Note that
    consecutive overlapping snapshots share events, so temporal-path
    semantics on the result double-count time; the paper's propagation
    analysis assumes disjoint windows (this variant exists for the
    window-policy comparison studies of the related work).
    """
    if not stream.num_events:
        raise AggregationError("cannot aggregate an empty stream")
    if delta <= 0 or stride <= 0:
        raise AggregationError("window length and stride must be positive")
    if stride > delta:
        raise AggregationError("stride larger than the window leaves gaps")
    if origin is None:
        origin = stream.t_min
    span_end = stream.t_max
    num_steps = int(np.floor((span_end - origin) / stride)) + 1
    x = stream.timestamps - origin
    # Event at relative time x belongs to window k iff k·stride <= x < k·stride + delta,
    # i.e. (x - delta)/stride < k <= x/stride.
    first = np.floor((x - delta) / stride).astype(np.int64) + 1
    first = np.maximum(first, 0)
    last = np.floor(x / stride).astype(np.int64)
    counts = np.maximum(last - first + 1, 0)
    steps = np.repeat(first, counts) + _ragged_offsets(counts)
    u = np.repeat(stream.sources, counts)
    v = np.repeat(stream.targets, counts)
    steps, u, v = _dedup_rows(steps, u, v)
    return GraphSeries(
        stream.num_nodes,
        num_steps,
        steps,
        u,
        v,
        directed=stream.directed,
        delta=None,
        origin=float(origin),
    )


def _ragged_offsets(counts: np.ndarray) -> np.ndarray:
    """``[0,1,..,c0-1, 0,1,..,c1-1, ...]`` for repeat-based expansion."""
    total = int(counts.sum())
    if not total:
        return np.empty(0, dtype=np.int64)
    ends = counts.cumsum()
    offsets = np.arange(total, dtype=np.int64)
    return offsets - np.repeat(ends - counts, counts)


def aggregate_cumulative(
    stream: LinkStream,
    delta: float,
    *,
    origin: float | None = None,
) -> GraphSeries:
    """Aggregate on growing windows all starting at the beginning of study.

    Window ``k`` covers ``[origin, origin + (k+1)·delta)`` — the
    "windows all start at the beginning of the period" policy of the
    related work ([21, 31, 14, 37] in the paper).  Snapshot ``k`` is the
    union of the first ``k+1`` disjoint snapshots.
    """
    disjoint = aggregate(stream, delta, origin=origin)
    num_steps = disjoint.num_steps
    num_nodes = disjoint.num_nodes
    # An edge first appearing in window k is present in windows k..K-1.
    key = disjoint.edge_sources * num_nodes + disjoint.edge_targets
    order = np.lexsort((disjoint.edge_steps, key))
    key_sorted = key[order]
    step_sorted = disjoint.edge_steps[order]
    first_of_pair = np.ones(key_sorted.size, dtype=bool)
    first_of_pair[1:] = key_sorted[1:] != key_sorted[:-1]
    first_step = step_sorted[first_of_pair]
    pair_key = key_sorted[first_of_pair]
    counts = (num_steps - first_step).astype(np.int64)
    steps = np.repeat(first_step, counts) + _ragged_offsets(counts)
    pairs = np.repeat(pair_key, counts)
    return GraphSeries(
        num_nodes,
        num_steps,
        steps,
        pairs // num_nodes,
        pairs % num_nodes,
        directed=stream.directed,
        delta=None,
        origin=disjoint.origin,
    )


def aggregate_adaptive(
    stream: LinkStream,
    *,
    growth_tolerance: float = 0.1,
    probe: float | None = None,
    max_window: float | None = None,
) -> tuple[GraphSeries, np.ndarray]:
    """Aggregate on variable-length windows that close when "mature".

    Implements the related-work idea of Soundarajan et al. (reference
    [39] of the paper): fix the start of the current window, extend its
    end, and close the window when the aggregated snapshot stops growing
    — here, when the number of *new* distinct pairs added during the last
    ``probe`` seconds falls below ``growth_tolerance`` times the pairs
    already collected (maturity = density convergence).

    Returns the variable-window series and the window boundary times
    (length ``num_steps + 1``).  Windows are half-open: window ``k``
    covers ``[boundaries[k], boundaries[k + 1])``, so the terminal
    boundary must lie strictly after the last event.  It is placed one
    timestamp :meth:`~repro.linkstream.stream.LinkStream.resolution`
    beyond ``t_max`` — not a hard-coded full second, which would be
    wildly off for float-time streams with sub-second resolution (for a
    degenerate stream with a single distinct timestamp, where no
    resolution exists, it falls back to ``t_max + 1``).
    """
    if not stream.num_events:
        raise AggregationError("cannot aggregate an empty stream")
    if not 0 < growth_tolerance < 1:
        raise AggregationError("growth_tolerance must be in (0, 1)")
    if probe is None:
        probe = max(stream.span / 1000.0, stream.resolution())
    if max_window is None:
        max_window = stream.span
    times = stream.timestamps
    num_nodes = stream.num_nodes
    pair_key = stream.sources * num_nodes + stream.targets

    boundaries = [float(stream.t_min)]
    steps = np.empty(stream.num_events, dtype=np.int64)
    current_step = 0
    window_start_idx = 0
    seen: set[int] = set()
    recent_new = 0
    probe_anchor = times[0]
    for i in range(stream.num_events):
        t = times[i]
        if t - probe_anchor >= probe:
            # End of a probe interval: close the window if growth stalled.
            mature = seen and recent_new <= growth_tolerance * len(seen)
            too_long = t - boundaries[-1] >= max_window
            if (mature or too_long) and i > window_start_idx:
                boundaries.append(float(t))
                current_step += 1
                window_start_idx = i
                seen.clear()
            recent_new = 0
            probe_anchor = t
        key = int(pair_key[i])
        if key not in seen:
            seen.add(key)
            recent_new += 1
        steps[i] = current_step
    # Close the last half-open window just past the final event, at the
    # stream's own time scale rather than an arbitrary full second.
    if stream.distinct_timestamps().size >= 2:
        terminal_pad = stream.resolution()
    else:
        terminal_pad = 1.0
    boundaries.append(float(stream.t_max) + terminal_pad)
    num_steps = current_step + 1
    dedup_steps, u, v = _dedup_rows(
        steps, stream.sources.copy(), stream.targets.copy()
    )
    series = GraphSeries(
        num_nodes,
        num_steps,
        dedup_steps,
        u,
        v,
        directed=stream.directed,
        delta=None,
        origin=float(stream.t_min),
    )
    return series, np.asarray(boundaries)
