"""The :class:`GraphSeries` container.

A series is stored *columnar and sparse*: one deduplicated edge row
``(step, u, v)`` per (window, pair), sorted by step.  Empty windows cost
nothing, which matters because the sweep visits window lengths down to
the timestamp resolution where almost all of the ``K = T/Δ`` windows are
empty.  Snapshots are materialized on demand.
"""

from __future__ import annotations

from collections.abc import Iterator

import numpy as np

from repro.graphseries.snapshot import Snapshot
from repro.utils.errors import AggregationError


class GraphSeries:
    """A time-ordered series of graphs ``(G_1, ..., G_K)`` on a shared node set.

    Parameters
    ----------
    num_nodes:
        Size of the shared node set ``V``.
    num_steps:
        Total number of windows ``K`` (including empty ones).
    step, u, v:
        Parallel arrays: edge ``(u, v)`` belongs to snapshot ``step``
        (0-based).  Rows must be unique per ``(step, u, v)``.
    delta:
        Window length used for aggregation, if the series came from
        aggregation with constant windows (``None`` otherwise).
    origin:
        Absolute time of the start of window 0 (``None`` if unknown).
    """

    __slots__ = ("_num_nodes", "_num_steps", "_step", "_u", "_v", "_directed", "_delta", "_origin", "_group_bounds")

    def __init__(
        self,
        num_nodes: int,
        num_steps: int,
        step: np.ndarray,
        u: np.ndarray,
        v: np.ndarray,
        *,
        directed: bool = True,
        delta: float | None = None,
        origin: float | None = None,
    ) -> None:
        step = np.asarray(step, dtype=np.int64)
        u = np.asarray(u, dtype=np.int64)
        v = np.asarray(v, dtype=np.int64)
        if not (step.shape == u.shape == v.shape) or step.ndim != 1:
            raise AggregationError("step, u, v must be 1-d arrays of equal length")
        if num_steps < 1:
            raise AggregationError("a series needs at least one step")
        if step.size:
            if step.min() < 0 or step.max() >= num_steps:
                raise AggregationError("step index out of range")
            if min(u.min(), v.min()) < 0 or max(u.max(), v.max()) >= num_nodes:
                raise AggregationError("edge endpoint out of range")
            if np.any(u == v):
                raise AggregationError("series snapshots cannot contain self-loops")
        if not directed:
            swap = u > v
            u, v = np.where(swap, v, u), np.where(swap, u, v)
        order = np.lexsort((v, u, step))
        self._step = step[order]
        self._u = u[order]
        self._v = v[order]
        if self._step.size > 1:
            # Compare columns directly: a packed (step * n + u) * n + v key
            # wraps int64 for large num_steps * n**2 and can then miss (or
            # invent) duplicates.  Rows are lexsorted, so duplicates are
            # adjacent.
            dup = (
                (np.diff(self._step) == 0)
                & (np.diff(self._u) == 0)
                & (np.diff(self._v) == 0)
            )
            if np.any(dup):
                raise AggregationError("duplicate (step, u, v) rows in series")
        self._num_nodes = int(num_nodes)
        self._num_steps = int(num_steps)
        self._directed = bool(directed)
        self._delta = None if delta is None else float(delta)
        self._origin = None if origin is None else float(origin)
        self._group_bounds = None

    # -- constructors ------------------------------------------------------

    @classmethod
    def from_snapshots(
        cls,
        snapshots: list[Snapshot],
        *,
        delta: float | None = None,
        origin: float | None = None,
    ) -> "GraphSeries":
        """Assemble a series from explicit :class:`Snapshot` objects."""
        if not snapshots:
            raise AggregationError("need at least one snapshot")
        num_nodes = snapshots[0].num_nodes
        directed = snapshots[0].directed
        for snap in snapshots:
            if snap.num_nodes != num_nodes or snap.directed != directed:
                raise AggregationError("snapshots must share node count and directedness")
        steps = np.concatenate(
            [np.full(s.num_edges, k, dtype=np.int64) for k, s in enumerate(snapshots)]
        ) if any(s.num_edges for s in snapshots) else np.empty(0, dtype=np.int64)
        us = np.concatenate([s.edge_sources for s in snapshots]) if steps.size else np.empty(0, dtype=np.int64)
        vs = np.concatenate([s.edge_targets for s in snapshots]) if steps.size else np.empty(0, dtype=np.int64)
        return cls(
            num_nodes,
            len(snapshots),
            steps,
            us,
            vs,
            directed=directed,
            delta=delta,
            origin=origin,
        )

    # -- accessors -----------------------------------------------------------

    @property
    def num_nodes(self) -> int:
        return self._num_nodes

    @property
    def num_steps(self) -> int:
        """Total number of windows ``K`` (empty windows included)."""
        return self._num_steps

    @property
    def num_edges_total(self) -> int:
        """``M``: the sum of edge counts over all snapshots (paper's O(nM))."""
        return self._step.size

    @property
    def directed(self) -> bool:
        return self._directed

    @property
    def delta(self) -> float | None:
        """Aggregation window length, when the series came from aggregation."""
        return self._delta

    @property
    def origin(self) -> float | None:
        """Absolute start time of window 0, when known."""
        return self._origin

    @property
    def edge_steps(self) -> np.ndarray:
        return self._step

    @property
    def edge_sources(self) -> np.ndarray:
        return self._u

    @property
    def edge_targets(self) -> np.ndarray:
        return self._v

    def __len__(self) -> int:
        return self._num_steps

    def __repr__(self) -> str:
        kind = "directed" if self._directed else "undirected"
        return (
            f"GraphSeries({kind}, {self._num_nodes} nodes, {self._num_steps} steps, "
            f"{self.num_edges_total} edges total)"
        )

    # -- group iteration -------------------------------------------------------

    def _bounds(self) -> tuple[np.ndarray, np.ndarray]:
        """Unique nonempty steps and the row offsets where each group starts."""
        if self._group_bounds is None:
            steps, starts = np.unique(self._step, return_index=True)
            self._group_bounds = (steps, starts)
        return self._group_bounds

    def nonempty_steps(self) -> np.ndarray:
        """Sorted array of window indices holding at least one edge."""
        return self._bounds()[0]

    def edge_groups(self, *, reverse: bool = False) -> Iterator[tuple[int, np.ndarray, np.ndarray]]:
        """Yield ``(step, u_array, v_array)`` per nonempty window, in step order.

        ``reverse=True`` yields latest window first — the order the
        backward reachability sweep consumes.
        """
        steps, starts = self._bounds()
        ends = np.append(starts[1:], self._step.size)
        indices = range(steps.size - 1, -1, -1) if reverse else range(steps.size)
        for i in indices:
            yield int(steps[i]), self._u[starts[i] : ends[i]], self._v[starts[i] : ends[i]]

    def snapshot(self, step: int) -> Snapshot:
        """Materialize window ``step`` as a :class:`Snapshot` (may be empty)."""
        if not 0 <= step < self._num_steps:
            raise AggregationError(f"step {step} out of range [0, {self._num_steps})")
        steps, starts = self._bounds()
        pos = np.searchsorted(steps, step)
        if pos == steps.size or steps[pos] != step:
            empty = np.empty(0, dtype=np.int64)
            return Snapshot(self._num_nodes, empty, empty, directed=self._directed)
        end = starts[pos + 1] if pos + 1 < steps.size else self._step.size
        return Snapshot(
            self._num_nodes,
            self._u[starts[pos] : end],
            self._v[starts[pos] : end],
            directed=self._directed,
        )

    def snapshots(self) -> Iterator[Snapshot]:
        """Iterate all ``K`` snapshots in order (empty ones included)."""
        for step in range(self._num_steps):
            yield self.snapshot(step)

    def window_bounds(self, step: int) -> tuple[float, float]:
        """Absolute ``[start, end)`` interval covered by window ``step``.

        Requires ``delta`` and ``origin`` (i.e. a series built by
        constant-window aggregation).
        """
        if self._delta is None or self._origin is None:
            raise AggregationError("series has no constant window geometry")
        start = self._origin + step * self._delta
        return start, start + self._delta
