"""Per-snapshot and per-series graph metrics.

These are the "classical parameters" of Section 3 of the paper (Figure 2):
density, degree, number of non-isolated vertices, size of the largest
connected component.  The paper shows they vary *smoothly* with the
aggregation period — which is why a dedicated method (occupancy) is
needed to find the saturation scale.

Snapshot means are taken over **nonempty** snapshots, matching the
magnitudes the paper reports at small Δ (a mean over the millions of
empty 1-second windows would be dominated by zeros).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.graphseries.series import GraphSeries
from repro.graphseries.snapshot import Snapshot


def _component_sizes_from_edges(
    num_nodes: int, u: np.ndarray, v: np.ndarray
) -> np.ndarray:
    """Sizes of connected components touched by the given edges.

    Direction is ignored (weak connectivity).  Isolated nodes are not
    reported — the caller decides whether singletons matter.
    """
    if not u.size:
        return np.empty(0, dtype=np.int64)
    involved = np.union1d(u, v)
    local = np.searchsorted(involved, np.concatenate([u, v]))
    lu, lv = local[: u.size], local[u.size :]
    parent = np.arange(involved.size, dtype=np.int64)

    def find(x: int) -> int:
        root = x
        while parent[root] != root:
            root = parent[root]
        while parent[x] != root:  # path compression
            parent[x], x = root, parent[x]
        return root

    for a, b in zip(lu, lv):
        ra, rb = find(int(a)), find(int(b))
        if ra != rb:
            parent[rb] = ra
    roots = np.fromiter((find(int(x)) for x in range(involved.size)), dtype=np.int64)
    counts = np.bincount(roots)
    return counts[counts > 0]


def component_sizes(num_nodes: int, u: np.ndarray, v: np.ndarray) -> np.ndarray:
    """Sizes of the weakly-connected components spanned by an edge list.

    The public face of the union-find above, for callers that hold raw
    ``(u, v)`` edge arrays (e.g. per-window iteration over a series)
    rather than a :class:`Snapshot`.  Isolated nodes are not reported.
    """
    return _component_sizes_from_edges(num_nodes, u, v)


def connected_component_sizes(snapshot: Snapshot, *, include_isolated: bool = False) -> np.ndarray:
    """Sizes of the snapshot's (weakly) connected components, descending.

    With ``include_isolated`` each edge-free node counts as a size-1
    component.
    """
    sizes = _component_sizes_from_edges(
        snapshot.num_nodes, snapshot.edge_sources, snapshot.edge_targets
    )
    if include_isolated:
        isolated = snapshot.num_nodes - snapshot.non_isolated_count()
        if isolated:
            sizes = np.concatenate([sizes, np.ones(isolated, dtype=np.int64)])
    return np.sort(sizes)[::-1]


def snapshot_metrics(snapshot: Snapshot) -> dict[str, float]:
    """Classical parameters of a single snapshot."""
    sizes = _component_sizes_from_edges(
        snapshot.num_nodes, snapshot.edge_sources, snapshot.edge_targets
    )
    return {
        "num_edges": float(snapshot.num_edges),
        "density": snapshot.density(),
        "mean_degree": float(snapshot.degree_counts().mean()) if snapshot.num_nodes else 0.0,
        "non_isolated": float(snapshot.non_isolated_count()),
        "largest_component": float(sizes.max()) if sizes.size else 0.0,
        "num_components": float(sizes.size),
    }


@dataclass(frozen=True)
class SeriesMetrics:
    """Means of the classical parameters over the nonempty snapshots."""

    num_steps: int
    num_nonempty_steps: int
    mean_density: float
    mean_degree: float
    mean_non_isolated: float
    mean_largest_component: float
    mean_edges: float

    def as_dict(self) -> dict[str, float]:
        return {
            "num_steps": self.num_steps,
            "num_nonempty_steps": self.num_nonempty_steps,
            "mean_density": self.mean_density,
            "mean_degree": self.mean_degree,
            "mean_non_isolated": self.mean_non_isolated,
            "mean_largest_component": self.mean_largest_component,
            "mean_edges": self.mean_edges,
        }


def series_metrics(series: GraphSeries) -> SeriesMetrics:
    """Classical parameters averaged over the nonempty snapshots of a series.

    This is the per-Δ measurement behind the top row of Figure 2.
    """
    n = series.num_nodes
    possible = n * (n - 1) if series.directed else n * (n - 1) // 2
    densities: list[float] = []
    non_isolated: list[int] = []
    largest: list[int] = []
    edges: list[int] = []
    for __, u, v in series.edge_groups():
        edges.append(u.size)
        densities.append(u.size / possible if possible else 0.0)
        non_isolated.append(int(np.union1d(u, v).size))
        sizes = _component_sizes_from_edges(n, u, v)
        largest.append(int(sizes.max()) if sizes.size else 0)
    count = len(edges)
    if not count:
        return SeriesMetrics(series.num_steps, 0, 0.0, 0.0, 0.0, 0.0, 0.0)
    return SeriesMetrics(
        num_steps=series.num_steps,
        num_nonempty_steps=count,
        mean_density=float(np.mean(densities)),
        mean_degree=float(2.0 * np.mean(edges) / n) if n else 0.0,
        mean_non_isolated=float(np.mean(non_isolated)),
        mean_largest_component=float(np.mean(largest)),
        mean_edges=float(np.mean(edges)),
    )
