"""ASCII line and scatter charts for terminal reports."""

from __future__ import annotations

from collections.abc import Mapping, Sequence

import numpy as np

from repro.utils.errors import ValidationError

_MARKERS = "ox+*#@%&"


def _scale(
    values: np.ndarray, low: float, high: float, size: int
) -> np.ndarray:
    if high == low:
        return np.zeros(values.size, dtype=np.int64)
    pos = (values - low) / (high - low) * (size - 1)
    return np.clip(np.round(pos).astype(np.int64), 0, size - 1)


def scatter_chart(
    series: Mapping[str, tuple[Sequence[float], Sequence[float]]],
    *,
    width: int = 72,
    height: int = 20,
    logx: bool = False,
    title: str | None = None,
    xlabel: str = "",
    ylabel: str = "",
) -> str:
    """Plot one or more ``name -> (xs, ys)`` series on a character grid.

    Finite points only; each series gets its own marker.  ``logx`` plots
    x on a logarithmic axis (the natural axis for Δ sweeps).
    """
    if not series:
        raise ValidationError("nothing to plot")
    cleaned: dict[str, tuple[np.ndarray, np.ndarray]] = {}
    for name, (xs, ys) in series.items():
        xs = np.asarray(xs, dtype=np.float64)
        ys = np.asarray(ys, dtype=np.float64)
        if xs.shape != ys.shape:
            raise ValidationError(f"series {name!r}: x and y lengths differ")
        mask = np.isfinite(xs) & np.isfinite(ys)
        if logx:
            mask &= xs > 0
        if np.any(mask):
            cleaned[name] = (xs[mask], ys[mask])
    if not cleaned:
        raise ValidationError("no finite points to plot")

    all_x = np.concatenate([xs for xs, __ in cleaned.values()])
    all_y = np.concatenate([ys for __, ys in cleaned.values()])
    if logx:
        all_x = np.log10(all_x)
    x_low, x_high = float(all_x.min()), float(all_x.max())
    y_low, y_high = float(all_y.min()), float(all_y.max())

    grid = [[" "] * width for __ in range(height)]
    for index, (name, (xs, ys)) in enumerate(cleaned.items()):
        marker = _MARKERS[index % len(_MARKERS)]
        px = _scale(np.log10(xs) if logx else xs, x_low, x_high, width)
        py = _scale(ys, y_low, y_high, height)
        for cx, cy in zip(px, py):
            grid[height - 1 - cy][cx] = marker

    lines = []
    if title:
        lines.append(title)
    y_top = f"{y_high:.3g}"
    y_bottom = f"{y_low:.3g}"
    margin = max(len(y_top), len(y_bottom)) + 1
    for row_index, row in enumerate(grid):
        if row_index == 0:
            label = y_top
        elif row_index == height - 1:
            label = y_bottom
        else:
            label = ""
        lines.append(label.rjust(margin) + "|" + "".join(row))
    lines.append(" " * margin + "+" + "-" * width)
    x_left = f"{(10 ** x_low if logx else x_low):.3g}"
    x_right = f"{(10 ** x_high if logx else x_high):.3g}"
    axis = x_left + xlabel.center(width - len(x_left) - len(x_right)) + x_right
    lines.append(" " * (margin + 1) + axis)
    legend = "   ".join(
        f"{_MARKERS[i % len(_MARKERS)]}={name}" for i, name in enumerate(cleaned)
    )
    if ylabel:
        legend = f"y: {ylabel}   " + legend
    lines.append(" " * (margin + 1) + legend)
    return "\n".join(lines)


def line_chart(
    xs: Sequence[float],
    ys: Sequence[float],
    *,
    width: int = 72,
    height: int = 20,
    logx: bool = False,
    title: str | None = None,
    xlabel: str = "",
    ylabel: str = "",
) -> str:
    """Single-series convenience wrapper over :func:`scatter_chart`."""
    return scatter_chart(
        {"y": (xs, ys)},
        width=width,
        height=height,
        logx=logx,
        title=title,
        xlabel=xlabel,
        ylabel=ylabel,
    )
