"""Plain-text reporting: aligned tables, ASCII charts, report text.

The benchmark harness regenerates every figure of the paper as printed
series; this package renders them readably in a terminal (no plotting
dependency is available offline).  :func:`render_analysis` is the one
renderer behind both ``repro analyze`` and the analysis service's fetch
responses — companion measures included — which is what keeps served
results bit-identical to offline output.
"""

from repro.reporting.analysis import render_analysis
from repro.reporting.ascii import line_chart, scatter_chart
from repro.reporting.tables import format_float, render_table

__all__ = [
    "render_table",
    "format_float",
    "line_chart",
    "scatter_chart",
    "render_analysis",
]
