"""Plain-text reporting: aligned tables and ASCII charts.

The benchmark harness regenerates every figure of the paper as printed
series; this package renders them readably in a terminal (no plotting
dependency is available offline).
"""

from repro.reporting.ascii import line_chart, scatter_chart
from repro.reporting.tables import format_float, render_table

__all__ = ["render_table", "format_float", "line_chart", "scatter_chart"]
