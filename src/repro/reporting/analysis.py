"""Rendering a :class:`~repro.core.report.StreamReport` as text.

One renderer, two consumers: ``repro analyze`` prints this, and the
analysis service returns it in fetch responses — sharing the function is
what makes the daemon's output *bit-identical* to the offline CLI by
construction rather than by test discipline.

The layout: the report's own summary (``to_text``), then the per-Δ
evidence table (one column block per measure that has columns), then one
summary line per column-less companion measure (trip samples, component
histograms, plugins...) read at the γ point — computed from the very
scan that elected it.
"""

from __future__ import annotations

from repro.utils.timeunits import format_duration


def render_analysis(report) -> str:
    """The full ``repro analyze`` text for a report (no trailing newline).

    Includes every companion in ``report.companions``: measures with
    dedicated columns (classical, metrics) widen the evidence table;
    the rest are summarized at γ via their result's ``describe()`` (or
    ``repr`` as the fallback).
    """
    sections = [report.to_text(), _render_table(report)]
    companions = _render_companions(report)
    if companions:
        sections.append(companions)
    return "\n\n".join(sections)


def _render_table(report) -> str:
    # Extra measure columns ride the same per-Δ scan as the occupancy
    # evidence; shown inline so the curves can be read side by side.
    extra_sweep = report.classical if report.classical is not None else report.metrics
    header = "delta        mk_proximity  trips"
    if extra_sweep is not None:
        header += "    density"
    if report.classical is not None:
        header += "   d_time  d_hops"
    lines = [header]
    result = report.saturation
    for i, point in enumerate(result.points):
        marker = "  <-- gamma" if point.delta == result.gamma else ""
        row = (
            f"{format_duration(point.delta):>9}  {point.mk_proximity:>12.4f}  "
            f"{point.num_trips:>7}"
        )
        if extra_sweep is not None:
            row += f"  {extra_sweep.points[i].snapshot.mean_density:>9.4f}"
        if report.classical is not None:
            classical_point = report.classical.points[i]
            row += (
                f"  {classical_point.mean_distance_in_time:>7.3f}"
                f"  {classical_point.mean_distance_in_hops:>6.3f}"
            )
        lines.append(row + marker)
    return "\n".join(lines)


def _render_companions(report) -> str:
    # Companion measures without a dedicated column (trip samples,
    # component histograms, plugins...): one summary line each, read at
    # the gamma point.
    extra_names = [
        name for name in report.companions if name not in ("classical", "metrics")
    ]
    if not extra_names:
        return ""
    result = report.saturation
    gamma_index = next(
        i for i, p in enumerate(result.points) if p.delta == result.gamma
    )
    lines = []
    for name in extra_names:
        value = report.companions[name][gamma_index]
        describe = getattr(value, "describe", None)
        summary = describe() if callable(describe) else repr(value)
        lines.append(f"{name} at gamma: {summary}")
    return "\n".join(lines)
