"""Aligned plain-text tables."""

from __future__ import annotations

from collections.abc import Sequence

from repro.utils.errors import ValidationError


def format_float(value: float, *, digits: int = 4) -> str:
    """Compact numeric rendering (fixed significant digits, inf/nan-safe)."""
    if value != value:  # NaN
        return "nan"
    if value in (float("inf"), float("-inf")):
        return "inf" if value > 0 else "-inf"
    return f"{value:.{digits}g}"


def render_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    *,
    title: str | None = None,
) -> str:
    """Render rows as an aligned monospace table.

    Floats are formatted compactly; everything else via ``str``.
    """
    if not headers:
        raise ValidationError("table needs at least one column")
    rendered_rows = []
    for row in rows:
        if len(row) != len(headers):
            raise ValidationError(
                f"row has {len(row)} cells for {len(headers)} columns"
            )
        rendered_rows.append(
            [format_float(c) if isinstance(c, float) else str(c) for c in row]
        )
    widths = [
        max(len(headers[i]), *(len(r[i]) for r in rendered_rows)) if rendered_rows else len(headers[i])
        for i in range(len(headers))
    ]
    lines = []
    if title:
        lines.append(title)
    header_line = "  ".join(h.ljust(widths[i]) for i, h in enumerate(headers))
    lines.append(header_line)
    lines.append("  ".join("-" * w for w in widths))
    for row in rendered_rows:
        lines.append("  ".join(row[i].rjust(widths[i]) for i in range(len(headers))))
    return "\n".join(lines)
