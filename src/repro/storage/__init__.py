"""Pluggable columnar event storage for link streams.

See :mod:`repro.storage.base` for the :class:`StreamStorage` contract,
:mod:`repro.storage.columnar` for the in-memory default backend, and
:mod:`repro.storage.partitioned` for the out-of-core time-partitioned
backend behind the ``repro datasets`` catalog.
"""

from repro.storage.base import STORAGE_COUNTS, StreamStorage
from repro.storage.columnar import ColumnarStorage
from repro.storage.partitioned import (
    DEFAULT_PARTITION_EVENTS,
    MANIFEST_NAME,
    PARTITION_EVENTS_ENV_VAR,
    PartitionedStorage,
)

__all__ = [
    "DEFAULT_PARTITION_EVENTS",
    "MANIFEST_NAME",
    "PARTITION_EVENTS_ENV_VAR",
    "STORAGE_COUNTS",
    "ColumnarStorage",
    "PartitionedStorage",
    "StreamStorage",
]
