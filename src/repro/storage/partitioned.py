"""Time-partitioned on-disk storage (the out-of-core backend).

Layout (redvox-style: structured filenames → index entries →
glob-recoverable):

.. code-block:: text

    <dataset-dir>/
      manifest.json                      # index + stream metadata
      bucket-00000/
        part-000000_<t0>_<t1>.npz        # sorted u/v/t columns
        part-000001_<t0>_<t1>.npz
      bucket-00001/
        ...

Events are cut into partitions along the (time-major) canonical sort
order, never splitting a run of equal timestamps, so each partition is
a contiguous row range ``[lo, hi)`` of the global columns and covers a
disjoint time span.  ``manifest.json`` is built once at ingest: per
partition it records the time span, event count, node range, and a
content hash; the hashes are chained into a ``manifest_digest`` and the
stream-level fingerprint (computed from the full columns at ingest,
bit-identical to the in-memory fingerprint) keys every engine cache
exactly as if the stream had been built in memory.

Loads are lazy: opening a dataset reads only the manifest, and
``slice_time`` prunes the partition list *before* any event bytes are
read, so a task whose windows span k partitions opens exactly those k
files (``STORAGE_COUNTS`` proves it).  Partition files store raw
little-endian columns (``np.savez``, uncompressed — they gzip well at
rest and load with zero decode work).
"""

from __future__ import annotations

import hashlib
import json
import os
import zipfile
from collections.abc import Iterator
from pathlib import Path

import numpy as np

from repro.storage.base import STORAGE_COUNTS, StreamStorage
from repro.storage.columnar import (
    ColumnarStorage,
    freeze_columns,
    time_slice_bounds,
)
from repro.utils.errors import StorageError

MANIFEST_NAME = "manifest.json"
MANIFEST_FORMAT = "repro-catalog-v1"

#: Target events per partition file (``REPRO_PARTITION_EVENTS`` overrides).
PARTITION_EVENTS_ENV_VAR = "REPRO_PARTITION_EVENTS"
DEFAULT_PARTITION_EVENTS = 262_144

#: Partitions per directory bucket (keeps directories listing-friendly).
BUCKET_SIZE = 64

#: At most this many prefix fingerprints are recorded on the chain.
CHAIN_MAX = 16


def partition_events_default() -> int:
    """Ingest partition size: ``REPRO_PARTITION_EVENTS`` or the default."""
    raw = os.environ.get(PARTITION_EVENTS_ENV_VAR)
    if raw is None:
        return DEFAULT_PARTITION_EVENTS
    try:
        value = int(raw)
    except ValueError:
        raise StorageError(
            f"{PARTITION_EVENTS_ENV_VAR} must be a positive integer, got {raw!r}"
        ) from None
    if value <= 0:
        raise StorageError(
            f"{PARTITION_EVENTS_ENV_VAR} must be a positive integer, got {raw!r}"
        )
    return value


# -- structured filenames -------------------------------------------------


def _encode_time(value: float) -> str:
    """Filesystem-safe time field: ``-`` becomes ``m`` (minus)."""
    return str(value).replace("-", "m")


def _decode_time(text: str, kind: str) -> float:
    raw = text.replace("m", "-")
    return int(raw) if kind == "i" else float(raw)


def bucket_dirname(index: int) -> str:
    return f"bucket-{index // BUCKET_SIZE:05d}"


def partition_filename(index: int, t_min: float, t_max: float) -> str:
    return f"part-{index:06d}_{_encode_time(t_min)}_{_encode_time(t_max)}.npz"


def parse_partition_filename(name: str, kind: str) -> tuple[int, float, float]:
    """Recover ``(index, t_min, t_max)`` from a partition filename."""
    stem = name
    if not (stem.startswith("part-") and stem.endswith(".npz")):
        raise StorageError(f"not a partition filename: {name!r}")
    fields = stem[len("part-") : -len(".npz")].split("_")
    if len(fields) != 3:
        raise StorageError(f"malformed partition filename: {name!r}")
    try:
        return (
            int(fields[0]),
            _decode_time(fields[1], kind),
            _decode_time(fields[2], kind),
        )
    except ValueError:
        raise StorageError(f"malformed partition filename: {name!r}") from None


# -- partition planning and hashing ---------------------------------------


def plan_partition_cuts(
    t: np.ndarray, target_events: int
) -> list[tuple[int, int]]:
    """Cut the (ascending) timestamp column into ``[lo, hi)`` ranges.

    Each range holds about ``target_events`` rows; a cut is pushed past
    any run of equal timestamps so no timestamp is split across files —
    which keeps per-partition time spans disjoint and makes partition
    pruning by span exact.
    """
    if target_events <= 0:
        raise StorageError(f"target_events must be positive, got {target_events}")
    n = int(t.size)
    cuts: list[tuple[int, int]] = []
    lo = 0
    while lo < n:
        hi = min(lo + target_events, n)
        while hi < n and t[hi] == t[hi - 1]:
            hi += 1
        cuts.append((lo, hi))
        lo = hi
    return cuts


def chain_boundaries(
    cuts: list[tuple[int, int]], limit: int = CHAIN_MAX
) -> list[int]:
    """Event counts (partition cut points, final cut excluded) at which
    prefix fingerprints are recorded, at most ``limit`` of them, evenly
    spaced across the partition sequence."""
    interior = [hi for _, hi in cuts[:-1]]
    if len(interior) <= limit:
        return interior
    step = len(interior) / limit
    picked = sorted({interior[int(i * step)] for i in range(limit)})
    return picked


def partition_content_hash(
    u: np.ndarray, v: np.ndarray, t: np.ndarray
) -> str:
    """Content hash of one partition's columns.

    Hashes the decoded array bytes (not the ``.npz`` container, whose
    zip metadata embeds wall-clock timestamps) so the hash is a pure
    function of the events.
    """
    digest = hashlib.sha256()
    digest.update(f"p1|{t.dtype.str}|{t.size}|".encode())
    digest.update(u.tobytes())
    digest.update(v.tobytes())
    digest.update(t.tobytes())
    return digest.hexdigest()


def chain_manifest_digest(partition_hashes: list[str]) -> str:
    """Fold the per-partition content hashes into one chained digest."""
    digest = hashlib.sha256()
    digest.update(b"chain1")
    for partition_hash in partition_hashes:
        digest.update(partition_hash.encode())
    return digest.hexdigest()


class PartitionedStorage(StreamStorage):
    """Lazy storage over a partitioned dataset directory.

    Instances are cheap handles: the manifest dict plus the subset of
    partition index entries still in play after ``slice_time`` pruning,
    and optional active time bounds.  Event bytes are read only when
    :meth:`columns` (or a streaming :meth:`to_events`) needs them, and
    the concatenated result is cached per instance.  Pickling ships the
    handle, never the cached columns — process-pool workers reopen the
    partition files lazily on their side of the fence.
    """

    __slots__ = (
        "_root",
        "_manifest",
        "_entries",
        "_start",
        "_end",
        "_half_open",
        "_verify",
        "_cached",
        "_num_distinct",
    )

    def __init__(
        self,
        root: str,
        manifest: dict,
        *,
        entries: tuple[dict, ...] | None = None,
        start: float | None = None,
        end: float | None = None,
        half_open: bool = True,
        verify: bool = False,
    ) -> None:
        self._root = str(root)
        self._manifest = manifest
        self._entries = (
            tuple(manifest["partitions"]) if entries is None else entries
        )
        self._start = start
        self._end = end
        self._half_open = half_open
        self._verify = verify
        self._cached: tuple[np.ndarray, np.ndarray, np.ndarray] | None = None
        self._num_distinct: int | None = None

    # -- construction ----------------------------------------------------

    @classmethod
    def open(cls, path: str | Path, *, verify: bool = False) -> "PartitionedStorage":
        """Open a dataset directory by reading its manifest."""
        manifest_path = os.path.join(str(path), MANIFEST_NAME)
        try:
            with open(manifest_path, "r", encoding="utf-8") as handle:
                manifest = json.load(handle)
        except OSError as error:
            raise StorageError(
                f"cannot read catalog manifest {manifest_path}: {error}"
            ) from error
        except ValueError as error:
            raise StorageError(
                f"corrupt catalog manifest {manifest_path}: {error}"
            ) from error
        if manifest.get("format") != MANIFEST_FORMAT:
            raise StorageError(
                f"unsupported manifest format {manifest.get('format')!r} "
                f"in {manifest_path} (expected {MANIFEST_FORMAT!r})"
            )
        return cls(str(path), manifest, verify=verify)

    @classmethod
    def from_events(
        cls, u: np.ndarray, v: np.ndarray, t: np.ndarray, **kwargs: object
    ) -> "PartitionedStorage":
        """Write canonical sorted columns as a partitioned dataset.

        Keyword arguments: ``path`` (required dataset directory),
        ``directed``, ``num_nodes``, ``labels``, ``fingerprint``
        (stream-level content fingerprint computed by the caller from
        the same columns), ``chain`` (``(count, fingerprint)`` prefix
        boundaries), ``partition_events``, ``name``.
        """
        path = kwargs.pop("path", None)
        if path is None:
            raise StorageError("PartitionedStorage.from_events needs path=")
        directed = bool(kwargs.pop("directed", True))
        num_nodes = kwargs.pop("num_nodes", None)
        labels = kwargs.pop("labels", None)
        fingerprint = kwargs.pop("fingerprint", None)
        chain = tuple(kwargs.pop("chain", ()))
        partition_events = kwargs.pop("partition_events", None)
        name = kwargs.pop("name", None)
        if kwargs:
            raise StorageError(
                f"unknown PartitionedStorage options: {sorted(kwargs)}"
            )
        if partition_events is None:
            partition_events = partition_events_default()

        u = np.ascontiguousarray(u, dtype=np.int64)
        v = np.ascontiguousarray(v, dtype=np.int64)
        t = np.ascontiguousarray(t)
        if num_nodes is None:
            num_nodes = int(max(u.max(), v.max())) + 1 if u.size else 0

        root = str(path)
        os.makedirs(root, exist_ok=True)
        cuts = plan_partition_cuts(t, int(partition_events))
        entries: list[dict] = []
        for index, (lo, hi) in enumerate(cuts):
            part_u, part_v, part_t = u[lo:hi], v[lo:hi], t[lo:hi]
            relative = os.path.join(
                bucket_dirname(index),
                partition_filename(index, part_t[0].item(), part_t[-1].item()),
            )
            absolute = os.path.join(root, relative)
            os.makedirs(os.path.dirname(absolute), exist_ok=True)
            np.savez(absolute, u=part_u, v=part_v, t=part_t)
            entries.append(
                {
                    "index": index,
                    "file": relative.replace(os.sep, "/"),
                    "events": int(hi - lo),
                    "num_timestamps": int(np.unique(part_t).size),
                    "t_min": part_t[0].item(),
                    "t_max": part_t[-1].item(),
                    "node_min": int(min(part_u.min(), part_v.min())),
                    "node_max": int(max(part_u.max(), part_v.max())),
                    "sha256": partition_content_hash(part_u, part_v, part_t),
                }
            )
        manifest = {
            "format": MANIFEST_FORMAT,
            "name": name,
            "directed": directed,
            "num_nodes": int(num_nodes),
            # Labels must be JSON-serializable (str/int/float); identity
            # labels are stored as null.
            "labels": None if labels is None else list(labels),
            "time_dtype": t.dtype.str,
            "num_events": int(t.size),
            "num_timestamps": int(np.unique(t).size),
            "t_min": t[0].item() if t.size else None,
            "t_max": t[-1].item() if t.size else None,
            "fingerprint": fingerprint,
            "chain": [[int(count), fp] for count, fp in chain],
            "partition_events": int(partition_events),
            "manifest_digest": chain_manifest_digest(
                [entry["sha256"] for entry in entries]
            ),
            "partitions": entries,
        }
        write_manifest(root, manifest)
        return cls(root, manifest)

    # -- manifest access -------------------------------------------------

    @property
    def root(self) -> str:
        """Dataset directory this storage reads from."""
        return self._root

    @property
    def manifest(self) -> dict:
        """The parsed ``manifest.json`` (shared, do not mutate)."""
        return self._manifest

    @property
    def is_sliced(self) -> bool:
        """Whether active time bounds restrict this handle."""
        return self._start is not None or self._end is not None

    @property
    def num_partitions(self) -> int:
        """Partitions still in play (after any pruning)."""
        return len(self._entries)

    # -- metadata --------------------------------------------------------

    @property
    def num_events(self) -> int:
        if not self.is_sliced:
            return int(self._manifest["num_events"])
        return int(self.columns()[2].size)

    @property
    def time_dtype(self) -> np.dtype:
        return np.dtype(self._manifest["time_dtype"])

    def time_range(self) -> tuple[float, float] | None:
        if not self.is_sliced:
            if self._manifest["t_min"] is None:
                return None
            return self._manifest["t_min"], self._manifest["t_max"]
        t = self.columns()[2]
        if not t.size:
            return None
        return t[0].item(), t[-1].item()

    def num_timestamps(self) -> int:
        if not self.is_sliced:
            return int(self._manifest["num_timestamps"])
        if self._num_distinct is None:
            self._num_distinct = int(np.unique(self.columns()[2]).size)
        return self._num_distinct

    def fingerprint_chain(self) -> tuple[tuple[int, str], ...]:
        if self.is_sliced:
            return ()
        return tuple(
            (int(count), str(fp)) for count, fp in self._manifest["chain"]
        )

    # -- partition IO ----------------------------------------------------

    def _load_partition(
        self, entry: dict
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        path = os.path.join(self._root, entry["file"])
        if not os.path.exists(path):
            raise StorageError(f"missing partition file: {path}")
        try:
            with np.load(path) as archive:
                u = np.ascontiguousarray(archive["u"], dtype=np.int64)
                v = np.ascontiguousarray(archive["v"], dtype=np.int64)
                t = np.ascontiguousarray(archive["t"])
        except (OSError, ValueError, EOFError, KeyError, zipfile.BadZipFile) as error:
            raise StorageError(
                f"corrupt partition file: {path} ({error})"
            ) from error
        if not (u.shape == v.shape == t.shape) or t.size != entry["events"]:
            raise StorageError(
                f"corrupt partition file: {path} "
                f"(expected {entry['events']} events, got {t.size})"
            )
        if self._verify and partition_content_hash(u, v, t) != entry["sha256"]:
            raise StorageError(
                f"corrupt partition file: {path} (content hash mismatch)"
            )
        STORAGE_COUNTS["partitions_opened"] += 1
        return freeze_columns(u, v, t)

    def _trim(
        self, u: np.ndarray, v: np.ndarray, t: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Apply the active time bounds to one partition's columns."""
        if not self.is_sliced:
            return u, v, t
        start = -np.inf if self._start is None else self._start
        end = np.inf if self._end is None else self._end
        lo, hi = time_slice_bounds(t, start, end, half_open=self._half_open)
        return u[lo:hi], v[lo:hi], t[lo:hi]

    # -- data access -----------------------------------------------------

    def columns(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        if self._cached is None:
            STORAGE_COUNTS["materializations"] += 1
            parts = [
                self._trim(*self._load_partition(entry))
                for entry in self._entries
            ]
            parts = [p for p in parts if p[2].size]
            if parts:
                u = np.concatenate([p[0] for p in parts])
                v = np.concatenate([p[1] for p in parts])
                t = np.concatenate([p[2] for p in parts])
            else:
                u = np.empty(0, dtype=np.int64)
                v = np.empty(0, dtype=np.int64)
                t = np.empty(0, dtype=self.time_dtype)
            self._cached = freeze_columns(u, v, t)
        return self._cached

    def to_events(self) -> Iterator[tuple[int, int, float]]:
        """Stream events partition by partition (bounded memory)."""
        if self._cached is not None:
            yield from super().to_events()
            return
        for entry in self._entries:
            u, v, t = self._trim(*self._load_partition(entry))
            for i in range(t.size):
                yield int(u[i]), int(v[i]), t[i].item()

    # -- derived storages ------------------------------------------------

    def _overlaps(self, entry: dict, start: float, end: float, half_open: bool) -> bool:
        if entry["t_max"] < start:
            return False
        if half_open:
            return entry["t_min"] < end
        return entry["t_min"] <= end

    def slice_time(
        self, start: float, end: float, *, half_open: bool = True
    ) -> StreamStorage:
        STORAGE_COUNTS["slice_time"] += 1
        if self.is_sliced:
            # Re-slicing a slice: fall back to the materialized columns
            # (the first slice already pruned the partition list).
            u, v, t = self.columns()
            lo, hi = time_slice_bounds(t, start, end, half_open=half_open)
            return ColumnarStorage(u[lo:hi], v[lo:hi], t[lo:hi])
        kept = tuple(
            entry
            for entry in self._entries
            if self._overlaps(entry, start, end, half_open)
        )
        STORAGE_COUNTS["partitions_pruned"] += len(self._entries) - len(kept)
        return PartitionedStorage(
            self._root,
            self._manifest,
            entries=kept,
            start=start,
            end=end,
            half_open=half_open,
            verify=self._verify,
        )

    # -- pickling (ship the handle, not the bytes) -----------------------

    def __getstate__(self) -> dict:
        return {
            "root": self._root,
            "manifest": self._manifest,
            "entries": self._entries,
            "start": self._start,
            "end": self._end,
            "half_open": self._half_open,
            "verify": self._verify,
        }

    def __setstate__(self, state: dict) -> None:
        self.__init__(  # type: ignore[misc]
            state["root"],
            state["manifest"],
            entries=state["entries"],
            start=state["start"],
            end=state["end"],
            half_open=state["half_open"],
            verify=state["verify"],
        )


def write_manifest(root: str, manifest: dict) -> str:
    """Write ``manifest.json`` under ``root`` (sorted keys, stable bytes)."""
    path = os.path.join(root, MANIFEST_NAME)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(manifest, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return path
