"""In-memory columnar storage — the default :class:`LinkStream` backend.

Holds the three frozen numpy arrays exactly as ``LinkStream`` always
has; every operation is a view or a vectorized slice.  Construction is
*trusting*: callers (the ``LinkStream`` constructor, sibling backends)
hand over arrays already validated, canonically sorted, and frozen —
this class never re-sorts, so wrapping adds zero per-event work.
"""

from __future__ import annotations

import numpy as np

from repro.storage.base import STORAGE_COUNTS, StreamStorage
from repro.utils.errors import StorageError


def freeze_columns(
    u: np.ndarray, v: np.ndarray, t: np.ndarray
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Mark the three column arrays read-only (shared helper)."""
    u.setflags(write=False)
    v.setflags(write=False)
    t.setflags(write=False)
    return u, v, t


class ColumnarStorage(StreamStorage):
    """Sorted, frozen ``(u, v, t)`` columns held in process memory."""

    __slots__ = ("_u", "_v", "_t", "_num_distinct", "_chain")

    def __init__(
        self,
        u: np.ndarray,
        v: np.ndarray,
        t: np.ndarray,
        *,
        chain: tuple[tuple[int, str], ...] = (),
    ) -> None:
        self._u = u
        self._v = v
        self._t = t
        self._num_distinct: int | None = None
        self._chain = tuple(chain)

    @classmethod
    def from_events(
        cls, u: np.ndarray, v: np.ndarray, t: np.ndarray, **kwargs: object
    ) -> "ColumnarStorage":
        """Wrap canonical sorted columns (freezing them) as a backend."""
        chain = kwargs.pop("chain", ())
        if kwargs:
            raise StorageError(
                f"unknown ColumnarStorage options: {sorted(kwargs)}"
            )
        u = np.ascontiguousarray(u, dtype=np.int64)
        v = np.ascontiguousarray(v, dtype=np.int64)
        t = np.ascontiguousarray(t)
        freeze_columns(u, v, t)
        return cls(u, v, t, chain=tuple(chain))  # type: ignore[arg-type]

    # -- metadata --------------------------------------------------------

    @property
    def num_events(self) -> int:
        return int(self._t.size)

    @property
    def time_dtype(self) -> np.dtype:
        return self._t.dtype

    def time_range(self) -> tuple[float, float] | None:
        if not self._t.size:
            return None
        return self._t[0].item(), self._t[-1].item()

    def num_timestamps(self) -> int:
        if self._num_distinct is None:
            self._num_distinct = int(np.unique(self._t).size)
        return self._num_distinct

    def fingerprint_chain(self) -> tuple[tuple[int, str], ...]:
        return self._chain

    # -- data access -----------------------------------------------------

    def columns(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        return self._u, self._v, self._t

    # -- derived storages ------------------------------------------------

    def slice_time(
        self, start: float, end: float, *, half_open: bool = True
    ) -> "ColumnarStorage":
        STORAGE_COUNTS["slice_time"] += 1
        lo, hi = time_slice_bounds(self._t, start, end, half_open=half_open)
        return ColumnarStorage(self._u[lo:hi], self._v[lo:hi], self._t[lo:hi])


def time_slice_bounds(
    t: np.ndarray, start: float, end: float, *, half_open: bool
) -> tuple[int, int]:
    """Row range ``[lo, hi)`` of ``start <= t < end`` (or ``<= end``).

    ``t`` is ascending (time is the major sort key), so the slice is a
    contiguous range answered by two binary searches — equivalent to the
    boolean-mask selection ``LinkStream.restrict_time`` historically
    used, including for the boundary ties.
    """
    lo = int(np.searchsorted(t, start, side="left"))
    hi = int(np.searchsorted(t, end, side="left" if half_open else "right"))
    return lo, max(lo, hi)
