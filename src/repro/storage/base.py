"""The :class:`StreamStorage` contract.

:class:`~repro.linkstream.LinkStream` owns the *semantics* of a link
stream (validation, canonical sort order, labels, fingerprints) while a
``StreamStorage`` backend owns the *bytes*: the three sorted columnar
numpy arrays ``(sources, targets, timestamps)``.  The contract is
modeled on openDG's ``DGStorage`` — backends implement
``from_events`` / ``to_events`` / ``slice_time`` / ``slice_nodes`` /
``num_events`` / ``num_timestamps`` / ``time_range`` /
``fingerprint_chain`` — so alternative layouts (in-memory columns,
time-partitioned files on disk) slot under ``LinkStream`` unchanged.

Invariant shared by every backend: the event columns are presented in
the canonical ``lexsort((v, u, t))`` order (time-major), exactly the
order ``LinkStream`` itself would produce, and the arrays returned by
:meth:`StreamStorage.columns` are read-only.  That invariant is what
makes backends interchangeable *bit for bit*: fingerprints, cache keys,
and every downstream algorithm see identical arrays regardless of where
the bytes live.

``STORAGE_COUNTS`` instruments the backends (same style as
``AGGREGATION_COUNTS`` / ``SCAN_COUNTS``): tests and benches snapshot
it to prove that a time-sliced task materializes only the partitions
its windows overlap.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from collections.abc import Iterator, Sequence

import numpy as np

#: Instrumentation counters, incremented by the storage backends:
#:
#: ``slice_time``
#:     number of ``slice_time`` calls answered by any backend;
#: ``partitions_opened``
#:     partition files actually read from disk;
#: ``partitions_pruned``
#:     partition files skipped by a ``slice_time`` because their time
#:     span cannot overlap the requested range;
#: ``materializations``
#:     times a :class:`~repro.storage.PartitionedStorage` concatenated
#:     its (remaining) partitions into in-memory columns.
STORAGE_COUNTS = {
    "slice_time": 0,
    "partitions_opened": 0,
    "partitions_pruned": 0,
    "materializations": 0,
}


class StreamStorage(ABC):
    """Abstract columnar event storage behind :class:`LinkStream`.

    Implementations hold (or know how to produce) three parallel arrays
    ``sources``/``targets``/``timestamps`` in canonical time-major
    order.  Metadata queries (:attr:`num_events`, :meth:`time_range`,
    :attr:`time_dtype`) must not force lazy backends to load event
    bytes; :meth:`columns` is the one explicit materialization point.
    """

    __slots__ = ()

    # -- construction ----------------------------------------------------

    @classmethod
    @abstractmethod
    def from_events(
        cls, u: np.ndarray, v: np.ndarray, t: np.ndarray, **kwargs: object
    ) -> "StreamStorage":
        """Build a backend instance from canonical sorted columns."""

    # -- metadata (never materializes) ----------------------------------

    @property
    @abstractmethod
    def num_events(self) -> int:
        """Number of stored events (with multiplicity)."""

    @property
    @abstractmethod
    def time_dtype(self) -> np.dtype:
        """Dtype of the timestamp column (``int64`` or ``float64``)."""

    @abstractmethod
    def time_range(self) -> tuple[float, float] | None:
        """``(t_min, t_max)`` of the stored events, ``None`` if empty."""

    @abstractmethod
    def num_timestamps(self) -> int:
        """Number of *distinct* timestamps among the stored events."""

    def fingerprint_chain(self) -> tuple[tuple[int, str], ...]:
        """Known ``(event_count, fingerprint)`` prefix boundaries.

        Backends that can vouch for content fingerprints of event-count
        prefixes (a partitioned catalog records them at partition cuts;
        an in-memory backend carries the chain ``extend`` built) return
        them oldest first; the default is no knowledge.
        """
        return ()

    # -- data access -----------------------------------------------------

    @abstractmethod
    def columns(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """The ``(sources, targets, timestamps)`` arrays, read-only and
        in canonical order.  Lazy backends materialize here."""

    @property
    def sources(self) -> np.ndarray:
        return self.columns()[0]

    @property
    def targets(self) -> np.ndarray:
        return self.columns()[1]

    @property
    def timestamps(self) -> np.ndarray:
        return self.columns()[2]

    def to_events(self) -> Iterator[tuple[int, int, float]]:
        """Iterate ``(u, v, t)`` index triples in canonical order.

        Lazy backends override this to stream partition by partition so
        an export never holds more than one partition in memory.
        """
        u, v, t = self.columns()
        for i in range(t.size):
            yield int(u[i]), int(v[i]), t[i].item()

    # -- derived storages ------------------------------------------------

    @abstractmethod
    def slice_time(
        self, start: float, end: float, *, half_open: bool = True
    ) -> "StreamStorage":
        """Storage restricted to ``start <= t < end`` (or ``<= end``).

        Because the canonical order is time-major, a time slice is a
        contiguous row range; backends return it without copying where
        they can, and lazy backends prune partitions that cannot
        overlap the range.
        """

    def slice_nodes(self, nodes: Sequence[int]) -> "StreamStorage":
        """Storage keeping only events whose endpoints both lie in
        ``nodes``.  Indices are preserved (no re-densification — that is
        ``LinkStream.restrict_nodes``'s job)."""
        from repro.storage.columnar import ColumnarStorage

        keep = np.asarray(sorted(set(int(n) for n in nodes)), dtype=np.int64)
        u, v, t = self.columns()
        mask = np.isin(u, keep) & np.isin(v, keep)
        return ColumnarStorage(u[mask], v[mask], t[mask])
