"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``analyze``   detect the saturation scale of an event file and print the
              evidence curve (optionally with validation measures and,
              via ``--measures name[:key=value,...]``, extra measure
              columns — classical parameters, trip samples, component
              histograms, reachability, or any plugin registered through
              :func:`repro.engine.register_measure` — computed from the
              same single scan per window length).
``aggregate`` aggregate an event file at a chosen window and write one
              edge-list row per (window, u, v).
``generate``  produce a synthetic stream (time-uniform, two-mode, or a
              dataset replica) as a TSV event file.
``datasets``  list the built-in dataset replicas and their statistics.
``cache``     manage the persistent sweep-result store (``stats`` /
              ``clear`` / ``prewarm``, the last replaying a sweep spec
              into the store so later analyses start warm).

All files are TSV with columns ``u v t`` unless ``--columns`` says
otherwise.
"""

from __future__ import annotations

import argparse
import os
import sys
from collections.abc import Sequence

from repro.core import analyze_stream, log_delta_grid
from repro.datasets import available_datasets, dataset_spec, load
from repro.engine import (
    CACHE_DIR_ENV_VAR,
    CACHE_MAX_BYTES_ENV_VAR,
    DiskStore,
    ENGINE_ENV_VAR,
    SHARDS_ENV_VAR,
    StderrProgress,
    SweepCache,
    SweepEngine,
    available_backends,
    available_measures,
    cache_max_bytes_from_env,
    parse_measures_arg,
    plan_measure_sweep,
)
from repro.generators import time_uniform_stream, two_mode_stream_by_rho
from repro.graphseries import aggregate as aggregate_stream
from repro.linkstream import read_csv, read_tsv, write_tsv
from repro.linkstream.stream import LinkStream
from repro.utils.errors import ReproError
from repro.utils.timeunits import format_duration, parse_duration


def _read_stream(path: str, columns: str, directed: bool, fmt: str) -> LinkStream:
    reader = read_csv if fmt == "csv" else read_tsv
    return reader(path, columns=columns, directed=directed)


def _build_engine(args: argparse.Namespace) -> SweepEngine:
    """Sweep engine from the ``analyze`` flags (falling back to the
    ``REPRO_ENGINE`` / ``REPRO_CACHE_DIR`` / ``REPRO_CACHE_MAX_BYTES``
    environment defaults)."""
    backend = args.backend or os.environ.get(ENGINE_ENV_VAR) or "serial"
    cache_dir = args.cache_dir or os.environ.get(CACHE_DIR_ENV_VAR) or None
    shards = args.shards or os.environ.get(SHARDS_ENV_VAR) or None
    return SweepEngine(
        backend,
        jobs=args.jobs,
        cache=SweepCache.build(
            disk_dir=cache_dir,
            disk_max_bytes=cache_max_bytes_from_env(),
        ),
        progress=StderrProgress() if args.progress else None,
        shards=shards,
    )


def _cmd_analyze(args: argparse.Namespace) -> int:
    stream = _read_stream(args.events, args.columns, not args.undirected, args.format)
    measures = parse_measures_arg(args.measures)
    with _build_engine(args) as engine:
        report = analyze_stream(
            stream,
            validate=args.validate,
            measures=measures,
            num_deltas=args.num_deltas,
            method=args.method,
            refine_rounds=args.refine,
            engine=engine,
        )
    print(report.to_text())
    print()
    # Extra measure columns ride the same per-Δ scan as the occupancy
    # evidence; shown inline so the curves can be read side by side.
    extra_sweep = report.classical if report.classical is not None else report.metrics
    header = "delta        mk_proximity  trips"
    if extra_sweep is not None:
        header += "    density"
    if report.classical is not None:
        header += "   d_time  d_hops"
    print(header)
    result = report.saturation
    for i, point in enumerate(result.points):
        marker = "  <-- gamma" if point.delta == result.gamma else ""
        row = (
            f"{format_duration(point.delta):>9}  {point.mk_proximity:>12.4f}  "
            f"{point.num_trips:>7}"
        )
        if extra_sweep is not None:
            row += f"  {extra_sweep.points[i].snapshot.mean_density:>9.4f}"
        if report.classical is not None:
            classical_point = report.classical.points[i]
            row += (
                f"  {classical_point.mean_distance_in_time:>7.3f}"
                f"  {classical_point.mean_distance_in_hops:>6.3f}"
            )
        print(row + marker)
    # Companion measures without a dedicated column (trip samples,
    # component histograms, plugins...): one summary line each, read at
    # the gamma point — computed from the very scan that elected it.
    extra_names = [
        name for name in report.companions if name not in ("classical", "metrics")
    ]
    if extra_names:
        gamma_index = next(
            i for i, p in enumerate(result.points) if p.delta == result.gamma
        )
        print()
        for name in extra_names:
            value = report.companions[name][gamma_index]
            describe = getattr(value, "describe", None)
            summary = describe() if callable(describe) else repr(value)
            print(f"{name} at gamma: {summary}")
    return 0


def _cmd_aggregate(args: argparse.Namespace) -> int:
    stream = _read_stream(args.events, args.columns, not args.undirected, args.format)
    delta = parse_duration(args.delta)
    series = aggregate_stream(stream, delta)
    with open(args.output, "w", encoding="utf-8") as handle:
        handle.write("# window\tu\tv\n")
        for step, us, vs in series.edge_groups():
            for u, v in zip(us.tolist(), vs.tolist()):
                handle.write(f"{step}\t{stream.label_of(u)}\t{stream.label_of(v)}\n")
    print(
        f"aggregated {stream.num_events} events at delta = "
        f"{format_duration(delta)}: {series.num_steps} windows, "
        f"{series.num_edges_total} edges -> {args.output}"
    )
    return 0


def _cmd_generate(args: argparse.Namespace) -> int:
    if args.family == "uniform":
        stream = time_uniform_stream(
            args.nodes, args.links_per_pair, args.span, seed=args.seed
        )
    elif args.family == "two-mode":
        stream = two_mode_stream_by_rho(
            args.nodes,
            args.links_per_pair,
            max(args.links_per_pair // 10, 1),
            args.span,
            args.rho,
            seed=args.seed,
        )
    else:  # a dataset replica
        stream = load(args.family, scale=args.scale, seed=args.seed)
    write_tsv(stream, args.output)
    print(f"wrote {stream.num_events} events ({stream.num_nodes} nodes) to {args.output}")
    return 0


def _resolve_cache_dir(args: argparse.Namespace) -> str:
    cache_dir = args.cache_dir or os.environ.get(CACHE_DIR_ENV_VAR) or None
    if cache_dir is None:
        raise ReproError(
            f"no cache directory: pass --cache-dir or set ${CACHE_DIR_ENV_VAR}"
        )
    return cache_dir


def _cmd_cache(args: argparse.Namespace) -> int:
    if args.action == "prewarm":
        return _cache_prewarm(args)
    if args.events is not None:
        raise ReproError(
            f"'cache {args.action}' takes no event file (only 'cache "
            "prewarm' replays a sweep)"
        )
    cache_dir = _resolve_cache_dir(args)
    if not os.path.isdir(cache_dir):
        # Inspecting or clearing must never mkdir: a typo'd path would
        # otherwise report a convincing empty store (and leave the stray
        # directory behind) while the real cache sits elsewhere.
        raise ReproError(f"cache directory does not exist: {cache_dir}")
    store = DiskStore(cache_dir, max_bytes=cache_max_bytes_from_env())
    if args.action == "stats":
        stats = store.stats()
        cap = (
            f"{stats['max_bytes']} bytes"
            if stats["max_bytes"] is not None
            else f"none (set ${CACHE_MAX_BYTES_ENV_VAR} to cap)"
        )
        print(f"cache directory: {store.directory}")
        print(f"entries: {stats['entries']}")
        print(f"size: {stats['bytes']} bytes")
        print(f"size cap: {cap}")
    else:  # clear
        removed = store.clear()
        print(f"removed {removed} cached results from {store.directory}")
    return 0


def _cache_prewarm(args: argparse.Namespace) -> int:
    """Replay a sweep spec into the disk store so later runs start warm.

    Exactly the sweep ``analyze`` would run (same grid policy, same
    fused per-Δ tasks, same per-measure cache keys), minus the report:
    every per-measure result lands in the persistent store, so the next
    ``analyze`` — or any API sweep over the same stream and measures —
    is served without a single scan.
    """
    if args.events is None:
        raise ReproError(
            "cache prewarm needs an event file: "
            "repro cache prewarm EVENTS --cache-dir DIR [--measures ...]"
        )
    # Prewarm requires a concrete store; once resolved, the engine is
    # built by the same path analyze uses (one wiring to maintain).
    args.cache_dir = _resolve_cache_dir(args)
    stream = _read_stream(args.events, args.columns, not args.undirected, args.format)
    measures = parse_measures_arg(args.measures)
    deltas = log_delta_grid(stream, num=args.num_deltas)
    tasks = plan_measure_sweep(deltas, measures)
    with _build_engine(args) as engine:
        engine.run(stream, tasks)
        store = engine.cache.stores[-1]
        stats = store.stats()
    print(
        f"prewarmed {len(tasks)} window lengths x {len(measures)} measures "
        f"({', '.join(m.name for m in measures)}) from {args.events}"
    )
    print(
        f"cache directory: {store.directory} — {stats['entries']} entries, "
        f"{stats['bytes']} bytes"
    )
    return 0


def _cmd_datasets(args: argparse.Namespace) -> int:
    print("built-in dataset replicas (paper Section 5):")
    for name in available_datasets():
        spec = dataset_spec(name)
        print(
            f"  {name:>14}: {spec.full.num_nodes} nodes, "
            f"{spec.full.num_events} events over {spec.full.span_days:g} days; "
            f"activity {spec.activity_paper}/person/day, "
            f"paper gamma {spec.gamma_paper_hours:g} h"
        )
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Saturation-scale analysis of link streams (CoNEXT 2015 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add_io_options(p: argparse.ArgumentParser) -> None:
        p.add_argument("events", help="event file (one interaction per line)")
        p.add_argument("--columns", default="u v t", help="column order (default: 'u v t')")
        p.add_argument("--format", choices=("tsv", "csv"), default="tsv")
        p.add_argument("--undirected", action="store_true", help="treat links as undirected")

    analyze = sub.add_parser("analyze", help="detect the saturation scale")
    add_io_options(analyze)
    analyze.add_argument("--num-deltas", type=int, default=40, help="sweep grid size")
    analyze.add_argument("--method", default="mk", help="selection statistic (mk/std/cre/shannonK)")
    analyze.add_argument("--refine", type=int, default=0, help="refinement rounds")
    analyze.add_argument("--validate", action="store_true", help="also run Section 8 loss measures")
    analyze.add_argument(
        "--measures",
        default="occupancy",
        help="comma-separated measures to evaluate at every window length "
        f"({','.join(available_measures())}, plus any measure registered "
        "at runtime via repro.engine.register_measure); each entry is "
        "name[:key=value,...] with further key=value items riding the "
        "following commas (e.g. 'occupancy,trips:max_samples=64,seed=3'); "
        "the whole set is computed from ONE aggregation and ONE backward "
        "scan per delta (the fused measure pipeline), so extra measures "
        "cost no extra sweep; 'occupancy' is required (it selects "
        "gamma). Default: occupancy",
    )
    analyze.add_argument(
        "--backend",
        choices=available_backends(),
        default=None,
        help=f"sweep execution backend (default: ${ENGINE_ENV_VAR} or 'serial')",
    )
    analyze.add_argument(
        "--jobs",
        type=int,
        default=None,
        help="worker threads/processes for --backend thread/process "
        "(default: the CPU count)",
    )
    analyze.add_argument(
        "--shards",
        default=None,
        help="within-delta sharding: 'auto' splits a large evaluation "
        "across idle workers when the sweep has fewer deltas than "
        "--jobs (coarse-delta tail, refinement rounds), an integer "
        "forces that many shards per delta, 1 disables; results are "
        f"bit-identical either way (default: ${SHARDS_ENV_VAR} or 'auto')",
    )
    analyze.add_argument(
        "--cache-dir",
        default=None,
        help="persist per-delta sweep results under this directory so warm "
        f"re-runs skip all recomputation (default: ${CACHE_DIR_ENV_VAR})",
    )
    analyze.add_argument(
        "--progress", action="store_true", help="print sweep progress to stderr"
    )
    analyze.set_defaults(func=_cmd_analyze)

    agg = sub.add_parser("aggregate", help="aggregate an event file into a graph series")
    add_io_options(agg)
    agg.add_argument("--delta", required=True, help="window length (e.g. '18h', '3600')")
    agg.add_argument("--output", required=True, help="output TSV (window, u, v)")
    agg.set_defaults(func=_cmd_aggregate)

    gen = sub.add_parser("generate", help="generate a synthetic stream")
    gen.add_argument(
        "family",
        choices=["uniform", "two-mode", *available_datasets()],
        help="synthetic family or dataset replica",
    )
    gen.add_argument("--output", required=True)
    gen.add_argument("--nodes", type=int, default=50)
    gen.add_argument("--links-per-pair", type=int, default=10)
    gen.add_argument("--span", type=float, default=100_000.0)
    gen.add_argument("--rho", type=float, default=0.5, help="two-mode low-activity share")
    gen.add_argument("--scale", choices=("paper", "full"), default="paper")
    gen.add_argument("--seed", type=int, default=0)
    gen.set_defaults(func=_cmd_generate)

    datasets = sub.add_parser("datasets", help="list built-in dataset replicas")
    datasets.set_defaults(func=_cmd_datasets)

    cache = sub.add_parser(
        "cache",
        help="inspect, empty, or prewarm the persistent sweep-result store",
        description="Manage the on-disk sweep cache (the store that "
        f"${CACHE_DIR_ENV_VAR} / --cache-dir point analyze at). 'stats' "
        "reports entry count, total size, and the eviction cap "
        f"(${CACHE_MAX_BYTES_ENV_VAR}: within each measure eviction "
        "weight, least-recently-used results are swept once the store "
        "outgrows it, cheapest-to-recompute weights first); 'clear' "
        "deletes every entry; 'prewarm EVENTS' replays a sweep spec "
        "into the store so later analyses of the same stream start "
        "fully warm.",
    )
    cache.add_argument("action", choices=("stats", "clear", "prewarm"))
    cache.add_argument(
        "events",
        nargs="?",
        default=None,
        help="event file to prewarm from (prewarm only)",
    )
    cache.add_argument(
        "--cache-dir",
        default=None,
        help=f"cache directory (default: ${CACHE_DIR_ENV_VAR})",
    )
    cache.add_argument("--columns", default="u v t", help="column order (default: 'u v t')")
    cache.add_argument("--format", choices=("tsv", "csv"), default="tsv")
    cache.add_argument("--undirected", action="store_true", help="treat links as undirected")
    cache.add_argument(
        "--num-deltas", type=int, default=40, help="sweep grid size (prewarm)"
    )
    cache.add_argument(
        "--measures",
        default="occupancy",
        help="measure set to prewarm, same syntax as analyze --measures "
        "(default: occupancy)",
    )
    cache.add_argument(
        "--backend",
        choices=available_backends(),
        default=None,
        help=f"sweep execution backend (default: ${ENGINE_ENV_VAR} or 'serial')",
    )
    cache.add_argument(
        "--jobs",
        type=int,
        default=None,
        help="worker threads/processes for --backend thread/process",
    )
    cache.add_argument(
        "--shards",
        default=None,
        help=f"within-delta sharding policy (default: ${SHARDS_ENV_VAR} or 'auto')",
    )
    cache.add_argument(
        "--progress", action="store_true", help="print sweep progress to stderr"
    )
    cache.set_defaults(func=_cmd_cache)
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    except OSError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
