"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``analyze``   detect the saturation scale of an event file and print the
              evidence curve (optionally with validation measures and,
              via ``--measures name[:key=value,...]``, extra measure
              columns — classical parameters, trip samples, component
              histograms, reachability, or any plugin registered through
              :func:`repro.engine.register_measure` — computed from the
              same single scan per window length).
``aggregate`` aggregate an event file at a chosen window and write one
              edge-list row per (window, u, v).
``generate``  produce a synthetic stream (time-uniform, two-mode, or a
              dataset replica) as a TSV event file.
``datasets``  list the built-in dataset replicas and manage the
              out-of-core dataset catalog: ``ingest`` shards an event
              file into sorted ``.npz`` partitions with a JSON manifest,
              ``info`` prints a dataset's manifest summary, ``index``
              rebuilds the manifest from the partition files on disk.
``measures``  introspect the measure registry (``list`` prints every
              registered measure with its parameter schema, types, and
              defaults — entry-point plugins included; ``--format json``
              emits the same records machine-readably).
``lint``      run the project-invariant checker (:mod:`repro.lint`)
              over source paths: cache-key completeness, determinism,
              collector contracts, lock discipline.  Exit code 0 when
              clean, 1 with findings, 2 on usage errors.
``cache``     manage the persistent sweep-result store (``stats`` /
              ``clear`` / ``prewarm``, the last replaying a sweep spec
              into the store so later analyses start warm).
``serve``     run the long-lived analysis daemon (HTTP+JSON): streams
              and sweep caches stay warm across requests, identical
              in-flight requests coalesce, the backlog is bounded.
``submit``    upload an event file to a running daemon and queue an
              analyze job (``--wait`` blocks for the result).
``status``    poll a submitted job.
``fetch``     print a finished job's result — for analyze jobs, the
              text is bit-identical to offline ``repro analyze``.

All files are TSV with columns ``u v t`` unless ``--columns`` says
otherwise.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from collections.abc import Sequence

from repro.core import analyze_stream, log_delta_grid
from repro.datasets import available_datasets, catalog, dataset_spec, load
from repro.engine import (
    CACHE_DIR_ENV_VAR,
    CACHE_MAX_BYTES_ENV_VAR,
    ENTRY_POINT_FAILURES,
    ENTRY_POINT_GROUP,
    DiskStore,
    ENGINE_ENV_VAR,
    SHARDS_ENV_VAR,
    StderrProgress,
    SweepCache,
    SweepEngine,
    available_backends,
    available_measures,
    cache_max_bytes_from_env,
    clear_incremental_store,
    describe_measures,
    incremental_stats,
    parse_measures_arg,
    plan_measure_sweep,
)
from repro.generators import time_uniform_stream, two_mode_stream_by_rho
from repro.graphseries import aggregate as aggregate_stream
from repro.linkstream import read_csv, read_tsv, write_tsv
from repro.linkstream.stream import LinkStream
from repro.reporting import render_analysis
from repro.service import ServiceClient, serve
from repro.storage import partitioned
from repro.utils.errors import ReproError
from repro.utils.timeunits import format_duration, parse_duration


def _read_stream(path: str, columns: str, directed: bool, fmt: str) -> LinkStream:
    reader = read_csv if fmt == "csv" else read_tsv
    return reader(path, columns=columns, directed=directed)


def _build_engine(args: argparse.Namespace) -> SweepEngine:
    """Sweep engine from the ``analyze`` flags (falling back to the
    ``REPRO_ENGINE`` / ``REPRO_CACHE_DIR`` / ``REPRO_CACHE_MAX_BYTES``
    environment defaults)."""
    backend = args.backend or os.environ.get(ENGINE_ENV_VAR) or "serial"
    cache_dir = args.cache_dir or os.environ.get(CACHE_DIR_ENV_VAR) or None
    shards = args.shards or os.environ.get(SHARDS_ENV_VAR) or None
    return SweepEngine(
        backend,
        jobs=args.jobs,
        cache=SweepCache.build(
            disk_dir=cache_dir,
            disk_max_bytes=cache_max_bytes_from_env(),
        ),
        progress=StderrProgress() if args.progress else None,
        shards=shards,
    )


def _render_measures_list() -> str:
    """What ``repro measures list`` / ``analyze --measures-list`` print:
    every registered measure with its parameter schema and defaults."""
    records = describe_measures()
    lines = [f"registered measures ({len(records)}):", ""]
    for record in records:
        feeds = []
        if record["scans"]:
            feeds.append("scan")
        if record["has_payload"]:
            feeds.append("series")
        suffix = f"  [{'+'.join(feeds)}]" if feeds else ""
        lines.append(f"  {record['name']:<14} {record['summary']}{suffix}")
        if record["params"]:
            for param in record["params"]:
                lines.append(
                    f"{'':17}{param['name']}: {param['type']} "
                    f"= {param['default']!r}"
                )
        else:
            lines.append(f"{'':17}(no parameters)")
    lines.append("")
    lines.append(
        "each measure is spelled name[:key=value,...] in --measures; "
        "installed packages can add more via the "
        f"{ENTRY_POINT_GROUP!r} entry-point group"
    )
    if ENTRY_POINT_FAILURES:
        lines.append("")
        lines.append("broken entry points (skipped):")
        for name, message in ENTRY_POINT_FAILURES:
            lines.append(f"  {name}: {message}")
    return "\n".join(lines)


def _cmd_measures(args: argparse.Namespace) -> int:
    # Only one action today ("list"); argparse enforces the choice.
    if args.format == "json":
        print(json.dumps(describe_measures(), indent=2))
    else:
        print(_render_measures_list())
    return 0


def _cmd_lint(args: argparse.Namespace) -> int:
    from repro.lint import all_rules, lint_paths, render_json, render_text

    if args.list_rules:
        for rule_cls in all_rules():
            print(f"{rule_cls.id:<28} {rule_cls.summary}")
        return 0
    paths = args.paths or [os.path.dirname(os.path.abspath(__file__))]
    result = lint_paths(paths, rule_ids=args.rules or None)
    if args.format == "json":
        print(render_json(result))
    else:
        print(render_text(result))
    return 0 if result.ok else 1


def _cmd_analyze(args: argparse.Namespace) -> int:
    if args.measures_list:
        print(_render_measures_list())
        return 0
    if args.events is None:
        raise ReproError("analyze needs an event file (or --measures-list)")
    stream = _read_stream(args.events, args.columns, not args.undirected, args.format)
    measures = parse_measures_arg(args.measures)
    with _build_engine(args) as engine:
        report = analyze_stream(
            stream,
            validate=args.validate,
            measures=measures,
            num_deltas=args.num_deltas,
            method=args.method,
            refine_rounds=args.refine,
            engine=engine,
        )
    # One renderer, shared with the analysis service — that sharing is
    # what keeps served responses bit-identical to this output.
    print(render_analysis(report))
    return 0


def _cmd_aggregate(args: argparse.Namespace) -> int:
    stream = _read_stream(args.events, args.columns, not args.undirected, args.format)
    delta = parse_duration(args.delta)
    series = aggregate_stream(stream, delta)
    with open(args.output, "w", encoding="utf-8") as handle:
        handle.write("# window\tu\tv\n")
        for step, us, vs in series.edge_groups():
            for u, v in zip(us.tolist(), vs.tolist()):
                handle.write(f"{step}\t{stream.label_of(u)}\t{stream.label_of(v)}\n")
    print(
        f"aggregated {stream.num_events} events at delta = "
        f"{format_duration(delta)}: {series.num_steps} windows, "
        f"{series.num_edges_total} edges -> {args.output}"
    )
    return 0


def _cmd_generate(args: argparse.Namespace) -> int:
    if args.family == "uniform":
        stream = time_uniform_stream(
            args.nodes, args.links_per_pair, args.span, seed=args.seed
        )
    elif args.family == "two-mode":
        stream = two_mode_stream_by_rho(
            args.nodes,
            args.links_per_pair,
            max(args.links_per_pair // 10, 1),
            args.span,
            args.rho,
            seed=args.seed,
        )
    else:  # a dataset replica
        stream = load(args.family, scale=args.scale, seed=args.seed)
    write_tsv(stream, args.output)
    print(f"wrote {stream.num_events} events ({stream.num_nodes} nodes) to {args.output}")
    return 0


def _resolve_cache_dir(args: argparse.Namespace) -> str:
    cache_dir = args.cache_dir or os.environ.get(CACHE_DIR_ENV_VAR) or None
    if cache_dir is None:
        raise ReproError(
            f"no cache directory: pass --cache-dir or set ${CACHE_DIR_ENV_VAR}"
        )
    return cache_dir


def _cmd_cache(args: argparse.Namespace) -> int:
    if args.action == "prewarm":
        return _cache_prewarm(args)
    if args.events is not None:
        raise ReproError(
            f"'cache {args.action}' takes no event file (only 'cache "
            "prewarm' replays a sweep)"
        )
    cache_dir = _resolve_cache_dir(args)
    if not os.path.isdir(cache_dir):
        # Inspecting or clearing must never mkdir: a typo'd path would
        # otherwise report a convincing empty store (and leave the stray
        # directory behind) while the real cache sits elsewhere.
        raise ReproError(f"cache directory does not exist: {cache_dir}")
    store = DiskStore(cache_dir, max_bytes=cache_max_bytes_from_env())
    if args.action == "stats":
        stats = store.stats()
        cap = (
            f"{stats['max_bytes']} bytes"
            if stats["max_bytes"] is not None
            else f"none (set ${CACHE_MAX_BYTES_ENV_VAR} to cap)"
        )
        print(f"cache directory: {store.directory}")
        print(f"entries: {stats['entries']}")
        print(f"size: {stats['bytes']} bytes")
        print(f"size cap: {cap}")
        inc = incremental_stats()
        print(
            f"incremental store (this process): {inc['streams']} streams, "
            f"{inc['scan_records']} scan records, {inc['nbytes']} bytes "
            f"(cap {inc['max_bytes']})"
        )
    else:  # clear
        removed = store.clear()
        clear_incremental_store()
        print(f"removed {removed} cached results from {store.directory}")
    return 0


def _cache_prewarm(args: argparse.Namespace) -> int:
    """Replay a sweep spec into the disk store so later runs start warm.

    Exactly the sweep ``analyze`` would run (same grid policy, same
    fused per-Δ tasks, same per-measure cache keys), minus the report:
    every per-measure result lands in the persistent store, so the next
    ``analyze`` — or any API sweep over the same stream and measures —
    is served without a single scan.
    """
    if args.events is None:
        raise ReproError(
            "cache prewarm needs an event file: "
            "repro cache prewarm EVENTS --cache-dir DIR [--measures ...]"
        )
    # Prewarm requires a concrete store; once resolved, the engine is
    # built by the same path analyze uses (one wiring to maintain).
    args.cache_dir = _resolve_cache_dir(args)
    stream = _read_stream(args.events, args.columns, not args.undirected, args.format)
    measures = parse_measures_arg(args.measures)
    deltas = log_delta_grid(stream, num=args.num_deltas)
    tasks = plan_measure_sweep(deltas, measures)
    with _build_engine(args) as engine:
        engine.run(stream, tasks)
        store = engine.cache.stores[-1]
        stats = store.stats()
    print(
        f"prewarmed {len(tasks)} window lengths x {len(measures)} measures "
        f"({', '.join(m.name for m in measures)}) from {args.events}"
    )
    print(
        f"cache directory: {store.directory} — {stats['entries']} entries, "
        f"{stats['bytes']} bytes"
    )
    return 0


def _cmd_datasets(args: argparse.Namespace) -> int:
    action = args.action
    if action == "list":
        return _cmd_datasets_list(args)
    if action == "info":
        return _cmd_datasets_info(args)
    if action == "ingest":
        return _cmd_datasets_ingest(args)
    if action == "index":
        return _cmd_datasets_index(args)
    raise ReproError(f"unknown datasets action {action!r}")


def _catalog_root_or_none(args: argparse.Namespace) -> str | None:
    if args.root is not None:
        return args.root
    return os.environ.get(catalog.CATALOG_ROOT_ENV_VAR) or None


def _print_catalog_summary(info: dict) -> None:
    window = (
        f" over [{info['t_min']}, {info['t_max']}]"
        if info["t_min"] is not None
        else ""
    )
    print(
        f"  {info['name']:>14}: {info['nodes']} nodes, "
        f"{info['events']} events{window}; "
        f"{info['partitions']} partitions, "
        f"{'directed' if info['directed'] else 'undirected'}"
    )


def _cmd_datasets_list(args: argparse.Namespace) -> int:
    print("built-in dataset replicas (paper Section 5):")
    for name in available_datasets():
        spec = dataset_spec(name)
        print(
            f"  {name:>14}: {spec.full.num_nodes} nodes, "
            f"{spec.full.num_events} events over {spec.full.span_days:g} days; "
            f"activity {spec.activity_paper}/person/day, "
            f"paper gamma {spec.gamma_paper_hours:g} h"
        )
    root = _catalog_root_or_none(args)
    if root is None:
        print(
            "\nno dataset catalog configured "
            f"(set {catalog.CATALOG_ROOT_ENV_VAR} or pass --root to list "
            "ingested datasets)"
        )
        return 0
    entries = catalog.list_datasets(root)
    print(f"\ncatalog datasets under {root}:")
    if not entries:
        print("  (none ingested yet — see `repro datasets ingest`)")
    for info in entries:
        _print_catalog_summary(info)
    return 0


def _cmd_datasets_info(args: argparse.Namespace) -> int:
    if not args.target:
        raise ReproError("datasets info needs a dataset name")
    root = catalog.catalog_root(_catalog_root_or_none(args))
    info = catalog.dataset_info(args.target, root=root)
    for key in (
        "name",
        "events",
        "timestamps",
        "nodes",
        "directed",
        "time_dtype",
        "t_min",
        "t_max",
        "partitions",
        "fingerprint",
        "manifest_digest",
    ):
        print(f"{key:>16}: {info[key]}")
    if args.verify:
        stream = catalog.open_dataset(args.target, root=root, verify=True)
        # Touching the columns forces every partition through its
        # content-hash check; corruption raises naming the file.
        stream.storage.columns()
        print(f"{'verify':>16}: all {info['partitions']} partitions ok")
    return 0


def _cmd_datasets_ingest(args: argparse.Namespace) -> int:
    if not args.target:
        raise ReproError("datasets ingest needs a dataset name")
    if not args.events:
        raise ReproError("datasets ingest needs --events <file>")
    root = catalog.catalog_root(_catalog_root_or_none(args))
    manifest = catalog.ingest_file(
        args.events,
        args.target,
        root=root,
        fmt=args.format,
        columns=args.columns,
        directed=not args.undirected,
        partition_events=args.partition_events,
        overwrite=args.force,
    )
    print(
        f"ingested {args.events} as {args.target!r}: "
        f"{manifest['num_events']} events, {manifest['num_nodes']} nodes, "
        f"{len(manifest['partitions'])} partitions under "
        f"{catalog.dataset_dir(args.target, root)}"
    )
    print(f"     fingerprint: {manifest['fingerprint']}")
    print(f" manifest digest: {manifest['manifest_digest']}")
    return 0


def _cmd_datasets_index(args: argparse.Namespace) -> int:
    if not args.target:
        raise ReproError("datasets index needs a dataset name")
    root = catalog.catalog_root(_catalog_root_or_none(args))
    manifest = catalog.reindex_dataset(args.target, root=root)
    print(
        f"reindexed {args.target!r}: {manifest['num_events']} events in "
        f"{len(manifest['partitions'])} partitions"
    )
    print(f"     fingerprint: {manifest['fingerprint']}")
    print(f" manifest digest: {manifest['manifest_digest']}")
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    print(
        f"repro analysis daemon listening on http://{args.host}:{args.port} "
        f"(backend {args.backend}, {args.runners} runners, "
        f"backlog limit {args.max_pending})",
        file=sys.stderr,
    )
    serve(
        args.host,
        args.port,
        backend=args.backend,
        jobs=args.jobs,
        runners=args.runners,
        max_pending=args.max_pending,
        default_timeout=args.timeout,
        cache_dir=args.cache_dir or os.environ.get(CACHE_DIR_ENV_VAR) or None,
        verbose=args.verbose,
    )
    return 0


def _cmd_submit(args: argparse.Namespace) -> int:
    client = ServiceClient(args.url)
    fingerprint = client.upload_stream(
        args.events,
        columns=args.columns,
        fmt=args.format,
        directed=not args.undirected,
    )
    job = client.analyze(
        fingerprint,
        measures=args.measures,
        num_deltas=args.num_deltas,
        method=args.method,
        refine=args.refine,
        validate=args.validate,
        timeout=args.timeout,
    )
    if args.wait is not None:
        print(client.fetch(job["job_id"], wait=args.wait)["text"])
        return 0
    coalesced = " (coalesced onto an in-flight request)" if job["coalesced"] else ""
    print(f"job {job['job_id']}: {job['state']}{coalesced}")
    print(f"stream {fingerprint}")
    print(f"fetch with: repro fetch {job['job_id']} --url {args.url}")
    return 0


def _cmd_append(args: argparse.Namespace) -> int:
    """Stream an event batch into a registered stream on the daemon.

    Events are sent as parsed ``[u, v, t]`` triples; node fields that
    parse as integers are sent as indices, anything else as labels for
    the daemon to resolve against the registered stream.  Timestamps
    keep their integer-ness so appends onto integer-timestamped streams
    stay integer.
    """

    def node(field: str):
        try:
            return int(field)
        except ValueError:
            return field

    def timestamp(field: str):
        try:
            return int(field)
        except ValueError:
            return float(field)

    sep = "," if args.format == "csv" else None
    order = args.columns.split()
    events = []
    with open(args.events, encoding="utf-8") as handle:
        for lineno, line in enumerate(handle, 1):
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            fields = [f.strip() for f in line.split(sep)]
            if len(fields) < len(order):
                raise ReproError(
                    f"{args.events}:{lineno}: expected columns "
                    f"{args.columns!r}, got {len(fields)} fields"
                )
            record = dict(zip(order, fields))
            events.append(
                [node(record["u"]), node(record["v"]), timestamp(record["t"])]
            )
    response = ServiceClient(args.url).append(args.fingerprint, events)
    print(f"stream {response['fingerprint']}")
    print(f"parent {response['parent']}")
    print(
        f"appended {response['appended']} events "
        f"({response['num_events']} total, {response['num_nodes']} nodes)"
    )
    print(
        f"analyze with: repro submit --url {args.url} ... or the "
        f"new fingerprint above"
    )
    return 0


def _cmd_status(args: argparse.Namespace) -> int:
    client = ServiceClient(args.url)
    payload = client.status(args.job) if args.job else {"jobs": client.jobs()}
    print(json.dumps(payload, indent=2))
    return 0


def _cmd_fetch(args: argparse.Namespace) -> int:
    result = ServiceClient(args.url).fetch(args.job, wait=args.wait)
    if result.get("kind") == "analyze":
        # The same bytes `repro analyze` would print for this stream.
        print(result["text"])
    else:
        print(json.dumps(result, indent=2))
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Saturation-scale analysis of link streams (CoNEXT 2015 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add_io_options(
        p: argparse.ArgumentParser, *, optional_events: bool = False
    ) -> None:
        if optional_events:
            p.add_argument(
                "events",
                nargs="?",
                default=None,
                help="event file (one interaction per line)",
            )
        else:
            p.add_argument("events", help="event file (one interaction per line)")
        p.add_argument("--columns", default="u v t", help="column order (default: 'u v t')")
        p.add_argument("--format", choices=("tsv", "csv"), default="tsv")
        p.add_argument("--undirected", action="store_true", help="treat links as undirected")

    analyze = sub.add_parser("analyze", help="detect the saturation scale")
    add_io_options(analyze, optional_events=True)
    analyze.add_argument(
        "--measures-list",
        action="store_true",
        dest="measures_list",
        help="print every registered measure with its parameter schema, "
        "types, and defaults, then exit (no event file needed)",
    )
    analyze.add_argument("--num-deltas", type=int, default=40, help="sweep grid size")
    analyze.add_argument("--method", default="mk", help="selection statistic (mk/std/cre/shannonK)")
    analyze.add_argument("--refine", type=int, default=0, help="refinement rounds")
    analyze.add_argument("--validate", action="store_true", help="also run Section 8 loss measures")
    analyze.add_argument(
        "--measures",
        default="occupancy",
        help="comma-separated measures to evaluate at every window length "
        f"({','.join(available_measures())}, plus any measure registered "
        "at runtime via repro.engine.register_measure); each entry is "
        "name[:key=value,...] with further key=value items riding the "
        "following commas (e.g. 'occupancy,trips:max_samples=64,seed=3'); "
        "the whole set is computed from ONE aggregation and ONE backward "
        "scan per delta (the fused measure pipeline), so extra measures "
        "cost no extra sweep; 'occupancy' is required (it selects "
        "gamma). Default: occupancy",
    )
    analyze.add_argument(
        "--backend",
        choices=available_backends(),
        default=None,
        help=f"sweep execution backend (default: ${ENGINE_ENV_VAR} or 'serial')",
    )
    analyze.add_argument(
        "--jobs",
        type=int,
        default=None,
        help="worker threads/processes for --backend thread/process "
        "(default: the CPU count)",
    )
    analyze.add_argument(
        "--shards",
        default=None,
        help="within-delta sharding: 'auto' splits a large evaluation "
        "across idle workers when the sweep has fewer deltas than "
        "--jobs (coarse-delta tail, refinement rounds), an integer "
        "forces that many shards per delta, 1 disables; results are "
        f"bit-identical either way (default: ${SHARDS_ENV_VAR} or 'auto')",
    )
    analyze.add_argument(
        "--cache-dir",
        default=None,
        help="persist per-delta sweep results under this directory so warm "
        f"re-runs skip all recomputation (default: ${CACHE_DIR_ENV_VAR})",
    )
    analyze.add_argument(
        "--progress", action="store_true", help="print sweep progress to stderr"
    )
    analyze.set_defaults(func=_cmd_analyze)

    agg = sub.add_parser("aggregate", help="aggregate an event file into a graph series")
    add_io_options(agg)
    agg.add_argument("--delta", required=True, help="window length (e.g. '18h', '3600')")
    agg.add_argument("--output", required=True, help="output TSV (window, u, v)")
    agg.set_defaults(func=_cmd_aggregate)

    gen = sub.add_parser("generate", help="generate a synthetic stream")
    gen.add_argument(
        "family",
        choices=["uniform", "two-mode", *available_datasets()],
        help="synthetic family or dataset replica",
    )
    gen.add_argument("--output", required=True)
    gen.add_argument("--nodes", type=int, default=50)
    gen.add_argument("--links-per-pair", type=int, default=10)
    gen.add_argument("--span", type=float, default=100_000.0)
    gen.add_argument("--rho", type=float, default=0.5, help="two-mode low-activity share")
    gen.add_argument("--scale", choices=("paper", "full"), default="paper")
    gen.add_argument("--seed", type=int, default=0)
    gen.set_defaults(func=_cmd_generate)

    datasets = sub.add_parser(
        "datasets",
        help="list replicas and manage the partitioned dataset catalog",
        description="List the built-in dataset replicas and manage the "
        "out-of-core dataset catalog.  'list' (the default) prints the "
        "replicas plus any ingested catalog datasets; 'ingest' shards an "
        "event file into sorted .npz partitions with a JSON manifest; "
        "'info' prints a dataset's manifest summary (--verify re-hashes "
        "every partition); 'index' rebuilds the manifest from the "
        "partition files on disk.  The catalog root comes from --root or "
        f"the {catalog.CATALOG_ROOT_ENV_VAR} environment variable.",
    )
    datasets.add_argument(
        "action",
        nargs="?",
        default="list",
        choices=("list", "info", "ingest", "index"),
        help="catalog action (default: list)",
    )
    datasets.add_argument(
        "target", nargs="?", help="catalog dataset name (info/ingest/index)"
    )
    datasets.add_argument(
        "--root",
        default=None,
        help="catalog root directory "
        f"(default: ${catalog.CATALOG_ROOT_ENV_VAR})",
    )
    datasets.add_argument(
        "--events", default=None, help="event file to ingest"
    )
    datasets.add_argument(
        "--format",
        choices=("tsv", "csv", "jsonl"),
        default="tsv",
        help="event-file format for ingest (default: tsv)",
    )
    datasets.add_argument(
        "--columns", default="u v t", help="column order (default: 'u v t')"
    )
    datasets.add_argument(
        "--undirected",
        action="store_true",
        help="ingest the stream as undirected",
    )
    datasets.add_argument(
        "--partition-events",
        type=int,
        default=None,
        help="target events per partition "
        f"(default: ${partitioned.PARTITION_EVENTS_ENV_VAR} or "
        f"{partitioned.DEFAULT_PARTITION_EVENTS})",
    )
    datasets.add_argument(
        "--force",
        action="store_true",
        help="replace an existing catalog dataset on ingest",
    )
    datasets.add_argument(
        "--verify",
        action="store_true",
        help="with info: re-hash every partition against the manifest",
    )
    datasets.set_defaults(func=_cmd_datasets)

    measures = sub.add_parser(
        "measures",
        help="introspect the measure registry",
        description="Introspect the measure plugin registry. 'list' "
        "prints every registered measure (built-in and entry-point "
        "plugins alike) with its declarative parameter schema: field "
        "names, types, and defaults — the same schema that validates "
        "--measures name:key=value parameters.",
    )
    measures.add_argument("action", choices=("list",))
    measures.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="output format (json emits the describe_measures() records "
        "verbatim, one object per measure with its parameter schema)",
    )
    measures.set_defaults(func=_cmd_measures)

    lint = sub.add_parser(
        "lint",
        help="check project invariants (determinism, cache keys, "
        "collector contracts, lock discipline)",
        description="Run the AST-based invariant checker over source "
        "paths (default: the installed repro package). Exit code 0 when "
        "clean, 1 when findings remain, 2 on usage errors. Suppress a "
        "finding with a trailing `# repro: ignore[rule-id]` comment.",
    )
    lint.add_argument(
        "paths",
        nargs="*",
        help="files or directories to check (default: the repro package)",
    )
    lint.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="report format",
    )
    lint.add_argument(
        "--rule",
        action="append",
        dest="rules",
        metavar="ID",
        help="run only this rule id (repeatable)",
    )
    lint.add_argument(
        "--list-rules",
        action="store_true",
        help="print the registered rule ids and exit",
    )
    lint.set_defaults(func=_cmd_lint)

    serve_cmd = sub.add_parser(
        "serve",
        help="run the long-lived analysis daemon",
        description="Serve analyses over HTTP+JSON from one warm "
        "process: registered streams, the aggregation memo, and the "
        "sweep-result cache persist across requests, so repeat "
        "analyses are pure cache hits. Identical in-flight requests "
        "coalesce onto one computation; the job backlog is bounded "
        "(full queue: HTTP 429) and each request can carry a deadline "
        "that cancels its pending work.",
    )
    serve_cmd.add_argument("--host", default="127.0.0.1")
    serve_cmd.add_argument("--port", type=int, default=8765)
    serve_cmd.add_argument(
        "--backend",
        default="async",
        choices=available_backends(),
        help="sweep execution backend shared by every request "
        "(default: async — a shared thread pool accepting plans "
        "non-blockingly)",
    )
    serve_cmd.add_argument(
        "--jobs", type=int, default=None, help="backend worker count"
    )
    serve_cmd.add_argument(
        "--runners",
        type=int,
        default=4,
        help="concurrent jobs (each runner drives one job's sweeps "
        "through the shared backend pool; default: 4)",
    )
    serve_cmd.add_argument(
        "--max-pending",
        type=int,
        default=32,
        help="admission limit: queued jobs beyond this are rejected "
        "with HTTP 429 (default: 32)",
    )
    serve_cmd.add_argument(
        "--timeout",
        type=float,
        default=None,
        help="default per-request deadline in seconds (requests may "
        "override; default: none)",
    )
    serve_cmd.add_argument(
        "--cache-dir",
        default=None,
        help=f"persistent sweep cache directory (default: ${CACHE_DIR_ENV_VAR})",
    )
    serve_cmd.add_argument(
        "--verbose", action="store_true", help="log every HTTP request"
    )
    serve_cmd.set_defaults(func=_cmd_serve)

    def add_client_options(p: argparse.ArgumentParser) -> None:
        p.add_argument(
            "--url",
            default="http://127.0.0.1:8765",
            help="daemon address (default: http://127.0.0.1:8765)",
        )

    submit = sub.add_parser(
        "submit",
        help="upload an event file to a running daemon and queue an analyze job",
    )
    add_io_options(submit)
    add_client_options(submit)
    submit.add_argument("--num-deltas", type=int, default=40, help="sweep grid size")
    submit.add_argument("--method", default="mk", help="selection statistic (mk/std/cre/shannonK)")
    submit.add_argument("--refine", type=int, default=0, help="refinement rounds")
    submit.add_argument("--validate", action="store_true", help="also run Section 8 loss measures")
    submit.add_argument(
        "--measures",
        default="occupancy",
        help="measure set, same syntax as analyze --measures (default: occupancy)",
    )
    submit.add_argument(
        "--timeout",
        type=float,
        default=None,
        help="per-request deadline in seconds (past it the daemon "
        "cancels the job's pending work)",
    )
    submit.add_argument(
        "--wait",
        type=float,
        default=None,
        help="block up to this many seconds and print the result "
        "(bit-identical to offline 'repro analyze')",
    )
    submit.set_defaults(func=_cmd_submit)

    append_cmd = sub.add_parser(
        "append",
        help="append an event batch to a stream registered on a running "
        "daemon (warm incremental re-analysis)",
    )
    append_cmd.add_argument(
        "fingerprint", help="registered stream fingerprint (from submit)"
    )
    append_cmd.add_argument("events", help="event file holding the batch to append")
    append_cmd.add_argument(
        "--columns", default="u v t", help="column order (default: 'u v t')"
    )
    append_cmd.add_argument("--format", choices=("tsv", "csv"), default="tsv")
    add_client_options(append_cmd)
    append_cmd.set_defaults(func=_cmd_append)

    status = sub.add_parser("status", help="poll a submitted job")
    status.add_argument("job", nargs="?", default=None, help="job id (default: list every job)")
    add_client_options(status)
    status.set_defaults(func=_cmd_status)

    fetch = sub.add_parser("fetch", help="print a finished job's result")
    fetch.add_argument("job", help="job id")
    add_client_options(fetch)
    fetch.add_argument(
        "--wait",
        type=float,
        default=None,
        help="long-poll up to this many seconds for the job to finish",
    )
    fetch.set_defaults(func=_cmd_fetch)

    cache = sub.add_parser(
        "cache",
        help="inspect, empty, or prewarm the persistent sweep-result store",
        description="Manage the on-disk sweep cache (the store that "
        f"${CACHE_DIR_ENV_VAR} / --cache-dir point analyze at). 'stats' "
        "reports entry count, total size, and the eviction cap "
        f"(${CACHE_MAX_BYTES_ENV_VAR}: within each measure eviction "
        "weight, least-recently-used results are swept once the store "
        "outgrows it, cheapest-to-recompute weights first); 'clear' "
        "deletes every entry; 'prewarm EVENTS' replays a sweep spec "
        "into the store so later analyses of the same stream start "
        "fully warm.",
    )
    cache.add_argument("action", choices=("stats", "clear", "prewarm"))
    cache.add_argument(
        "events",
        nargs="?",
        default=None,
        help="event file to prewarm from (prewarm only)",
    )
    cache.add_argument(
        "--cache-dir",
        default=None,
        help=f"cache directory (default: ${CACHE_DIR_ENV_VAR})",
    )
    cache.add_argument("--columns", default="u v t", help="column order (default: 'u v t')")
    cache.add_argument("--format", choices=("tsv", "csv"), default="tsv")
    cache.add_argument("--undirected", action="store_true", help="treat links as undirected")
    cache.add_argument(
        "--num-deltas", type=int, default=40, help="sweep grid size (prewarm)"
    )
    cache.add_argument(
        "--measures",
        default="occupancy",
        help="measure set to prewarm, same syntax as analyze --measures "
        "(default: occupancy)",
    )
    cache.add_argument(
        "--backend",
        choices=available_backends(),
        default=None,
        help=f"sweep execution backend (default: ${ENGINE_ENV_VAR} or 'serial')",
    )
    cache.add_argument(
        "--jobs",
        type=int,
        default=None,
        help="worker threads/processes for --backend thread/process",
    )
    cache.add_argument(
        "--shards",
        default=None,
        help=f"within-delta sharding policy (default: ${SHARDS_ENV_VAR} or 'auto')",
    )
    cache.add_argument(
        "--progress", action="store_true", help="print sweep progress to stderr"
    )
    cache.set_defaults(func=_cmd_cache)
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    except OSError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
