"""Cache-key completeness rules.

A measure's cache identity is derived mechanically from its frozen
dataclass fields (``MeasureSpec.token()`` folds every ``params()``
entry into the key).  The failure mode these rules target is the PR-4
``include_isolated`` bug: a "parameter" added as a plain class
attribute is invisible to ``params()``, so two specs with different
behavior share one cache entry and poison each other's results.
"""

from __future__ import annotations

import ast

from repro.lint.base import (
    ModuleContext,
    Rule,
    dotted_name,
    iter_methods,
    register_rule,
)
from repro.lint.findings import Finding

#: Class attributes the MeasureSpec contract defines as plain (non-field)
#: class-level configuration.  Everything else assigned without an
#: annotation on a spec subclass is a latent cache-key hole.
CONTRACT_ATTRS = frozenset(
    {"scans", "has_payload", "scoring_fields", "cache_weight"}
)

_KEY_BUILDER_NAMES = frozenset({"cache_key", "measure_key"})


def _base_names(node: ast.ClassDef) -> list[str]:
    names = []
    for base in node.bases:
        name = dotted_name(base)
        if name is not None:
            names.append(name.split(".")[-1])
    return names


def _measure_spec_classes(tree: ast.Module) -> list[ast.ClassDef]:
    """Classes deriving (transitively, within this module) from MeasureSpec."""

    classes = [node for node in ast.walk(tree) if isinstance(node, ast.ClassDef)]
    spec_names = {"MeasureSpec"}
    # Fixed point over same-module inheritance chains.
    changed = True
    while changed:
        changed = False
        for node in classes:
            if node.name in spec_names:
                continue
            if any(base in spec_names for base in _base_names(node)):
                spec_names.add(node.name)
                changed = True
    return [node for node in classes if node.name in spec_names and node.name != "MeasureSpec"]


def _annotated_fields(node: ast.ClassDef) -> set[str]:
    """Dataclass field names: annotated, non-ClassVar class-body targets."""

    fields: set[str] = set()
    for stmt in node.body:
        if not isinstance(stmt, ast.AnnAssign):
            continue
        if not isinstance(stmt.target, ast.Name):
            continue
        annotation = ast.unparse(stmt.annotation)
        if "ClassVar" in annotation:
            continue
        fields.add(stmt.target.id)
    return fields


def _inherited_fields(
    node: ast.ClassDef, by_name: dict[str, ast.ClassDef]
) -> set[str]:
    """Annotated fields of ``node`` plus same-module ancestors."""

    fields = set()
    seen: set[str] = set()
    stack = [node]
    while stack:
        current = stack.pop()
        if current.name in seen:
            continue
        seen.add(current.name)
        fields |= _annotated_fields(current)
        for base in _base_names(current):
            parent = by_name.get(base)
            if parent is not None:
                stack.append(parent)
    return fields


@register_rule
class UnhashedFieldRule(Rule):
    """Plain class attributes on MeasureSpec subclasses escape the cache key."""

    id = "cache-key-unhashed-field"
    summary = "MeasureSpec attribute not hashed into the cache key"
    hint = (
        "make it an annotated dataclass field (hashed by token()), annotate "
        "it as ClassVar[...] if it is genuinely class-level configuration, "
        "or use one of the contract attrs (scans/has_payload/scoring_fields/"
        "cache_weight)"
    )

    def check(self, module: ModuleContext) -> list[Finding]:
        findings: list[Finding] = []
        for node in _measure_spec_classes(module.tree):
            for stmt in node.body:
                if isinstance(stmt, ast.Assign):
                    for target in stmt.targets:
                        if not isinstance(target, ast.Name):
                            continue
                        name = target.id
                        if name in CONTRACT_ATTRS or name.startswith("_"):
                            continue
                        findings.append(
                            self.finding(
                                module,
                                stmt,
                                f"{node.name}.{name} is a plain class "
                                "attribute: it will not be hashed by "
                                "token(), so specs differing only in "
                                f"{name!r} collide in the cache",
                            )
                        )
            findings.extend(self._check_token_overrides(module, node))
        return findings

    def _check_token_overrides(
        self, module: ModuleContext, node: ast.ClassDef
    ) -> list[Finding]:
        findings: list[Finding] = []
        for method in iter_methods(node):
            if method.name not in ("token", "collector_token"):
                continue
            calls_super = False
            uses_params = False
            for child in ast.walk(method):
                if isinstance(child, ast.Call):
                    name = dotted_name(child.func)
                    if name == "super":
                        calls_super = True
                    elif name is not None and name.split(".")[-1] in (
                        "params",
                        "fields",
                        "token",
                        "collector_token",
                        "astuple",
                        "asdict",
                    ):
                        uses_params = True
            if not (calls_super or uses_params):
                findings.append(
                    self.finding(
                        module,
                        method,
                        f"{node.name}.{method.name} neither delegates to "
                        "super() nor derives from params()/fields(); "
                        "hand-rolled keys silently drop new fields",
                    )
                )
        return findings


@register_rule
class ScoringFieldsRule(Rule):
    """scoring_fields entries must name real dataclass fields."""

    id = "cache-key-scoring-fields"
    summary = "scoring_fields entry names no dataclass field"
    hint = (
        "scoring_fields entries must match annotated dataclass fields of "
        "the spec (they are subtracted from collector_token); fix the "
        "name or remove the entry"
    )

    def check(self, module: ModuleContext) -> list[Finding]:
        findings: list[Finding] = []
        classes = _measure_spec_classes(module.tree)
        by_name = {
            node.name: node
            for node in ast.walk(module.tree)
            if isinstance(node, ast.ClassDef)
        }
        for node in classes:
            fields = _inherited_fields(node, by_name)
            for stmt in node.body:
                if not isinstance(stmt, ast.Assign):
                    continue
                targets = [
                    t.id for t in stmt.targets if isinstance(t, ast.Name)
                ]
                if "scoring_fields" not in targets:
                    continue
                if not isinstance(stmt.value, (ast.Tuple, ast.List)):
                    continue
                for element in stmt.value.elts:
                    if not (
                        isinstance(element, ast.Constant)
                        and isinstance(element.value, str)
                    ):
                        continue
                    if element.value not in fields:
                        findings.append(
                            self.finding(
                                module,
                                element,
                                f"{node.name}.scoring_fields names "
                                f"{element.value!r}, which is not an "
                                "annotated dataclass field of the spec",
                            )
                        )
        return findings


@register_rule
class KeyVersionRule(Rule):
    """Key builders must fold a ``*_VERSION`` constant into the key."""

    id = "cache-key-version"
    summary = "key builder does not reference a *_VERSION constant"
    hint = (
        "fold an integer *_VERSION module constant into the key payload "
        "(e.g. repr((EVAL_VERSION, ...))) so key-shape changes can be "
        "invalidated by bumping it"
    )

    def check(self, module: ModuleContext) -> list[Finding]:
        findings: list[Finding] = []
        version_values: dict[str, ast.Assign] = {}
        for stmt in module.tree.body:
            if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
                target = stmt.targets[0]
                if isinstance(target, ast.Name) and target.id.endswith("_VERSION"):
                    version_values[target.id] = stmt

        for node in ast.walk(module.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if node.name not in _KEY_BUILDER_NAMES:
                continue
            referenced = {
                child.id
                for child in ast.walk(node)
                if isinstance(child, ast.Name) and child.id.endswith("_VERSION")
            }
            if not referenced:
                findings.append(
                    self.finding(
                        module,
                        node,
                        f"{node.name}() builds a cache key without "
                        "referencing any *_VERSION constant",
                    )
                )
                continue
            for name in sorted(referenced):
                assign = version_values.get(name)
                if assign is None:
                    continue  # imported constant: defined elsewhere
                value = assign.value
                if not (
                    isinstance(value, ast.Constant)
                    and isinstance(value.value, int)
                    and not isinstance(value.value, bool)
                ):
                    findings.append(
                        self.finding(
                            module,
                            assign,
                            f"{name} must be a literal int so bumps are "
                            "reviewable; found a computed value",
                        )
                    )
        return findings
