"""Determinism rules for the evaluation paths.

Scope: modules under ``engine/``, ``temporal/``, ``graphseries/``,
``core/`` and ``storage/`` — everything a Δ evaluation's result can
flow through, including the stream-storage backends whose column loads
and fingerprints feed every cache key.  The contract is that results
are pure functions of the stream and the parameters: same input, same
bits, on every backend and shard layout.
"""

from __future__ import annotations

import ast

from repro.lint.base import (
    ContextVisitor,
    ModuleContext,
    Rule,
    dotted_name,
    iter_methods,
    register_rule,
)
from repro.lint.findings import Finding

_SCOPE = ("engine", "temporal", "graphseries", "core", "storage")


class _DeterminismRule(Rule):
    def applies(self, module: ModuleContext) -> bool:
        return module.has_component(*_SCOPE)


def _is_set_annotation(annotation: ast.expr) -> bool:
    if isinstance(annotation, ast.Name):
        return annotation.id in ("set", "frozenset", "Set", "FrozenSet")
    if isinstance(annotation, ast.Subscript):
        return _is_set_annotation(annotation.value)
    if isinstance(annotation, ast.Attribute):
        return annotation.attr in ("Set", "FrozenSet")
    return False


def _is_dict_of_set_annotation(annotation: ast.expr) -> bool:
    if not isinstance(annotation, ast.Subscript):
        return False
    base = annotation.value
    base_name = base.id if isinstance(base, ast.Name) else getattr(base, "attr", "")
    if base_name not in ("dict", "Dict", "defaultdict", "DefaultDict"):
        return False
    if isinstance(annotation.slice, ast.Tuple) and len(annotation.slice.elts) == 2:
        return _is_set_annotation(annotation.slice.elts[1])
    return False


def _is_set_constructor(node: ast.expr) -> bool:
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        name = dotted_name(node.func)
        return name in ("set", "frozenset")
    return False


def _scope_nodes(owner: ast.AST):
    """Yield nodes lexically in ``owner``'s scope, skipping nested defs."""

    body = owner.body if hasattr(owner, "body") else []
    stack = list(body)
    while stack:
        node = stack.pop()
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            continue
        yield node
        stack.extend(ast.iter_child_nodes(node))


class _ScopeSets:
    """Per-function (or module) tracking of which names hold sets."""

    def __init__(self) -> None:
        self.set_vars: set[str] = set()
        self.dict_of_set_vars: set[str] = set()

    def observe(self, stmt: ast.stmt) -> None:
        if isinstance(stmt, ast.AnnAssign) and isinstance(stmt.target, ast.Name):
            if _is_set_annotation(stmt.annotation):
                self.set_vars.add(stmt.target.id)
            elif _is_dict_of_set_annotation(stmt.annotation):
                self.dict_of_set_vars.add(stmt.target.id)
        elif isinstance(stmt, ast.Assign):
            if _is_set_constructor(stmt.value):
                for target in stmt.targets:
                    if isinstance(target, ast.Name):
                        self.set_vars.add(target.id)

    def observe_args(self, args: ast.arguments) -> None:
        for arg in [*args.posonlyargs, *args.args, *args.kwonlyargs]:
            if arg.annotation is None:
                continue
            if _is_set_annotation(arg.annotation):
                self.set_vars.add(arg.arg)
            elif _is_dict_of_set_annotation(arg.annotation):
                self.dict_of_set_vars.add(arg.arg)

    def is_set_expr(self, node: ast.expr) -> bool:
        if _is_set_constructor(node):
            return True
        if isinstance(node, ast.Name):
            return node.id in self.set_vars
        if isinstance(node, ast.Subscript) and isinstance(node.value, ast.Name):
            return node.value.id in self.dict_of_set_vars
        return False


@register_rule
class UnsortedSetIterationRule(_DeterminismRule):
    """Iterating a set without sorted() leaks hash order into results."""

    id = "unsorted-set-iteration"
    summary = "iteration over a set without sorted()"
    hint = (
        "wrap the iterable in sorted(...) — set order varies across "
        "processes (PYTHONHASHSEED), so anything folded from it in order "
        "stops being bit-identical across backends"
    )

    def check(self, module: ModuleContext) -> list[Finding]:
        findings: list[Finding] = []
        owners: list[ast.AST] = [module.tree] + [
            node
            for node in ast.walk(module.tree)
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
        ]
        for owner in owners:
            scope = _ScopeSets()
            if isinstance(owner, (ast.FunctionDef, ast.AsyncFunctionDef)):
                scope.observe_args(owner.args)
            nodes = list(_scope_nodes(owner))
            for node in nodes:
                if isinstance(node, ast.stmt):
                    scope.observe(node)
            candidates: list[ast.expr] = []
            for node in nodes:
                if isinstance(node, (ast.For, ast.AsyncFor)):
                    candidates.append(node.iter)
                elif isinstance(
                    node, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)
                ):
                    candidates.extend(comp.iter for comp in node.generators)
            for candidate in candidates:
                if scope.is_set_expr(candidate):
                    findings.append(
                        self.finding(
                            module,
                            candidate,
                            "iterating a set — order is hash-dependent "
                            "and varies across processes",
                        )
                    )
        return findings


#: Call targets that inject process-local or wall-clock state.
_BANNED_DOTTED = frozenset({"time.time"})
_BANNED_BARE = frozenset({"id", "hash"})
_BANNED_PREFIXES = ("random.", "np.random.", "numpy.random.")


@register_rule
class NondeterministicCallRule(_DeterminismRule):
    """random/time.time/id/hash in evaluation paths."""

    id = "nondeterministic-call"
    summary = "nondeterministic call in an evaluation path"
    hint = (
        "route randomness through repro.utils.rng (seeded generators), "
        "clocks through time.monotonic/perf_counter on explicit "
        "instrumentation paths, and never fold id()/hash() into results "
        "or keys — both vary per process"
    )

    def check(self, module: ModuleContext) -> list[Finding]:
        visitor = _NondetVisitor(module, self)
        visitor.visit(module.tree)
        return visitor.findings


class _NondetVisitor(ContextVisitor):
    def __init__(self, module: ModuleContext, rule: Rule) -> None:
        super().__init__(module)
        self.rule = rule
        self.findings: list[Finding] = []

    def visit_Call(self, node: ast.Call) -> None:
        name = dotted_name(node.func)
        if name is not None and self._banned(name):
            self.findings.append(
                self.rule.finding(
                    self.module,
                    node,
                    f"call to {name}() is nondeterministic in an "
                    "evaluation path",
                )
            )
        self.generic_visit(node)

    def _banned(self, name: str) -> bool:
        if name in _BANNED_DOTTED:
            return True
        if any(name.startswith(prefix) for prefix in _BANNED_PREFIXES):
            return True
        if name in _BANNED_BARE:
            func = self.current_function
            # hash() inside __hash__ is the one sanctioned use.
            if func is not None and func.name == "__hash__" and name == "hash":
                return False
            return True
        return False


@register_rule
class FloatAccumulationRule(_DeterminismRule):
    """Float accumulation inside integer-exact collectors."""

    id = "float-accumulation"
    summary = "float accumulation inside an integer-exact collector"
    hint = (
        "collector merges must be integer-exact (float += is "
        "order-dependent, so shard merges stop being bit-identical); "
        "accumulate integer numerators and divide once in finalize"
    )

    _HOT_METHODS = frozenset(
        {
            "record",
            "record_batch",
            "merge",
            "observe_row",
            "observe_rows",
            "close_run",
        }
    )

    def check(self, module: ModuleContext) -> list[Finding]:
        findings: list[Finding] = []
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            method_names = {m.name for m in iter_methods(node)}
            # A collector is anything mergeable that ingests trips — via
            # the per-source record() or the batched record_batch() feed.
            if "merge" not in method_names:
                continue
            if not ({"record", "record_batch"} & method_names):
                continue
            for method in iter_methods(node):
                if method.name not in self._HOT_METHODS:
                    continue
                for child in ast.walk(method):
                    if not isinstance(child, ast.AugAssign):
                        continue
                    if not isinstance(child.op, (ast.Add, ast.Sub)):
                        continue
                    if self._has_float_arithmetic(child.value):
                        findings.append(
                            self.finding(
                                module,
                                child,
                                f"{node.name}.{method.name} accumulates a "
                                "float expression; shard merges will not "
                                "be bit-identical",
                            )
                        )
        return findings

    @staticmethod
    def _has_float_arithmetic(expr: ast.expr) -> bool:
        for node in ast.walk(expr):
            if isinstance(node, ast.BinOp) and isinstance(node.op, ast.Div):
                return True
            if isinstance(node, ast.Constant) and isinstance(node.value, float):
                return True
        return False
