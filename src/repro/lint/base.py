"""Rule framework for :mod:`repro.lint`.

A rule is a class with a kebab-case ``id``, a one-line ``summary``, a
``hint`` (attached to every finding as the suggested fix), an optional
``applies(module)`` scope predicate, and a ``check(module)`` method
returning findings for one parsed module.  Rules that need whole-run
state (e.g. the lock-order graph) accumulate across ``check`` calls
and emit from ``finish()``.

Shared plumbing lives here: :class:`ModuleContext` (one parsed file),
:class:`ContextVisitor` (an :class:`ast.NodeVisitor` that tracks the
enclosing class/function stacks), and small AST helpers used by
several rule families.
"""

from __future__ import annotations

import ast
from typing import Callable, ClassVar, Iterable, Type


class ModuleContext:
    """One source file parsed for linting."""

    def __init__(
        self,
        path: str,
        display: str,
        source: str,
        tree: ast.Module,
        suppressions: dict[int, set[str]],
    ) -> None:
        self.path = path
        self.display = display
        self.source = source
        self.tree = tree
        self.suppressions = suppressions
        # Path components of `display`, extension stripped from the last
        # one, used by rules to scope themselves to subsystems.
        parts = display.replace("\\", "/").split("/")
        if parts and parts[-1].endswith(".py"):
            parts[-1] = parts[-1][: -len(".py")]
        self.components = tuple(part for part in parts if part)

    def has_component(self, *names: str) -> bool:
        return any(name in self.components for name in names)


class Rule:
    """Base class for lint rules."""

    id: ClassVar[str] = ""
    summary: ClassVar[str] = ""
    hint: ClassVar[str] = ""

    def applies(self, module: ModuleContext) -> bool:
        """Whether this rule runs on ``module`` (default: everywhere)."""

        return True

    def check(self, module: ModuleContext) -> list["Finding"]:
        """Return findings for one module."""

        raise NotImplementedError

    def finish(self) -> list["Finding"]:
        """Emit findings that need the whole run (default: none)."""

        return []

    def finding(
        self,
        module: ModuleContext,
        node: ast.AST,
        message: str,
    ) -> "Finding":
        from repro.lint.findings import Finding

        return Finding(
            path=module.display,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0) + 1,
            rule=self.id,
            message=message,
            hint=self.hint,
        )


RULE_REGISTRY: dict[str, Type[Rule]] = {}


def register_rule(cls: Type[Rule]) -> Type[Rule]:
    """Class decorator adding a rule to the global registry."""

    if not cls.id:
        raise ValueError(f"rule {cls.__name__} has no id")
    if cls.id in RULE_REGISTRY:
        raise ValueError(f"duplicate rule id {cls.id!r}")
    RULE_REGISTRY[cls.id] = cls
    return cls


def all_rules() -> list[Type[Rule]]:
    return [RULE_REGISTRY[rule_id] for rule_id in sorted(RULE_REGISTRY)]


class ContextVisitor(ast.NodeVisitor):
    """NodeVisitor tracking the enclosing class and function stacks.

    Subclasses override ``visit_*`` as usual; call
    ``self.generic_visit(node)`` to descend.  ``self.class_stack`` and
    ``self.func_stack`` hold the AST nodes of enclosing definitions.
    """

    def __init__(self, module: ModuleContext) -> None:
        self.module = module
        self.class_stack: list[ast.ClassDef] = []
        self.func_stack: list[ast.FunctionDef | ast.AsyncFunctionDef] = []

    @property
    def current_class(self) -> ast.ClassDef | None:
        return self.class_stack[-1] if self.class_stack else None

    @property
    def current_function(self) -> ast.FunctionDef | ast.AsyncFunctionDef | None:
        return self.func_stack[-1] if self.func_stack else None

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        self.class_stack.append(node)
        try:
            self.generic_visit(node)
        finally:
            self.class_stack.pop()

    def _visit_function(
        self, node: ast.FunctionDef | ast.AsyncFunctionDef
    ) -> None:
        self.func_stack.append(node)
        try:
            self.generic_visit(node)
        finally:
            self.func_stack.pop()

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._visit_function(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._visit_function(node)


def dotted_name(node: ast.AST) -> str | None:
    """Render ``a.b.c`` attribute/name chains; None for anything else."""

    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


_LOCK_FACTORY_SUFFIXES = ("Lock", "RLock", "Condition", "Semaphore")


def is_lock_factory_call(node: ast.AST) -> bool:
    """True for ``threading.Lock()`` / ``RLock()`` / ``Condition(...)``."""

    if not isinstance(node, ast.Call):
        return False
    name = dotted_name(node.func)
    if name is None:
        return False
    return name.split(".")[-1].endswith(_LOCK_FACTORY_SUFFIXES)


def self_attribute_target(node: ast.AST) -> str | None:
    """Attribute name when ``node`` is ``self.<attr>``; None otherwise."""

    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    ):
        return node.attr
    return None


def class_lock_attrs(class_node: ast.ClassDef) -> set[str]:
    """Names of ``self.<attr>`` assigned a lock factory call in ``__init__``.

    Detection is name-agnostic: ``_lock``, ``_size_lock``, ``lock`` all
    count — what matters is that the attribute is bound to
    ``threading.Lock()`` / ``RLock()`` / ``Condition()`` at init time.
    """

    attrs: set[str] = set()
    for item in class_node.body:
        if not isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        if item.name != "__init__":
            continue
        for stmt in ast.walk(item):
            if isinstance(stmt, ast.Assign) and is_lock_factory_call(stmt.value):
                for target in stmt.targets:
                    attr = self_attribute_target(target)
                    if attr is not None:
                        attrs.add(attr)
            elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
                if is_lock_factory_call(stmt.value):
                    attr = self_attribute_target(stmt.target)
                    if attr is not None:
                        attrs.add(attr)
    return attrs


def iter_methods(
    class_node: ast.ClassDef,
) -> Iterable[ast.FunctionDef | ast.AsyncFunctionDef]:
    for item in class_node.body:
        if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield item


def walk_statements(
    body: Iterable[ast.stmt],
    enter_with: Callable[[ast.With], None] | None = None,
    leave_with: Callable[[ast.With], None] | None = None,
) -> Iterable[ast.stmt]:
    """Yield statements depth-first, signalling ``with`` entry/exit.

    Unlike :func:`ast.walk` this keeps lexical ``with`` nesting
    observable, which the lock rules need to know which writes happen
    under which locks.  Nested function definitions are *not*
    descended into (their bodies run later, under their own locking).
    """

    for stmt in body:
        yield stmt
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        if isinstance(stmt, ast.With):
            if enter_with is not None:
                enter_with(stmt)
            yield from walk_statements(stmt.body, enter_with, leave_with)
            if leave_with is not None:
                leave_with(stmt)
            continue
        for child_body in _statement_bodies(stmt):
            yield from walk_statements(child_body, enter_with, leave_with)


def _statement_bodies(stmt: ast.stmt) -> list[list[ast.stmt]]:
    bodies: list[list[ast.stmt]] = []
    for field in ("body", "orelse", "finalbody"):
        value = getattr(stmt, field, None)
        if isinstance(value, list) and value and isinstance(value[0], ast.stmt):
            bodies.append(value)
    for handler in getattr(stmt, "handlers", []) or []:
        bodies.append(handler.body)
    return bodies


# Late import for type checkers only; Finding is used in annotations above.
from repro.lint.findings import Finding  # noqa: E402  (cycle-free: findings imports nothing from base)

__all__ = [
    "ContextVisitor",
    "Finding",
    "ModuleContext",
    "RULE_REGISTRY",
    "Rule",
    "all_rules",
    "class_lock_attrs",
    "dotted_name",
    "is_lock_factory_call",
    "iter_methods",
    "register_rule",
    "self_attribute_target",
    "walk_statements",
]
