"""Collector-contract rules.

Anything with a ``record`` (or batched ``record_batch``) method feeds
the backward scan, and the within-Δ sharding layer (PR 2) may split its
input across workers and fold the shards back together.  That only reassembles bit-identically
when every collector also implements in-place ``merge`` and exposes
``empty`` so zero-trip shards can be recognized — the parity gaps
PR 2 and PR 4 closed by hand on ``OccupancyCollector`` and
``ChainCollector``.
"""

from __future__ import annotations

import ast

from repro.lint.base import (
    ModuleContext,
    Rule,
    dotted_name,
    iter_methods,
    register_rule,
)
from repro.lint.findings import Finding


def _is_protocol(node: ast.ClassDef) -> bool:
    for base in node.bases:
        name = dotted_name(base)
        if name is not None and name.split(".")[-1] == "Protocol":
            return True
    return False


def _collector_classes(tree: ast.Module) -> list[ast.ClassDef]:
    classes = []
    for node in ast.walk(tree):
        if not isinstance(node, ast.ClassDef):
            continue
        if _is_protocol(node):
            continue
        if any(
            method.name in ("record", "record_batch")
            for method in iter_methods(node)
        ):
            classes.append(node)
    return classes


@register_rule
class CollectorContractRule(Rule):
    """record implies merge + the empty property."""

    id = "collector-contract"
    summary = "collector defines record without merge/empty"
    hint = (
        "a class with record() feeds the sharded scan: add an in-place "
        "merge(other) and an `empty` property so shards reassemble and "
        "zero-trip shards are recognizable"
    )

    def check(self, module: ModuleContext) -> list[Finding]:
        findings: list[Finding] = []
        for node in _collector_classes(module.tree):
            methods = {method.name: method for method in iter_methods(node)}
            feed = "record" if "record" in methods else "record_batch"
            if "merge" not in methods:
                findings.append(
                    self.finding(
                        module,
                        node,
                        f"{node.name} defines {feed}() but no merge(); "
                        "sharded scans cannot reassemble it",
                    )
                )
            if "empty" not in methods:
                findings.append(
                    self.finding(
                        module,
                        node,
                        f"{node.name} defines {feed}() but no `empty` "
                        "property; zero-trip shards are undetectable",
                    )
                )
            else:
                empty = methods["empty"]
                decorated_property = any(
                    isinstance(dec, ast.Name) and dec.id == "property"
                    for dec in empty.decorator_list
                )
                if not decorated_property:
                    findings.append(
                        self.finding(
                            module,
                            empty,
                            f"{node.name}.empty must be a @property (the "
                            "merge layer reads it as an attribute)",
                        )
                    )
        return findings


@register_rule
class MergeInPlaceRule(Rule):
    """merge must fold into self, not build a new collector."""

    id = "collector-merge-inplace"
    summary = "collector merge() returns a new object"
    hint = (
        "merge(other) must mutate self in place and return self or None "
        "— the shard fold keeps references to the accumulators it "
        "merges into, so a returned fresh object is silently dropped"
    )

    def check(self, module: ModuleContext) -> list[Finding]:
        findings: list[Finding] = []
        for node in _collector_classes(module.tree):
            for method in iter_methods(node):
                if method.name != "merge":
                    continue
                for child in ast.walk(method):
                    if not isinstance(child, ast.Return):
                        continue
                    value = child.value
                    if value is None:
                        continue
                    if isinstance(value, ast.Constant) and value.value is None:
                        continue
                    if isinstance(value, ast.Name) and value.id == "self":
                        continue
                    findings.append(
                        self.finding(
                            module,
                            child,
                            f"{node.name}.merge returns something other "
                            "than self/None; in-place contract violated",
                        )
                    )
        return findings
