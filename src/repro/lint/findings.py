"""Findings model for :mod:`repro.lint`.

A finding pins one contract violation to a file:line, names the rule
that fired, and carries the rule's fix hint so reports are actionable
without opening the rule source.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class Finding:
    """One rule violation at a specific source location."""

    path: str
    line: int
    col: int
    rule: str
    message: str
    hint: str = ""
    suppressed: bool = False

    def sort_key(self) -> tuple[str, int, int, str]:
        return (self.path, self.line, self.col, self.rule)

    def to_dict(self) -> dict[str, object]:
        record: dict[str, object] = {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "rule": self.rule,
            "message": self.message,
        }
        if self.hint:
            record["hint"] = self.hint
        if self.suppressed:
            record["suppressed"] = True
        return record

    def render(self) -> str:
        text = f"{self.path}:{self.line}:{self.col}: [{self.rule}] {self.message}"
        if self.suppressed:
            text += "  (suppressed)"
        return text
