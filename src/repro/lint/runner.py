"""File discovery and rule execution for :mod:`repro.lint`."""

from __future__ import annotations

import ast
import os
from dataclasses import dataclass, field

from repro.lint.base import RULE_REGISTRY, ModuleContext, Rule
from repro.lint.findings import Finding
from repro.lint.suppress import collect_suppressions, is_suppressed
from repro.utils.errors import ReproError

#: Pseudo-rule id for files that do not parse; never suppressible.
SYNTAX_ERROR_RULE = "syntax-error"


@dataclass
class LintResult:
    """Outcome of one lint run."""

    findings: list[Finding] = field(default_factory=list)
    files_checked: int = 0
    rule_ids: list[str] = field(default_factory=list)

    @property
    def active_findings(self) -> list[Finding]:
        return [f for f in self.findings if not f.suppressed]

    @property
    def suppressed_count(self) -> int:
        return sum(1 for f in self.findings if f.suppressed)

    @property
    def ok(self) -> bool:
        return not self.active_findings


#: Directories never walked into: caches, hidden dirs, and the lint
#: fixture corpus (files that *deliberately* violate rules; the golden
#: test lints them by explicit path).
_SKIP_DIRS = ("__pycache__", "lint_fixtures")


def discover_files(paths: list[str]) -> list[str]:
    """Python files under ``paths``, sorted, skipping ``__pycache__``
    and ``lint_fixtures`` corpora."""

    files: list[str] = []
    for path in paths:
        if os.path.isfile(path):
            files.append(path)
            continue
        if not os.path.isdir(path):
            raise ReproError(f"lint path does not exist: {path}")
        for dirpath, dirnames, filenames in os.walk(path):
            dirnames[:] = sorted(
                d
                for d in dirnames
                if d not in _SKIP_DIRS and not d.startswith(".")
            )
            for filename in sorted(filenames):
                if filename.endswith(".py"):
                    files.append(os.path.join(dirpath, filename))
    # De-duplicate while keeping deterministic order.
    seen: set[str] = set()
    unique: list[str] = []
    for path in sorted(files):
        real = os.path.realpath(path)
        if real not in seen:
            seen.add(real)
            unique.append(path)
    return unique


def _display_path(path: str) -> str:
    try:
        relative = os.path.relpath(path)
    except ValueError:  # pragma: no cover - different drive on windows
        relative = path
    if relative.startswith(".."):
        relative = path
    return relative.replace(os.sep, "/")


def select_rules(rule_ids: list[str] | None) -> list[Rule]:
    """Instantiate the requested rules (all registered rules by default)."""

    if rule_ids:
        unknown = sorted(set(rule_ids) - set(RULE_REGISTRY))
        if unknown:
            known = ", ".join(sorted(RULE_REGISTRY))
            raise ReproError(
                f"unknown lint rule(s): {', '.join(unknown)} (known: {known})"
            )
        selected = sorted(set(rule_ids))
    else:
        selected = sorted(RULE_REGISTRY)
    return [RULE_REGISTRY[rule_id]() for rule_id in selected]


def lint_paths(
    paths: list[str], rule_ids: list[str] | None = None
) -> LintResult:
    """Run the selected rules over every Python file under ``paths``."""

    # Rule modules register on import; make sure they have been imported
    # even when callers reach this function directly.
    import repro.lint  # noqa: F401  (registration side effect)

    rules = select_rules(rule_ids)
    files = discover_files(paths)
    result = LintResult(rule_ids=[rule.id for rule in rules])
    for path in files:
        display = _display_path(path)
        try:
            with open(path, "r", encoding="utf-8") as handle:
                source = handle.read()
        except OSError as error:
            raise ReproError(f"cannot read {display}: {error}") from error
        result.files_checked += 1
        try:
            tree = ast.parse(source, filename=display)
        except SyntaxError as error:
            result.findings.append(
                Finding(
                    path=display,
                    line=error.lineno or 1,
                    col=(error.offset or 0) + 1,
                    rule=SYNTAX_ERROR_RULE,
                    message=f"file does not parse: {error.msg}",
                    hint="fix the syntax error; no other rule ran on this file",
                )
            )
            continue
        module = ModuleContext(
            path=path,
            display=display,
            source=source,
            tree=tree,
            suppressions=collect_suppressions(source),
        )
        for rule in rules:
            if not rule.applies(module):
                continue
            for finding in rule.check(module):
                result.findings.append(
                    _apply_suppression(module.suppressions, finding)
                )
    for rule in rules:
        result.findings.extend(rule.finish())
    result.findings.sort(key=Finding.sort_key)
    return result


def _apply_suppression(
    suppressions: dict[int, set[str]], finding: Finding
) -> Finding:
    if is_suppressed(suppressions, finding.line, finding.rule):
        return Finding(
            path=finding.path,
            line=finding.line,
            col=finding.col,
            rule=finding.rule,
            message=finding.message,
            hint=finding.hint,
            suppressed=True,
        )
    return finding
