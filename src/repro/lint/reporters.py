"""Text and JSON reporters for lint results."""

from __future__ import annotations

import json
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from repro.lint.runner import LintResult


def render_text(result: "LintResult", *, show_suppressed: bool = False) -> str:
    """Human-readable report: one line per finding, hint indented."""

    lines: list[str] = []
    for finding in result.findings:
        if finding.suppressed and not show_suppressed:
            continue
        lines.append(finding.render())
        if finding.hint:
            lines.append(f"    hint: {finding.hint}")
    active = len(result.active_findings)
    summary = (
        f"{result.files_checked} file(s) checked, {active} finding(s)"
    )
    if result.suppressed_count:
        summary += f", {result.suppressed_count} suppressed"
    lines.append(summary)
    return "\n".join(lines)


def render_json(result: "LintResult") -> str:
    """Machine-readable report (stable key order, sorted findings)."""

    payload = {
        "files_checked": result.files_checked,
        "rules": result.rule_ids,
        "findings": [f.to_dict() for f in result.findings if not f.suppressed],
        "suppressed": [f.to_dict() for f in result.findings if f.suppressed],
        "counts": {
            "findings": len(result.active_findings),
            "suppressed": result.suppressed_count,
        },
    }
    return json.dumps(payload, indent=2, sort_keys=False)
