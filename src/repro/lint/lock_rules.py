"""Lock-discipline rules for the concurrency core.

Scope: ``engine/``, ``service/`` and ``storage/`` — the job queue,
caches, backends and the daemon, where one warm process serves many
clients and a missed lock is a data race on shared sweep state, and
the storage backends whose lazily-cached columns are shared across
service threads — plus ``tests/``, so the lock-owning test doubles
(fake backends, counting evaluators, service fixtures) honour the
same discipline instead of rotting into bad examples of it.

Two contracts:

* a class that owns a lock must take it before writing its private
  state (``unlocked-attribute-write``), and
* the process-wide lock *acquisition order* must be acyclic
  (``lock-order-cycle``) — the checker builds an order graph from
  lexical ``with`` nesting plus one level of call resolution and flags
  cycles as deadlock potential.
"""

from __future__ import annotations

import ast
from typing import NamedTuple

from repro.lint.base import (
    ModuleContext,
    Rule,
    class_lock_attrs,
    dotted_name,
    iter_methods,
    register_rule,
    self_attribute_target,
)
from repro.lint.findings import Finding

_SCOPE = ("engine", "service", "tests", "storage")

#: Methods assumed to run with the instance lock already held (convention)
#: or before the instance is shared.
_EXEMPT_METHODS = ("__init__",)
_EXEMPT_SUFFIX = "_locked"


def _with_lock_attr(stmt: ast.With, lock_attrs: set[str]) -> str | None:
    """Lock attribute name when ``stmt`` is ``with self.<lock>:``."""

    for item in stmt.items:
        attr = self_attribute_target(item.context_expr)
        if attr is not None and attr in lock_attrs:
            return attr
    return None


def _write_targets(stmt: ast.stmt) -> list[ast.expr]:
    if isinstance(stmt, ast.Assign):
        return list(stmt.targets)
    if isinstance(stmt, ast.AugAssign):
        return [stmt.target]
    if isinstance(stmt, ast.AnnAssign):
        return [stmt.target]
    if isinstance(stmt, ast.Delete):
        return list(stmt.targets)
    return []


def _self_private_attr(target: ast.expr) -> str | None:
    """Private attribute written through ``self``, seeing through stores.

    Handles ``self._x = ...``, ``self._x += ...``, ``self._x[k] = ...``
    and ``del self._x[k]``.
    """

    node = target
    while isinstance(node, ast.Subscript):
        node = node.value
    attr = self_attribute_target(node)
    if attr is not None and attr.startswith("_"):
        return attr
    return None


@register_rule
class UnlockedAttributeWriteRule(Rule):
    """Private-state writes in lock-owning classes must hold the lock."""

    id = "unlocked-attribute-write"
    summary = "write to private state outside the instance lock"
    hint = (
        "wrap the write in `with self.<lock>:` (or move it to __init__ "
        "before the object is shared; helpers called with the lock held "
        "should be named *_locked)"
    )

    def applies(self, module: ModuleContext) -> bool:
        return module.has_component(*_SCOPE)

    def check(self, module: ModuleContext) -> list[Finding]:
        findings: list[Finding] = []
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            lock_attrs = class_lock_attrs(node)
            if not lock_attrs:
                continue
            for method in iter_methods(node):
                if method.name in _EXEMPT_METHODS or method.name.endswith(
                    _EXEMPT_SUFFIX
                ):
                    continue
                findings.extend(
                    self._check_method(module, node, method, lock_attrs)
                )
        return findings

    def _check_method(
        self,
        module: ModuleContext,
        class_node: ast.ClassDef,
        method: ast.FunctionDef | ast.AsyncFunctionDef,
        lock_attrs: set[str],
    ) -> list[Finding]:
        findings: list[Finding] = []

        def visit(body: list[ast.stmt], held: bool) -> None:
            for stmt in body:
                if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    continue  # runs later, under its own discipline
                for target in _write_targets(stmt):
                    attr = _self_private_attr(target)
                    if attr is None or attr in lock_attrs:
                        continue
                    if not held:
                        findings.append(
                            self.finding(
                                module,
                                stmt,
                                f"{class_node.name}.{method.name} writes "
                                f"self.{attr} without holding "
                                f"self.{sorted(lock_attrs)[0]}",
                            )
                        )
                if isinstance(stmt, ast.With):
                    now_held = held or _with_lock_attr(stmt, lock_attrs) is not None
                    visit(stmt.body, now_held)
                    continue
                for field in ("body", "orelse", "finalbody"):
                    value = getattr(stmt, field, None)
                    if value and isinstance(value[0], ast.stmt):
                        visit(value, held)
                for handler in getattr(stmt, "handlers", []) or []:
                    visit(handler.body, held)

        visit(method.body, held=False)
        return findings


class _LockSite(NamedTuple):
    node: str  # "ClassName.attr"
    display: str
    line: int


@register_rule
class LockOrderCycleRule(Rule):
    """The cross-module lock acquisition order must be acyclic."""

    id = "lock-order-cycle"
    summary = "cyclic lock acquisition order (deadlock potential)"
    hint = (
        "two code paths acquire these locks in opposite orders; pick one "
        "global order (document it where the locks are created) and "
        "restructure one path — e.g. release the first lock before "
        "calling into the other class"
    )

    def __init__(self) -> None:
        # node -> {successor: (display, line)} accumulated across modules.
        self._edges: dict[str, dict[str, tuple[str, int]]] = {}
        # method name -> {class name}; used for one-level call resolution.
        self._method_owners: dict[str, set[str]] = {}
        # class name -> its lock attrs
        self._class_locks: dict[str, set[str]] = {}
        # method acquisitions: (class, method) -> set of lock attrs taken
        self._method_acquires: dict[tuple[str, str], set[str]] = {}
        # pending call edges: (holder_node, callee_method_name, display, line)
        self._pending_calls: list[tuple[str, str, str, int]] = []

    def applies(self, module: ModuleContext) -> bool:
        return module.has_component(*_SCOPE)

    def check(self, module: ModuleContext) -> list[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            lock_attrs = class_lock_attrs(node)
            for method in iter_methods(node):
                self._method_owners.setdefault(method.name, set()).add(node.name)
            if not lock_attrs:
                continue
            self._class_locks[node.name] = lock_attrs
            for method in iter_methods(node):
                self._scan_method(module, node.name, method, lock_attrs)
        return []

    def _scan_method(
        self,
        module: ModuleContext,
        class_name: str,
        method: ast.FunctionDef | ast.AsyncFunctionDef,
        lock_attrs: set[str],
    ) -> None:
        acquired: set[str] = set()

        def visit(body: list[ast.stmt], held: list[str]) -> None:
            for stmt in body:
                if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    continue
                if held:
                    holder = f"{class_name}.{held[-1]}"
                    for child in ast.walk(stmt):
                        if isinstance(child, ast.Call):
                            callee = dotted_name(child.func)
                            if callee is None or "." not in callee:
                                continue
                            self._pending_calls.append(
                                (
                                    holder,
                                    callee.split(".")[-1],
                                    module.display,
                                    child.lineno,
                                )
                            )
                if isinstance(stmt, ast.With):
                    attr = _with_lock_attr(stmt, lock_attrs)
                    if attr is not None:
                        acquired.add(attr)
                        if held:
                            self._add_edge(
                                f"{class_name}.{held[-1]}",
                                f"{class_name}.{attr}",
                                module.display,
                                stmt.lineno,
                            )
                        visit(stmt.body, held + [attr])
                    else:
                        visit(stmt.body, held)
                    continue
                for field in ("body", "orelse", "finalbody"):
                    value = getattr(stmt, field, None)
                    if value and isinstance(value[0], ast.stmt):
                        visit(value, held)
                for handler in getattr(stmt, "handlers", []) or []:
                    visit(handler.body, held)

        visit(method.body, held=[])
        if acquired:
            self._method_acquires[(class_name, method.name)] = acquired

    def _add_edge(self, src: str, dst: str, display: str, line: int) -> None:
        if src == dst:
            return
        self._edges.setdefault(src, {}).setdefault(dst, (display, line))

    def finish(self) -> list[Finding]:
        # Resolve call edges: a call made while holding a lock points at
        # every lock that callee takes — but only when the method name
        # resolves to exactly one analyzed lock-acquiring class, so
        # common names (get, put, run) never produce speculative edges.
        for holder, callee, display, line in self._pending_calls:
            owners = [
                owner
                for owner in self._method_owners.get(callee, ())
                if (owner, callee) in self._method_acquires
            ]
            if len(owners) != 1:
                continue
            owner = owners[0]
            for attr in sorted(self._method_acquires[(owner, callee)]):
                self._add_edge(holder, f"{owner}.{attr}", display, line)

        findings: list[Finding] = []
        for cycle in self._find_cycles():
            display, line = self._edges[cycle[0]][cycle[1]]
            chain = " -> ".join(cycle + (cycle[0],))
            from repro.lint.findings import Finding as _F

            findings.append(
                _F(
                    path=display,
                    line=line,
                    col=1,
                    rule=self.id,
                    message=f"lock acquisition cycle: {chain}",
                    hint=self.hint,
                )
            )
        return findings

    def _find_cycles(self) -> list[tuple[str, ...]]:
        cycles: list[tuple[str, ...]] = []
        seen_cycles: set[frozenset[str]] = set()
        visiting: list[str] = []
        on_path: set[str] = set()
        done: set[str] = set()

        def dfs(node: str) -> None:
            visiting.append(node)
            on_path.add(node)
            for successor in sorted(self._edges.get(node, ())):
                if successor in on_path:
                    start = visiting.index(successor)
                    cycle = tuple(visiting[start:])
                    key = frozenset(cycle)
                    if key not in seen_cycles:
                        seen_cycles.add(key)
                        cycles.append(cycle)
                elif successor not in done:
                    dfs(successor)
            visiting.pop()
            on_path.discard(node)
            done.add(node)

        for node in sorted(self._edges):
            if node not in done:
                dfs(node)
        return cycles
