"""Project-invariant static analysis: ``repro lint``.

The paper's method rests on exact, reproducible quantities —
integer-exact occupancy evidence, bit-identical Δ evaluations whatever
the backend or shard layout — and the engine re-proves those properties
in every test run.  This package turns the conventions those tests rely
on into machine-checked **contracts**: an AST-based checker that walks
``src/repro`` (or any path) and flags code that would silently break
determinism, poison the sweep cache, or deadlock the daemon.

Enforced contracts (rule families)
----------------------------------
**Cache-key completeness** (``cache-key-unhashed-field``,
``cache-key-scoring-fields``, ``cache-key-version``).  A measure's
dataclass fields *are* its cache identity: ``MeasureSpec.token()``
derives from them automatically, so a parameter that is not an
annotated field silently drops out of the cache key — exactly the
``include_isolated``-style shard-key collision PR 4 fixed by hand.
The rules flag plain (unannotated) class-level assignments on
``MeasureSpec`` subclasses, ``scoring_fields`` entries that name no
dataclass field, hand-rolled ``token``/``collector_token`` overrides
that skip fields, and key-builder functions (``cache_key`` /
``measure_key``) that do not fold a ``*_VERSION`` constant into the
key payload.

**Determinism** (``unsorted-set-iteration``, ``nondeterministic-call``,
``float-accumulation``).  In the evaluation paths (``engine/``,
``temporal/``, ``graphseries/``, ``core/``) results must be pure
functions of the stream and the parameters.  The rules flag iteration
over ``set`` values without ``sorted(...)`` (set order varies across
processes), calls to ``random.*`` / ``time.time()`` / ``id()`` /
``hash()`` (randomness must route through :mod:`repro.utils.rng`;
clocks must be explicit and monotonic; ``hash``/``id`` vary per
process), and float accumulation inside collectors whose merge
contract is integer-exact (float sums are order-dependent, so shard
merges would stop being bit-identical).

**Collector contract** (``collector-contract``,
``collector-merge-inplace``).  Any class defining ``record`` feeds the
backward scan and must survive within-Δ sharding: it must also define
an in-place ``merge`` (returning ``self`` or ``None``, never a fresh
object) and the ``empty`` property — the parity gaps PR 2 and PR 4
closed by hand on ``OccupancyCollector`` and ``ChainCollector``.

**Lock discipline** (``unlocked-attribute-write``,
``lock-order-cycle``).  In the concurrency core (``engine/`` and
``service/``), a class that owns a ``threading.Lock`` / ``RLock`` /
``Condition`` must write its private ``self._*`` attributes inside a
``with self.<lock>:`` block (or in ``__init__``, before the object is
shared; helper methods named ``*_locked`` are assumed called with the
lock held).  Across those modules the checker also builds a
lock-acquisition-order graph — an edge for every lock acquired while
another is held, lexically or through a method call — and flags cycles
as deadlock potential.

Suppressions
------------
A finding is silenced by a trailing comment on the flagged line::

    for node in reachable:  # repro: ignore[unsorted-set-iteration] -- order-free fold

Several ids separate with commas (``ignore[rule-a,rule-b]``); every
suppression should carry a short justification after the bracket.
Suppressed findings still count in the reports (``N suppressed``), so
exemptions stay visible.

Writing a new rule
------------------
Subclass :class:`~repro.lint.base.Rule`, give it a kebab-case ``id``,
a one-line ``summary``, and a ``hint`` (the fix suggestion attached to
every finding), implement ``check(module)`` — usually by running an
:class:`ast.NodeVisitor` (see :class:`~repro.lint.base.ContextVisitor`,
which tracks the class/function nesting for you) over
``module.tree`` — and register it with
:func:`~repro.lint.base.register_rule`::

    from repro.lint.base import ContextVisitor, Rule, register_rule

    @register_rule
    class NoPrintRule(Rule):
        id = "no-print"
        summary = "print() in library code"
        hint = "log through the reporting layer instead"

        def check(self, module):
            visitor = _PrintVisitor(module, self)
            visitor.visit(module.tree)
            return visitor.findings

Rules that need whole-run state (like the lock-order graph) accumulate
it across ``check`` calls and emit from ``finish()``.  Scope a rule to
part of the tree by overriding ``applies(module)`` — see
:func:`~repro.lint.base.has_component`.

Running
-------
CLI: ``repro lint [paths ...] [--format text|json] [--rule ID ...]``;
exit code 0 when clean, 1 with findings, 2 on usage errors.  API:
:func:`lint_paths` returns a :class:`~repro.lint.runner.LintResult`.
"""

from __future__ import annotations

from repro.lint.base import RULE_REGISTRY, Rule, all_rules, register_rule
from repro.lint.findings import Finding
from repro.lint.reporters import render_json, render_text
from repro.lint.runner import LintResult, lint_paths

# Importing the rule modules registers the production rules.
from repro.lint import cache_rules as _cache_rules  # noqa: F401
from repro.lint import collector_rules as _collector_rules  # noqa: F401
from repro.lint import determinism_rules as _determinism_rules  # noqa: F401
from repro.lint import lock_rules as _lock_rules  # noqa: F401

__all__ = [
    "Finding",
    "LintResult",
    "RULE_REGISTRY",
    "Rule",
    "all_rules",
    "lint_paths",
    "register_rule",
    "render_json",
    "render_text",
]
