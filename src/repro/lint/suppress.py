"""Inline suppression comments: ``# repro: ignore[rule-id]``.

A finding is suppressed when the flagged line carries a trailing
comment of the form::

    risky_thing()  # repro: ignore[rule-id] -- why this is fine

Multiple ids separate with commas inside the brackets.  Parsing uses
:mod:`tokenize` so string literals that merely *contain* the marker
text never count, and each suppression binds to the exact physical
line its comment starts on.
"""

from __future__ import annotations

import io
import re
import tokenize

_IGNORE_RE = re.compile(r"#\s*repro:\s*ignore\[([A-Za-z0-9_,\s*-]+)\]")


def collect_suppressions(source: str) -> dict[int, set[str]]:
    """Map line number -> set of suppressed rule ids for ``source``."""

    suppressions: dict[int, set[str]] = {}
    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        for token in tokens:
            if token.type != tokenize.COMMENT:
                continue
            match = _IGNORE_RE.search(token.string)
            if match is None:
                continue
            rule_ids = {part.strip() for part in match.group(1).split(",")}
            rule_ids.discard("")
            if rule_ids:
                suppressions.setdefault(token.start[0], set()).update(rule_ids)
    except tokenize.TokenizeError:  # pragma: no cover - source already parsed by ast
        pass
    return suppressions


def is_suppressed(
    suppressions: dict[int, set[str]], line: int, rule_id: str
) -> bool:
    """True when ``rule_id`` (or the wildcard ``*``) is ignored on ``line``."""

    ids = suppressions.get(line)
    if not ids:
        return False
    return rule_id in ids or "*" in ids
