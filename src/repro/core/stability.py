"""Stability analysis of the saturation scale.

γ is the argmax of a statistic estimated from finitely many events, so
any serious use wants an error bar.  This module probes γ's stability
by re-running the occupancy method on random event subsamples
(keep-fraction ``fraction``): if the detected scale is a robust
property of the stream rather than an artefact of particular events,
the subsampled γ values concentrate around the full-stream value.

(A time-block bootstrap would preserve burstiness even better; event
subsampling is the conservative choice — thinning *raises* the true
saturation scale slightly, since sparser streams aggregate safely at
longer windows, and the measured spread absorbs that bias.)
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.saturation import occupancy_method
from repro.engine import engine_scope
from repro.linkstream.operations import subsample_events
from repro.linkstream.stream import LinkStream
from repro.utils.errors import ValidationError
from repro.utils.rng import ensure_rng


@dataclass(frozen=True)
class StabilityResult:
    """γ under repeated event subsampling.

    When the underlying sweeps carried companion measures
    (``gamma_stability(..., measures=("classical", ...))`` — any
    registered measure, plugins included), their results surface here:
    ``companions_full`` holds the full-stream sweep's per-Δ companion
    values (keyed by measure name, aligned with the full sweep's grid),
    and ``companions_at_gamma`` holds, per measure, one value per
    accepted resample — the companion measured **at that resample's γ**,
    from the same aggregation and scan that elected it.  Together they
    say not just how stable γ is, but how stable the companion
    quantities are at the detected scale.
    """

    gamma_full: float
    gammas: np.ndarray
    fraction: float
    companions_full: dict[str, list] = field(default_factory=dict, repr=False)
    companions_at_gamma: dict[str, list] = field(
        default_factory=dict, repr=False
    )

    @property
    def spread_factor(self) -> float:
        """Max/min ratio of subsampled γ values (1 = perfectly stable)."""
        return float(self.gammas.max() / self.gammas.min())

    def quantiles(self, probs=(0.1, 0.5, 0.9)) -> np.ndarray:
        return np.quantile(self.gammas, probs)

    def within_factor(self, factor: float) -> float:
        """Share of subsampled γ within ``factor`` of the full-stream γ."""
        ratio = self.gammas / self.gamma_full
        return float(np.mean((ratio <= factor) & (ratio >= 1.0 / factor)))


def gamma_stability(
    stream: LinkStream,
    *,
    num_resamples: int = 12,
    fraction: float = 0.8,
    seed: int | np.random.Generator | None = 0,
    engine=None,
    **occupancy_kwargs,
) -> StabilityResult:
    """Measure γ on ``num_resamples`` random subsamples of the stream.

    Extra keyword arguments are forwarded to
    :func:`~repro.core.saturation.occupancy_method` (e.g. ``num_deltas``,
    ``method``, ``measures``).  The full-stream γ is computed with the
    same settings.  All sweeps (full and subsampled) share ``engine``, so
    the full-stream sweep is a pure cache hit when the caller already
    analyzed it and repeated stability runs reuse every previously seen
    subsample.

    Companion measures (``measures=("classical",)``, any registered
    measure or spec) ride every subsample sweep — each resample's
    companions come from the very aggregation and backward scan that
    elected its γ, at no extra scan cost — and surface in
    :attr:`StabilityResult.companions_full` /
    :attr:`StabilityResult.companions_at_gamma`.
    """
    if not 0.0 < fraction <= 1.0:
        raise ValidationError("fraction must be in (0, 1]")
    if num_resamples < 2:
        raise ValidationError("need at least two resamples")
    rng = ensure_rng(seed)
    gammas = []
    attempts = 0
    with engine_scope(engine) as eng:
        full = occupancy_method(stream, engine=eng, **occupancy_kwargs)
        companions_at_gamma: dict[str, list] = {
            name: [] for name in full.companions
        }
        while len(gammas) < num_resamples and attempts < 4 * num_resamples:
            attempts += 1
            sample = subsample_events(stream, fraction, seed=rng)
            if sample.num_events < 2 or sample.distinct_timestamps().size < 2:
                continue
            result = occupancy_method(sample, engine=eng, **occupancy_kwargs)
            gammas.append(result.gamma)
            # The index γ was elected at (same argmax as result.gamma).
            at = int(np.argmax(result.scores()))
            for name, values in result.companions.items():
                companions_at_gamma[name].append(values[at])
    if len(gammas) < 2:
        raise ValidationError("subsamples too sparse to measure gamma")
    return StabilityResult(
        gamma_full=full.gamma,
        gammas=np.asarray(gammas),
        fraction=fraction,
        companions_full={k: list(v) for k, v in full.companions.items()},
        companions_at_gamma=companions_at_gamma,
    )
