"""Stability analysis of the saturation scale.

γ is the argmax of a statistic estimated from finitely many events, so
any serious use wants an error bar.  This module probes γ's stability
by re-running the occupancy method on random event subsamples
(keep-fraction ``fraction``): if the detected scale is a robust
property of the stream rather than an artefact of particular events,
the subsampled γ values concentrate around the full-stream value.

(A time-block bootstrap would preserve burstiness even better; event
subsampling is the conservative choice — thinning *raises* the true
saturation scale slightly, since sparser streams aggregate safely at
longer windows, and the measured spread absorbs that bias.)
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.saturation import occupancy_method
from repro.engine import engine_scope
from repro.linkstream.operations import subsample_events
from repro.linkstream.stream import LinkStream
from repro.utils.errors import ValidationError
from repro.utils.rng import ensure_rng


@dataclass(frozen=True)
class StabilityResult:
    """γ under repeated event subsampling."""

    gamma_full: float
    gammas: np.ndarray
    fraction: float

    @property
    def spread_factor(self) -> float:
        """Max/min ratio of subsampled γ values (1 = perfectly stable)."""
        return float(self.gammas.max() / self.gammas.min())

    def quantiles(self, probs=(0.1, 0.5, 0.9)) -> np.ndarray:
        return np.quantile(self.gammas, probs)

    def within_factor(self, factor: float) -> float:
        """Share of subsampled γ within ``factor`` of the full-stream γ."""
        ratio = self.gammas / self.gamma_full
        return float(np.mean((ratio <= factor) & (ratio >= 1.0 / factor)))


def gamma_stability(
    stream: LinkStream,
    *,
    num_resamples: int = 12,
    fraction: float = 0.8,
    seed: int | np.random.Generator | None = 0,
    engine=None,
    **occupancy_kwargs,
) -> StabilityResult:
    """Measure γ on ``num_resamples`` random subsamples of the stream.

    Extra keyword arguments are forwarded to
    :func:`~repro.core.saturation.occupancy_method` (e.g. ``num_deltas``,
    ``method``).  The full-stream γ is computed with the same settings.
    All sweeps (full and subsampled) share ``engine``, so the full-stream
    sweep is a pure cache hit when the caller already analyzed it and
    repeated stability runs reuse every previously seen subsample.
    """
    if not 0.0 < fraction <= 1.0:
        raise ValidationError("fraction must be in (0, 1]")
    if num_resamples < 2:
        raise ValidationError("need at least two resamples")
    rng = ensure_rng(seed)
    gammas = []
    attempts = 0
    with engine_scope(engine) as eng:
        full = occupancy_method(stream, engine=eng, **occupancy_kwargs)
        while len(gammas) < num_resamples and attempts < 4 * num_resamples:
            attempts += 1
            sample = subsample_events(stream, fraction, seed=rng)
            if sample.num_events < 2 or sample.distinct_timestamps().size < 2:
                continue
            result = occupancy_method(sample, engine=eng, **occupancy_kwargs)
            gammas.append(result.gamma)
    if len(gammas) < 2:
        raise ValidationError("subsamples too sparse to measure gamma")
    return StabilityResult(
        gamma_full=full.gamma,
        gammas=np.asarray(gammas),
        fraction=fraction,
    )
