"""Weighted distributions of occupancy rates.

The occupancy method compares, for each aggregation period Δ, the
distribution of occupancy rates of all minimal trips against the uniform
density on ``[0, 1]``.  :class:`OccupancyDistribution` stores such a
distribution as weighted atoms and computes every statistic Section 7 of
the paper evaluates: the Monge–Kantorovich distance/proximity, standard
deviation, variation coefficient, slotted Shannon entropy, and
cumulative residual entropy — all in closed form (the survival function
of an atomic distribution is a step function, so the integrals reduce to
exact sums).
"""

from __future__ import annotations

import numpy as np

from repro.utils.errors import ValidationError


class OccupancyDistribution:
    """A probability distribution on ``(0, 1]`` given by weighted atoms.

    Atoms are deduplicated, sorted, and weights normalized to 1.  All
    occupancy rates lie in ``(0, 1]`` by Remark 2 of the paper
    (``0 < hops <= time`` in a graph series).
    """

    __slots__ = ("_values", "_weights", "_total")

    def __init__(self, values: np.ndarray, weights: np.ndarray | None = None) -> None:
        values = np.asarray(values, dtype=np.float64)
        if values.ndim != 1 or values.size == 0:
            raise ValidationError("distribution needs a non-empty 1-d array of values")
        if weights is None:
            weights = np.ones_like(values)
        else:
            weights = np.asarray(weights, dtype=np.float64)
            if weights.shape != values.shape:
                raise ValidationError("weights must match values")
            if np.any(weights < 0):
                raise ValidationError("weights must be non-negative")
        if np.any((values <= 0) | (values > 1)):
            raise ValidationError("occupancy rates must lie in (0, 1]")
        total = weights.sum()
        if total <= 0:
            raise ValidationError("total weight must be positive")
        order = np.argsort(values)
        values = values[order]
        weights = weights[order]
        # Merge equal atoms.
        fresh = np.ones(values.size, dtype=bool)
        fresh[1:] = values[1:] != values[:-1]
        idx = np.cumsum(fresh) - 1
        merged_values = values[fresh]
        merged_weights = np.zeros(merged_values.size)
        np.add.at(merged_weights, idx, weights)
        keep = merged_weights > 0
        self._values = merged_values[keep]
        self._weights = merged_weights[keep] / total
        self._total = float(total)

    # -- construction ------------------------------------------------------

    @classmethod
    def from_histogram(
        cls, counts: np.ndarray, *, ones_count: float = 0.0
    ) -> "OccupancyDistribution":
        """Build from equal-width bin counts on ``(0, 1)`` plus an exact
        atom at 1.

        Bin ``j`` of ``k`` is represented by its midpoint ``(j + 0.5)/k``.
        The occupancy value 1 (single-hop trips — the mass the paper
        watches saturate) is kept exact rather than smeared into the last
        bin.
        """
        counts = np.asarray(counts, dtype=np.float64)
        if counts.ndim != 1 or counts.size == 0:
            raise ValidationError("histogram needs at least one bin")
        bins = counts.size
        centers = (np.arange(bins) + 0.5) / bins
        values = np.append(centers, 1.0)
        weights = np.append(counts, float(ones_count))
        mask = weights > 0
        if not np.any(mask):
            raise ValidationError("histogram is empty")
        return cls(values[mask], weights[mask])

    @classmethod
    def sum_of_histograms(
        cls,
        counts_list: list[np.ndarray],
        *,
        ones_counts: list[float] | None = None,
    ) -> "OccupancyDistribution":
        """Pool same-resolution histogram shards into one distribution.

        The shards' integer bin counts (and exact atoms at 1) are summed
        before a single :meth:`from_histogram` call, so the result is
        bit-identical to a histogram accumulated in one pass.  The
        engine's own shard reassembly merges live collectors instead
        (:meth:`~repro.core.occupancy.OccupancyCollector.merge`); this is
        the equivalent entry point for callers holding raw histogram
        arrays (e.g. pooled from files or remote workers).
        """
        if not counts_list:
            raise ValidationError("need at least one histogram to sum")
        first = np.asarray(counts_list[0])
        total = np.zeros(first.shape, dtype=np.int64)
        for counts in counts_list:
            counts = np.asarray(counts)
            if counts.shape != first.shape:
                raise ValidationError(
                    "histogram shards must share the same bin count"
                )
            if counts.dtype.kind == "f":
                rounded = np.rint(counts)
                if np.any(np.abs(counts - rounded) > 1e-6):
                    raise ValidationError(
                        "histogram shard counts must be integral "
                        "(got non-integer float counts)"
                    )
                counts = rounded
            if counts.size and counts.min() < 0:
                raise ValidationError("histogram shard counts must be non-negative")
            total += counts.astype(np.int64)
        ones = 0.0
        if ones_counts is not None:
            if len(ones_counts) != len(counts_list):
                raise ValidationError(
                    "ones_counts must have one entry per histogram shard"
                )
            for count in ones_counts:
                if count < 0 or abs(count - round(count)) > 1e-6:
                    raise ValidationError(
                        "ones counts must be non-negative integers"
                    )
            ones = float(round(sum(ones_counts)))
        return cls.from_histogram(total, ones_count=ones)

    # -- basic accessors ------------------------------------------------------

    @property
    def values(self) -> np.ndarray:
        """Sorted distinct atom values."""
        return self._values

    @property
    def weights(self) -> np.ndarray:
        """Normalized atom probabilities (sum to 1)."""
        return self._weights

    @property
    def total_weight(self) -> float:
        """Unnormalized total mass (number of trips, for trip counts)."""
        return self._total

    def __repr__(self) -> str:
        return (
            f"OccupancyDistribution({self._values.size} atoms, "
            f"mean={self.mean():.4f}, total={self._total:g})"
        )

    # -- moments -----------------------------------------------------------

    def mean(self) -> float:
        return float(np.dot(self._values, self._weights))

    def variance(self) -> float:
        mu = self.mean()
        return float(np.dot((self._values - mu) ** 2, self._weights))

    def std(self) -> float:
        """Standard deviation — the Section 7 'standard deviation' selector."""
        return float(np.sqrt(self.variance()))

    def variation_coefficient(self) -> float:
        """``σ / μ`` — the (rejected) Section 7 selector."""
        mu = self.mean()
        if mu == 0:
            raise ValidationError("variation coefficient undefined for zero mean")
        return self.std() / mu

    def mass_at(self, value: float) -> float:
        """Probability carried by one exact atom (e.g. occupancy 1)."""
        pos = np.searchsorted(self._values, value)
        if pos < self._values.size and self._values[pos] == value:
            return float(self._weights[pos])
        return 0.0

    # -- survival / ICD --------------------------------------------------------

    def survival(self, lam: np.ndarray) -> np.ndarray:
        """``P(X > λ)`` — the paper's Inverse Cumulative Distribution (ICD)."""
        lam = np.asarray(lam, dtype=np.float64)
        cum = np.concatenate([[0.0], np.cumsum(self._weights)])
        idx = np.searchsorted(self._values, lam, side="right")
        return 1.0 - cum[idx]

    def icd_curve(self, points: int = 101) -> tuple[np.ndarray, np.ndarray]:
        """Sampled ICD on a regular λ grid (for plotting/reporting)."""
        lam = np.linspace(0.0, 1.0, points)
        return lam, self.survival(lam)

    def _segments(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Constant-survival segments covering ``[0, 1]``.

        Returns ``(starts, ends, survivals)``: on ``[starts_i, ends_i)``
        the survival function equals ``survivals_i``.
        """
        starts = np.concatenate([[0.0], self._values])
        ends = np.concatenate([self._values, [1.0]])
        survivals = np.concatenate([[1.0], 1.0 - np.cumsum(self._weights)])
        # Numerical guard: the final survival is exactly 0.
        survivals[-1] = 0.0
        keep = ends > starts
        return starts[keep], ends[keep], survivals[keep]

    # -- uniformity statistics ----------------------------------------------

    def mk_distance_to_uniform(self) -> float:
        """Exact Monge–Kantorovich (Wasserstein-1) distance to the uniform
        density on ``[0, 1]``.

        ``d = ∫_0^1 |P(X > λ) − (1 − λ)| dλ`` — the area between the ICD
        and the diagonal ``y = 1 − x`` (Section 7).  Always ``< 1/2``.
        """
        a, b, s = self._segments()
        c = 1.0 - s  # the λ where the integrand changes sign on the segment
        below = np.minimum(np.maximum(c, a), b)  # clamp crossing into [a, b]
        # ∫_a^x (c - λ) dλ + ∫_x^b (λ - c) dλ with x = clamped crossing.
        left = (below - a) * (c - (a + below) / 2.0)
        right = (b - below) * ((below + b) / 2.0 - c)
        return float(np.sum(left + right))

    def mk_proximity(self) -> float:
        """``1/2 − d_MK`` — maximized by the occupancy method (Figure 3)."""
        return 0.5 - self.mk_distance_to_uniform()

    def shannon_entropy(self, slots: int = 10) -> float:
        """Shannon entropy of the distribution discretized into ``slots``
        equal-width slots of ``[0, 1]`` (Section 7; slot count is the
        parameter whose sensitivity the paper discusses).
        """
        if slots < 1:
            raise ValidationError("need at least one slot")
        idx = np.minimum((self._values * slots).astype(np.int64), slots - 1)
        probs = np.zeros(slots)
        np.add.at(probs, idx, self._weights)
        probs = probs[probs > 0]
        # Normalized weights can overshoot 1 by an ulp (e.g. all mass in
        # one slot), making -p log p a tiny negative; entropy is >= 0.
        return max(0.0, float(-(probs * np.log(probs)).sum()))

    def cumulative_residual_entropy(self) -> float:
        """CRE ``ε(X) = −∫_0^1 P(X>λ) log P(X>λ) dλ`` (Section 7).

        Maximal for the uniform density on the support; defined on the
        common support ``[0, 1]`` so distributions for different Δ are
        comparable.
        """
        a, b, s = self._segments()
        positive = s > 0
        lengths = (b - a)[positive]
        surv = s[positive]
        # Same ulp guard as shannon_entropy: survival values touching 1
        # from above would otherwise push the integral a hair below 0.
        return max(0.0, float(-(lengths * surv * np.log(surv)).sum()))

    # -- combination ------------------------------------------------------------

    def merge(self, other: "OccupancyDistribution") -> "OccupancyDistribution":
        """Pooled distribution, weighting each side by its total mass."""
        values = np.concatenate([self._values, other._values])
        weights = np.concatenate(
            [self._weights * self._total, other._weights * other._total]
        )
        return OccupancyDistribution(values, weights)


def uniform_reference(atoms: int = 512) -> OccupancyDistribution:
    """A fine atomic approximation of the uniform density on ``(0, 1]``.

    Useful in tests: its M-K distance to uniform tends to 0 as ``atoms``
    grows, and its CRE approaches the uniform maximum
    ``∫ −(1−λ)ln(1−λ) dλ = 1/4``.
    """
    centers = (np.arange(atoms) + 0.5) / atoms
    return OccupancyDistribution(centers)
