"""Uniformity (spread) statistics and the selection-method registry.

Section 7 of the paper compares five ways to pick the Δ whose occupancy
distribution is "the most uniformly spread on [0, 1]".  Each method here
maps a distribution to a score to **maximize**; the registry lets the
occupancy method, Figure 7's bench and the ablation benches iterate over
all of them uniformly.

Paper's verdict, which our defaults follow: M-K proximity is the
reference (conceptually simple, visually best); standard deviation and
CRE are close seconds; slotted Shannon entropy works but is sensitive to
the slot count; the variation coefficient degenerates (it favors
tiny-mean distributions, i.e. no aggregation at all) and is kept only
for the comparison figure.
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass

from repro.core.distribution import OccupancyDistribution
from repro.utils.errors import ValidationError


@dataclass(frozen=True)
class SelectionMethod:
    """A named scoring rule over occupancy distributions."""

    name: str
    score: Callable[[OccupancyDistribution], float]
    description: str
    recommended: bool


def _shannon_scorer(slots: int) -> Callable[[OccupancyDistribution], float]:
    def score(distribution: OccupancyDistribution) -> float:
        return distribution.shannon_entropy(slots)

    return score


_METHODS: dict[str, SelectionMethod] = {}


def _register(method: SelectionMethod) -> None:
    _METHODS[method.name] = method


_register(
    SelectionMethod(
        name="mk",
        score=OccupancyDistribution.mk_proximity,
        description=(
            "Monge-Kantorovich proximity to the uniform density "
            "(1/2 - Wasserstein-1 distance); the paper's reference method"
        ),
        recommended=True,
    )
)
_register(
    SelectionMethod(
        name="std",
        score=OccupancyDistribution.std,
        description="standard deviation of occupancy rates; close to M-K, "
        "slightly biased toward larger periods",
        recommended=True,
    )
)
_register(
    SelectionMethod(
        name="cv",
        score=OccupancyDistribution.variation_coefficient,
        description="variation coefficient sigma/mu; degenerates to the "
        "timestamp resolution (kept for the Figure 7 comparison)",
        recommended=False,
    )
)
_register(
    SelectionMethod(
        name="shannon10",
        score=_shannon_scorer(10),
        description="Shannon entropy over 10 equal slots of [0, 1]; good "
        "but sensitive to the slot count",
        recommended=True,
    )
)
_register(
    SelectionMethod(
        name="cre",
        score=OccupancyDistribution.cumulative_residual_entropy,
        description="cumulative residual entropy; theoretically clean, "
        "usually selects slightly below M-K",
        recommended=True,
    )
)


def shannon_method(slots: int) -> SelectionMethod:
    """A Shannon-entropy selector with a custom slot count (ablations)."""
    if slots < 2:
        raise ValidationError("need at least two slots")
    return SelectionMethod(
        name=f"shannon{slots}",
        score=_shannon_scorer(slots),
        description=f"Shannon entropy over {slots} equal slots of [0, 1]",
        recommended=False,
    )


def get_method(name: str) -> SelectionMethod:
    """Look a selection method up by name (``mk``, ``std``, ``cv``,
    ``shannon<k>``, ``cre``)."""
    if name in _METHODS:
        return _METHODS[name]
    if name.startswith("shannon"):
        suffix = name[len("shannon") :]
        if suffix.isdigit():
            return shannon_method(int(suffix))
    raise ValidationError(
        f"unknown selection method {name!r}; available: {sorted(_METHODS)}"
    )


def available_methods() -> list[str]:
    """Names of the registered selection methods."""
    return sorted(_METHODS)


def score_distribution(
    distribution: OccupancyDistribution, methods: tuple[str, ...]
) -> dict[str, float]:
    """Score one distribution under several methods at once."""
    return {name: get_method(name).score(distribution) for name in methods}
