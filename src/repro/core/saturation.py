"""The occupancy method: automatic detection of the saturation scale γ.

This is the paper's primary contribution (Section 4).  For every
candidate aggregation period Δ the stream is aggregated, all minimal
trips of the series are computed with the backward scan, and the
distribution of their occupancy rates is scored against the uniform
density on ``[0, 1]``.  The saturation scale γ is the Δ maximizing the
Monge–Kantorovich proximity (by default) — the aggregation period at
which the distribution is maximally stretched, separating the faithful
range (below γ) from the altered range (beyond γ).

The method is fully automatic and parameter-free: called with just a
link stream it chooses its own Δ grid and returns γ together with the
full sweep evidence.

Per-Δ evaluations run through the :mod:`repro.engine` subsystem: the
grid becomes a plan of independent **fused measure tasks** dispatched to
a pluggable backend (serial by default, threads or processes on request)
behind a content-addressed per-measure result cache, so re-runs,
refinement rounds, and stability analyses never recompute a sweep point.
Companion measures (the classical parameters, snapshot metrics) can ride
the same sweep: each Δ is then aggregated once and scanned once for the
whole set, instead of once per measure kind.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.distribution import OccupancyDistribution
from repro.core.sweep import log_delta_grid, refine_grid
from repro.core.uniformity import get_method
from repro.engine import (
    OccupancyMeasure,
    engine_scope,
    normalize_measures,
    plan_measure_sweep,
)
from repro.linkstream.stream import LinkStream
from repro.utils.errors import SweepError, ValidationError
from repro.utils.timeunits import format_duration


@dataclass(frozen=True)
class SweepPoint:
    """Everything measured at one aggregation period Δ."""

    delta: float
    num_windows: int
    num_nonempty_windows: int
    num_trips: int
    distribution: OccupancyDistribution
    scores: dict[str, float]

    @property
    def mk_proximity(self) -> float:
        return self.scores["mk"]


@dataclass(frozen=True)
class SaturationResult:
    """Outcome of the occupancy method on one link stream.

    ``companions`` holds the results of any companion measures requested
    alongside occupancy (``measures=`` on :func:`occupancy_method`):
    one list per measure name, aligned index-for-index with ``points``
    — every companion value was computed from the *same* aggregation
    and the *same* backward scan as its sweep point.
    """

    gamma: float
    method: str
    points: list[SweepPoint] = field(repr=False)
    companions: dict[str, list] = field(default_factory=dict, repr=False)

    @property
    def deltas(self) -> np.ndarray:
        """Evaluated aggregation periods, ascending."""
        return np.array([p.delta for p in self.points])

    def scores(self, method: str | None = None) -> np.ndarray:
        """Score per evaluated Δ under ``method`` (default: the primary)."""
        name = self.method if method is None else method
        return np.array([p.scores[name] for p in self.points])

    def gamma_for(self, method: str) -> float:
        """The Δ an alternative selection method would return."""
        scores = self.scores(method)
        return float(self.deltas[int(np.argmax(scores))])

    def point_at_gamma(self) -> SweepPoint:
        """The sweep point selected as the saturation scale."""
        idx = int(np.argmax(self.scores()))
        return self.points[idx]

    def describe(self) -> str:
        """One-line human summary."""
        return (
            f"saturation scale gamma = {format_duration(self.gamma)} "
            f"({self.gamma:.6g}s) by method '{self.method}' over "
            f"{len(self.points)} aggregation periods"
        )


def occupancy_method(
    stream: LinkStream,
    deltas: np.ndarray | None = None,
    *,
    method: str = "mk",
    extra_methods: tuple[str, ...] = (),
    num_deltas: int = 40,
    bins: int = 4096,
    exact: bool = False,
    include_self: bool = False,
    refine_rounds: int = 0,
    refine_points: int = 8,
    origin: float | None = None,
    engine=None,
    shards: int | str | None = None,
    measures=(),
) -> SaturationResult:
    """Determine the saturation scale γ of a link stream.

    Parameters
    ----------
    stream:
        The link stream under study (directed or not, int or float
        timestamps).
    deltas:
        Candidate aggregation periods.  Defaults to a log grid from the
        timestamp resolution to the stream span — the paper's full range.
    method:
        Selection statistic maximized to pick γ (see
        :mod:`repro.core.uniformity`); the paper's choice ``"mk"`` by
        default.
    extra_methods:
        Additional statistics to evaluate at every Δ (cheap; used by the
        comparison figure).
    num_deltas:
        Grid size when ``deltas`` is not given.
    bins, exact:
        Occupancy accumulator resolution (see
        :class:`~repro.core.occupancy.OccupancyCollector`).
    include_self:
        Score cyclic trips ``u -> u`` as well (off by default, as the
        paper considers pairs of distinct nodes).
    refine_rounds, refine_points:
        Optional two-stage search: after each round, insert
        ``refine_points`` extra Δ values around the current maximum.
        With the default 0, the grid is used as-is (paper behaviour).
    origin:
        Absolute start of window 0 (defaults to the first event).
    engine:
        How to execute the sweep: a
        :class:`~repro.engine.scheduler.SweepEngine`, a backend name
        (``"serial"``, ``"thread"``, ``"process"``), or ``None`` for the
        process default (configurable via ``REPRO_ENGINE`` /
        ``REPRO_CACHE_DIR``).  Every backend returns bit-identical
        results; cached sweep points are reused, never recomputed.
    shards:
        Within-Δ shard policy: ``"auto"`` (default — split a Δ across
        idle workers only when the plan is smaller than the worker
        pool, i.e. the coarse-Δ tail and refinement rounds), ``1`` to
        never shard, or a fixed per-Δ shard count.  Sharded results are
        bit-identical to unsharded ones (``REPRO_SHARDS`` / CLI
        ``--shards`` set the process default).
    measures:
        Companion measures to evaluate at every Δ **from the same
        aggregation and the same backward scan** as the occupancy
        distribution — measure names (``"classical"``, ``"metrics"``)
        or :class:`~repro.engine.MeasureSpec` instances.  Results land
        in :attr:`SaturationResult.companions`, aligned with
        ``points`` (refinement rounds included).

    Returns
    -------
    SaturationResult
        γ plus the full evidence (per-Δ distributions and scores), and
        any companion measure results.
    """
    if stream.num_events < 2:
        raise ValidationError("occupancy method needs at least two events")
    if deltas is None:
        deltas = log_delta_grid(stream, num=num_deltas)
    else:
        deltas = np.unique(np.asarray(deltas, dtype=np.float64))
        if deltas.size < 2:
            raise SweepError("a sweep needs at least two window lengths")
        if np.any(deltas <= 0):
            raise SweepError("aggregation periods must be positive")
    # "mk" is always evaluated so SweepPoint.mk_proximity stays available.
    methods = tuple(dict.fromkeys((method, "mk", *extra_methods)))
    for name in methods:
        get_method(name)  # validate early
    measure_set = normalize_measures(
        (
            OccupancyMeasure(methods=methods, bins=bins, exact=exact),
            *measures,
        )
    )

    with engine_scope(engine) as eng:
        entries = _evaluate_deltas(
            stream, deltas, measure_set, include_self, origin, eng, shards
        )
        for _ in range(refine_rounds):
            current = np.array([e["occupancy"].delta for e in entries])
            scores = np.array([e["occupancy"].scores[method] for e in entries])
            best = int(np.argmax(scores))
            extra = refine_grid(current, best, points=refine_points)
            if not extra.size:
                break
            entries.extend(
                _evaluate_deltas(
                    stream, extra, measure_set, include_self, origin, eng,
                    shards,
                )
            )
            entries.sort(key=lambda e: e["occupancy"].delta)

    points = [e["occupancy"] for e in entries]
    companions = {
        m.name: [e[m.name] for e in entries]
        for m in measure_set
        if m.name != "occupancy"
    }
    final_scores = np.array([p.scores[method] for p in points])
    gamma = points[int(np.argmax(final_scores))].delta
    return SaturationResult(
        gamma=float(gamma), method=method, points=points, companions=companions
    )


def _evaluate_deltas(
    stream: LinkStream,
    deltas: np.ndarray,
    measure_set,
    include_self: bool,
    origin: float | None,
    engine,
    shards: int | str | None = None,
) -> list[dict]:
    """One fused task per Δ; returns per-Δ measure-result dicts."""
    tasks = plan_measure_sweep(
        deltas,
        measure_set,
        include_self=include_self,
        origin=origin,
    )
    return engine.run(stream, tasks, shards=shards)
