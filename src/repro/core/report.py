"""One-call analysis reports.

:func:`analyze_stream` bundles the full practitioner pipeline — stream
statistics, saturation-scale detection, loss validation at γ, and a
window recommendation — into a single structured result with a plain-
text rendering.  The CLI's ``analyze`` command and notebook users get
the same artifact.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.saturation import SaturationResult, occupancy_method
from repro.core.validation import (
    ElongationPoint,
    elongation_at,
    shortest_transitions,
    stream_minimal_trips,
    transitions_lost_fraction,
)
from repro.linkstream.statistics import StreamSummary, stream_summary
from repro.linkstream.stream import LinkStream
from repro.utils.timeunits import format_duration


@dataclass(frozen=True)
class StreamReport:
    """Everything a study needs before choosing an aggregation window."""

    summary: StreamSummary
    saturation: SaturationResult
    transitions_lost_at_gamma: float | None
    elongation_at_gamma: ElongationPoint | None

    @property
    def gamma(self) -> float:
        return self.saturation.gamma

    @property
    def recommended_delta(self) -> float:
        """A conservative working window: half the saturation scale.

        Section 5 of the paper: γ is an *upper bound*; "one may prefer to
        choose an aggregation period slightly lower than γ, which will
        preserve more carefully the properties of the network."
        """
        return self.gamma / 2.0

    def to_text(self) -> str:
        """Render the report for terminals and logs."""
        lines = [
            "stream analysis report",
            "----------------------",
            (
                f"{self.summary.num_nodes} nodes, {self.summary.num_events} events "
                f"over {format_duration(self.summary.span_seconds)}; "
                f"{self.summary.distinct_pairs} distinct pairs"
            ),
            (
                f"activity {self.summary.activity_per_node_per_day:.3g} events/node/day, "
                f"mean inter-contact {format_duration(self.summary.mean_inter_contact_seconds)}, "
                f"burstiness {self.summary.burstiness:+.2f}"
            ),
            "",
            self.saturation.describe(),
        ]
        if self.transitions_lost_at_gamma is not None:
            lines.append(
                f"at gamma: {self.transitions_lost_at_gamma:.1%} of shortest "
                "transitions collapse into single windows"
            )
        if self.elongation_at_gamma is not None and np.isfinite(
            self.elongation_at_gamma.mean_factor
        ):
            lines.append(
                f"at gamma: minimal trips elongate by x{self.elongation_at_gamma.mean_factor:.2f} "
                f"on average (median x{self.elongation_at_gamma.median_factor:.2f})"
            )
        lines.extend(
            [
                "",
                (
                    f"recommendation: aggregate at <= {format_duration(self.recommended_delta)} "
                    f"(gamma/2); never beyond {format_duration(self.gamma)} for any "
                    "propagation-sensitive analysis"
                ),
            ]
        )
        return "\n".join(lines)


def analyze_stream(
    stream: LinkStream,
    *,
    validate: bool = True,
    max_elongation_trips: int = 50_000,
    engine=None,
    **occupancy_kwargs,
) -> StreamReport:
    """Run the full pipeline on a stream and return a :class:`StreamReport`.

    Extra keyword arguments go to
    :func:`~repro.core.saturation.occupancy_method` (``num_deltas``,
    ``method``, ``refine_rounds``...).  The sweep runs through ``engine``
    (an engine instance, a backend name, or ``None`` for the process
    default).  ``validate=False`` skips the Section 8 loss measures (they
    need a second scan of the raw stream).
    """
    summary = stream_summary(stream)
    saturation = occupancy_method(stream, engine=engine, **occupancy_kwargs)

    lost: float | None = None
    elongation: ElongationPoint | None = None
    if validate:
        trips = stream_minimal_trips(stream)
        transitions = shortest_transitions(stream, trips)
        if len(transitions):
            lost = transitions_lost_fraction(
                transitions, saturation.gamma, origin=stream.t_min
            )
        elongation = elongation_at(
            stream, saturation.gamma, max_trips=max_elongation_trips
        )
    return StreamReport(
        summary=summary,
        saturation=saturation,
        transitions_lost_at_gamma=lost,
        elongation_at_gamma=elongation,
    )
