"""One-call analysis reports.

:func:`analyze_stream` bundles the full practitioner pipeline — stream
statistics, saturation-scale detection, loss validation at γ, and a
window recommendation — into a single structured result with a plain-
text rendering.  The CLI's ``analyze`` command and notebook users get
the same artifact.

The report can carry extra measure columns: requesting
``measures=("occupancy", "classical")`` computes the occupancy
distributions *and* the classical parameters (Figure 2 top and bottom)
from **exactly one aggregation and one backward scan per Δ** — the
engine's fused measure pipeline — instead of sweeping the grid once per
measure kind.  Any measure registered in the engine's plugin registry
rides the same way: names (parameterized specs like
``"trips:max_samples=64"`` included) and
:class:`~repro.engine.MeasureSpec` instances are both accepted, and
every companion's per-Δ results surface in
:attr:`StreamReport.companions`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.classical import ClassicalSweep
from repro.core.saturation import SaturationResult, occupancy_method
from repro.core.validation import (
    ElongationPoint,
    elongation_at,
    shortest_transitions,
    stream_minimal_trips,
    transitions_lost_fraction,
)
from repro.linkstream.statistics import StreamSummary, stream_summary
from repro.linkstream.stream import LinkStream
from repro.utils.errors import ValidationError
from repro.utils.timeunits import format_duration


@dataclass(frozen=True)
class StreamReport:
    """Everything a study needs before choosing an aggregation window."""

    summary: StreamSummary
    saturation: SaturationResult
    transitions_lost_at_gamma: float | None
    elongation_at_gamma: ElongationPoint | None
    #: Classical parameters per Δ (``measures`` included "classical"),
    #: computed from the same scans as the occupancy sweep.
    classical: ClassicalSweep | None = field(default=None, repr=False)
    #: Distance-free snapshot metrics per Δ (``measures`` included
    #: "metrics").
    metrics: ClassicalSweep | None = field(default=None, repr=False)

    @property
    def gamma(self) -> float:
        return self.saturation.gamma

    @property
    def companions(self) -> dict[str, list]:
        """Every companion measure's per-Δ results, keyed by measure name.

        The raw per-measure values (``classical``/``metrics`` appear
        here too, unwrapped; the typed :attr:`classical`/:attr:`metrics`
        sweeps are the curated views), aligned index-for-index with
        ``saturation.points``.  Plugin measures registered through
        :func:`~repro.engine.register_measure` land here.
        """
        return self.saturation.companions

    @property
    def recommended_delta(self) -> float:
        """A conservative working window: half the saturation scale.

        Section 5 of the paper: γ is an *upper bound*; "one may prefer to
        choose an aggregation period slightly lower than γ, which will
        preserve more carefully the properties of the network."
        """
        return self.gamma / 2.0

    def to_text(self) -> str:
        """Render the report for terminals and logs."""
        lines = [
            "stream analysis report",
            "----------------------",
            (
                f"{self.summary.num_nodes} nodes, {self.summary.num_events} events "
                f"over {format_duration(self.summary.span_seconds)}; "
                f"{self.summary.distinct_pairs} distinct pairs"
            ),
            (
                f"activity {self.summary.activity_per_node_per_day:.3g} events/node/day, "
                f"mean inter-contact {format_duration(self.summary.mean_inter_contact_seconds)}, "
                f"burstiness {self.summary.burstiness:+.2f}"
            ),
            "",
            self.saturation.describe(),
        ]
        if self.transitions_lost_at_gamma is not None:
            lines.append(
                f"at gamma: {self.transitions_lost_at_gamma:.1%} of shortest "
                "transitions collapse into single windows"
            )
        if self.elongation_at_gamma is not None and np.isfinite(
            self.elongation_at_gamma.mean_factor
        ):
            lines.append(
                f"at gamma: minimal trips elongate by x{self.elongation_at_gamma.mean_factor:.2f} "
                f"on average (median x{self.elongation_at_gamma.median_factor:.2f})"
            )
        lines.extend(
            [
                "",
                (
                    f"recommendation: aggregate at <= {format_duration(self.recommended_delta)} "
                    f"(gamma/2); never beyond {format_duration(self.gamma)} for any "
                    "propagation-sensitive analysis"
                ),
            ]
        )
        return "\n".join(lines)


def _split_measures(measures) -> tuple:
    """Normalize the requested measure set for :func:`analyze_stream`.

    Accepts names (parameterized specs included), ``MeasureSpec``
    instances, or a mix; requires occupancy in the set (it selects γ)
    and returns the deduplicated companion specs.  The occupancy entry
    must stay parameter-free: its resolution/scoring are configured
    through ``analyze_stream``'s own keywords (``bins``, ``exact``,
    ``method``), which feed the γ selection.
    """
    from repro.engine import OccupancyMeasure, resolve_measure

    if isinstance(measures, str) or not isinstance(measures, (list, tuple)):
        measures = (measures,)
    has_occupancy = False
    companions = []
    seen: dict[str, object] = {}
    for entry in measures:
        spec = resolve_measure(entry)
        if spec.name == "occupancy":
            if spec != OccupancyMeasure():
                raise ValidationError(
                    "configure the occupancy measure through "
                    "analyze_stream's own keywords (method=, bins=, "
                    "exact=), not through measure parameters — they "
                    "drive the gamma selection itself"
                )
            has_occupancy = True
            continue
        if spec.name in seen:
            # Exact repeats dedupe; same name with different parameters
            # is a conflict (one fused task emits one result per name —
            # silently keeping either spec would lose the other).
            if spec != seen[spec.name]:
                raise ValidationError(
                    f"conflicting parameter sets for measure "
                    f"{spec.name!r}: {seen[spec.name]!r} vs {spec!r}"
                )
            continue
        seen[spec.name] = spec
        companions.append(spec)
    if not has_occupancy:
        raise ValidationError(
            "analyze_stream detects the saturation scale, so the measure "
            'set must include "occupancy" (use classical_sweep for a '
            "standalone classical run)"
        )
    return tuple(companions)


def analyze_stream(
    stream: LinkStream,
    *,
    validate: bool = True,
    max_elongation_trips: int = 50_000,
    measures=("occupancy",),
    engine=None,
    **occupancy_kwargs,
) -> StreamReport:
    """Run the full pipeline on a stream and return a :class:`StreamReport`.

    ``measures`` names what to evaluate at every Δ of the sweep:
    ``"occupancy"`` (always required — it selects γ) optionally joined
    by any measure registered in the engine's plugin registry —
    built-ins like ``"classical"`` (snapshot means + distance
    statistics, Figure 2), ``"metrics"``, ``"trips:max_samples=64"``,
    ``"components"``, ``"reachability"``, or
    :class:`~repro.engine.MeasureSpec` instances (user-defined measures
    included).  The whole set is computed from **one aggregation and one
    backward scan per Δ**; classical/metrics land in
    :attr:`StreamReport.classical` / :attr:`StreamReport.metrics`, and
    every companion's raw per-Δ results in
    :attr:`StreamReport.companions`.

    Extra keyword arguments go to
    :func:`~repro.core.saturation.occupancy_method` (``num_deltas``,
    ``method``, ``refine_rounds``...).  The sweep runs through ``engine``
    (an engine instance, a backend name, or ``None`` for the process
    default).  ``validate=False`` skips the Section 8 loss measures (they
    need a second scan of the raw stream).
    """
    companions = _split_measures(measures)
    summary = stream_summary(stream)
    saturation = occupancy_method(
        stream, engine=engine, measures=companions, **occupancy_kwargs
    )

    lost: float | None = None
    elongation: ElongationPoint | None = None
    if validate:
        trips = stream_minimal_trips(stream)
        transitions = shortest_transitions(stream, trips)
        if len(transitions):
            lost = transitions_lost_fraction(
                transitions, saturation.gamma, origin=stream.t_min
            )
        elongation = elongation_at(
            stream, saturation.gamma, max_trips=max_elongation_trips
        )
    return StreamReport(
        summary=summary,
        saturation=saturation,
        transitions_lost_at_gamma=lost,
        elongation_at_gamma=elongation,
        classical=(
            ClassicalSweep(list(saturation.companions["classical"]))
            if "classical" in saturation.companions
            else None
        ),
        metrics=(
            ClassicalSweep(list(saturation.companions["metrics"]))
            if "metrics" in saturation.companions
            else None
        ),
    )
