"""Classical-parameter sweeps (Section 3, Figure 2).

The paper motivates the occupancy method by showing that the standard
graph-series statistics — density, connectivity, and the three distance
notions — drift *smoothly* with the aggregation period, exposing no
threshold.  This module reproduces that analysis: for each Δ it reports
the snapshot means and the distance statistics of the aggregated series.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.engine import (
    ClassicalMeasure,
    MetricsMeasure,
    engine_scope,
    plan_classical_sweep,
)
from repro.graphseries.metrics import SeriesMetrics
from repro.linkstream.stream import LinkStream
from repro.temporal.reachability import DistanceStats


@dataclass(frozen=True)
class ClassicalPoint:
    """Classical parameters of the series aggregated at one Δ."""

    delta: float
    snapshot: SeriesMetrics
    distances: DistanceStats | None

    @property
    def mean_distance_in_time(self) -> float:
        """Mean ``d_time`` in window counts (Figure 2 bottom-left)."""
        if self.distances is None:
            return float("nan")
        return self.distances.mean_distance_steps

    @property
    def mean_distance_in_hops(self) -> float:
        """Mean ``d_hops`` (Figure 2 bottom-right, empty squares)."""
        if self.distances is None:
            return float("nan")
        return self.distances.mean_distance_hops

    @property
    def mean_distance_in_absolute_time(self) -> float:
        """Mean ``d_abstime = Δ · d_time`` (Figure 2 bottom-right, filled)."""
        return self.delta * self.mean_distance_in_time


@dataclass(frozen=True)
class ClassicalSweep:
    """Classical parameters over a Δ grid."""

    points: list[ClassicalPoint]

    @property
    def deltas(self) -> np.ndarray:
        return np.array([p.delta for p in self.points])

    def column(self, name: str) -> np.ndarray:
        """Extract one named series: ``density``, ``non_isolated``,
        ``largest_component``, ``distance_time``, ``distance_hops``,
        ``distance_abs_time``."""
        getters = {
            "density": lambda p: p.snapshot.mean_density,
            "non_isolated": lambda p: p.snapshot.mean_non_isolated,
            "largest_component": lambda p: p.snapshot.mean_largest_component,
            "mean_degree": lambda p: p.snapshot.mean_degree,
            "distance_time": lambda p: p.mean_distance_in_time,
            "distance_hops": lambda p: p.mean_distance_in_hops,
            "distance_abs_time": lambda p: p.mean_distance_in_absolute_time,
        }
        if name not in getters:
            raise KeyError(f"unknown column {name!r}; available: {sorted(getters)}")
        return np.array([getters[name](p) for p in self.points])


def classical_sweep(
    stream: LinkStream,
    deltas: np.ndarray,
    *,
    compute_distances: bool = True,
    origin: float | None = None,
    engine=None,
    shards: int | str | None = None,
) -> ClassicalSweep:
    """Measure the classical parameters at every Δ in the grid.

    ``compute_distances=False`` skips the reachability scan and reports
    only the cheap per-snapshot statistics.  The sweep runs through the
    :mod:`repro.engine` subsystem as a plan of fused measure tasks;
    ``engine`` accepts an engine instance, a backend name, or ``None``
    for the process default.  ``shards`` sets the within-Δ shard policy
    for the run; the distance statistics accumulate per destination
    column, so they shard and merge integer-exactly like every other
    scan measure (a distance-free sweep has no scan to split and rides
    through any policy unchanged).

    To get these columns *and* an occupancy sweep from one scan per Δ,
    request the ``"classical"`` measure on
    :func:`~repro.core.saturation.occupancy_method` (or
    :func:`~repro.core.report.analyze_stream`) instead of running two
    sweeps.
    """
    tasks = plan_classical_sweep(
        deltas, compute_distances=compute_distances, origin=origin
    )
    name = (ClassicalMeasure() if compute_distances else MetricsMeasure()).name
    with engine_scope(engine) as eng:
        results = eng.run(stream, tasks, shards=shards)
    return ClassicalSweep([r[name] for r in results])
