"""Occupancy-rate collection for aggregated graph series.

Bridges the temporal engine to the statistics layer: an
:class:`OccupancyCollector` consumes minimal-trip batches from the
backward scan and accumulates their occupancy rates
``hops(P) / time(P)`` (Definition 7), either exactly or in a fixed
histogram (with the atom at occupancy 1 always kept exact, since the
paper tracks precisely the growth of that mass beyond the saturation
scale).
"""

from __future__ import annotations

import numpy as np

from repro.core.distribution import OccupancyDistribution
from repro.graphseries.aggregation import aggregate
from repro.graphseries.series import GraphSeries
from repro.linkstream.stream import LinkStream
from repro.temporal.reachability import scan_series
from repro.utils.errors import ValidationError


class OccupancyCollector:
    """Accumulates occupancy rates of minimal trips from a backward scan.

    Parameters
    ----------
    bins:
        Number of equal-width histogram bins on ``(0, 1)``.  Ignored in
        exact mode.
    exact:
        Keep every distinct ``hops/duration`` value exactly.  Slower and
        memory-hungry on large series; intended for small studies and for
        validating the histogram resolution (see the ablation bench).
    """

    def __init__(self, *, bins: int = 4096, exact: bool = False) -> None:
        if bins < 2:
            raise ValidationError("need at least two histogram bins")
        self._bins = bins
        self._exact = exact
        self._counts = np.zeros(bins, dtype=np.int64)
        self._ones = 0
        self._chunks: list[np.ndarray] = []
        self._num_trips = 0

    @property
    def num_trips(self) -> int:
        return self._num_trips

    def record(
        self,
        source: int,
        dep: float,
        targets: np.ndarray,
        arrivals: np.ndarray,
        hops: np.ndarray,
        durations: np.ndarray,
    ) -> None:
        if not targets.size:
            return
        occ = hops / durations
        self._num_trips += occ.size
        if self._exact:
            self._chunks.append(occ)
            return
        exact_one = hops == durations
        self._ones += int(exact_one.sum())
        interior = occ[~exact_one]
        if interior.size:
            idx = np.minimum((interior * self._bins).astype(np.int64), self._bins - 1)
            np.add.at(self._counts, idx, 1)

    def distribution(self) -> OccupancyDistribution:
        """Assemble the collected rates into a distribution."""
        if not self._num_trips:
            raise ValidationError("no minimal trips collected (empty series?)")
        if self._exact:
            values = np.concatenate(self._chunks)
            return OccupancyDistribution(values)
        return OccupancyDistribution.from_histogram(self._counts, ones_count=self._ones)


def series_occupancy(
    series: GraphSeries,
    *,
    bins: int = 4096,
    exact: bool = False,
    include_self: bool = False,
) -> tuple[OccupancyDistribution, int]:
    """Occupancy-rate distribution of all minimal trips of a series.

    Returns ``(distribution, num_trips)``.
    """
    collector = OccupancyCollector(bins=bins, exact=exact)
    scan_series(series, collector, include_self=include_self)
    return collector.distribution(), collector.num_trips


def stream_occupancy_at(
    stream: LinkStream,
    delta: float,
    *,
    origin: float | None = None,
    bins: int = 4096,
    exact: bool = False,
    include_self: bool = False,
) -> tuple[OccupancyDistribution, GraphSeries, int]:
    """Aggregate at Δ and compute the occupancy distribution in one shot.

    Returns ``(distribution, series, num_trips)`` — the sweep's inner
    loop, also convenient interactively.
    """
    series = aggregate(stream, delta, origin=origin)
    distribution, num_trips = series_occupancy(
        series, bins=bins, exact=exact, include_self=include_self
    )
    return distribution, series, num_trips
