"""Occupancy-rate collection for aggregated graph series.

Bridges the temporal engine to the statistics layer: an
:class:`OccupancyCollector` consumes minimal-trip batches from the
backward scan and accumulates their occupancy rates
``hops(P) / time(P)`` (Definition 7), either exactly or in a fixed
histogram (with the atom at occupancy 1 always kept exact, since the
paper tracks precisely the growth of that mass beyond the saturation
scale).
"""

from __future__ import annotations

import numpy as np

from repro.core.distribution import OccupancyDistribution
from repro.graphseries.aggregation import aggregate_cached
from repro.graphseries.series import GraphSeries
from repro.linkstream.stream import LinkStream
from repro.temporal.reachability import scan_series
from repro.utils.errors import ValidationError


class OccupancyCollector:
    """Accumulates occupancy rates of minimal trips from a backward scan.

    Parameters
    ----------
    bins:
        Number of equal-width histogram bins on ``(0, 1)``.  Ignored in
        exact mode.
    exact:
        Keep every distinct ``hops/duration`` value exactly.  Slower and
        memory-hungry on large series; intended for small studies and for
        validating the histogram resolution (see the ablation bench).
    """

    def __init__(self, *, bins: int = 4096, exact: bool = False) -> None:
        if bins < 2:
            raise ValidationError("need at least two histogram bins")
        self._bins = bins
        self._exact = exact
        self._counts = np.zeros(bins, dtype=np.int64)
        self._ones = 0
        self._chunks: list[np.ndarray] = []
        self._num_trips = 0

    @property
    def num_trips(self) -> int:
        return self._num_trips

    def record(
        self,
        source: int,
        dep: float,
        targets: np.ndarray,
        arrivals: np.ndarray,
        hops: np.ndarray,
        durations: np.ndarray,
    ) -> None:
        if not targets.size:
            return
        if np.any(durations <= 0):
            # scan_stream's Definition-4 convention (arr - dep) gives direct
            # hops duration 0; occupancy rates are only defined on series
            # durations (arr - dep + 1 >= 1).  Fail loudly instead of
            # silently emitting inf.
            raise ValidationError(
                "minimal trip with non-positive duration: occupancy rates "
                "require series durations (arr - dep + 1); feed this "
                "collector from scan_series, not scan_stream"
            )
        occ = hops / durations
        self._num_trips += occ.size
        if self._exact:
            self._chunks.append(occ)
            return
        exact_one = hops == durations
        self._ones += int(exact_one.sum())
        interior = occ[~exact_one]
        if interior.size:
            idx = np.minimum((interior * self._bins).astype(np.int64), self._bins - 1)
            np.add.at(self._counts, idx, 1)

    def record_batch(
        self,
        sources: np.ndarray,
        dep: float,
        targets: np.ndarray,
        arrivals: np.ndarray,
        hops: np.ndarray,
        durations: np.ndarray,
    ) -> None:
        """Consume one multi-source batch (the batched kernel's feed).

        Every per-trip quantity here (the ``hops/durations`` division,
        the exact atom at 1, the bin index) is elementwise and every
        tally an integer count, so folding the flattened batch is
        bit-identical to the per-source :meth:`record` calls — in exact
        mode the chunk list concatenates to the same value sequence
        (rows arrive in legacy source-then-destination order).
        """
        if not targets.size:
            return
        self.record(-1, dep, targets, arrivals, hops, durations)

    def merge(self, other: "OccupancyCollector") -> "OccupancyCollector":
        """Absorb another collector's mass (in-place; returns ``self``).

        The inverse of sharding a scan: collectors fed from disjoint
        target shards of the same series sum back — histogram counts and
        the exact atom at 1 are integer tallies, exact-mode chunks are
        disjoint trip subsets — to precisely the accumulator an
        unrestricted scan would have produced, so the merged
        :meth:`distribution` is bit-identical to the unsharded one.
        """
        if not isinstance(other, OccupancyCollector):
            raise ValidationError(
                f"cannot merge OccupancyCollector with {type(other).__name__}"
            )
        if self._exact != other._exact:
            raise ValidationError(
                "cannot merge exact and histogram occupancy collectors"
            )
        if self._exact:
            # Exact mode accumulates chunks only; bin counts are unused
            # (and may legitimately differ in size between collectors).
            self._chunks.extend(other._chunks)
        else:
            if self._bins != other._bins:
                raise ValidationError(
                    f"cannot merge histograms with {self._bins} and "
                    f"{other._bins} bins"
                )
            self._counts += other._counts
            self._ones += other._ones
        self._num_trips += other._num_trips
        return self

    def segment_handoff(self) -> "OccupancyCollector":
        """Freeze this collector as a scan segment; return its successor.

        The checkpoint contract of incremental scan resume (see
        :meth:`TripListCollector.segment_handoff
        <repro.temporal.collectors.TripListCollector.segment_handoff>`):
        all occupancy tallies are order-free integer folds, so the
        successor is simply a fresh collector with the same histogram
        geometry, and cached segments splice back via :meth:`merge`.
        """
        return OccupancyCollector(bins=self._bins, exact=self._exact)

    @property
    def empty(self) -> bool:
        """Whether the collector holds no trips yet.

        A legitimately common state: a destination shard whose nodes
        receive zero trips, or a freshly built merge accumulator.  Empty
        collectors record and :meth:`merge` like any other; only
        :meth:`distribution` — final assembly — requires mass.
        """
        return not self._num_trips

    def distribution(self) -> OccupancyDistribution:
        """Assemble the collected rates into a distribution.

        Raises :class:`ValidationError` when the collector — after all
        merges — holds no trips at all: a distribution needs mass.  Call
        this only at final assembly; individual shards may legitimately
        be :attr:`empty`.
        """
        if not self._num_trips:
            raise ValidationError(
                "no minimal trips collected (empty series, or shards "
                "merged into an empty total?)"
            )
        if self._exact:
            values = np.concatenate(self._chunks)
            return OccupancyDistribution(values)
        return OccupancyDistribution.from_histogram(self._counts, ones_count=self._ones)


def series_occupancy(
    series: GraphSeries,
    *,
    bins: int = 4096,
    exact: bool = False,
    include_self: bool = False,
) -> tuple[OccupancyDistribution, int]:
    """Occupancy-rate distribution of all minimal trips of a series.

    Returns ``(distribution, num_trips)``.
    """
    collector = OccupancyCollector(bins=bins, exact=exact)
    scan_series(series, collector, include_self=include_self)
    return collector.distribution(), collector.num_trips


def series_occupancy_shard(
    series: GraphSeries,
    targets: np.ndarray,
    *,
    bins: int = 4096,
    exact: bool = False,
    include_self: bool = False,
) -> OccupancyCollector:
    """Collect occupancy rates of the minimal trips arriving in ``targets``.

    One shard of :func:`series_occupancy`: disjoint target subsets
    covering the node set produce collectors that :meth:`merge
    <OccupancyCollector.merge>` back into exactly the full accumulator.
    Returns the raw collector (not a distribution) so partial results
    stay mergeable — a shard whose destinations receive zero trips comes
    back legitimately :attr:`~OccupancyCollector.empty` and merges like
    any other; only the final merged assembly requires mass.
    """
    collector = OccupancyCollector(bins=bins, exact=exact)
    scan_series(series, collector, include_self=include_self, targets=targets)
    return collector


def stream_occupancy_at(
    stream: LinkStream,
    delta: float,
    *,
    origin: float | None = None,
    bins: int = 4096,
    exact: bool = False,
    include_self: bool = False,
) -> tuple[OccupancyDistribution, GraphSeries, int]:
    """Aggregate at Δ and compute the occupancy distribution in one shot.

    Returns ``(distribution, series, num_trips)``.  Aggregation goes
    through :func:`~repro.graphseries.aggregation.aggregate_cached`, so
    an interactive call at some Δ warms the same series memo the sweep
    engine's fused tasks read (and vice versa).
    """
    series = aggregate_cached(stream, delta, origin=origin)
    distribution, num_trips = series_occupancy(
        series, bins=bins, exact=exact, include_self=include_self
    )
    return distribution, series, num_trips
