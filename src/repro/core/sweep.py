"""Aggregation-period grids for Δ sweeps.

The occupancy method varies Δ "from its minimal value, the resolution of
the timestamps, until the whole length T of study" (Section 4).  A
logarithmic grid matches how the phenomenon unfolds (the distribution
drifts over orders of magnitude); a divisor grid honours the paper's
formal ``Δ = T/K`` constraint when exactness matters.
"""

from __future__ import annotations

import numpy as np

from repro.linkstream.stream import LinkStream
from repro.utils.errors import SweepError


def log_delta_grid(
    stream: LinkStream,
    *,
    num: int = 40,
    min_delta: float | None = None,
    max_delta: float | None = None,
) -> np.ndarray:
    """Log-spaced window lengths from the timestamp resolution to the span.

    Parameters
    ----------
    stream:
        Stream whose resolution and span bound the grid by default.
    num:
        Number of grid points (deduplicated after rounding; the result
        may be slightly shorter).
    min_delta, max_delta:
        Override the grid bounds.
    """
    if num < 2:
        raise SweepError("a sweep needs at least two window lengths")
    low = stream.resolution() if min_delta is None else float(min_delta)
    high = _default_max_delta(stream) if max_delta is None else float(max_delta)
    if not 0 < low < high:
        raise SweepError(f"invalid sweep bounds [{low}, {high}]")
    grid = np.geomspace(low, high, num)
    return np.unique(grid)


def _default_max_delta(stream: LinkStream) -> float:
    """Slightly more than the span, so the coarsest window holds *every*
    event (windows are half-open; Δ = span would spill the last event
    into a sliver second window)."""
    return stream.span * (1.0 + 1e-9)


def linear_delta_grid(
    stream: LinkStream,
    *,
    num: int = 40,
    min_delta: float | None = None,
    max_delta: float | None = None,
) -> np.ndarray:
    """Linearly spaced window lengths (for zooming into a narrow range)."""
    if num < 2:
        raise SweepError("a sweep needs at least two window lengths")
    low = stream.resolution() if min_delta is None else float(min_delta)
    high = _default_max_delta(stream) if max_delta is None else float(max_delta)
    if not 0 < low < high:
        raise SweepError(f"invalid sweep bounds [{low}, {high}]")
    return np.unique(np.linspace(low, high, num))


def divisor_delta_grid(stream: LinkStream, *, num: int = 40) -> np.ndarray:
    """Window lengths of the exact form ``Δ = T/K`` (Definition 1).

    Picks ``K`` values log-spaced between 1 and ``T / resolution`` and
    returns the corresponding Δ, deduplicated and ascending.
    """
    if num < 2:
        raise SweepError("a sweep needs at least two window lengths")
    span = _default_max_delta(stream)
    max_k = max(int(span / stream.resolution()), 1)
    ks = np.unique(np.geomspace(1, max_k, num).round().astype(np.int64))
    return np.unique(span / ks[::-1])


def refine_grid(deltas: np.ndarray, best_index: int, *, points: int = 8) -> np.ndarray:
    """A finer grid bracketing ``deltas[best_index]`` (two-stage sweeps).

    Spans from the left neighbour to the right neighbour of the best
    point, log-spaced, endpoints excluded (they were already evaluated).
    """
    deltas = np.asarray(deltas, dtype=np.float64)
    if deltas.ndim != 1 or deltas.size < 2:
        raise SweepError("need an evaluated grid of at least two points")
    if not 0 <= best_index < deltas.size:
        raise SweepError("best_index out of range")
    low = deltas[max(best_index - 1, 0)]
    high = deltas[min(best_index + 1, deltas.size - 1)]
    if low == high:
        return np.empty(0)
    inner = np.geomspace(low, high, points + 2)[1:-1]
    return np.setdiff1d(inner, deltas)
