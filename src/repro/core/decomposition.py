"""Per-period decomposition of heterogeneous streams (Section 9).

The paper's conclusion sketches an enhancement for streams that
alternate high- and low-activity periods: *"separate the high activity
periods from the lower activity periods and determine an appropriate
aggregation scale for each of these parts independently."*  This module
implements that pipeline: threshold a smoothed activity profile to
label periods, cut the stream accordingly, and run the occupancy method
per period class.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.saturation import SaturationResult, occupancy_method
from repro.engine import engine_scope
from repro.linkstream.statistics import activity_profile
from repro.linkstream.stream import LinkStream
from repro.utils.errors import ValidationError


@dataclass(frozen=True)
class ActivityPeriod:
    """One maximal run of windows sharing an activity label."""

    start: float
    end: float
    label: str  # "high" or "low"
    num_events: int


def split_by_activity(
    stream: LinkStream,
    *,
    bin_width: float | None = None,
    threshold: float | None = None,
) -> list[ActivityPeriod]:
    """Label time into alternating high/low-activity periods.

    The event-rate profile is computed on bins of ``bin_width`` (default:
    1/100 of the span) and thresholded at ``threshold`` (default: the
    median of the nonzero bin counts).  Consecutive bins with the same
    label merge into one period.
    """
    if stream.num_events < 2:
        raise ValidationError("need at least two events to split")
    if bin_width is None:
        bin_width = stream.span / 100.0
    starts, counts = activity_profile(stream, bin_width)
    if threshold is None:
        nonzero = counts[counts > 0]
        threshold = float(np.median(nonzero)) if nonzero.size else 0.0
    labels = np.where(counts >= threshold, "high", "low")
    periods: list[ActivityPeriod] = []
    run_start = 0
    for i in range(1, labels.size + 1):
        if i == labels.size or labels[i] != labels[run_start]:
            lo = float(starts[run_start])
            hi = float(starts[i - 1]) + bin_width
            periods.append(
                ActivityPeriod(
                    start=lo,
                    end=hi,
                    label=str(labels[run_start]),
                    num_events=int(counts[run_start:i].sum()),
                )
            )
            run_start = i
    return periods


@dataclass(frozen=True)
class PerPeriodSaturation:
    """Saturation scales measured separately on each activity class."""

    periods: list[ActivityPeriod]
    high_result: SaturationResult | None
    low_result: SaturationResult | None

    @property
    def recommended_delta(self) -> float:
        """The conservative choice: the smallest per-class γ.

        The paper recommends aggregating the whole stream at the shortest
        detected scale when one does not want to split the study period.
        """
        gammas = [
            r.gamma for r in (self.high_result, self.low_result) if r is not None
        ]
        if not gammas:
            raise ValidationError("no period class was measurable")
        return min(gammas)


def per_period_saturation(
    stream: LinkStream,
    *,
    bin_width: float | None = None,
    threshold: float | None = None,
    min_events: int = 50,
    engine=None,
    **occupancy_kwargs,
) -> PerPeriodSaturation:
    """Run the occupancy method separately on high- and low-activity time.

    Events are pooled per activity class: all high-activity periods are
    concatenated (with their original timestamps — minimal trips never
    cross period boundaries of the opposite class anyway once each class
    is analyzed on its own stream), and likewise for low-activity time.
    A class with fewer than ``min_events`` events is skipped.  Both
    per-class sweeps run through ``engine`` (see
    :func:`~repro.core.saturation.occupancy_method`).
    """
    periods = split_by_activity(stream, bin_width=bin_width, threshold=threshold)
    results: dict[str, SaturationResult | None] = {"high": None, "low": None}
    with engine_scope(engine) as eng:
        for label in ("high", "low"):
            keep = np.zeros(stream.num_events, dtype=bool)
            for period in periods:
                if period.label == label:
                    keep |= (stream.timestamps >= period.start) & (
                        stream.timestamps < period.end
                    )
            if int(keep.sum()) < min_events:
                continue
            sub = LinkStream(
                stream.sources[keep],
                stream.targets[keep],
                stream.timestamps[keep],
                directed=stream.directed,
                num_nodes=stream.num_nodes,
                labels=stream.labels,
            )
            if sub.distinct_timestamps().size < 2:
                continue
            results[label] = occupancy_method(sub, engine=eng, **occupancy_kwargs)
    return PerPeriodSaturation(
        periods=periods,
        high_result=results["high"],
        low_result=results["low"],
    )
