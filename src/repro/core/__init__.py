"""Core contribution: the occupancy method and its companions.

* :func:`occupancy_method` — automatic, parameter-free detection of the
  saturation scale γ (Section 4).
* :mod:`repro.core.distribution` / :mod:`repro.core.uniformity` — the
  occupancy-rate distributions and the five uniformity statistics
  (Section 7).
* :mod:`repro.core.validation` — information-loss measures validating γ
  (Section 8).
* :mod:`repro.core.classical` — the smooth classical parameters that
  motivate the method (Section 3).
* :mod:`repro.core.decomposition` — per-activity-period γ (Section 9
  perspective).
"""

from repro.core.classical import ClassicalPoint, ClassicalSweep, classical_sweep
from repro.core.decomposition import (
    ActivityPeriod,
    PerPeriodSaturation,
    per_period_saturation,
    split_by_activity,
)
from repro.core.distribution import OccupancyDistribution, uniform_reference
from repro.core.occupancy import (
    OccupancyCollector,
    series_occupancy,
    stream_occupancy_at,
)
from repro.core.report import StreamReport, analyze_stream
from repro.core.saturation import SaturationResult, SweepPoint, occupancy_method
from repro.core.stability import StabilityResult, gamma_stability
from repro.core.sweep import (
    divisor_delta_grid,
    linear_delta_grid,
    log_delta_grid,
    refine_grid,
)
from repro.core.uniformity import (
    SelectionMethod,
    available_methods,
    get_method,
    score_distribution,
    shannon_method,
)
from repro.core.validation import (
    ElongationCurve,
    ElongationPoint,
    TransitionLossCurve,
    elongation_at,
    elongation_curve,
    shortest_transitions,
    stream_minimal_trips,
    transition_loss_curve,
    transitions_lost_fraction,
)

__all__ = [
    "occupancy_method",
    "SaturationResult",
    "SweepPoint",
    "gamma_stability",
    "StabilityResult",
    "analyze_stream",
    "StreamReport",
    "OccupancyDistribution",
    "uniform_reference",
    "OccupancyCollector",
    "series_occupancy",
    "stream_occupancy_at",
    "SelectionMethod",
    "available_methods",
    "get_method",
    "score_distribution",
    "shannon_method",
    "log_delta_grid",
    "linear_delta_grid",
    "divisor_delta_grid",
    "refine_grid",
    "classical_sweep",
    "ClassicalSweep",
    "ClassicalPoint",
    "stream_minimal_trips",
    "shortest_transitions",
    "transitions_lost_fraction",
    "transition_loss_curve",
    "TransitionLossCurve",
    "elongation_at",
    "elongation_curve",
    "ElongationPoint",
    "ElongationCurve",
    "split_by_activity",
    "per_period_saturation",
    "ActivityPeriod",
    "PerPeriodSaturation",
]
