"""Information-loss validation of an aggregation period (Section 8).

Two measures quantify how much propagation structure a given Δ destroys,
validating the saturation scale returned by the occupancy method:

* **Shortest transitions lost** — a shortest transition (Definition 6)
  is a two-hop minimal trip of the original stream; it survives
  aggregation iff its two hops land in different windows.  The lost
  fraction is the paper's pessimistic loss measure (Figure 8 left:
  ~48 % lost at γ for Irvine).
* **Elongation factor** (Definition 8) — how much longer the minimal
  trips of the aggregated series are, relative to the fastest stream
  trip available inside the same absolute time window (Figure 8 right:
  mean < 1.5 at γ).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.graphseries.aggregation import aggregate_cached
from repro.linkstream.stream import LinkStream
from repro.temporal.collectors import TripListCollector
from repro.temporal.reachability import scan_series, scan_stream
from repro.temporal.trips import PairTripIndex, TripSet
from repro.utils.errors import ValidationError
from repro.utils.rng import ensure_rng


def stream_minimal_trips(stream: LinkStream) -> TripSet:
    """All minimal trips of the original link stream."""
    collector = TripListCollector()
    scan_stream(stream, collector)
    return collector.trips()


def shortest_transitions(stream: LinkStream, trips: TripSet | None = None) -> TripSet:
    """The stream's shortest transitions: minimal trips of exactly 2 hops.

    These are the key units of propagation (Definition 6): losing one
    means the aggregated series no longer knows whether the two links
    could chain.
    """
    if trips is None:
        trips = stream_minimal_trips(stream)
    return trips.select(trips.hops == 2)


def transitions_lost_fraction(
    transitions: TripSet,
    delta: float,
    *,
    origin: float,
) -> float:
    """Fraction of shortest transitions whose two hops share a window.

    A transition's hops occur exactly at its departure and arrival times
    (both are realized by the 2-hop path), so it is lost at scale Δ iff
    those two instants aggregate into the same window — the loss of
    link-order information the paper identifies as the essential damage.
    """
    if not len(transitions):
        raise ValidationError("stream has no shortest transitions")
    window_dep = np.floor((transitions.dep - origin) / delta).astype(np.int64)
    window_arr = np.floor((transitions.arr - origin) / delta).astype(np.int64)
    return float(np.mean(window_dep == window_arr))


@dataclass(frozen=True)
class TransitionLossCurve:
    """Lost-transition fractions over a Δ grid (Figure 8 left)."""

    deltas: np.ndarray
    lost_fractions: np.ndarray
    num_transitions: int

    def lost_at(self, delta: float) -> float:
        """Lost fraction at the grid point nearest to ``delta``."""
        idx = int(np.argmin(np.abs(self.deltas - delta)))
        return float(self.lost_fractions[idx])


def transition_loss_curve(
    stream: LinkStream,
    deltas: np.ndarray,
    *,
    origin: float | None = None,
) -> TransitionLossCurve:
    """Compute the lost-transition fraction for every Δ in the grid.

    The stream's transitions are computed once; each Δ is then a single
    vectorized pass.
    """
    if origin is None:
        origin = stream.t_min
    transitions = shortest_transitions(stream)
    if not len(transitions):
        raise ValidationError("stream has no shortest transitions to lose")
    deltas = np.asarray(deltas, dtype=np.float64)
    fractions = np.array(
        [
            transitions_lost_fraction(transitions, float(d), origin=origin)
            for d in deltas
        ]
    )
    return TransitionLossCurve(deltas, fractions, len(transitions))


@dataclass(frozen=True)
class ElongationPoint:
    """Elongation summary of one aggregation period."""

    delta: float
    mean_factor: float
    median_factor: float
    num_trips_measured: int
    num_trips_skipped: int


def elongation_at(
    stream: LinkStream,
    delta: float,
    *,
    stream_index: PairTripIndex | None = None,
    origin: float | None = None,
    max_trips: int | None = 200_000,
    seed: int | np.random.Generator | None = 0,
) -> ElongationPoint:
    """Mean elongation factor of the series ``G_Δ`` (Definition 8).

    For every minimal trip ``(u, v, dep, arr)`` of the aggregated series
    with ``dep != arr``, the factor is
    ``(arr - dep + 1)·Δ / timeL`` where ``timeL`` is the minimum duration
    of the stream's minimal trips of the pair inside the absolute window
    spanned by the series trip.  ``max_trips`` bounds the per-Δ cost by
    uniform subsampling (measured trips are an unbiased sample).
    """
    if origin is None:
        origin = stream.t_min
    if stream_index is None:
        stream_index = PairTripIndex(stream_minimal_trips(stream), stream.num_nodes)
    # The cached aggregation typically hits: validation at gamma follows
    # a sweep that already materialized the series at gamma.
    series = aggregate_cached(stream, delta, origin=origin)
    collector = TripListCollector()
    scan_series(series, collector)
    trips = collector.trips()
    multi = trips.select(trips.dep != trips.arr)
    total = len(multi)
    if not total:
        return ElongationPoint(delta, float("nan"), float("nan"), 0, 0)
    if max_trips is not None and total > max_trips:
        rng = ensure_rng(seed)
        chosen = rng.choice(total, size=max_trips, replace=False)
        multi = multi.select(np.isin(np.arange(total), chosen))
    factors = []
    skipped = 0
    for u, v, dep, arr, dur in zip(multi.u, multi.v, multi.dep, multi.arr, multi.durations):
        window_start = origin + float(dep) * delta
        window_end = origin + (float(arr) + 1.0) * delta
        best = stream_index.min_duration_in_window(int(u), int(v), window_start, window_end)
        if best is None or best <= 0:
            # A zero-duration stream trip inside the window would imply a
            # one-window series trip, contradicting dep != arr; treat
            # defensively as unmeasurable.
            skipped += 1
            continue
        factors.append(float(dur) * delta / best)
    if not factors:
        return ElongationPoint(delta, float("nan"), float("nan"), 0, skipped)
    factors_arr = np.asarray(factors)
    return ElongationPoint(
        delta=delta,
        mean_factor=float(factors_arr.mean()),
        median_factor=float(np.median(factors_arr)),
        num_trips_measured=factors_arr.size,
        num_trips_skipped=skipped,
    )


@dataclass(frozen=True)
class ElongationCurve:
    """Elongation summaries over a Δ grid (Figure 8 right)."""

    points: list[ElongationPoint]

    @property
    def deltas(self) -> np.ndarray:
        return np.array([p.delta for p in self.points])

    @property
    def mean_factors(self) -> np.ndarray:
        return np.array([p.mean_factor for p in self.points])


def elongation_curve(
    stream: LinkStream,
    deltas: np.ndarray,
    *,
    origin: float | None = None,
    max_trips: int | None = 200_000,
    seed: int | np.random.Generator | None = 0,
) -> ElongationCurve:
    """Mean elongation factor for every Δ in the grid.

    The stream's minimal-trip index is built once and shared.
    """
    index = PairTripIndex(stream_minimal_trips(stream), stream.num_nodes)
    points = [
        elongation_at(
            stream,
            float(d),
            stream_index=index,
            origin=origin,
            max_trips=max_trips,
            seed=seed,
        )
        for d in np.asarray(deltas, dtype=np.float64)
    ]
    return ElongationCurve(points)
