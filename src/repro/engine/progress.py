"""Progress reporting for long sweeps.

A full-scale KONECT sweep can take minutes per Δ; the engine reports
task completion through a tiny listener interface so callers (the CLI,
notebooks, the benches) can surface progress without the numerics
knowing anything about terminals.
"""

from __future__ import annotations

import sys
from typing import TextIO


class ProgressListener:
    """Receives sweep lifecycle events.  The default methods do nothing,
    so subclasses override only what they need."""

    def on_start(self, total: int) -> None:
        """A sweep of ``total`` tasks is about to run."""

    def on_advance(self, done: int, total: int, *, cached: bool = False) -> None:
        """``done`` of ``total`` tasks are now complete (``cached`` marks
        batches satisfied from the cache rather than computed)."""

    def on_finish(self, total: int) -> None:
        """The sweep completed."""


#: Shared no-op listener (the default).
NULL_PROGRESS = ProgressListener()


class StderrProgress(ProgressListener):
    """One-line textual progress on a terminal stream.

    Writes ``sweep 12/40 (3 cached)`` carriage-return updates; a final
    newline is emitted on finish so subsequent output starts clean.
    """

    def __init__(self, stream: TextIO | None = None, *, label: str = "sweep") -> None:
        self._stream = stream if stream is not None else sys.stderr
        self._label = label
        self._cached = 0

    def on_start(self, total: int) -> None:
        self._cached = 0
        self._render(0, total)

    def on_advance(self, done: int, total: int, *, cached: bool = False) -> None:
        if cached:
            self._cached = done  # cached tasks are delivered first, in bulk
        self._render(done, total)

    def on_finish(self, total: int) -> None:
        self._render(total, total)
        self._stream.write("\n")
        self._stream.flush()

    def _render(self, done: int, total: int) -> None:
        suffix = f" ({self._cached} cached)" if self._cached else ""
        self._stream.write(f"\r{self._label} {done}/{total}{suffix}")
        self._stream.flush()
