"""A small job queue: many requests, one bounded set of runners.

:class:`JobQueue` is the concurrency heart of the analysis service, but
it is deliberately service-agnostic: a job is any zero-argument callable
(in the daemon, a closure around ``analyze_stream`` or an engine sweep).
The queue adds the three behaviours a long-lived shared process needs:

* **Admission control** — at most ``max_pending`` computations may wait
  for a runner; past that, :meth:`~JobQueue.submit` raises
  :class:`~repro.utils.errors.AdmissionError` (the daemon maps it to a
  429-style response) instead of letting the backlog grow without bound.
* **Deadlines** — ``submit(..., timeout=5.0)`` gives the job a
  :class:`~repro.engine.cancel.CancelToken` expiring then.  The runner
  executes the job inside a :func:`~repro.engine.cancel.cancel_scope`,
  so every engine sweep the job performs inherits the token and fails
  fast (:class:`~repro.utils.errors.JobCancelled` naming the task it
  stopped at) once the deadline passes.
* **Request coalescing** — ``submit(..., key=...)`` with the key of an
  in-flight computation does not start new work: the new job *attaches*
  to the running computation and both jobs see the identical result.
  The attached job may relax the shared deadline (the computation lives
  as long as its most patient requester) but never tightens it.  Keys
  are the caller's notion of identity — the service derives them from
  the stream fingerprint, the Δ-grid, and the measure tokens.

Runners are plain threads (``runners`` of them); the heavy parallelism
lives below, in the engine's backend pool that all jobs share.  Keeping
the two pools separate is what makes the design deadlock-free: a runner
blocked on a sweep never occupies a backend worker.
"""

from __future__ import annotations

import threading
import uuid
from collections.abc import Callable
from concurrent.futures import ThreadPoolExecutor

from repro.engine.cancel import CancelToken, cancel_scope
from repro.utils.errors import AdmissionError, EngineError, JobCancelled

#: Job lifecycle states (terminal: done / failed / cancelled).
QUEUED = "queued"
RUNNING = "running"
DONE = "done"
FAILED = "failed"
CANCELLED = "cancelled"

TERMINAL_STATES = frozenset({DONE, FAILED, CANCELLED})


class Job:
    """One submitted request: a handle to poll, wait on, or cancel.

    Several jobs may share one computation (coalescing); each job still
    has its own id, label, and cancellation — cancelling one attached
    job never kills work another job is waiting for.
    """

    def __init__(self, job_id: str, label: str, key: str | None) -> None:
        self.id = job_id
        self.label = label
        self.key = key
        #: Whether this job attached to an in-flight computation instead
        #: of starting its own.
        self.coalesced = False
        self._event = threading.Event()
        self._lock = threading.Lock()
        self._state = QUEUED
        self._result = None
        self._error: BaseException | None = None
        self._computation: "_Computation | None" = None

    @property
    def state(self) -> str:
        with self._lock:
            return self._state

    @property
    def done(self) -> bool:
        """Whether the job reached a terminal state (any of them)."""
        return self.state in TERMINAL_STATES

    def wait(self, timeout: float | None = None) -> bool:
        """Block until the job settles; ``True`` if it did in time."""
        return self._event.wait(timeout)

    def result(self, timeout: float | None = None):
        """The job's value — blocking, raising the job's failure if any."""
        if not self._event.wait(timeout):
            raise EngineError(f"job {self.id} not done within {timeout}s")
        if self._error is not None:
            raise self._error
        return self._result

    @property
    def error(self) -> BaseException | None:
        """The terminal failure (``None`` while live or on success)."""
        with self._lock:
            return self._error

    def cancel(self, reason: str = "cancelled by client") -> bool:
        """Detach and cancel this job.  The shared computation's token is
        cancelled only when no other live job is attached — the last one
        out turns off the lights.  Returns ``False`` if already settled."""
        computation = self._computation
        if computation is not None:
            return computation.cancel_job(self, reason)
        return self._settle(CANCELLED, error=JobCancelled(reason))

    def _mark_running(self) -> None:
        with self._lock:
            if self._state == QUEUED:
                self._state = RUNNING

    def _settle(self, state: str, *, result=None, error=None) -> bool:
        with self._lock:
            if self._state in TERMINAL_STATES:
                return False
            self._state = state
            self._result = result
            self._error = error
        self._event.set()
        return True

    def __repr__(self) -> str:
        return f"Job(id={self.id!r}, state={self.state!r}, label={self.label!r})"


class _Computation:
    """One unit of actual work, shared by every job coalesced onto it."""

    def __init__(self, key: str | None, fn: Callable[[], object], token: CancelToken) -> None:
        self.key = key
        self.fn = fn
        self.token = token
        self.jobs: list[Job] = []
        self.lock = threading.Lock()
        self.started = False
        self.finished = False

    def attach(self, job: Job) -> bool:
        """Add ``job`` to this computation; ``False`` if it already
        finished (the caller starts a fresh one instead)."""
        with self.lock:
            if self.finished:
                return False
            self.jobs.append(job)
            job._computation = self
            return True

    def cancel_job(self, job: Job, reason: str) -> bool:
        with self.lock:
            if not job._settle(CANCELLED, error=JobCancelled(reason)):
                return False
            self.jobs.remove(job)
            last = not self.jobs
        if last:
            self.token.cancel(reason)
        return True

    def settle_all(self, state: str, *, result=None, error=None) -> list[Job]:
        with self.lock:
            self.finished = True
            jobs, self.jobs = self.jobs, []
        for job in jobs:
            job._settle(state, result=result, error=error)
        return jobs


class JobQueue:
    """Bounded asynchronous execution of analysis jobs.

    Parameters
    ----------
    runners:
        Concurrent jobs (threads).  Each runner mostly waits on engine
        sweeps, so a handful suffices even under heavy load.
    max_pending:
        Admission limit: computations allowed to *wait* for a runner.
        Running computations don't count — the limit bounds the backlog,
        not the concurrency.
    """

    def __init__(self, *, runners: int = 4, max_pending: int = 32) -> None:
        if runners < 1:
            raise EngineError("runners must be a positive integer")
        if max_pending < 0:
            raise EngineError("max_pending must be >= 0")
        self.runners = runners
        self.max_pending = max_pending
        self._pool = ThreadPoolExecutor(
            max_workers=runners, thread_name_prefix="repro-job"
        )
        self._lock = threading.Lock()
        self._jobs: dict[str, Job] = {}
        self._inflight: dict[str, _Computation] = {}
        self._queued = 0
        self._running = 0
        self._closed = False
        self.counters = {
            "submitted": 0,
            "coalesced": 0,
            "rejected": 0,
            "completed": 0,
            "failed": 0,
            "cancelled": 0,
        }

    def submit(
        self,
        fn: Callable[[], object],
        *,
        key: str | None = None,
        timeout: float | None = None,
        label: str = "",
    ) -> Job:
        """Queue ``fn`` and return its :class:`Job` immediately.

        ``key`` opts into coalescing: if a computation with the same key
        is in flight, the job attaches to it (and ``fn`` is dropped —
        the in-flight computation's result serves both).  ``timeout``
        sets the job's deadline in seconds.  Raises
        :class:`~repro.utils.errors.AdmissionError` when the queue's
        backlog is full.
        """
        job = Job(uuid.uuid4().hex[:12], label, key)
        token = CancelToken.with_timeout(timeout)
        with self._lock:
            if self._closed:
                raise EngineError("job queue is closed")
            if key is not None:
                computation = self._inflight.get(key)
                if computation is not None and computation.attach(job):
                    # A coalesced request never tightens the shared
                    # deadline: the computation outlives its most
                    # patient requester.
                    computation.token.extend_deadline(token.deadline)
                    job.coalesced = True
                    self.counters["submitted"] += 1
                    self.counters["coalesced"] += 1
                    self._jobs[job.id] = job
                    return job
            if self._queued >= self.max_pending:
                self.counters["rejected"] += 1
                raise AdmissionError(
                    f"job queue full: {self._queued} jobs already waiting "
                    f"(max_pending={self.max_pending}); retry later"
                )
            computation = _Computation(key, fn, token)
            computation.attach(job)
            if key is not None:
                self._inflight[key] = computation
            self._jobs[job.id] = job
            self._queued += 1
            self.counters["submitted"] += 1
        self._pool.submit(self._execute, computation)
        return job

    def _execute(self, computation: _Computation) -> None:
        with self._lock:
            self._queued -= 1
            self._running += 1
        with computation.lock:
            computation.started = True
            abandoned = not computation.jobs
            for job in computation.jobs:
                job._mark_running()
        try:
            if abandoned or computation.token.cancelled:
                # Every requester cancelled (or the deadline passed)
                # while the computation waited for a runner.
                reason = computation.token.reason or "cancelled"
                self._finish(
                    computation, CANCELLED, error=JobCancelled(reason)
                )
                return
            try:
                with cancel_scope(computation.token):
                    value = computation.fn()
            except JobCancelled as exc:
                self._finish(computation, CANCELLED, error=exc)
            except BaseException as exc:
                self._finish(computation, FAILED, error=exc)
            else:
                self._finish(computation, DONE, result=value)
        finally:
            with self._lock:
                self._running -= 1

    def _finish(self, computation: _Computation, state: str, *, result=None, error=None) -> None:
        with self._lock:
            if computation.key is not None:
                if self._inflight.get(computation.key) is computation:
                    del self._inflight[computation.key]
        settled = computation.settle_all(state, result=result, error=error)
        counter = {DONE: "completed", FAILED: "failed", CANCELLED: "cancelled"}[state]
        with self._lock:
            self.counters[counter] += max(1, len(settled))

    def job(self, job_id: str) -> Job | None:
        """Look up a job by id (``None`` when unknown)."""
        with self._lock:
            return self._jobs.get(job_id)

    def jobs(self) -> list[Job]:
        """Every job the queue has seen, newest last."""
        with self._lock:
            return list(self._jobs.values())

    def forget(self, job_id: str) -> bool:
        """Drop a settled job from the registry (``False`` if live or
        unknown) — the service's result-retention hook."""
        with self._lock:
            job = self._jobs.get(job_id)
            if job is None or not job.done:
                return False
            del self._jobs[job_id]
            return True

    def stats(self) -> dict:
        """Counters plus the queue's live occupancy."""
        with self._lock:
            return {
                **self.counters,
                "queued": self._queued,
                "running": self._running,
                "max_pending": self.max_pending,
                "runners": self.runners,
            }

    def close(self, *, cancel_pending: bool = True) -> None:
        """Stop accepting work and shut the runner pool down."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            live = [job for job in self._jobs.values() if not job.done]
        if cancel_pending:
            for job in live:
                job.cancel("job queue shut down")
        self._pool.shutdown(wait=True)

    def __enter__(self) -> "JobQueue":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:
        stats = self.stats()
        return (
            f"JobQueue(runners={self.runners}, queued={stats['queued']}, "
            f"running={stats['running']})"
        )
