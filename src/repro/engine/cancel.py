"""Cooperative cancellation of sweep plans and jobs.

A :class:`CancelToken` is the engine's cancellation plumbing: one token
per request, checked at every task boundary.  It folds two triggers into
one object —

* **explicit cancellation** (``token.cancel("client went away")``), and
* a **deadline** (``CancelToken.with_timeout(2.5)``): past it, the token
  reads as cancelled without any timer thread;

and it rides the engine's existing fail-fast path: when a backend's
worker finds its token cancelled it raises :class:`JobCancelled` *naming
the task it stopped at* (kind plus Δ), which makes the backend cancel
every pending task of the plan exactly like any other task failure.

Tokens travel two ways.  Explicitly — ``engine.run(stream, tasks,
cancel=token)`` — or through a **cancel scope**: ``with
cancel_scope(token): analyze_stream(...)`` binds the token to the
calling thread so every engine run inside the scope (the occupancy
sweep, refinement rounds, companion sweeps) inherits it without any
signature changes in between.  The job queue runs every job inside a
scope carrying the job's deadline.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from typing import Iterator

from repro.utils.errors import JobCancelled


class CancelToken:
    """Cancellation state shared by one request and its workers.

    Thread-safe; checked (never blocked on) at task boundaries.  The
    deadline is a :func:`time.monotonic` instant; ``None`` means no
    deadline.  Coalesced requests attaching to an in-flight computation
    relax the deadline through :meth:`extend_deadline`, so the shared
    computation lives as long as its most patient requester.
    """

    def __init__(self, *, deadline: float | None = None) -> None:
        self._event = threading.Event()
        self._lock = threading.Lock()
        self._reason: str | None = None
        self._deadline = deadline

    @classmethod
    def with_timeout(cls, timeout: float | None) -> "CancelToken":
        """A token expiring ``timeout`` seconds from now (``None``: never)."""
        deadline = None if timeout is None else time.monotonic() + float(timeout)
        return cls(deadline=deadline)

    @property
    def deadline(self) -> float | None:
        with self._lock:
            return self._deadline

    def extend_deadline(self, deadline: float | None) -> None:
        """Relax the deadline: ``None`` removes it, a later instant
        replaces an earlier one (never tightens)."""
        with self._lock:
            if self._deadline is None:
                return
            if deadline is None:
                self._deadline = None
            else:
                self._deadline = max(self._deadline, float(deadline))

    def cancel(self, reason: str = "cancelled") -> None:
        """Mark the token cancelled (the first reason wins)."""
        with self._lock:
            if self._reason is None:
                self._reason = reason
        self._event.set()

    @property
    def expired(self) -> bool:
        """Whether the deadline (if any) has passed."""
        deadline = self.deadline
        return deadline is not None and time.monotonic() >= deadline

    @property
    def cancelled(self) -> bool:
        """Whether work under this token should stop."""
        return self._event.is_set() or self.expired

    @property
    def reason(self) -> str | None:
        """Why the token is cancelled (``None`` while it is live)."""
        with self._lock:
            if self._reason is not None:
                return self._reason
        return "deadline exceeded" if self.expired else None

    def guard(self, task=None) -> None:
        """Raise :class:`JobCancelled` if the token is cancelled.

        ``task`` (a :class:`~repro.engine.tasks.DeltaTask`) names where
        the plan stopped — the error message carries the task kind and
        Δ, so a deadline report reads ``deadline exceeded before
        analysis task at delta=86400``.
        """
        if not self.cancelled:
            return
        where = (
            f" before {task.kind} task at delta={task.delta:g}"
            if task is not None
            else ""
        )
        raise JobCancelled(f"{self.reason}{where}")

    def __repr__(self) -> str:
        state = f"cancelled: {self.reason!r}" if self.cancelled else "live"
        return f"CancelToken({state})"


_scope = threading.local()


def current_cancel_token() -> CancelToken | None:
    """The token bound to the calling thread (``None`` outside a scope)."""
    return getattr(_scope, "token", None)


@contextmanager
def cancel_scope(token: CancelToken | None) -> Iterator[CancelToken | None]:
    """Bind ``token`` to the calling thread for the duration of a block.

    Engine runs inside the block pick the token up automatically (see
    :meth:`SweepEngine.run`), so a deadline set at the request boundary
    reaches every sweep a high-level call performs — ``analyze_stream``'s
    refinement rounds included — without threading ``cancel=`` through
    each intermediate signature.  Scopes nest; the inner token wins.
    """
    previous = current_cancel_token()
    _scope.token = token
    try:
        yield token
    finally:
        _scope.token = previous
