"""Warm-append reuse: the store behind zero-recompute incremental sweeps.

An append-only :meth:`~repro.linkstream.stream.LinkStream.extend` keeps
the old events a literal prefix of the new stream, and the chained
fingerprint makes every such prefix *recognizable* — the grown stream
knows the exact fingerprints of its ancestors.  This module turns that
recognition into reuse for the two expensive stages of a sweep point:

* **Aggregation** — the prefix's cached series splices with the
  re-windowed suffix (:func:`~repro.graphseries.aggregation.
  aggregate_prefix_extended`) instead of re-windowing every event.
* **The backward scan** — a prior scan's checkpoint record
  (:class:`~repro.temporal.reachability.CheckpointRecorder`) lets the
  new scan run backward from the new end only until it reaches a
  *settled boundary*: a checkpointed window whose incoming scan state is
  bit-identical to the cached one.  Everything below it — typically the
  whole prefix outside the appended suffix — is spliced from the cached
  per-span consumer contributions instead of being rescanned.

Both reuses are exact: the spliced series and the assembled consumers
are bit-identical to from-scratch computation (property-tested across
kernels, sharding, and straddling-window appends), which is why cache
keys never distinguish warm from cold evaluation.

The store is process-global and bounded (``REPRO_INCREMENTAL_MAX_BYTES``,
default 512 MiB, LRU over streams): a long-lived service process keeps
records warm across appends, short CLI runs pay nothing.  Set
``REPRO_INCREMENTAL=0`` to disable all reuse (every scan runs cold and
nothing is recorded) — results are identical either way.

Keys are content-derived: ``(stream fingerprint, Δ, origin)`` addresses
a stream entry, and ``(include_self, shard, consumer tokens)`` a scan
record within it.  A record is only ever replayed for the same measure
stack (the consumer tokens pin collector construction parameters), the
same destination partition (``shard``), and an unchanged node count, so
a stale or foreign record cannot be spliced into a result.
"""

from __future__ import annotations

import os
import threading
from collections import OrderedDict

import numpy as np

from repro.graphseries.aggregation import (
    aggregate_cached,
    aggregate_prefix_extended,
    lookup_memoized_series,
    memoize_series,
    window_index,
)
from repro.graphseries.series import GraphSeries
from repro.linkstream.stream import LinkStream
from repro.temporal.reachability import (
    CheckpointRecorder,
    ResumePlan,
    scan_series,
)
from repro.utils.errors import AggregationError, EngineError

#: Default byte budget for the process-global incremental store.
INCREMENTAL_MAX_BYTES = 512 * 1024 * 1024

#: Observability counters: ``records`` counts scan records committed,
#: ``resumes`` counts scans that ran with a resume plan attached,
#: ``splices`` counts series built by prefix splicing.  Monotone, for
#: benches and tests (never read by any computation).
INCREMENTAL_COUNTS = {"records": 0, "resumes": 0, "splices": 0}

_STORE: "OrderedDict[tuple, _StreamEntry]" = OrderedDict()
_STORE_LOCK = threading.Lock()


def _enabled() -> bool:
    raw = os.environ.get("REPRO_INCREMENTAL")
    if raw is None:
        return True
    return raw.strip().lower() not in ("0", "false", "off", "no")


def _max_bytes() -> int:
    raw = os.environ.get("REPRO_INCREMENTAL_MAX_BYTES")
    if raw is None:
        return INCREMENTAL_MAX_BYTES
    try:
        value = int(raw)
    except ValueError:
        raise EngineError(
            f"REPRO_INCREMENTAL_MAX_BYTES must be an integer, got {raw!r}"
        ) from None
    if value < 0:
        raise EngineError(
            f"REPRO_INCREMENTAL_MAX_BYTES must be >= 0, got {value}"
        )
    return value


def _approx_nbytes(obj, depth: int = 3) -> int:
    """Rough recursive byte count of the numpy payload hanging off ``obj``.

    Budget accounting only — walks ndarray attributes (and lists/tuples/
    dicts of them) a few levels deep; scalars and bookkeeping count as
    zero.  Over- or under-counting by a constant factor only shifts the
    effective LRU budget, never correctness.
    """
    if isinstance(obj, np.ndarray):
        return obj.nbytes
    if depth <= 0 or obj is None or isinstance(obj, (int, float, str, bytes)):
        return 0
    if isinstance(obj, (list, tuple)):
        return sum(_approx_nbytes(item, depth - 1) for item in obj)
    if isinstance(obj, dict):
        return sum(_approx_nbytes(item, depth - 1) for item in obj.values())
    total = 0
    slots = getattr(type(obj), "__slots__", None)
    names = (
        list(slots)
        if slots is not None
        else list(getattr(obj, "__dict__", ()))
    )
    for name in names:
        total += _approx_nbytes(getattr(obj, name, None), depth - 1)
    return total


class _ScanRecord:
    """One scan's reusable state: checkpoints plus per-span contributions."""

    __slots__ = ("checkpoints", "spans", "span_trips", "nbytes")

    def __init__(self, checkpoints, spans, span_trips) -> None:
        self.checkpoints = tuple(checkpoints)
        self.spans = tuple(spans)
        self.span_trips = tuple(span_trips)
        self.nbytes = sum(c.nbytes for c in self.checkpoints) + _approx_nbytes(
            self.spans
        )


class _StreamEntry:
    """Everything cached for one ``(fingerprint, Δ, origin)``."""

    __slots__ = ("series", "num_nodes", "num_events", "scans", "nbytes")

    def __init__(
        self, series: GraphSeries, num_events: int
    ) -> None:
        self.series = series
        self.num_nodes = int(series.num_nodes)
        self.num_events = int(num_events)
        self.scans: dict[tuple, _ScanRecord] = {}
        self.nbytes = 0
        self.refresh_nbytes()

    def refresh_nbytes(self) -> None:
        series_bytes = (
            self.series.edge_steps.nbytes
            + self.series.edge_sources.nbytes
            + self.series.edge_targets.nbytes
        )
        self.nbytes = series_bytes + sum(
            record.nbytes for record in self.scans.values()
        )


def _evict_locked() -> None:
    budget = _max_bytes()
    total = sum(entry.nbytes for entry in _STORE.values())
    while total > budget and len(_STORE) > 1:
        _key, entry = _STORE.popitem(last=False)
        total -= entry.nbytes


def incremental_stats() -> dict:
    """Snapshot of the store: entry/record counts, bytes, and counters."""
    with _STORE_LOCK:
        return {
            "streams": len(_STORE),
            "scan_records": sum(len(e.scans) for e in _STORE.values()),
            "nbytes": sum(e.nbytes for e in _STORE.values()),
            "max_bytes": _max_bytes(),
            "counts": dict(INCREMENTAL_COUNTS),
        }


def clear_incremental_store() -> None:
    """Drop every cached series and scan record (counters persist)."""
    with _STORE_LOCK:
        _STORE.clear()


class IncrementalScanSession:
    """One (stream, Δ) evaluation's view of the incremental store.

    Binds a stream, an aggregation geometry, and a scan identity
    (``include_self``, destination ``shard``, the measure stack's
    ``consumer_tokens``), then serves the two reusable stages:

    * :meth:`series` — the aggregated series, spliced from a cached
      ancestor prefix when one is warm.
    * :meth:`scan` — the backward scan, resumed from a cached ancestor
      record's settled boundary when one is warm; the scan it runs (warm
      or cold) is recorded for the *next* append.

    ``shard`` is ``None`` for an unrestricted scan or ``(shard_index,
    num_shards)`` for the engine's strided destination partition; when a
    shard is given, :meth:`scan` must be called with the matching
    ``targets`` — the shard tuple is what keys the record, so mismatched
    targets would splice wrong columns.  ``consumer_tokens`` must pin
    every consumer's construction parameters in list order (the engine
    passes each measure's ``(name, collector_token())``).

    Everything degrades gracefully: disabled store, unknown ancestry,
    changed node count, or consumers without ``segment_handoff`` all
    fall back to plain cold evaluation with identical results.
    """

    def __init__(
        self,
        stream: LinkStream,
        *,
        delta: float,
        origin: float | None = None,
        include_self: bool = False,
        shard: tuple[int, int] | None = None,
        consumer_tokens: tuple = (),
    ) -> None:
        self._stream = stream
        self._delta = float(delta)
        self._origin = origin
        self._include_self = bool(include_self)
        self._shard = (
            None if shard is None else (int(shard[0]), int(shard[1]))
        )
        self._consumer_tokens = tuple(consumer_tokens)
        canonical = origin
        if canonical is not None and float(canonical) == stream.t_min:
            canonical = None
        self._origin_token = (
            None if canonical is None else repr(float(canonical))
        )
        self._base_key = (
            stream.fingerprint(),
            repr(self._delta),
            self._origin_token,
        )
        self._scan_key = (
            self._include_self,
            self._shard,
            self._consumer_tokens,
        )
        self._series: GraphSeries | None = None

    # -- ancestry ---------------------------------------------------------

    def _ancestor_keys(self):
        """Ancestor ``(base_key, append_point)`` pairs, largest prefix first.

        The chain records ``(event_count, fingerprint)`` per extend;
        reversing it probes the most recent (longest) ancestor first, so
        a warm hit reuses the maximal prefix.
        """
        for count, fingerprint in reversed(self._stream.fingerprint_chain):
            yield (
                (fingerprint, repr(self._delta), self._origin_token),
                int(count),
            )

    def _effective_origin(self) -> float:
        return (
            float(self._origin)
            if self._origin is not None
            else float(self._stream.t_min)
        )

    def _suffix_limit(self, append_point: int, num_steps: int) -> int:
        """First window the append at ``append_point`` could have changed.

        Checkpoints strictly below it are settle candidates.  An append
        point at the stream end (only empty batches since) leaves every
        window eligible.
        """
        if append_point >= self._stream.num_events:
            return int(num_steps)
        t_first = self._stream.timestamps[append_point : append_point + 1]
        return int(
            window_index(t_first, self._delta, self._effective_origin())[0]
        )

    # -- the aggregation stage --------------------------------------------

    def series(self) -> GraphSeries:
        """The stream aggregated at Δ, spliced from a warm prefix if any."""
        if self._series is not None:
            return self._series
        series = lookup_memoized_series(
            self._stream, self._delta, origin=self._origin
        )
        if series is None and _enabled():
            series = self._splice_series()
            if series is not None:
                memoize_series(
                    self._stream, self._delta, series, origin=self._origin
                )
        if series is None:
            series = aggregate_cached(
                self._stream, self._delta, origin=self._origin
            )
        if _enabled():
            with _STORE_LOCK:
                self._touch_entry_locked(series)
                _evict_locked()
        self._series = series
        return series

    def _splice_series(self) -> GraphSeries | None:
        parent: GraphSeries | None = None
        append_point = 0
        with _STORE_LOCK:
            for key, count in self._ancestor_keys():
                entry = _STORE.get(key)
                if entry is None or entry.num_nodes != self._stream.num_nodes:
                    continue
                if not 0 < count < self._stream.num_events:
                    continue
                if count != entry.num_events:
                    continue
                _STORE.move_to_end(key)
                parent, append_point = entry.series, count
                break
        if parent is None:
            return None
        try:
            series = aggregate_prefix_extended(
                self._stream,
                self._delta,
                prefix_series=parent,
                prefix_events=append_point,
                origin=self._origin,
            )
        except AggregationError:
            return None
        INCREMENTAL_COUNTS["splices"] += 1
        return series

    # -- the scan stage ---------------------------------------------------

    def scan(
        self,
        consumers,
        *,
        targets: np.ndarray | None = None,
        kernel: str | None = None,
    ):
        """Run the backward scan, resuming from a warm record when possible.

        Feeds ``consumers`` exactly as ``scan_series(series, consumers)``
        would — same trips, same accumulator state, same trip order —
        and commits this scan's own checkpoint record for future
        appends.  Returns the :class:`~repro.temporal.reachability.
        ScanResult`.
        """
        series = self.series()
        items = (
            []
            if consumers is None
            else list(consumers)
            if isinstance(consumers, (list, tuple))
            else [consumers]
        )
        supported = all(
            hasattr(item, "segment_handoff") for item in items
        )
        if not _enabled() or not supported:
            return scan_series(
                series,
                items,
                include_self=self._include_self,
                targets=targets,
                kernel=kernel,
            )
        plan = self._resume_plan(series)
        recorder = CheckpointRecorder()
        result = scan_series(
            series,
            items,
            include_self=self._include_self,
            targets=targets,
            kernel=kernel,
            checkpoints=recorder,
            resume=plan,
        )
        if plan is not None:
            INCREMENTAL_COUNTS["resumes"] += 1
        self._commit_scan(series, recorder)
        return result

    def _resume_plan(self, series: GraphSeries) -> ResumePlan | None:
        with _STORE_LOCK:
            # A record for this very stream (re-analysis, or an empty
            # append preserving the fingerprint): every window settles.
            entry = _STORE.get(self._base_key)
            if entry is not None and entry.num_nodes == series.num_nodes:
                record = entry.scans.get(self._scan_key)
                if record is not None and record.checkpoints:
                    _STORE.move_to_end(self._base_key)
                    return ResumePlan(
                        record.checkpoints,
                        record.spans,
                        record.span_trips,
                        limit=int(series.num_steps),
                    )
            for key, count in self._ancestor_keys():
                entry = _STORE.get(key)
                if entry is None or entry.num_nodes != series.num_nodes:
                    continue
                record = entry.scans.get(self._scan_key)
                if record is None or not record.checkpoints:
                    continue
                if count <= 0:
                    continue
                _STORE.move_to_end(key)
                plan = ResumePlan(
                    record.checkpoints,
                    record.spans,
                    record.span_trips,
                    limit=self._suffix_limit(count, series.num_steps),
                )
                if len(plan):
                    return plan
        return None

    def _commit_scan(
        self, series: GraphSeries, recorder: CheckpointRecorder
    ) -> None:
        record = _ScanRecord(
            recorder.checkpoints, recorder.spans, recorder.span_trips
        )
        with _STORE_LOCK:
            entry = self._touch_entry_locked(series)
            entry.scans[self._scan_key] = record
            entry.refresh_nbytes()
            INCREMENTAL_COUNTS["records"] += 1
            _evict_locked()

    def _touch_entry_locked(self, series: GraphSeries) -> _StreamEntry:
        entry = _STORE.get(self._base_key)
        if entry is None:
            entry = _StreamEntry(series, self._stream.num_events)
            _STORE[self._base_key] = entry
        _STORE.move_to_end(self._base_key)
        return entry
