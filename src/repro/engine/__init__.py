"""Sweep-execution engine: task planning, pluggable backends, caching.

The occupancy method and its companions all share one workload shape —
evaluate many independent aggregation periods Δ on one stream.  This
package turns that loop into an explicit plan of
:class:`~repro.engine.tasks.DeltaTask`s executed by a pluggable
:class:`~repro.engine.backends.ExecutionBackend` behind a
content-addressed :class:`~repro.engine.cache.SweepCache`:

* :mod:`repro.engine.measures` — the measure layer as an **open plugin
  registry**: the declarative :class:`MeasureSpec` contract (dataclass
  fields are the parameter schema, hashed into the cache key),
  :func:`register_measure` for user-defined measures, the
  ``name[:key=value,...]`` spec parser behind the CLI, and six
  built-ins (occupancy, classical, metrics, trips, components,
  reachability) registered exactly like plugins;
* :mod:`repro.engine.tasks` — the fused per-Δ :class:`AnalysisTask`
  that aggregates once, scans once, and emits one separately-cached
  result per measure, plus the within-Δ shard planner
  (:class:`AnalysisShardTask` splits one huge evaluation into
  destination-partition shards that merge back bit-identically) — all
  generic over the registry;
* :mod:`repro.engine.backends` — serial (default), thread-pool, and
  chunked process-pool execution, all bit-identical, plus the ``async``
  backend whose :meth:`~repro.engine.backends.AsyncBackend.submit_plan`
  queues a plan non-blockingly and returns a
  :class:`~repro.engine.backends.PlanHandle`;
* :mod:`repro.engine.cancel` — cooperative cancellation:
  :class:`CancelToken` (explicit cancel or deadline) checked at every
  task boundary, carried by ``cancel_scope`` so nested sweeps inherit
  request deadlines;
* :mod:`repro.engine.jobs` — :class:`JobQueue`, bounded asynchronous
  job execution with admission control, per-job deadlines, and request
  coalescing (the analysis service's core);
* :mod:`repro.engine.incremental` — warm-append reuse: per-stream
  spliced aggregations and checkpointed scan records that let an
  appended stream's evaluation rescan only the unsettled suffix,
  bit-identically (:class:`IncrementalScanSession`);
* :mod:`repro.engine.cache` — layered memory/disk result store keyed on
  the stream fingerprint plus the task parameters;
* :mod:`repro.engine.scheduler` — :class:`SweepEngine`, the cache-aware
  dispatcher (blocking ``run`` and future-shaped ``submit``), plus the
  ``REPRO_ENGINE`` / ``REPRO_CACHE_DIR`` defaults;
* :mod:`repro.engine.progress` — listener hooks for long sweeps.

Typical use::

    from repro.engine import SweepEngine

    engine = SweepEngine("process", jobs=8)
    result = occupancy_method(stream, engine=engine)     # parallel sweep
    again = occupancy_method(stream, engine=engine)      # pure cache hits
"""

from repro.engine.backends import (
    AsyncBackend,
    ExecutionBackend,
    PlanHandle,
    ProcessBackend,
    SerialBackend,
    ThreadBackend,
    available_backends,
    get_backend,
)
from repro.engine.cancel import CancelToken, cancel_scope, current_cancel_token
from repro.engine.jobs import Job, JobQueue
from repro.engine.cache import (
    MISS,
    CacheStore,
    DiskStore,
    MemoryStore,
    SweepCache,
)
from repro.engine.progress import NULL_PROGRESS, ProgressListener, StderrProgress
from repro.engine.scheduler import (
    AUTO_SHARDS,
    CACHE_DIR_ENV_VAR,
    CACHE_MAX_BYTES_ENV_VAR,
    ENGINE_ENV_VAR,
    SHARDS_ENV_VAR,
    EngineFuture,
    SweepEngine,
    cache_max_bytes_from_env,
    default_engine,
    engine_from_env,
    engine_scope,
    normalize_shards,
    resolve_engine,
    set_default_engine,
)
from repro.engine.measures import (
    ENTRY_POINT_FAILURES,
    ENTRY_POINT_GROUP,
    MEASURE_REGISTRY,
    ClassicalMeasure,
    ComponentsMeasure,
    ComponentsPoint,
    MeasureSpec,
    MetricsMeasure,
    OccupancyMeasure,
    ReachabilityMeasure,
    ReachabilityPoint,
    SeriesGeometry,
    TripSample,
    TripsMeasure,
    available_measures,
    build_measure,
    describe_measures,
    load_entry_point_measures,
    measure_schema,
    normalize_measures,
    parse_measure_spec,
    parse_measures_arg,
    register_measure,
    resolve_measure,
    unregister_measure,
)
from repro.engine.incremental import (
    INCREMENTAL_COUNTS,
    IncrementalScanSession,
    clear_incremental_store,
    incremental_stats,
)
from repro.engine.tasks import (
    AnalysisShardResult,
    AnalysisShardTask,
    AnalysisTask,
    DeltaTask,
    ShardPlan,
    plan_classical_sweep,
    plan_measure_sweep,
    plan_occupancy_sweep,
    plan_shard_expansion,
)

__all__ = [
    "DeltaTask",
    "AnalysisTask",
    "AnalysisShardTask",
    "AnalysisShardResult",
    "MeasureSpec",
    "SeriesGeometry",
    "OccupancyMeasure",
    "ClassicalMeasure",
    "MetricsMeasure",
    "TripsMeasure",
    "TripSample",
    "ComponentsMeasure",
    "ComponentsPoint",
    "ReachabilityMeasure",
    "ReachabilityPoint",
    "MEASURE_REGISTRY",
    "register_measure",
    "unregister_measure",
    "available_measures",
    "describe_measures",
    "load_entry_point_measures",
    "ENTRY_POINT_GROUP",
    "ENTRY_POINT_FAILURES",
    "measure_schema",
    "build_measure",
    "parse_measure_spec",
    "parse_measures_arg",
    "normalize_measures",
    "resolve_measure",
    "ShardPlan",
    "plan_measure_sweep",
    "plan_occupancy_sweep",
    "plan_classical_sweep",
    "plan_shard_expansion",
    "ExecutionBackend",
    "SerialBackend",
    "ThreadBackend",
    "ProcessBackend",
    "AsyncBackend",
    "PlanHandle",
    "get_backend",
    "available_backends",
    "CancelToken",
    "cancel_scope",
    "current_cancel_token",
    "Job",
    "JobQueue",
    "EngineFuture",
    "IncrementalScanSession",
    "INCREMENTAL_COUNTS",
    "incremental_stats",
    "clear_incremental_store",
    "SweepCache",
    "CacheStore",
    "MemoryStore",
    "DiskStore",
    "MISS",
    "SweepEngine",
    "default_engine",
    "set_default_engine",
    "resolve_engine",
    "engine_scope",
    "engine_from_env",
    "cache_max_bytes_from_env",
    "normalize_shards",
    "AUTO_SHARDS",
    "ENGINE_ENV_VAR",
    "CACHE_DIR_ENV_VAR",
    "CACHE_MAX_BYTES_ENV_VAR",
    "SHARDS_ENV_VAR",
    "ProgressListener",
    "StderrProgress",
    "NULL_PROGRESS",
]
