"""Content-addressed caching of per-Δ sweep results.

Sweeps recompute aggressively without help: a refinement round revisits
the same stream, a stability analysis re-evaluates the full stream once
per call, cross-method comparisons re-run identical (Δ, stream) pairs,
and interactive sessions repeat whole sweeps verbatim.  Every one of
those evaluations is a pure function of ``(stream content, task
parameters)`` — so the cache keys on exactly that: the stream's
:meth:`~repro.linkstream.stream.LinkStream.fingerprint` plus the task's
own parameter token (see :meth:`DeltaTask.cache_key`).

Two stores are provided.  :class:`MemoryStore` is a bounded LRU map for
within-process reuse; :class:`DiskStore` pickles results under a cache
directory (atomic writes, corrupt entries treated as misses) so warm
re-runs survive across processes.  :class:`SweepCache` layers them:
reads check memory first and promote disk hits, writes go to every
layer.
"""

from __future__ import annotations

import os
import pickle
import tempfile
import threading
from abc import ABC, abstractmethod
from collections import OrderedDict
from pathlib import Path
from typing import Any

from repro.utils.errors import EngineError

#: Sentinel distinguishing "not cached" from a cached ``None``.
MISS = object()


class CacheStore(ABC):
    """One storage layer of a :class:`SweepCache`."""

    @abstractmethod
    def get(self, key: str) -> Any:
        """The stored value, or :data:`MISS`."""

    @abstractmethod
    def put(self, key: str, value: Any, *, weight: float = 1.0) -> None:
        """Store a value.  ``weight`` ranks how expensive the value is
        to recompute (its eviction class); stores without eviction are
        free to ignore it."""


class MemoryStore(CacheStore):
    """Bounded in-process LRU store (the default cache layer).

    Thread-safe: the process-wide default engine is shared by every
    engine-less sweep call, so concurrent callers may hit one store.
    """

    def __init__(self, max_entries: int = 1024) -> None:
        if max_entries < 1:
            raise EngineError("max_entries must be a positive integer")
        self._max_entries = max_entries
        self._entries: OrderedDict[str, Any] = OrderedDict()
        self._lock = threading.Lock()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def get(self, key: str) -> Any:
        with self._lock:
            if key not in self._entries:
                return MISS
            self._entries.move_to_end(key)
            return self._entries[key]

    def put(self, key: str, value: Any, *, weight: float = 1.0) -> None:
        # ``weight`` is an eviction-cost hint for capped persistent
        # stores; the in-memory layer is entry-bounded plain LRU.
        with self._lock:
            self._entries[key] = value
            self._entries.move_to_end(key)
            while len(self._entries) > self._max_entries:
                self._entries.popitem(last=False)

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()


class DiskStore(CacheStore):
    """Pickle-per-entry store under a cache directory.

    Entries are named by their (hex) cache key, written atomically via a
    temporary file, and sharded into 256 subdirectories by key prefix so
    huge caches stay filesystem-friendly.  Unreadable entries count as
    misses — a damaged cache only costs recomputation.

    ``max_bytes`` caps the store's total size: when the cap is exceeded
    after a write, entries are deleted until the store fits again.
    Eviction order is **weight-tiered LRU**: every entry carries an
    eviction weight (``put(..., weight=...)`` — how expensive the value
    is to recompute; the sweep engine passes each measure's
    ``cache_weight``), lighter tiers are swept before heavier ones, and
    within a tier the least-recently-*used* entries go first.  A cheap
    snapshot-metrics point therefore ages out long before an expensive
    trip-sample result of the same vintage.  Recency is tracked through
    each entry file's mtime — refreshed on every hit — so a warm working
    set survives while stale sweeps age out; the weight is encoded in
    the entry's file name (``<key>~w<weight>.pkl`` for non-default
    weights), so the sweep never has to unpickle anything.  The sweep is
    best-effort and safe under concurrent processes: a racing deletion
    only costs a recomputation.
    """

    def __init__(
        self,
        directory: str | os.PathLike,
        *,
        max_bytes: int | None = None,
    ) -> None:
        if max_bytes is not None and max_bytes < 1:
            raise EngineError("max_bytes must be a positive byte count")
        self._root = Path(directory)
        self._root.mkdir(parents=True, exist_ok=True)
        self._max_bytes = max_bytes
        #: Running size estimate, lazily initialized by a scan on the
        #: first capped write and corrected at every eviction sweep, so
        #: a put costs one stat-free addition in the common case.
        self._approx_bytes: int | None = None
        self._size_lock = threading.Lock()

    @property
    def directory(self) -> Path:
        return self._root

    @property
    def max_bytes(self) -> int | None:
        return self._max_bytes

    def _path(self, key: str, weight: float = 1.0) -> Path:
        name = f"{key}.pkl" if weight == 1.0 else f"{key}~w{weight:g}.pkl"
        return self._root / key[:2] / name

    def _variants(self, key: str) -> list[Path]:
        """Every on-disk file holding this key, whatever its weight."""
        parent = self._root / key[:2]
        found = []
        plain = parent / f"{key}.pkl"
        if plain.exists():
            found.append(plain)
        found.extend(parent.glob(f"{key}~w*.pkl"))
        return found

    @staticmethod
    def _entry_weight(path: Path) -> float:
        """Eviction weight encoded in an entry's file name (1.0 default)."""
        stem = path.stem
        __, sep, tag = stem.rpartition("~w")
        if not sep:
            return 1.0
        try:
            return float(tag)
        except ValueError:
            return 1.0

    def _entries(self) -> list[Path]:
        return list(self._root.glob("??/*.pkl"))

    def get(self, key: str) -> Any:
        path = self._path(key)
        if not path.exists():
            weighted = self._variants(key)
            if not weighted:
                return MISS
            path = weighted[0]
        try:
            with open(path, "rb") as handle:
                value = pickle.load(handle)
        except FileNotFoundError:
            return MISS
        except (OSError, pickle.UnpicklingError, EOFError, AttributeError, ValueError):
            return MISS
        try:
            # Mark the entry recently used, so the LRU sweep spares it.
            os.utime(path)
        except OSError:
            pass
        return value

    def put(self, key: str, value: Any, *, weight: float = 1.0) -> None:
        path = self._path(key, weight)
        path.parent.mkdir(parents=True, exist_ok=True)
        stale = [p for p in self._variants(key) if p != path]
        fd, tmp_name = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as handle:
                pickle.dump(value, handle, protocol=pickle.HIGHEST_PROTOCOL)
            written = os.path.getsize(tmp_name)
            # An overwrite replaces an existing entry: account the delta,
            # not the full size, or re-puts would inflate the estimate and
            # trigger spurious eviction sweeps.
            replaced = self._safe_size(path) if self._max_bytes is not None else 0
            os.replace(tmp_name, path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise
        # One key, one file: a re-put under a different weight replaces
        # the old variant instead of duplicating the entry.
        removed = 0
        for old in stale:
            size = self._safe_size(old) if self._max_bytes is not None else 0
            try:
                old.unlink()
            except OSError:
                continue
            removed += size
        if self._max_bytes is not None:
            self._account_and_evict(written - replaced - removed)

    def _account_and_evict(self, delta_bytes: int) -> None:
        """Fold a write's size delta into the running estimate; sweep
        entries — lightest weight first, LRU within a weight — when the
        store outgrows the cap."""
        with self._size_lock:
            if self._approx_bytes is None:
                self._approx_bytes = sum(
                    self._safe_size(p) for p in self._entries()
                )
            else:
                self._approx_bytes += delta_bytes
            if self._approx_bytes <= self._max_bytes:
                return
            # Exact sweep: stat everything; cheap-to-recompute tiers are
            # drained (oldest first) before any dearer entry goes.
            entries = []
            for path in self._entries():
                try:
                    stat = path.stat()
                except OSError:
                    continue
                entries.append(
                    (self._entry_weight(path), stat.st_mtime, stat.st_size, path)
                )
            entries.sort(key=lambda item: (item[0], item[1]))
            total = sum(size for (_, _, size, _) in entries)
            while entries and total > self._max_bytes:
                _, _, size, path = entries.pop(0)
                try:
                    path.unlink()
                except OSError:
                    continue
                total -= size
            self._approx_bytes = total

    @staticmethod
    def _safe_size(path: Path) -> int:
        try:
            return path.stat().st_size
        except OSError:
            return 0

    def stats(self) -> dict[str, int | None]:
        """Entry count and total bytes currently on disk (plus the cap)."""
        entries = self._entries()
        return {
            "entries": len(entries),
            "bytes": sum(self._safe_size(p) for p in entries),
            "max_bytes": self._max_bytes,
        }

    def clear(self) -> int:
        """Delete every entry; returns how many were removed."""
        removed = 0
        for path in self._entries():
            try:
                path.unlink()
            except OSError:
                continue
            removed += 1
        with self._size_lock:
            self._approx_bytes = 0
        return removed


class SweepCache:
    """Layered result cache with hit/miss accounting.

    Parameters
    ----------
    stores:
        Storage layers, fastest first.  Reads probe them in order and
        copy hits into the earlier (faster) layers; writes go to all.
    """

    def __init__(self, stores: list[CacheStore] | None = None) -> None:
        if stores is None:
            stores = [MemoryStore()]
        if not stores:
            raise EngineError("a SweepCache needs at least one store")
        self._stores = list(stores)
        self._stats_lock = threading.Lock()
        self.hits = 0
        self.misses = 0

    @classmethod
    def build(
        cls,
        *,
        memory: bool = True,
        max_entries: int = 1024,
        disk_dir: str | os.PathLike | None = None,
        disk_max_bytes: int | None = None,
    ) -> "SweepCache":
        """The common layerings in one call: memory, disk, or both.

        ``disk_max_bytes`` caps the disk layer (LRU eviction); ignored
        without ``disk_dir``.
        """
        stores: list[CacheStore] = []
        if memory:
            stores.append(MemoryStore(max_entries))
        if disk_dir is not None:
            stores.append(DiskStore(disk_dir, max_bytes=disk_max_bytes))
        return cls(stores)

    @property
    def stores(self) -> list[CacheStore]:
        return list(self._stores)

    def get(self, key: str) -> Any:
        for depth, store in enumerate(self._stores):
            value = store.get(key)
            if value is not MISS:
                with self._stats_lock:
                    self.hits += 1
                for earlier in self._stores[:depth]:
                    earlier.put(key, value)
                return value
        with self._stats_lock:
            self.misses += 1
        return MISS

    def put(self, key: str, value: Any, *, weight: float = 1.0) -> None:
        for store in self._stores:
            store.put(key, value, weight=weight)

    def stats(self) -> dict[str, int]:
        return {"hits": self.hits, "misses": self.misses}

    def __repr__(self) -> str:
        layers = ", ".join(type(s).__name__ for s in self._stores)
        return f"SweepCache([{layers}], hits={self.hits}, misses={self.misses})"
