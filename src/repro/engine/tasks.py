"""Sweep plans: the unit of work the execution engine schedules.

A Δ sweep — the inner loop of the occupancy method and of the classical-
parameter analysis — is a set of fully independent evaluations, one per
aggregation period.  This module makes that structure explicit: each
candidate Δ becomes one :class:`DeltaTask` that knows how to evaluate
itself on a stream and how to describe itself for the content-addressed
cache.  Backends (:mod:`repro.engine.backends`) execute tasks; the
scheduler (:mod:`repro.engine.scheduler`) orders, caches, and collects.

Tasks are small frozen dataclasses so they pickle cheaply to worker
processes; the stream itself is shipped separately (once per chunk).
"""

from __future__ import annotations

import hashlib
import threading
from abc import ABC, abstractmethod
from collections import OrderedDict
from collections.abc import Sequence
from dataclasses import dataclass
from functools import reduce
from typing import Any

import numpy as np

from repro.core.occupancy import (
    OccupancyCollector,
    series_occupancy_shard,
    stream_occupancy_at,
)
from repro.core.uniformity import score_distribution
from repro.graphseries.aggregation import aggregate
from repro.graphseries.metrics import series_metrics
from repro.linkstream.stream import LinkStream
from repro.temporal.reachability import scan_series
from repro.utils.errors import EngineError

#: Version of the evaluation numerics baked into every cache key.  Bump
#: whenever any code a task's ``evaluate`` depends on changes results
#: (aggregation, the backward scan, occupancy collection, scoring), so
#: persistent disk caches from older releases invalidate instead of
#: silently serving stale sweep points.
EVAL_VERSION = 1


@dataclass(frozen=True)
class DeltaTask(ABC):
    """One independent unit of sweep work: evaluate one Δ on a stream."""

    delta: float

    @property
    @abstractmethod
    def kind(self) -> str:
        """Short tag naming the evaluation this task performs."""

    @abstractmethod
    def evaluate(self, stream: LinkStream) -> Any:
        """Run the numerics for this Δ and return the per-Δ result."""

    @abstractmethod
    def _token(self) -> tuple:
        """The parameters (beyond the stream) that determine the result."""

    def cache_key(self, stream_fingerprint: str) -> str:
        """Content address of this task's result on a given stream."""
        payload = repr((EVAL_VERSION, self.kind, repr(self.delta), self._token()))
        digest = hashlib.sha256()
        digest.update(stream_fingerprint.encode())
        digest.update(payload.encode())
        return digest.hexdigest()

    def shard(self, num_shards: int) -> "list[DeltaTask] | None":
        """Split this task into ``num_shards`` independent subtasks, or
        ``None`` when the evaluation cannot shard (the default)."""
        return None

    def merge_shards(self, shards: Sequence[Any]) -> Any:
        """Reassemble the results of :meth:`shard` subtasks into the
        result :meth:`evaluate` would have returned."""
        raise EngineError(f"{self.kind!r} tasks do not shard")


@dataclass(frozen=True)
class OccupancyTask(DeltaTask):
    """Aggregate at Δ, collect minimal-trip occupancies, score them.

    Produces the :class:`~repro.core.saturation.SweepPoint` for one
    aggregation period — the occupancy method's inner loop (Section 4).
    """

    methods: tuple[str, ...] = ("mk",)
    bins: int = 4096
    exact: bool = False
    include_self: bool = False
    origin: float | None = None

    @property
    def kind(self) -> str:
        return "occupancy"

    def _token(self) -> tuple:
        return (
            self.methods,
            self.bins,
            self.exact,
            self.include_self,
            None if self.origin is None else repr(float(self.origin)),
        )

    def evaluate(self, stream: LinkStream):
        from repro.core.saturation import SweepPoint

        distribution, series, num_trips = stream_occupancy_at(
            stream,
            float(self.delta),
            origin=self.origin,
            bins=self.bins,
            exact=self.exact,
            include_self=self.include_self,
        )
        return SweepPoint(
            delta=float(self.delta),
            num_windows=series.num_steps,
            num_nonempty_windows=int(series.nonempty_steps().size),
            num_trips=num_trips,
            distribution=distribution,
            scores=score_distribution(distribution, self.methods),
        )

    def shard(self, num_shards: int) -> "list[DeltaTask] | None":
        """Split the evaluation into ``num_shards`` target-partition scans.

        Shard ``i`` owns destination nodes ``i, i + s, i + 2s, ...`` (a
        strided partition, so activity clustered on low or high node ids
        still spreads across workers).  Merging the shard collectors and
        scoring once reproduces :meth:`evaluate` bit-for-bit.
        """
        if num_shards < 1:
            raise EngineError("num_shards must be a positive integer")
        if num_shards == 1:
            return None
        return [
            OccupancyShardTask(
                delta=self.delta,
                bins=self.bins,
                exact=self.exact,
                include_self=self.include_self,
                origin=self.origin,
                shard_index=index,
                num_shards=num_shards,
            )
            for index in range(num_shards)
        ]

    def merge_shards(self, shards: Sequence["OccupancyShardResult"]):
        """One :class:`SweepPoint` from a full set of shard results."""
        from repro.core.saturation import SweepPoint

        if not shards:
            raise EngineError("cannot merge an empty shard set")
        indices = sorted(shard.shard_index for shard in shards)
        counts = {shard.num_shards for shard in shards}
        deltas = {shard.delta for shard in shards}
        if (
            len(counts) != 1
            or deltas != {float(self.delta)}
            or indices != list(range(counts.pop()))
            or len(indices) != len(shards)
        ):
            raise EngineError(
                f"shard results do not cover delta={self.delta!r}: "
                f"got indices {indices}"
            )
        ordered = sorted(shards, key=lambda shard: shard.shard_index)
        # Fold into a fresh accumulator: merge() is in-place and shard
        # results may live in the sweep cache, which must stay pristine.
        collector = reduce(
            lambda acc, shard: acc.merge(shard.collector),
            ordered,
            OccupancyCollector(bins=self.bins, exact=self.exact),
        )
        distribution = collector.distribution()
        return SweepPoint(
            delta=float(self.delta),
            num_windows=ordered[0].num_windows,
            num_nonempty_windows=ordered[0].num_nonempty_windows,
            num_trips=collector.num_trips,
            distribution=distribution,
            scores=score_distribution(distribution, self.methods),
        )


#: Small per-process memo of aggregated series, so the shards of one Δ
#: running in the same process (thread backend, or process-pool workers
#: that receive several shards of a chunk) aggregate the stream once
#: instead of once per shard.  Keyed on content, so it can never serve a
#: stale series; bounded, so a long sweep cannot hoard memory.
_SERIES_MEMO: OrderedDict[tuple, Any] = OrderedDict()
#: Keys currently being aggregated, so concurrent shards of one Δ wait
#: for the first thread's result instead of all recomputing it.
_SERIES_IN_FLIGHT: dict[tuple, threading.Event] = {}
_SERIES_MEMO_LOCK = threading.Lock()
_SERIES_MEMO_MAX = 4


def clear_series_memo() -> None:
    """Drop all memoized aggregated series (in this process).

    The scheduler calls this after a sharded run has merged, so large
    aggregated series do not stay pinned in long-lived processes once
    the sweep that needed them is over.  (Pool worker processes keep
    their own bounded memos; those die with the pool.)
    """
    with _SERIES_MEMO_LOCK:
        _SERIES_MEMO.clear()


def _aggregate_memoized(stream: LinkStream, delta: float, origin: float | None):
    key = (
        stream.fingerprint(),
        repr(float(delta)),
        None if origin is None else repr(float(origin)),
    )
    with _SERIES_MEMO_LOCK:
        if key in _SERIES_MEMO:
            _SERIES_MEMO.move_to_end(key)
            return _SERIES_MEMO[key]
        pending = _SERIES_IN_FLIGHT.get(key)
        if pending is None:
            _SERIES_IN_FLIGHT[key] = threading.Event()
    if pending is not None:
        pending.wait()
        with _SERIES_MEMO_LOCK:
            series = _SERIES_MEMO.get(key)
        if series is not None:
            return series
        # The computing thread failed or the entry was evicted under
        # memory pressure; fall through and aggregate locally.
        return aggregate(stream, float(delta), origin=origin)
    try:
        series = aggregate(stream, float(delta), origin=origin)
        with _SERIES_MEMO_LOCK:
            _SERIES_MEMO[key] = series
            _SERIES_MEMO.move_to_end(key)
            while len(_SERIES_MEMO) > _SERIES_MEMO_MAX:
                _SERIES_MEMO.popitem(last=False)
        return series
    finally:
        with _SERIES_MEMO_LOCK:
            event = _SERIES_IN_FLIGHT.pop(key, None)
        if event is not None:
            event.set()


@dataclass(frozen=True)
class OccupancyShardResult:
    """Partial occupancy evaluation: the trips arriving in one shard.

    Holds the raw (mergeable) collector rather than a distribution, plus
    the series geometry — identical across shards of one Δ — needed to
    assemble the final :class:`~repro.core.saturation.SweepPoint`.
    """

    delta: float
    shard_index: int
    num_shards: int
    num_windows: int
    num_nonempty_windows: int
    collector: OccupancyCollector


@dataclass(frozen=True)
class OccupancyShardTask(DeltaTask):
    """One target-partition shard of an :class:`OccupancyTask`.

    Shard ``shard_index`` of ``num_shards`` aggregates at Δ like the full
    task but scans only the minimal trips *arriving* at nodes
    ``shard_index + k * num_shards`` (the arrival-matrix columns are
    independent dynamic programs, so the restricted scan does
    proportionally less work and its trips are exactly the full scan's
    trips with destination in the shard).  The shard spec is part of the
    cache key, so shard results never collide with full sweep points or
    with other shard layouts.  Scoring ``methods`` are deliberately not
    part of a shard: the result is a raw collector, scoring happens at
    merge time, so sweeps differing only in methods share shard entries.
    """

    bins: int = 4096
    exact: bool = False
    include_self: bool = False
    origin: float | None = None
    shard_index: int = 0
    num_shards: int = 1

    def __post_init__(self) -> None:
        if self.num_shards < 1:
            raise EngineError("num_shards must be a positive integer")
        if not 0 <= self.shard_index < self.num_shards:
            raise EngineError(
                f"shard_index {self.shard_index} out of range "
                f"[0, {self.num_shards})"
            )

    @property
    def kind(self) -> str:
        return "occupancy-shard"

    def _token(self) -> tuple:
        return (
            self.bins,
            self.exact,
            self.include_self,
            None if self.origin is None else repr(float(self.origin)),
            self.shard_index,
            self.num_shards,
        )

    def evaluate(self, stream: LinkStream) -> OccupancyShardResult:
        series = _aggregate_memoized(stream, float(self.delta), self.origin)
        targets = np.arange(
            self.shard_index, series.num_nodes, self.num_shards, dtype=np.int64
        )
        collector = series_occupancy_shard(
            series,
            targets,
            bins=self.bins,
            exact=self.exact,
            include_self=self.include_self,
        )
        return OccupancyShardResult(
            delta=float(self.delta),
            shard_index=self.shard_index,
            num_shards=self.num_shards,
            num_windows=series.num_steps,
            num_nonempty_windows=int(series.nonempty_steps().size),
            collector=collector,
        )


@dataclass(frozen=True)
class ClassicalTask(DeltaTask):
    """Aggregate at Δ and measure the classical parameters (Section 3)."""

    compute_distances: bool = True
    origin: float | None = None

    @property
    def kind(self) -> str:
        return "classical"

    def _token(self) -> tuple:
        return (
            self.compute_distances,
            None if self.origin is None else repr(float(self.origin)),
        )

    def evaluate(self, stream: LinkStream):
        from repro.core.classical import ClassicalPoint

        series = aggregate(stream, float(self.delta), origin=self.origin)
        snapshot_stats = series_metrics(series)
        distances = None
        if self.compute_distances:
            distances = scan_series(series, compute_distances=True).distances
        return ClassicalPoint(float(self.delta), snapshot_stats, distances)


def plan_occupancy_sweep(
    deltas: np.ndarray,
    *,
    methods: tuple[str, ...],
    bins: int = 4096,
    exact: bool = False,
    include_self: bool = False,
    origin: float | None = None,
) -> list[OccupancyTask]:
    """One :class:`OccupancyTask` per candidate Δ, in grid order."""
    return [
        OccupancyTask(
            delta=float(delta),
            methods=tuple(methods),
            bins=bins,
            exact=exact,
            include_self=include_self,
            origin=origin,
        )
        for delta in np.asarray(deltas, dtype=np.float64)
    ]


@dataclass(frozen=True)
class ShardPlan:
    """A sweep plan rewritten for within-Δ sharding.

    ``subtasks`` is the flat execution plan; ``groups[i]`` maps original
    task ``i`` to its ``(start, count)`` slice of ``subtasks`` (count 1
    and the original task itself when the task does not shard, flagged
    by ``sharded[i]``).
    """

    subtasks: list[DeltaTask]
    groups: list[tuple[int, int]]
    sharded: list[bool]


def plan_shard_expansion(tasks: Sequence[DeltaTask], num_shards: int) -> ShardPlan:
    """Rewrite a plan so each shardable task becomes ``num_shards`` subtasks.

    Tasks that do not shard (``task.shard`` returns ``None``) ride along
    unchanged, so mixed plans stay valid.
    """
    if num_shards < 1:
        raise EngineError("num_shards must be a positive integer")
    subtasks: list[DeltaTask] = []
    groups: list[tuple[int, int]] = []
    sharded: list[bool] = []
    for task in tasks:
        pieces = task.shard(num_shards) if num_shards > 1 else None
        start = len(subtasks)
        if pieces:
            subtasks.extend(pieces)
            groups.append((start, len(pieces)))
            sharded.append(True)
        else:
            subtasks.append(task)
            groups.append((start, 1))
            sharded.append(False)
    return ShardPlan(subtasks=subtasks, groups=groups, sharded=sharded)


def plan_classical_sweep(
    deltas: np.ndarray,
    *,
    compute_distances: bool = True,
    origin: float | None = None,
) -> list[ClassicalTask]:
    """One :class:`ClassicalTask` per candidate Δ, in grid order."""
    return [
        ClassicalTask(
            delta=float(delta),
            compute_distances=compute_distances,
            origin=origin,
        )
        for delta in np.asarray(deltas, dtype=np.float64)
    ]
