"""Sweep plans: the unit of work the execution engine schedules.

A Δ sweep — the inner loop of the occupancy method and of the classical-
parameter analysis — is a set of fully independent evaluations, one per
aggregation period.  This module makes that structure explicit, in two
layers:

* A :class:`~repro.engine.measures.MeasureSpec` names **one quantity**
  computable from the series aggregated at Δ — the occupancy sweep
  point, the classical parameters, trip samples, component histograms,
  per-pair reachability... — and knows how to contribute a collector to
  the backward scan, how to finalize the collected state into its
  result, and how to describe itself for the cache.  Measures live in
  an open registry (:mod:`repro.engine.measures`) that user code extends
  at runtime via :func:`~repro.engine.measures.register_measure`; the
  task and scheduler machinery below is generic over it.
* An :class:`AnalysisTask` carries a **set** of measures for one Δ.  It
  aggregates the stream once, runs **one** backward scan feeding every
  measure's collector (the scan's multi-consumer contract,
  :func:`~repro.temporal.reachability.scan_series`), and emits one
  result per measure.  The scheduler caches each measure's result under
  its own key, so a warm occupancy cache plus a cold classical request
  re-scans exactly once — computing only the missing measures — and
  every per-measure result stays individually reusable.

Tasks are small frozen dataclasses so they pickle cheaply to worker
processes; the stream itself is shipped separately (once per chunk).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from collections.abc import Sequence
from dataclasses import dataclass
from typing import Any

import hashlib

import numpy as np

from repro.engine.measures import (
    ClassicalMeasure,
    MeasureSpec,
    MetricsMeasure,
    OccupancyMeasure,
    SeriesGeometry,
    normalize_measures,
)
from repro.engine.incremental import IncrementalScanSession
from repro.linkstream.stream import LinkStream
from repro.utils.errors import EngineError

#: Version of the evaluation numerics baked into every cache key.  Bump
#: whenever any code a task's ``evaluate`` depends on changes results
#: (aggregation, the backward scan, occupancy collection, scoring), so
#: persistent disk caches from older releases invalidate instead of
#: silently serving stale sweep points.  (3: the open measure registry —
#: parameter-schema-derived measure tokens, payload parameters in shard
#: keys.)
EVAL_VERSION = 3


@dataclass(frozen=True)
class DeltaTask(ABC):
    """One independent unit of sweep work: evaluate one Δ on a stream.

    Tasks may emit **several separately-cacheable results** (the fused
    :class:`AnalysisTask` emits one per measure).  The default
    implementations below describe the single-result case; the scheduler
    only ever speaks the multi-result protocol (:meth:`result_keys`,
    :meth:`narrow`, :meth:`split_result`, :meth:`assemble`).
    """

    delta: float

    #: Relative cost of recomputing this task's cached result — the disk
    #: store's eviction class (cheaper entries are swept first).
    cache_weight = 1.0

    @property
    @abstractmethod
    def kind(self) -> str:
        """Short tag naming the evaluation this task performs."""

    @abstractmethod
    def evaluate(self, stream: LinkStream) -> Any:
        """Run the numerics for this Δ and return the per-Δ result."""

    @abstractmethod
    def _token(self) -> tuple:
        """The parameters (beyond the stream) that determine the result."""

    def cache_key(self, stream_fingerprint: str) -> str:
        """Content address of this task's result on a given stream."""
        payload = repr((EVAL_VERSION, self.kind, repr(self.delta), self._token()))
        digest = hashlib.sha256()
        digest.update(stream_fingerprint.encode())
        digest.update(payload.encode())
        return digest.hexdigest()

    # -- multi-result protocol (single-result defaults) -------------------

    def result_keys(self, stream_fingerprint: str) -> list[str]:
        """One cache key per separately-reusable sub-result."""
        return [self.cache_key(stream_fingerprint)]

    def result_weights(self) -> list[float]:
        """Eviction weight per sub-result, aligned with :meth:`result_keys`."""
        return [self.cache_weight]

    def narrow(self, missing: Sequence[int]) -> "DeltaTask":
        """A task computing only the sub-results at ``missing`` (indices
        into :meth:`result_keys`).  Single-result tasks are indivisible."""
        return self

    def split_result(self, value: Any) -> list:
        """Split an :meth:`evaluate` result into key-aligned parts."""
        return [value]

    def assemble(self, parts: list) -> Any:
        """Inverse of :meth:`split_result`: the caller-facing result from
        key-aligned parts (cached and fresh alike)."""
        return parts[0]

    # -- within-Δ sharding -------------------------------------------------

    def shard(self, num_shards: int) -> "list[DeltaTask] | None":
        """Split this task into ``num_shards`` independent subtasks, or
        ``None`` when the evaluation cannot shard (the default)."""
        return None

    def merge_shards(self, shards: Sequence[Any]) -> Any:
        """Reassemble the results of :meth:`shard` subtasks into the
        result :meth:`evaluate` would have returned."""
        raise EngineError(f"{self.kind!r} tasks do not shard")


def _origin_token(origin: float | None) -> str | None:
    return None if origin is None else repr(float(origin))


def _span_token(span: tuple[float, float]) -> tuple[str, str]:
    return (repr(float(span[0])), repr(float(span[1])))


def _check_span(span: tuple[float, float] | None) -> None:
    if span is None:
        return
    if len(span) != 2:
        raise EngineError(f"span must be a (start, end) pair, got {span!r}")
    start, end = float(span[0]), float(span[1])
    if not (np.isfinite(start) and np.isfinite(end)) or start >= end:
        raise EngineError(
            f"span must be a finite (start, end) pair with start < end, "
            f"got {span!r}"
        )


def _restrict_span(
    stream: LinkStream, span: tuple[float, float] | None
) -> LinkStream:
    """The sub-stream a spanned task evaluates.

    ``slice_time`` asks the storage backend for exactly the half-open
    time range the task's windows cover — on a partitioned backend only
    the overlapping partitions are ever loaded, which is what makes a
    narrow-span sweep over an out-of-core dataset cheap.
    """
    if span is None:
        return stream
    return stream.slice_time(float(span[0]), float(span[1]))


@dataclass(frozen=True)
class AnalysisTask(DeltaTask):
    """Aggregate at Δ once, scan once, emit one result per measure.

    The fused per-Δ evaluation: the measure set shares a single
    aggregation (through the process-wide series memo) and a single
    backward scan feeding every measure's collector.  ``evaluate``
    returns a dict mapping measure name to its result; the scheduler
    caches each entry under its own per-measure key (see
    :meth:`result_keys`) and :meth:`narrow`\\ s the task to the missing
    measures on partial cache hits.  Any registered measure — built-in
    or plugin — rides unchanged: the task is generic over the
    :class:`~repro.engine.measures.MeasureSpec` contract.
    """

    measures: tuple[MeasureSpec, ...] = ()
    include_self: bool = False
    origin: float | None = None
    #: Optional half-open ``(start, end)`` time span: the task evaluates
    #: the sub-stream of events with ``start <= t < end`` (sliced via
    #: the storage backend, so partitioned datasets load only the
    #: overlapping partitions).  ``None`` — the default, and the only
    #: value older plans ever produced — evaluates the full stream and
    #: leaves every cache key byte-identical to before spans existed.
    span: tuple[float, float] | None = None

    def __post_init__(self) -> None:
        if not self.measures:
            raise EngineError("an AnalysisTask needs at least one measure")
        names = [m.name for m in self.measures]
        if len(set(names)) != len(names):
            raise EngineError(f"duplicate measure names in task: {names}")
        _check_span(self.span)
        if self.span is not None:
            object.__setattr__(
                self, "span", (float(self.span[0]), float(self.span[1]))
            )

    @property
    def kind(self) -> str:
        return "analysis"

    def _token(self) -> tuple:
        token = (
            tuple((m.name, m.token()) for m in self.measures),
            self.include_self,
            _origin_token(self.origin),
        )
        if self.span is not None:
            token += (("span", _span_token(self.span)),)
        return token

    # -- per-measure cache identity ---------------------------------------

    def measure_key(self, stream_fingerprint: str, measure: MeasureSpec) -> str:
        """Content address of one measure's result at this Δ.

        Depends only on the stream, Δ, the task-level scan parameters,
        and *that* measure — never on which other measures ride the same
        fused task — so any sweep requesting the measure at this Δ reuses
        the entry, fused or not, sharded or not.  A task with a time
        span appends the span to the payload (span-less keys stay
        byte-identical to every release before spans existed).
        """
        fields: tuple = (
            EVAL_VERSION,
            "measure",
            repr(self.delta),
            self.include_self,
            _origin_token(self.origin),
            measure.name,
            measure.token(),
        )
        if self.span is not None:
            fields += (("span", _span_token(self.span)),)
        payload = repr(fields)
        digest = hashlib.sha256()
        digest.update(stream_fingerprint.encode())
        digest.update(payload.encode())
        return digest.hexdigest()

    def result_keys(self, stream_fingerprint: str) -> list[str]:
        return [self.measure_key(stream_fingerprint, m) for m in self.measures]

    def result_weights(self) -> list[float]:
        return [m.cache_weight for m in self.measures]

    def narrow(self, missing: Sequence[int]) -> "AnalysisTask":
        subset = tuple(self.measures[i] for i in missing)
        if subset == self.measures:
            return self
        return AnalysisTask(
            delta=self.delta,
            measures=subset,
            include_self=self.include_self,
            origin=self.origin,
            span=self.span,
        )

    def split_result(self, value: dict) -> list:
        return [value[m.name] for m in self.measures]

    def assemble(self, parts: list) -> dict:
        return {m.name: part for m, part in zip(self.measures, parts)}

    # -- evaluation --------------------------------------------------------

    def evaluate(self, stream: LinkStream) -> dict:
        stream = _restrict_span(stream, self.span)
        session = IncrementalScanSession(
            stream,
            delta=float(self.delta),
            origin=self.origin,
            include_self=self.include_self,
            consumer_tokens=tuple(
                (m.name, m.collector_token()) for m in self.measures if m.scans
            ),
        )
        series = session.series()
        geometry = SeriesGeometry(
            num_nodes=series.num_nodes,
            num_windows=series.num_steps,
            num_nonempty_windows=int(series.nonempty_steps().size),
        )
        collectors = {
            m.name: m.make_collector() for m in self.measures if m.scans
        }
        if collectors:
            session.scan(list(collectors.values()))
        return {
            m.name: m.finalize(
                float(self.delta),
                geometry,
                m.series_payload(series) if m.has_payload else None,
                [collectors[m.name]] if m.scans else [],
            )
            for m in self.measures
        }

    # -- sharding ----------------------------------------------------------

    def shard(self, num_shards: int) -> "list[DeltaTask] | None":
        """Split the evaluation into ``num_shards`` target-partition scans.

        Shard ``i`` owns destination nodes ``i, i + s, i + 2s, ...`` (a
        strided partition, so activity clustered on low or high node ids
        still spreads across workers).  Every scan-feeding measure's
        collector restricts to the shard's columns; per-series payload
        work (snapshot metrics) rides on shard 0 alone.  Merging the
        shard collectors and finalizing once reproduces :meth:`evaluate`
        bit-for-bit.  Returns ``None`` when no measure feeds on the scan
        — there is nothing to parallelize within the Δ.
        """
        if num_shards < 1:
            raise EngineError("num_shards must be a positive integer")
        if num_shards == 1 or not any(m.scans for m in self.measures):
            return None
        return [
            AnalysisShardTask(
                delta=self.delta,
                measures=self.measures,
                include_self=self.include_self,
                origin=self.origin,
                span=self.span,
                shard_index=index,
                num_shards=num_shards,
            )
            for index in range(num_shards)
        ]

    def merge_shards(self, shards: Sequence["AnalysisShardResult"]) -> dict:
        """One per-measure result dict from a full set of shard results."""
        if not shards:
            raise EngineError("cannot merge an empty shard set")
        indices = sorted(shard.shard_index for shard in shards)
        counts = {shard.num_shards for shard in shards}
        deltas = {shard.delta for shard in shards}
        if (
            len(counts) != 1
            or deltas != {float(self.delta)}
            or indices != list(range(counts.pop()))
            or len(indices) != len(shards)
        ):
            raise EngineError(
                f"shard results do not cover delta={self.delta!r}: "
                f"got indices {indices}"
            )
        ordered = sorted(shards, key=lambda shard: shard.shard_index)
        geometry = ordered[0].geometry
        payloads = ordered[0].payloads
        results: dict = {}
        for measure in self.measures:
            if measure.scans:
                missing = [
                    s.shard_index
                    for s in ordered
                    if measure.name not in s.collectors
                ]
                if missing:
                    raise EngineError(
                        f"shards {missing} lack the {measure.name!r} "
                        f"collector for delta={self.delta!r}"
                    )
            if measure.has_payload and measure.name not in payloads:
                raise EngineError(
                    f"shard 0 lacks the {measure.name!r} payload for "
                    f"delta={self.delta!r}"
                )
            results[measure.name] = measure.finalize(
                float(self.delta),
                geometry,
                payloads.get(measure.name),
                [s.collectors[measure.name] for s in ordered]
                if measure.scans
                else [],
            )
        return results


@dataclass(frozen=True)
class AnalysisShardResult:
    """Partial fused evaluation: the collected state of one target shard.

    Holds the raw (mergeable) collectors per scan-feeding measure rather
    than finalized results, plus the series geometry — identical across
    shards of one Δ.  ``payloads`` carries the per-series (non-scan)
    measure work and is populated by shard 0 only.
    """

    delta: float
    shard_index: int
    num_shards: int
    geometry: SeriesGeometry
    collectors: dict[str, Any]
    payloads: dict[str, Any]


@dataclass(frozen=True)
class AnalysisShardTask(DeltaTask):
    """One target-partition shard of an :class:`AnalysisTask`.

    Shard ``shard_index`` of ``num_shards`` aggregates at Δ like the
    full task (through the shared series memo, so sibling shards in one
    process aggregate once) but scans only the minimal trips *arriving*
    at nodes ``shard_index + k * num_shards`` — the arrival-matrix
    columns are independent dynamic programs, so the restricted scan
    does proportionally less work and every measure's collector receives
    exactly the full scan's contributions for the shard's destinations.
    The shard spec is part of the cache key, so shard results never
    collide with per-measure results or with other shard layouts.  Pure
    post-processing parameters (a measure's
    :attr:`~repro.engine.measures.MeasureSpec.scoring_fields`) are
    deliberately *not* part of a shard: the result is raw collectors,
    finalization happens at merge time, so sweeps differing only in
    scoring share shard entries.
    """

    measures: tuple[MeasureSpec, ...] = ()
    include_self: bool = False
    origin: float | None = None
    span: tuple[float, float] | None = None
    shard_index: int = 0
    num_shards: int = 1

    def __post_init__(self) -> None:
        if not self.measures:
            raise EngineError("an AnalysisShardTask needs at least one measure")
        if self.num_shards < 1:
            raise EngineError("num_shards must be a positive integer")
        if not 0 <= self.shard_index < self.num_shards:
            raise EngineError(
                f"shard_index {self.shard_index} out of range "
                f"[0, {self.num_shards})"
            )
        _check_span(self.span)
        if self.span is not None:
            object.__setattr__(
                self, "span", (float(self.span[0]), float(self.span[1]))
            )

    @property
    def kind(self) -> str:
        return "analysis-shard"

    @property
    def cache_weight(self) -> float:
        """A shard entry reruns a restricted scan for *every* riding
        measure: as dear as the dearest measure it carries."""
        return max(m.cache_weight for m in self.measures)

    @property
    def carries_payload(self) -> bool:
        """Per-series payload work rides on shard 0 alone."""
        return self.shard_index == 0

    def _token(self) -> tuple:
        return (
            tuple(
                (m.name, m.collector_token()) for m in self.measures if m.scans
            ),
            # Payload measures carry their full parameter token: the
            # payload is computed (and cached) shard-side, so its
            # parameters are part of the shard result's identity.
            tuple(
                (m.name, m.token())
                for m in self.measures
                if m.has_payload and self.carries_payload
            ),
            self.include_self,
            _origin_token(self.origin),
            self.shard_index,
            self.num_shards,
        ) + (
            (("span", _span_token(self.span)),) if self.span is not None else ()
        )

    def evaluate(self, stream: LinkStream) -> AnalysisShardResult:
        stream = _restrict_span(stream, self.span)
        session = IncrementalScanSession(
            stream,
            delta=float(self.delta),
            origin=self.origin,
            include_self=self.include_self,
            shard=(self.shard_index, self.num_shards),
            consumer_tokens=tuple(
                (m.name, m.collector_token()) for m in self.measures if m.scans
            ),
        )
        series = session.series()
        targets = np.arange(
            self.shard_index, series.num_nodes, self.num_shards, dtype=np.int64
        )
        collectors = {
            m.name: m.make_collector() for m in self.measures if m.scans
        }
        if collectors:
            session.scan(list(collectors.values()), targets=targets)
        payloads = (
            {
                m.name: m.series_payload(series)
                for m in self.measures
                if m.has_payload
            }
            if self.carries_payload
            else {}
        )
        return AnalysisShardResult(
            delta=float(self.delta),
            shard_index=self.shard_index,
            num_shards=self.num_shards,
            geometry=SeriesGeometry(
                num_nodes=series.num_nodes,
                num_windows=series.num_steps,
                num_nonempty_windows=int(series.nonempty_steps().size),
            ),
            collectors=collectors,
            payloads=payloads,
        )


def plan_measure_sweep(
    deltas: np.ndarray,
    measures: "Sequence[str | MeasureSpec] | str | MeasureSpec",
    *,
    include_self: bool = False,
    origin: float | None = None,
    span: tuple[float, float] | None = None,
) -> list[AnalysisTask]:
    """One fused :class:`AnalysisTask` per candidate Δ, in grid order.

    ``measures`` accepts measure names (parameterized specs like
    ``"trips:max_samples=64"`` included),
    :class:`~repro.engine.measures.MeasureSpec` instances, or a mix;
    every Δ evaluates the whole set from one aggregation and one scan.
    ``span`` restricts every task to the half-open ``(start, end)``
    time range — the out-of-core entry point: on a catalog-backed
    stream only the partitions overlapping the span are loaded.
    """
    measure_set = normalize_measures(measures)
    return [
        AnalysisTask(
            delta=float(delta),
            measures=measure_set,
            include_self=include_self,
            origin=origin,
            span=span,
        )
        for delta in np.asarray(deltas, dtype=np.float64)
    ]


def plan_occupancy_sweep(
    deltas: np.ndarray,
    *,
    methods: tuple[str, ...],
    bins: int = 4096,
    exact: bool = False,
    include_self: bool = False,
    origin: float | None = None,
) -> list[AnalysisTask]:
    """An occupancy-only measure sweep (sugar over
    :func:`plan_measure_sweep`).  Each task's result is a dict with one
    ``"occupancy"`` entry holding the
    :class:`~repro.core.saturation.SweepPoint`."""
    return plan_measure_sweep(
        deltas,
        OccupancyMeasure(methods=tuple(methods), bins=bins, exact=exact),
        include_self=include_self,
        origin=origin,
    )


def plan_classical_sweep(
    deltas: np.ndarray,
    *,
    compute_distances: bool = True,
    origin: float | None = None,
) -> list[AnalysisTask]:
    """A classical-parameters measure sweep (sugar over
    :func:`plan_measure_sweep`).  Each task's result is a dict with one
    ``"classical"`` (or, without distances, ``"metrics"``) entry holding
    the :class:`~repro.core.classical.ClassicalPoint`."""
    return plan_measure_sweep(
        deltas,
        ClassicalMeasure() if compute_distances else MetricsMeasure(),
        origin=origin,
    )


@dataclass(frozen=True)
class ShardPlan:
    """A sweep plan rewritten for within-Δ sharding.

    ``subtasks`` is the flat execution plan; ``groups[i]`` maps original
    task ``i`` to its ``(start, count)`` slice of ``subtasks`` (count 1
    and the original task itself when the task does not shard, flagged
    by ``sharded[i]``).
    """

    subtasks: list[DeltaTask]
    groups: list[tuple[int, int]]
    sharded: list[bool]


def plan_shard_expansion(tasks: Sequence[DeltaTask], num_shards: int) -> ShardPlan:
    """Rewrite a plan so each shardable task becomes ``num_shards`` subtasks.

    Tasks that do not shard (``task.shard`` returns ``None``) ride along
    unchanged, so mixed plans stay valid.
    """
    if num_shards < 1:
        raise EngineError("num_shards must be a positive integer")
    subtasks: list[DeltaTask] = []
    groups: list[tuple[int, int]] = []
    sharded: list[bool] = []
    for task in tasks:
        pieces = task.shard(num_shards) if num_shards > 1 else None
        start = len(subtasks)
        if pieces:
            subtasks.extend(pieces)
            groups.append((start, len(pieces)))
            sharded.append(True)
        else:
            subtasks.append(task)
            groups.append((start, 1))
            sharded.append(False)
    return ShardPlan(subtasks=subtasks, groups=groups, sharded=sharded)
