"""Sweep plans: the unit of work the execution engine schedules.

A Δ sweep — the inner loop of the occupancy method and of the classical-
parameter analysis — is a set of fully independent evaluations, one per
aggregation period.  This module makes that structure explicit, in two
layers:

* A :class:`MeasureSpec` names **one quantity** computable from the
  series aggregated at Δ — the occupancy sweep point, the classical
  parameters with distance statistics, the cheap snapshot metrics — and
  knows how to contribute a collector to the backward scan, how to
  finalize the collected state into its result, and how to describe
  itself for the cache.
* An :class:`AnalysisTask` carries a **set** of measures for one Δ.  It
  aggregates the stream once, runs **one** backward scan feeding every
  measure's collector (the scan's multi-consumer contract,
  :func:`~repro.temporal.reachability.scan_series`), and emits one
  result per measure.  The scheduler caches each measure's result under
  its own key, so a warm occupancy cache plus a cold classical request
  re-scans exactly once — computing only the missing measures — and
  every per-measure result stays individually reusable.

Tasks are small frozen dataclasses so they pickle cheaply to worker
processes; the stream itself is shipped separately (once per chunk).
"""

from __future__ import annotations

import hashlib
from abc import ABC, abstractmethod
from collections.abc import Sequence
from dataclasses import dataclass
from typing import Any

import numpy as np

from repro.core.occupancy import OccupancyCollector
from repro.core.uniformity import score_distribution
from repro.graphseries.aggregation import aggregate_cached
from repro.graphseries.metrics import series_metrics
from repro.linkstream.stream import LinkStream
from repro.temporal.reachability import DistanceTotals, scan_series
from repro.utils.errors import EngineError

#: Version of the evaluation numerics baked into every cache key.  Bump
#: whenever any code a task's ``evaluate`` depends on changes results
#: (aggregation, the backward scan, occupancy collection, scoring), so
#: persistent disk caches from older releases invalidate instead of
#: silently serving stale sweep points.  (2: the fused measure pipeline —
#: per-measure results, integer-exact distance sums.)
EVAL_VERSION = 2


@dataclass(frozen=True)
class SeriesGeometry:
    """Shape of the aggregated series, identical across shards of one Δ."""

    num_nodes: int
    num_windows: int
    num_nonempty_windows: int


@dataclass(frozen=True)
class MeasureSpec(ABC):
    """One quantity measurable from the series aggregated at one Δ.

    Subclasses are frozen dataclasses (hashable, picklable).  A measure
    either feeds on the backward scan (it contributes a collector /
    accumulator via :meth:`make_collector`) or on the series itself
    (:meth:`series_payload`), or both; :meth:`finalize` assembles the
    final per-Δ result from the collected state.  Finalization always
    goes through the *merge* shape — a list of collectors, one per shard
    (length 1 for an unsharded evaluation) — so sharded and unsharded
    paths are bit-identical by construction.
    """

    @property
    @abstractmethod
    def name(self) -> str:
        """Unique short name of the measure (``occupancy``, ``classical``,
        ``metrics``); the key under which its result is emitted."""

    #: Whether the measure contributes a collector to the backward scan.
    #: (A class attribute, not a dataclass field: it is part of the
    #: measure's *kind*, not of its parameters.)
    scans = False
    #: Whether the measure needs per-series (non-scan) work.  Carried by
    #: a single shard when the evaluation is sharded.
    has_payload = False

    def token(self) -> tuple:
        """Full result identity (all parameters, scoring included)."""
        return ()

    def collector_token(self) -> tuple:
        """Scan-collector identity — the parameters that shape what the
        scan accumulates, *excluding* pure post-processing (scoring
        methods), so shard cache entries are shared across sweeps that
        differ only in how the collected state is scored."""
        return ()

    def make_collector(self):
        """A fresh scan consumer for one evaluation (``None`` when the
        measure does not feed on the scan)."""
        return None

    def series_payload(self, series) -> Any:
        """Non-scan work on the aggregated series (``None`` if none)."""
        return None

    @abstractmethod
    def finalize(
        self,
        delta: float,
        geometry: SeriesGeometry,
        payload: Any,
        collectors: list,
    ) -> Any:
        """Assemble the per-Δ result from shard collectors + payload.

        ``collectors`` holds one collector per shard, in shard order
        (empty when :attr:`scans` is false).  Implementations must fold
        into *fresh* accumulators — shard collectors may live in the
        sweep cache, which must stay pristine.
        """


@dataclass(frozen=True)
class OccupancyMeasure(MeasureSpec):
    """Occupancy-rate distribution of all minimal trips, scored against
    the uniform density — the occupancy method's per-Δ quantity
    (Section 4), finalized as a
    :class:`~repro.core.saturation.SweepPoint`."""

    methods: tuple[str, ...] = ("mk",)
    bins: int = 4096
    exact: bool = False

    scans = True
    has_payload = False

    @property
    def name(self) -> str:
        return "occupancy"

    def token(self) -> tuple:
        return (self.methods, self.bins, self.exact)

    def collector_token(self) -> tuple:
        # Scoring methods deliberately excluded: the collector is the
        # same whatever statistic scores it at finalize time.
        return (self.bins, self.exact)

    def make_collector(self) -> OccupancyCollector:
        return OccupancyCollector(bins=self.bins, exact=self.exact)

    def finalize(self, delta, geometry, payload, collectors):
        from repro.core.saturation import SweepPoint

        merged = OccupancyCollector(bins=self.bins, exact=self.exact)
        for collector in collectors:
            merged.merge(collector)
        distribution = merged.distribution()
        return SweepPoint(
            delta=float(delta),
            num_windows=geometry.num_windows,
            num_nonempty_windows=geometry.num_nonempty_windows,
            num_trips=merged.num_trips,
            distribution=distribution,
            scores=score_distribution(distribution, self.methods),
        )


@dataclass(frozen=True)
class ClassicalMeasure(MeasureSpec):
    """Classical parameters of the aggregated series (Section 3): the
    snapshot means plus the distance statistics, finalized as a
    :class:`~repro.core.classical.ClassicalPoint`.

    The distance sums ride the same backward scan as every other
    measure, via a :class:`~repro.temporal.reachability.DistanceTotals`
    accumulator; the snapshot means are per-series payload work.
    """

    scans = True
    has_payload = True

    @property
    def name(self) -> str:
        return "classical"

    def make_collector(self) -> DistanceTotals:
        return DistanceTotals()

    def series_payload(self, series):
        return series_metrics(series)

    def finalize(self, delta, geometry, payload, collectors):
        from repro.core.classical import ClassicalPoint

        merged = DistanceTotals()
        for collector in collectors:
            merged.merge(collector)
        distances = merged.stats(geometry.num_nodes, geometry.num_windows)
        return ClassicalPoint(float(delta), payload, distances)


@dataclass(frozen=True)
class MetricsMeasure(MeasureSpec):
    """Snapshot metrics only — the classical parameters without the
    distance statistics, so no scan contribution at all.  Finalized as a
    distance-free :class:`~repro.core.classical.ClassicalPoint`."""

    scans = False
    has_payload = True

    @property
    def name(self) -> str:
        return "metrics"

    def series_payload(self, series):
        return series_metrics(series)

    def finalize(self, delta, geometry, payload, collectors):
        from repro.core.classical import ClassicalPoint

        return ClassicalPoint(float(delta), payload, None)


#: Measure names accepted by :func:`resolve_measure` (CLI ``--measures``).
MEASURE_REGISTRY: dict[str, type[MeasureSpec]] = {
    "occupancy": OccupancyMeasure,
    "classical": ClassicalMeasure,
    "metrics": MetricsMeasure,
}


def available_measures() -> list[str]:
    """Measure names accepted by name (CLI ``--measures`` and friends)."""
    return sorted(MEASURE_REGISTRY)


def resolve_measure(spec: "str | MeasureSpec") -> MeasureSpec:
    """A :class:`MeasureSpec` from a name (default parameters) or an
    instance (returned as-is)."""
    if isinstance(spec, MeasureSpec):
        return spec
    if spec not in MEASURE_REGISTRY:
        raise EngineError(
            f"unknown measure {spec!r}; available: {available_measures()}"
        )
    return MEASURE_REGISTRY[spec]()


def normalize_measures(
    measures: "Sequence[str | MeasureSpec] | str | MeasureSpec",
) -> tuple[MeasureSpec, ...]:
    """Resolve a measure-set spec into a tuple of unique measures.

    Accepts a single name/instance or a sequence; names resolve through
    :data:`MEASURE_REGISTRY`.  Duplicate measure names are rejected —
    one fused task emits exactly one result per name.
    """
    if isinstance(measures, (str, MeasureSpec)):
        measures = (measures,)
    resolved = tuple(resolve_measure(m) for m in measures)
    if not resolved:
        raise EngineError("a measure set needs at least one measure")
    names = [m.name for m in resolved]
    if len(set(names)) != len(names):
        raise EngineError(f"duplicate measure names in set: {names}")
    return resolved


@dataclass(frozen=True)
class DeltaTask(ABC):
    """One independent unit of sweep work: evaluate one Δ on a stream.

    Tasks may emit **several separately-cacheable results** (the fused
    :class:`AnalysisTask` emits one per measure).  The default
    implementations below describe the single-result case; the scheduler
    only ever speaks the multi-result protocol (:meth:`result_keys`,
    :meth:`narrow`, :meth:`split_result`, :meth:`assemble`).
    """

    delta: float

    @property
    @abstractmethod
    def kind(self) -> str:
        """Short tag naming the evaluation this task performs."""

    @abstractmethod
    def evaluate(self, stream: LinkStream) -> Any:
        """Run the numerics for this Δ and return the per-Δ result."""

    @abstractmethod
    def _token(self) -> tuple:
        """The parameters (beyond the stream) that determine the result."""

    def cache_key(self, stream_fingerprint: str) -> str:
        """Content address of this task's result on a given stream."""
        payload = repr((EVAL_VERSION, self.kind, repr(self.delta), self._token()))
        digest = hashlib.sha256()
        digest.update(stream_fingerprint.encode())
        digest.update(payload.encode())
        return digest.hexdigest()

    # -- multi-result protocol (single-result defaults) -------------------

    def result_keys(self, stream_fingerprint: str) -> list[str]:
        """One cache key per separately-reusable sub-result."""
        return [self.cache_key(stream_fingerprint)]

    def narrow(self, missing: Sequence[int]) -> "DeltaTask":
        """A task computing only the sub-results at ``missing`` (indices
        into :meth:`result_keys`).  Single-result tasks are indivisible."""
        return self

    def split_result(self, value: Any) -> list:
        """Split an :meth:`evaluate` result into key-aligned parts."""
        return [value]

    def assemble(self, parts: list) -> Any:
        """Inverse of :meth:`split_result`: the caller-facing result from
        key-aligned parts (cached and fresh alike)."""
        return parts[0]

    # -- within-Δ sharding -------------------------------------------------

    def shard(self, num_shards: int) -> "list[DeltaTask] | None":
        """Split this task into ``num_shards`` independent subtasks, or
        ``None`` when the evaluation cannot shard (the default)."""
        return None

    def merge_shards(self, shards: Sequence[Any]) -> Any:
        """Reassemble the results of :meth:`shard` subtasks into the
        result :meth:`evaluate` would have returned."""
        raise EngineError(f"{self.kind!r} tasks do not shard")


def _origin_token(origin: float | None) -> str | None:
    return None if origin is None else repr(float(origin))


@dataclass(frozen=True)
class AnalysisTask(DeltaTask):
    """Aggregate at Δ once, scan once, emit one result per measure.

    The fused per-Δ evaluation: the measure set shares a single
    aggregation (through the process-wide series memo) and a single
    backward scan feeding every measure's collector.  ``evaluate``
    returns a dict mapping measure name to its result; the scheduler
    caches each entry under its own per-measure key (see
    :meth:`result_keys`) and :meth:`narrow`\\ s the task to the missing
    measures on partial cache hits.
    """

    measures: tuple[MeasureSpec, ...] = ()
    include_self: bool = False
    origin: float | None = None

    def __post_init__(self) -> None:
        if not self.measures:
            raise EngineError("an AnalysisTask needs at least one measure")
        names = [m.name for m in self.measures]
        if len(set(names)) != len(names):
            raise EngineError(f"duplicate measure names in task: {names}")

    @property
    def kind(self) -> str:
        return "analysis"

    def _token(self) -> tuple:
        return (
            tuple((m.name, m.token()) for m in self.measures),
            self.include_self,
            _origin_token(self.origin),
        )

    # -- per-measure cache identity ---------------------------------------

    def measure_key(self, stream_fingerprint: str, measure: MeasureSpec) -> str:
        """Content address of one measure's result at this Δ.

        Depends only on the stream, Δ, the task-level scan parameters,
        and *that* measure — never on which other measures ride the same
        fused task — so any sweep requesting the measure at this Δ reuses
        the entry, fused or not, sharded or not.
        """
        payload = repr(
            (
                EVAL_VERSION,
                "measure",
                repr(self.delta),
                self.include_self,
                _origin_token(self.origin),
                measure.name,
                measure.token(),
            )
        )
        digest = hashlib.sha256()
        digest.update(stream_fingerprint.encode())
        digest.update(payload.encode())
        return digest.hexdigest()

    def result_keys(self, stream_fingerprint: str) -> list[str]:
        return [self.measure_key(stream_fingerprint, m) for m in self.measures]

    def narrow(self, missing: Sequence[int]) -> "AnalysisTask":
        subset = tuple(self.measures[i] for i in missing)
        if subset == self.measures:
            return self
        return AnalysisTask(
            delta=self.delta,
            measures=subset,
            include_self=self.include_self,
            origin=self.origin,
        )

    def split_result(self, value: dict) -> list:
        return [value[m.name] for m in self.measures]

    def assemble(self, parts: list) -> dict:
        return {m.name: part for m, part in zip(self.measures, parts)}

    # -- evaluation --------------------------------------------------------

    def evaluate(self, stream: LinkStream) -> dict:
        series = aggregate_cached(stream, float(self.delta), origin=self.origin)
        geometry = SeriesGeometry(
            num_nodes=series.num_nodes,
            num_windows=series.num_steps,
            num_nonempty_windows=int(series.nonempty_steps().size),
        )
        collectors = {
            m.name: m.make_collector() for m in self.measures if m.scans
        }
        if collectors:
            scan_series(
                series,
                list(collectors.values()),
                include_self=self.include_self,
            )
        return {
            m.name: m.finalize(
                float(self.delta),
                geometry,
                m.series_payload(series) if m.has_payload else None,
                [collectors[m.name]] if m.scans else [],
            )
            for m in self.measures
        }

    # -- sharding ----------------------------------------------------------

    def shard(self, num_shards: int) -> "list[DeltaTask] | None":
        """Split the evaluation into ``num_shards`` target-partition scans.

        Shard ``i`` owns destination nodes ``i, i + s, i + 2s, ...`` (a
        strided partition, so activity clustered on low or high node ids
        still spreads across workers).  Every scan-feeding measure's
        collector restricts to the shard's columns; per-series payload
        work (snapshot metrics) rides on shard 0 alone.  Merging the
        shard collectors and finalizing once reproduces :meth:`evaluate`
        bit-for-bit.  Returns ``None`` when no measure feeds on the scan
        — there is nothing to parallelize within the Δ.
        """
        if num_shards < 1:
            raise EngineError("num_shards must be a positive integer")
        if num_shards == 1 or not any(m.scans for m in self.measures):
            return None
        return [
            AnalysisShardTask(
                delta=self.delta,
                measures=self.measures,
                include_self=self.include_self,
                origin=self.origin,
                shard_index=index,
                num_shards=num_shards,
            )
            for index in range(num_shards)
        ]

    def merge_shards(self, shards: Sequence["AnalysisShardResult"]) -> dict:
        """One per-measure result dict from a full set of shard results."""
        if not shards:
            raise EngineError("cannot merge an empty shard set")
        indices = sorted(shard.shard_index for shard in shards)
        counts = {shard.num_shards for shard in shards}
        deltas = {shard.delta for shard in shards}
        if (
            len(counts) != 1
            or deltas != {float(self.delta)}
            or indices != list(range(counts.pop()))
            or len(indices) != len(shards)
        ):
            raise EngineError(
                f"shard results do not cover delta={self.delta!r}: "
                f"got indices {indices}"
            )
        ordered = sorted(shards, key=lambda shard: shard.shard_index)
        geometry = ordered[0].geometry
        payloads = ordered[0].payloads
        results: dict = {}
        for measure in self.measures:
            if measure.scans:
                missing = [
                    s.shard_index
                    for s in ordered
                    if measure.name not in s.collectors
                ]
                if missing:
                    raise EngineError(
                        f"shards {missing} lack the {measure.name!r} "
                        f"collector for delta={self.delta!r}"
                    )
            if measure.has_payload and measure.name not in payloads:
                raise EngineError(
                    f"shard 0 lacks the {measure.name!r} payload for "
                    f"delta={self.delta!r}"
                )
            results[measure.name] = measure.finalize(
                float(self.delta),
                geometry,
                payloads.get(measure.name),
                [s.collectors[measure.name] for s in ordered]
                if measure.scans
                else [],
            )
        return results


@dataclass(frozen=True)
class AnalysisShardResult:
    """Partial fused evaluation: the collected state of one target shard.

    Holds the raw (mergeable) collectors per scan-feeding measure rather
    than finalized results, plus the series geometry — identical across
    shards of one Δ.  ``payloads`` carries the per-series (non-scan)
    measure work and is populated by shard 0 only.
    """

    delta: float
    shard_index: int
    num_shards: int
    geometry: SeriesGeometry
    collectors: dict[str, Any]
    payloads: dict[str, Any]


@dataclass(frozen=True)
class AnalysisShardTask(DeltaTask):
    """One target-partition shard of an :class:`AnalysisTask`.

    Shard ``shard_index`` of ``num_shards`` aggregates at Δ like the
    full task (through the shared series memo, so sibling shards in one
    process aggregate once) but scans only the minimal trips *arriving*
    at nodes ``shard_index + k * num_shards`` — the arrival-matrix
    columns are independent dynamic programs, so the restricted scan
    does proportionally less work and every measure's collector receives
    exactly the full scan's contributions for the shard's destinations.
    The shard spec is part of the cache key, so shard results never
    collide with per-measure results or with other shard layouts.  Pure
    post-processing parameters (scoring methods) are deliberately *not*
    part of a shard: the result is raw collectors, finalization happens
    at merge time, so sweeps differing only in scoring share shard
    entries.
    """

    measures: tuple[MeasureSpec, ...] = ()
    include_self: bool = False
    origin: float | None = None
    shard_index: int = 0
    num_shards: int = 1

    def __post_init__(self) -> None:
        if not self.measures:
            raise EngineError("an AnalysisShardTask needs at least one measure")
        if self.num_shards < 1:
            raise EngineError("num_shards must be a positive integer")
        if not 0 <= self.shard_index < self.num_shards:
            raise EngineError(
                f"shard_index {self.shard_index} out of range "
                f"[0, {self.num_shards})"
            )

    @property
    def kind(self) -> str:
        return "analysis-shard"

    @property
    def carries_payload(self) -> bool:
        """Per-series payload work rides on shard 0 alone."""
        return self.shard_index == 0

    def _token(self) -> tuple:
        return (
            tuple(
                (m.name, m.collector_token()) for m in self.measures if m.scans
            ),
            tuple(
                m.name
                for m in self.measures
                if m.has_payload and self.carries_payload
            ),
            self.include_self,
            _origin_token(self.origin),
            self.shard_index,
            self.num_shards,
        )

    def evaluate(self, stream: LinkStream) -> AnalysisShardResult:
        series = aggregate_cached(stream, float(self.delta), origin=self.origin)
        targets = np.arange(
            self.shard_index, series.num_nodes, self.num_shards, dtype=np.int64
        )
        collectors = {
            m.name: m.make_collector() for m in self.measures if m.scans
        }
        if collectors:
            scan_series(
                series,
                list(collectors.values()),
                include_self=self.include_self,
                targets=targets,
            )
        payloads = (
            {
                m.name: m.series_payload(series)
                for m in self.measures
                if m.has_payload
            }
            if self.carries_payload
            else {}
        )
        return AnalysisShardResult(
            delta=float(self.delta),
            shard_index=self.shard_index,
            num_shards=self.num_shards,
            geometry=SeriesGeometry(
                num_nodes=series.num_nodes,
                num_windows=series.num_steps,
                num_nonempty_windows=int(series.nonempty_steps().size),
            ),
            collectors=collectors,
            payloads=payloads,
        )


def plan_measure_sweep(
    deltas: np.ndarray,
    measures: "Sequence[str | MeasureSpec] | str | MeasureSpec",
    *,
    include_self: bool = False,
    origin: float | None = None,
) -> list[AnalysisTask]:
    """One fused :class:`AnalysisTask` per candidate Δ, in grid order.

    ``measures`` accepts measure names, :class:`MeasureSpec` instances,
    or a mix; every Δ evaluates the whole set from one aggregation and
    one scan.
    """
    measure_set = normalize_measures(measures)
    return [
        AnalysisTask(
            delta=float(delta),
            measures=measure_set,
            include_self=include_self,
            origin=origin,
        )
        for delta in np.asarray(deltas, dtype=np.float64)
    ]


def plan_occupancy_sweep(
    deltas: np.ndarray,
    *,
    methods: tuple[str, ...],
    bins: int = 4096,
    exact: bool = False,
    include_self: bool = False,
    origin: float | None = None,
) -> list[AnalysisTask]:
    """An occupancy-only measure sweep (sugar over
    :func:`plan_measure_sweep`).  Each task's result is a dict with one
    ``"occupancy"`` entry holding the
    :class:`~repro.core.saturation.SweepPoint`."""
    return plan_measure_sweep(
        deltas,
        OccupancyMeasure(methods=tuple(methods), bins=bins, exact=exact),
        include_self=include_self,
        origin=origin,
    )


def plan_classical_sweep(
    deltas: np.ndarray,
    *,
    compute_distances: bool = True,
    origin: float | None = None,
) -> list[AnalysisTask]:
    """A classical-parameters measure sweep (sugar over
    :func:`plan_measure_sweep`).  Each task's result is a dict with one
    ``"classical"`` (or, without distances, ``"metrics"``) entry holding
    the :class:`~repro.core.classical.ClassicalPoint`."""
    return plan_measure_sweep(
        deltas,
        ClassicalMeasure() if compute_distances else MetricsMeasure(),
        origin=origin,
    )


@dataclass(frozen=True)
class ShardPlan:
    """A sweep plan rewritten for within-Δ sharding.

    ``subtasks`` is the flat execution plan; ``groups[i]`` maps original
    task ``i`` to its ``(start, count)`` slice of ``subtasks`` (count 1
    and the original task itself when the task does not shard, flagged
    by ``sharded[i]``).
    """

    subtasks: list[DeltaTask]
    groups: list[tuple[int, int]]
    sharded: list[bool]


def plan_shard_expansion(tasks: Sequence[DeltaTask], num_shards: int) -> ShardPlan:
    """Rewrite a plan so each shardable task becomes ``num_shards`` subtasks.

    Tasks that do not shard (``task.shard`` returns ``None``) ride along
    unchanged, so mixed plans stay valid.
    """
    if num_shards < 1:
        raise EngineError("num_shards must be a positive integer")
    subtasks: list[DeltaTask] = []
    groups: list[tuple[int, int]] = []
    sharded: list[bool] = []
    for task in tasks:
        pieces = task.shard(num_shards) if num_shards > 1 else None
        start = len(subtasks)
        if pieces:
            subtasks.extend(pieces)
            groups.append((start, len(pieces)))
            sharded.append(True)
        else:
            subtasks.append(task)
            groups.append((start, 1))
            sharded.append(False)
    return ShardPlan(subtasks=subtasks, groups=groups, sharded=sharded)
