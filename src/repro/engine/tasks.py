"""Sweep plans: the unit of work the execution engine schedules.

A Δ sweep — the inner loop of the occupancy method and of the classical-
parameter analysis — is a set of fully independent evaluations, one per
aggregation period.  This module makes that structure explicit: each
candidate Δ becomes one :class:`DeltaTask` that knows how to evaluate
itself on a stream and how to describe itself for the content-addressed
cache.  Backends (:mod:`repro.engine.backends`) execute tasks; the
scheduler (:mod:`repro.engine.scheduler`) orders, caches, and collects.

Tasks are small frozen dataclasses so they pickle cheaply to worker
processes; the stream itself is shipped separately (once per chunk).
"""

from __future__ import annotations

import hashlib
from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Any

import numpy as np

from repro.core.occupancy import stream_occupancy_at
from repro.core.uniformity import score_distribution
from repro.graphseries.aggregation import aggregate
from repro.graphseries.metrics import series_metrics
from repro.linkstream.stream import LinkStream
from repro.temporal.reachability import scan_series

#: Version of the evaluation numerics baked into every cache key.  Bump
#: whenever any code a task's ``evaluate`` depends on changes results
#: (aggregation, the backward scan, occupancy collection, scoring), so
#: persistent disk caches from older releases invalidate instead of
#: silently serving stale sweep points.
EVAL_VERSION = 1


@dataclass(frozen=True)
class DeltaTask(ABC):
    """One independent unit of sweep work: evaluate one Δ on a stream."""

    delta: float

    @property
    @abstractmethod
    def kind(self) -> str:
        """Short tag naming the evaluation this task performs."""

    @abstractmethod
    def evaluate(self, stream: LinkStream) -> Any:
        """Run the numerics for this Δ and return the per-Δ result."""

    @abstractmethod
    def _token(self) -> tuple:
        """The parameters (beyond the stream) that determine the result."""

    def cache_key(self, stream_fingerprint: str) -> str:
        """Content address of this task's result on a given stream."""
        payload = repr((EVAL_VERSION, self.kind, repr(self.delta), self._token()))
        digest = hashlib.sha256()
        digest.update(stream_fingerprint.encode())
        digest.update(payload.encode())
        return digest.hexdigest()


@dataclass(frozen=True)
class OccupancyTask(DeltaTask):
    """Aggregate at Δ, collect minimal-trip occupancies, score them.

    Produces the :class:`~repro.core.saturation.SweepPoint` for one
    aggregation period — the occupancy method's inner loop (Section 4).
    """

    methods: tuple[str, ...] = ("mk",)
    bins: int = 4096
    exact: bool = False
    include_self: bool = False
    origin: float | None = None

    @property
    def kind(self) -> str:
        return "occupancy"

    def _token(self) -> tuple:
        return (
            self.methods,
            self.bins,
            self.exact,
            self.include_self,
            None if self.origin is None else repr(float(self.origin)),
        )

    def evaluate(self, stream: LinkStream):
        from repro.core.saturation import SweepPoint

        distribution, series, num_trips = stream_occupancy_at(
            stream,
            float(self.delta),
            origin=self.origin,
            bins=self.bins,
            exact=self.exact,
            include_self=self.include_self,
        )
        return SweepPoint(
            delta=float(self.delta),
            num_windows=series.num_steps,
            num_nonempty_windows=int(series.nonempty_steps().size),
            num_trips=num_trips,
            distribution=distribution,
            scores=score_distribution(distribution, self.methods),
        )


@dataclass(frozen=True)
class ClassicalTask(DeltaTask):
    """Aggregate at Δ and measure the classical parameters (Section 3)."""

    compute_distances: bool = True
    origin: float | None = None

    @property
    def kind(self) -> str:
        return "classical"

    def _token(self) -> tuple:
        return (
            self.compute_distances,
            None if self.origin is None else repr(float(self.origin)),
        )

    def evaluate(self, stream: LinkStream):
        from repro.core.classical import ClassicalPoint

        series = aggregate(stream, float(self.delta), origin=self.origin)
        snapshot_stats = series_metrics(series)
        distances = None
        if self.compute_distances:
            distances = scan_series(series, compute_distances=True).distances
        return ClassicalPoint(float(self.delta), snapshot_stats, distances)


def plan_occupancy_sweep(
    deltas: np.ndarray,
    *,
    methods: tuple[str, ...],
    bins: int = 4096,
    exact: bool = False,
    include_self: bool = False,
    origin: float | None = None,
) -> list[OccupancyTask]:
    """One :class:`OccupancyTask` per candidate Δ, in grid order."""
    return [
        OccupancyTask(
            delta=float(delta),
            methods=tuple(methods),
            bins=bins,
            exact=exact,
            include_self=include_self,
            origin=origin,
        )
        for delta in np.asarray(deltas, dtype=np.float64)
    ]


def plan_classical_sweep(
    deltas: np.ndarray,
    *,
    compute_distances: bool = True,
    origin: float | None = None,
) -> list[ClassicalTask]:
    """One :class:`ClassicalTask` per candidate Δ, in grid order."""
    return [
        ClassicalTask(
            delta=float(delta),
            compute_distances=compute_distances,
            origin=origin,
        )
        for delta in np.asarray(deltas, dtype=np.float64)
    ]
