"""The sweep engine: plan in, results out.

:class:`SweepEngine` is the seam between the sweep callers
(:func:`~repro.core.saturation.occupancy_method` and friends) and the
execution machinery.  ``run(stream, tasks)``:

1. probes the :class:`~repro.engine.cache.SweepCache` for every task
   (keyed on the stream fingerprint + task parameters),
2. hands only the misses to the :class:`ExecutionBackend`,
3. stores the fresh results and returns everything in task order.

The process-wide **default engine** is what sweeps use when no engine is
passed explicitly.  It is configured from the environment on first use:

* ``REPRO_ENGINE`` — backend spec, e.g. ``serial`` (default), ``thread``,
  ``process``, or ``thread:8`` to pin the worker count;
* ``REPRO_CACHE_DIR`` — adds a persistent on-disk result store;
* ``REPRO_SHARDS`` — within-Δ sharding: ``auto`` (the default heuristic),
  ``1`` (never shard), or a fixed shard count per Δ.

**Within-Δ sharding.**  Grid parallelism stops helping when the plan has
fewer tasks than the backend has workers — the coarse-Δ tail of a sweep
and refinement rounds, where one huge evaluation pins one worker while
the rest idle.  For those plans the engine splits each shardable task
into destination-partition shards (see
:class:`~repro.engine.tasks.OccupancyShardTask`), runs the shards like
any other tasks (each with its own shard-spec cache key), and merges
them back into one result per Δ — bit-identical to the unsharded
evaluation on every backend.  The merged result is also stored under the
original task's key, so sharded and unsharded runs warm each other.

An in-memory cache is always on for the default engine: results are
immutable and deterministic, so reuse is free correctness-wise and turns
refinement rounds, stability re-runs, and repeated interactive sweeps
into lookups.
"""

from __future__ import annotations

import math
import os
from collections.abc import Iterator, Sequence
from contextlib import contextmanager

from repro.engine.backends import ExecutionBackend, get_backend
from repro.engine.cache import MISS, SweepCache
from repro.engine.progress import NULL_PROGRESS, ProgressListener
from repro.engine.tasks import DeltaTask, clear_series_memo, plan_shard_expansion
from repro.linkstream.stream import LinkStream
from repro.utils.errors import EngineError

#: Environment variable selecting the default engine's backend.
ENGINE_ENV_VAR = "REPRO_ENGINE"
#: Environment variable adding a disk store to the default engine.
CACHE_DIR_ENV_VAR = "REPRO_CACHE_DIR"
#: Environment variable selecting the default engine's shard policy.
SHARDS_ENV_VAR = "REPRO_SHARDS"

#: Shard policy meaning "apply the heuristic" (shard only plans with
#: fewer tasks than the backend has workers).
AUTO_SHARDS = "auto"


def normalize_shards(shards: int | str | None) -> int | str:
    """Validate a shard policy: ``None``/``"auto"`` -> :data:`AUTO_SHARDS`,
    a positive integer (or its string form) -> that fixed count."""
    if shards is None:
        return AUTO_SHARDS
    if isinstance(shards, str):
        text = shards.strip().lower()
        if text == AUTO_SHARDS:
            return AUTO_SHARDS
        try:
            shards = int(text)
        except ValueError:
            raise EngineError(
                f"bad shard policy {text!r}: expected 'auto' or a positive integer"
            ) from None
    if isinstance(shards, bool) or not isinstance(shards, int) or shards < 1:
        raise EngineError(
            f"bad shard policy {shards!r}: expected 'auto' or a positive integer"
        )
    return shards


class SweepEngine:
    """Executes sweep plans through a backend, behind a result cache.

    Parameters
    ----------
    backend:
        An :class:`ExecutionBackend`, a backend name (``"serial"``,
        ``"thread"``, ``"process"``, optionally ``"name:jobs"``), or
        ``None`` for serial.
    cache:
        A :class:`SweepCache`, or ``None`` to disable caching entirely.
    jobs:
        Worker count when ``backend`` is given by name.
    progress:
        A :class:`ProgressListener` notified as tasks complete.
    shards:
        Within-Δ shard policy: ``"auto"`` (the default — shard a task
        into ``ceil(workers / tasks)`` pieces only when the plan has
        fewer tasks than the backend has workers), ``1`` to never shard,
        or a fixed per-task shard count.  Whatever the policy, results
        are bit-identical to the unsharded serial evaluation.
    """

    def __init__(
        self,
        backend: str | ExecutionBackend | None = None,
        *,
        cache: SweepCache | None = None,
        jobs: int | None = None,
        progress: ProgressListener | None = None,
        shards: int | str | None = None,
    ) -> None:
        self.backend = get_backend(backend, jobs=jobs)
        self.cache = cache
        self.progress = progress if progress is not None else NULL_PROGRESS
        self.shards = normalize_shards(shards)

    def _shard_count(
        self, num_tasks: int, shards: int | str | None, stream: LinkStream
    ) -> int:
        """Shards per task for this run (1 = plain execution).

        The count never exceeds the stream's node count — a target
        partition cannot have more non-empty shards than nodes.
        """
        policy = self.shards if shards is None else normalize_shards(shards)
        if policy == AUTO_SHARDS:
            workers = self.backend.workers
            if num_tasks == 0 or num_tasks >= workers:
                return 1
            count = math.ceil(workers / num_tasks)
        else:
            count = policy
        return max(1, min(count, stream.num_nodes))

    def run(
        self,
        stream: LinkStream,
        tasks: Sequence[DeltaTask],
        *,
        shards: int | str | None = None,
    ) -> list:
        """Evaluate every task on ``stream``; ``results[i]`` matches
        ``tasks[i]``.  Cached results are never recomputed.

        ``shards`` overrides the engine's shard policy for this run (see
        the class docstring); sharded or not, the returned results are
        bit-identical.
        """
        tasks = list(tasks)
        num_shards = self._shard_count(len(tasks), shards, stream)
        if num_shards <= 1:
            return self._execute(stream, tasks)
        return self._run_sharded(stream, tasks, num_shards)

    def _run_sharded(
        self, stream: LinkStream, tasks: list[DeltaTask], num_shards: int
    ) -> list:
        """Shard-expand the plan, execute, and merge one result per task.

        Whole-task cache hits are honoured before any shard work; fresh
        shard results are cached under their shard-spec keys by
        :meth:`_execute` (layout-stable reuse: a later run with the same
        shard spec hits them even if the merged point was evicted);
        every merged result is stored under the original task's key so
        later unsharded runs hit directly.  Non-shardable tasks ride
        through :meth:`_execute` untouched — probed and stored once,
        under their own keys.

        Progress totals count executed *subtasks* plus whole-point cache
        hits: a 2-Δ plan with one Δ cached and one sharded 4 ways
        reports 5 units, 1 of them cached.
        """
        total = len(tasks)
        plan = plan_shard_expansion(tasks, num_shards)
        results: list = [MISS] * total
        keys: list[str | None] = [None] * total
        if self.cache is not None:
            fingerprint = stream.fingerprint()
            for i, task in enumerate(tasks):
                if plan.sharded[i]:
                    keys[i] = task.cache_key(fingerprint)
                    results[i] = self.cache.get(keys[i])
        pending = [i for i in range(total) if results[i] is MISS]
        hits = total - len(pending)

        if not pending:
            self.progress.on_start(total)
            self.progress.on_advance(total, total, cached=True)
            self.progress.on_finish(total)
            return results

        subtasks: list[DeltaTask] = []
        spans: dict[int, tuple[int, int]] = {}
        for i in pending:
            start, count = plan.groups[i]
            spans[i] = (len(subtasks), count)
            subtasks.extend(plan.subtasks[start : start + count])
        try:
            sub_results = self._execute(stream, subtasks, base_done=hits)

            for i in pending:
                start, count = spans[i]
                chunk = sub_results[start : start + count]
                if plan.sharded[i]:
                    results[i] = tasks[i].merge_shards(chunk)
                    if self.cache is not None:
                        self.cache.put(keys[i], results[i])
                else:
                    results[i] = chunk[0]
        finally:
            clear_series_memo()
        return results

    def _execute(
        self, stream: LinkStream, tasks: list[DeltaTask], *, base_done: int = 0
    ) -> list:
        """The cache-then-backend pipeline for one flat plan.

        ``base_done`` counts work units already satisfied by the caller
        (whole-point cache hits on the sharded path); they are folded
        into the progress totals as cached units.
        """
        total = len(tasks) + base_done
        self.progress.on_start(total)
        if not tasks:
            self.progress.on_finish(total)
            return []

        results: list = [MISS] * len(tasks)
        pending: list[int] = []
        keys: list[str | None] = [None] * len(tasks)
        if self.cache is not None:
            fingerprint = stream.fingerprint()
            for i, task in enumerate(tasks):
                keys[i] = task.cache_key(fingerprint)
                results[i] = self.cache.get(keys[i])
                if results[i] is MISS:
                    pending.append(i)
        else:
            pending = list(range(len(tasks)))

        done = total - len(pending)
        if done:
            self.progress.on_advance(done, total, cached=True)

        if pending:
            counter = {"done": done}

            def tick(n: int) -> None:
                counter["done"] += n
                self.progress.on_advance(counter["done"], total)

            fresh = self.backend.run(
                stream, [tasks[i] for i in pending], tick=tick
            )
            for i, value in zip(pending, fresh):
                results[i] = value
                if self.cache is not None:
                    self.cache.put(keys[i], value)

        self.progress.on_finish(total)
        return results

    def close(self) -> None:
        """Release backend workers (the cache stays usable)."""
        self.backend.close()

    def __enter__(self) -> "SweepEngine":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:
        return (
            f"SweepEngine(backend={self.backend!r}, cache={self.cache!r}, "
            f"shards={self.shards!r})"
        )


def engine_from_env(environ=None) -> SweepEngine:
    """Build an engine from ``REPRO_ENGINE`` / ``REPRO_CACHE_DIR`` /
    ``REPRO_SHARDS``."""
    env = os.environ if environ is None else environ
    cache_dir = env.get(CACHE_DIR_ENV_VAR) or None
    return SweepEngine(
        env.get(ENGINE_ENV_VAR) or None,
        cache=SweepCache.build(disk_dir=cache_dir),
        shards=env.get(SHARDS_ENV_VAR) or None,
    )


_default_engine: SweepEngine | None = None


def default_engine() -> SweepEngine:
    """The process-wide engine, built from the environment on first use."""
    global _default_engine
    if _default_engine is None:
        _default_engine = engine_from_env()
    return _default_engine


def set_default_engine(engine: SweepEngine | None) -> None:
    """Replace the process-wide engine (``None`` re-reads the environment
    on next use)."""
    global _default_engine
    _default_engine = engine


def resolve_engine(engine: SweepEngine | str | None) -> SweepEngine:
    """The engine a sweep should use: an instance as-is, a backend name
    as a fresh cached engine, ``None`` as the process default."""
    if engine is None:
        return default_engine()
    if isinstance(engine, SweepEngine):
        return engine
    return SweepEngine(engine, cache=SweepCache.build())


@contextmanager
def engine_scope(engine: SweepEngine | str | None) -> Iterator[SweepEngine]:
    """Resolve ``engine`` for the duration of one analysis call.

    Sweep entry points accept an engine instance, a backend name, or
    ``None``.  A name means "a private engine for this call": it is
    built once here — so refinement rounds and repeated internal sweeps
    share its cache — and its worker pool is closed on exit.  Instances
    and the process default are passed through untouched; their
    lifetime belongs to the caller.
    """
    owns = not (engine is None or isinstance(engine, SweepEngine))
    resolved = resolve_engine(engine)
    try:
        yield resolved
    finally:
        if owns:
            resolved.close()
