"""The sweep engine: plan in, results out.

:class:`SweepEngine` is the seam between the sweep callers
(:func:`~repro.core.saturation.occupancy_method` and friends) and the
execution machinery.  ``run(stream, tasks)``:

1. probes the :class:`~repro.engine.cache.SweepCache` for every task's
   **per-result keys** (a fused :class:`~repro.engine.tasks.AnalysisTask`
   has one key per measure, keyed on the stream fingerprint + Δ + that
   measure's parameters),
2. narrows each partially-cached task to its missing results and hands
   only those narrowed tasks to the :class:`ExecutionBackend`,
3. stores every fresh per-measure result under its own key and returns
   the assembled results in task order.

A warm occupancy cache plus a cold classical request therefore re-scans
each Δ exactly once — computing only the classical measure — and a fully
warm measure set is served without touching the backend at all.

``submit(stream, tasks)`` is the same pipeline split at the execution
seam: probing and narrowing happen synchronously (they are cheap), the
missing units are queued on an async-capable backend, and the returned
:class:`EngineFuture` resolves from pool callbacks — no thread blocked
per plan.  Both paths honour a :class:`~repro.engine.cancel.CancelToken`
(passed explicitly or inherited from the calling thread's
``cancel_scope``), cancelling pending work via the fail-fast path.

The process-wide **default engine** is what sweeps use when no engine is
passed explicitly.  It is configured from the environment on first use:

* ``REPRO_ENGINE`` — backend spec, e.g. ``serial`` (default), ``thread``,
  ``process``, or ``thread:8`` to pin the worker count;
* ``REPRO_CACHE_DIR`` — adds a persistent on-disk result store;
* ``REPRO_CACHE_MAX_BYTES`` — size cap for that store (LRU eviction);
* ``REPRO_SHARDS`` — within-Δ sharding: ``auto`` (the default heuristic),
  ``1`` (never shard), or a fixed shard count per Δ.

**Within-Δ sharding.**  Grid parallelism stops helping when the plan has
fewer tasks than the backend has workers — the coarse-Δ tail of a sweep
and refinement rounds, where one huge evaluation pins one worker while
the rest idle.  For those plans the engine splits each shardable
(narrowed) task into destination-partition shards (see
:class:`~repro.engine.tasks.AnalysisShardTask`), runs the shards like
any other tasks (each with its own shard-spec cache key), and merges
them back into one result per Δ — bit-identical to the unsharded
evaluation on every backend.  The merged per-measure results are stored
under the ordinary measure keys, so sharded and unsharded runs warm
each other.

An in-memory cache is always on for the default engine: results are
immutable and deterministic, so reuse is free correctness-wise and turns
refinement rounds, stability re-runs, and repeated interactive sweeps
into lookups.
"""

from __future__ import annotations

import math
import os
import threading
from collections.abc import Callable, Iterator, Sequence
from contextlib import contextmanager
from dataclasses import dataclass

from repro.engine.backends import ExecutionBackend, get_backend
from repro.engine.cancel import CancelToken, current_cancel_token
from repro.engine.cache import MISS, SweepCache
from repro.engine.progress import NULL_PROGRESS, ProgressListener
from repro.engine.tasks import DeltaTask, plan_shard_expansion
from repro.linkstream.stream import LinkStream
from repro.utils.errors import EngineError

#: Environment variable selecting the default engine's backend.
ENGINE_ENV_VAR = "REPRO_ENGINE"
#: Environment variable adding a disk store to the default engine.
CACHE_DIR_ENV_VAR = "REPRO_CACHE_DIR"
#: Environment variable capping the disk store's size in bytes.
CACHE_MAX_BYTES_ENV_VAR = "REPRO_CACHE_MAX_BYTES"
#: Environment variable selecting the default engine's shard policy.
SHARDS_ENV_VAR = "REPRO_SHARDS"

#: Shard policy meaning "apply the heuristic" (shard only plans with
#: fewer tasks than the backend has workers).
AUTO_SHARDS = "auto"


def normalize_shards(shards: int | str | None) -> int | str:
    """Validate a shard policy: ``None``/``"auto"`` -> :data:`AUTO_SHARDS`,
    a positive integer (or its string form) -> that fixed count."""
    if shards is None:
        return AUTO_SHARDS
    if isinstance(shards, str):
        text = shards.strip().lower()
        if text == AUTO_SHARDS:
            return AUTO_SHARDS
        try:
            shards = int(text)
        except ValueError:
            raise EngineError(
                f"bad shard policy {text!r}: expected 'auto' or a positive integer"
            ) from None
    if isinstance(shards, bool) or not isinstance(shards, int) or shards < 1:
        raise EngineError(
            f"bad shard policy {shards!r}: expected 'auto' or a positive integer"
        )
    return shards


@dataclass
class _PlanState:
    """Everything :meth:`SweepEngine._prepare` established about a plan:
    the cache probe's outcome plus the execution units still missing.
    Passing it to :meth:`SweepEngine._finish` with the backend's fresh
    results completes the run — whichever thread the backend finishes
    on."""

    tasks: list
    parts: list
    keys: list
    missing: list
    narrowed: list
    pending: list
    groups: dict
    units: list
    unit_results: list
    unit_keys: list
    to_run: list
    progress_total: int
    tick: Callable[[int], None] | None = None
    fingerprint: str | None = None

    @property
    def run_units(self) -> list:
        """The subtasks the backend must actually evaluate."""
        return [self.units[j] for j in self.to_run]


class EngineFuture:
    """A pending :meth:`SweepEngine.submit`: results later, no thread
    blocked meanwhile.  Resolves on the pool thread finishing the plan's
    last task; ``result()`` blocks, ``add_done_callback`` doesn't."""

    def __init__(self) -> None:
        self._event = threading.Event()
        self._results: list | None = None
        self._error: BaseException | None = None
        self._lock = threading.Lock()
        self._callbacks: list[Callable[["EngineFuture"], None]] = []

    def _complete(self, results: list) -> None:
        with self._lock:
            self._results = results
            self._event.set()
            callbacks, self._callbacks = self._callbacks, []
        for callback in callbacks:
            callback(self)

    def _fail(self, error: BaseException) -> None:
        with self._lock:
            self._error = error
            self._event.set()
            callbacks, self._callbacks = self._callbacks, []
        for callback in callbacks:
            callback(self)

    def done(self) -> bool:
        return self._event.is_set()

    def add_done_callback(self, callback: Callable[["EngineFuture"], None]) -> None:
        """Run ``callback(future)`` once resolved (immediately if done)."""
        with self._lock:
            if not self._event.is_set():
                self._callbacks.append(callback)
                return
        callback(self)

    def result(self, timeout: float | None = None) -> list:
        """Block for the assembled task results (or raise the failure)."""
        if not self._event.wait(timeout):
            raise EngineError(f"sweep not done within {timeout}s")
        if self._error is not None:
            raise self._error
        return self._results

    def __repr__(self) -> str:
        if not self._event.is_set():
            return "EngineFuture(pending)"
        state = "failed" if self._error is not None else "done"
        return f"EngineFuture({state})"


class SweepEngine:
    """Executes sweep plans through a backend, behind a result cache.

    Parameters
    ----------
    backend:
        An :class:`ExecutionBackend`, a backend name (``"serial"``,
        ``"thread"``, ``"process"``, optionally ``"name:jobs"``), or
        ``None`` for serial.
    cache:
        A :class:`SweepCache`, or ``None`` to disable caching entirely.
    jobs:
        Worker count when ``backend`` is given by name.
    progress:
        A :class:`ProgressListener` notified as tasks complete.
    shards:
        Within-Δ shard policy: ``"auto"`` (the default — shard a task
        into ``ceil(workers / tasks)`` pieces only when the plan has
        fewer tasks than the backend has workers), ``1`` to never shard,
        or a fixed per-task shard count.  Whatever the policy, results
        are bit-identical to the unsharded serial evaluation.
    """

    def __init__(
        self,
        backend: str | ExecutionBackend | None = None,
        *,
        cache: SweepCache | None = None,
        jobs: int | None = None,
        progress: ProgressListener | None = None,
        shards: int | str | None = None,
    ) -> None:
        self.backend = get_backend(backend, jobs=jobs)
        self.cache = cache
        self.progress = progress if progress is not None else NULL_PROGRESS
        self.shards = normalize_shards(shards)

    def _shard_count(
        self, num_tasks: int, shards: int | str | None, stream: LinkStream
    ) -> int:
        """Shards per task for this run (1 = plain execution).

        The count never exceeds the stream's node count — a target
        partition cannot have more non-empty shards than nodes.
        """
        policy = self.shards if shards is None else normalize_shards(shards)
        if policy == AUTO_SHARDS:
            workers = self.backend.workers
            if num_tasks == 0 or num_tasks >= workers:
                return 1
            count = math.ceil(workers / num_tasks)
        else:
            count = policy
        return max(1, min(count, stream.num_nodes))

    def _prepare(
        self,
        stream: LinkStream,
        tasks: list[DeltaTask],
        shards: int | str | None,
    ) -> _PlanState:
        """Probe the cache, narrow partially-cached tasks, expand shards,
        and report the cached fraction to the progress listener.  Returns
        the plan state whose ``run_units`` the backend must evaluate
        (possibly none)."""
        total = len(tasks)
        num_shards = self._shard_count(total, shards, stream)

        # Per-result cache probing.  ``missing[i] is None`` encodes the
        # cache-off case: evaluate the whole task, store nothing.
        parts: list[list] = [[] for _ in range(total)]
        keys: list[list[str]] = [[] for _ in range(total)]
        missing: list[list[int] | None] = [None] * total
        narrowed: list[DeltaTask | None] = list(tasks)
        fingerprint: str | None = None
        if self.cache is not None:
            fingerprint = stream.fingerprint()
            for i, task in enumerate(tasks):
                keys[i] = task.result_keys(fingerprint)
                parts[i] = [self.cache.get(key) for key in keys[i]]
                missing[i] = [
                    j for j, part in enumerate(parts[i]) if part is MISS
                ]
                narrowed[i] = (
                    task.narrow(missing[i]) if missing[i] else None
                )

        pending = [i for i in range(total) if narrowed[i] is not None]
        hits = total - len(pending)

        # Shard expansion of the narrowed tasks.  Shard subtasks carry
        # their own shard-spec cache keys; an unsharded narrowed task is
        # NOT re-probed here — its misses were established above at
        # measure granularity.
        plan = plan_shard_expansion([narrowed[i] for i in pending], num_shards)
        units = plan.subtasks
        unit_cached = [False] * len(units)
        groups: dict[int, tuple[int, int, bool]] = {}
        for i, (start, count), sharded in zip(pending, plan.groups, plan.sharded):
            groups[i] = (start, count, sharded)
            if sharded:
                unit_cached[start : start + count] = [True] * count

        # Progress totals count executed subtasks plus whole-task cache
        # hits: a 2-Δ plan with one Δ fully cached and one sharded 4
        # ways reports 5 units, 1 of them cached.
        unit_results: list = [MISS] * len(units)
        unit_keys: list[str | None] = [None] * len(units)
        if self.cache is not None:
            for j, unit in enumerate(units):
                if unit_cached[j]:
                    unit_keys[j] = unit.cache_key(fingerprint)
                    unit_results[j] = self.cache.get(unit_keys[j])
        to_run = [j for j in range(len(units)) if unit_results[j] is MISS]

        progress_total = hits + len(units)
        self.progress.on_start(progress_total)
        done = progress_total - len(to_run)
        if done:
            self.progress.on_advance(done, progress_total, cached=True)

        state = _PlanState(
            tasks=tasks,
            parts=parts,
            keys=keys,
            missing=missing,
            narrowed=narrowed,
            pending=pending,
            groups=groups,
            units=units,
            unit_results=unit_results,
            unit_keys=unit_keys,
            to_run=to_run,
            progress_total=progress_total,
            fingerprint=fingerprint,
        )
        if to_run:
            counter = {"done": done}
            lock = threading.Lock()

            def tick(n: int) -> None:
                with lock:
                    counter["done"] += n
                    done_now = counter["done"]
                self.progress.on_advance(done_now, progress_total)

            state.tick = tick
        return state

    def _finish(self, state: _PlanState, fresh: Sequence) -> list:
        """Store the backend's fresh unit results, merge shards, split
        fused results into their per-measure cache entries, and assemble
        every task's answer in task order."""
        tasks, parts = state.tasks, state.parts
        unit_results, unit_keys = state.unit_results, state.unit_keys
        for j, value in zip(state.to_run, fresh):
            unit_results[j] = value
            if unit_keys[j] is not None and self.cache is not None:
                self.cache.put(
                    unit_keys[j], value, weight=state.units[j].cache_weight
                )

        for i in state.pending:
            start, count, sharded = state.groups[i]
            task = state.narrowed[i]
            if sharded:
                raw = task.merge_shards(unit_results[start : start + count])
            else:
                raw = unit_results[start]
            fresh_parts = task.split_result(raw)
            if state.missing[i] is None:
                # Cache off: the narrowed task is the task itself.
                parts[i] = fresh_parts
            else:
                # Per-result weights ride along so the disk store's
                # eviction sweep knows each measure's recompute cost.
                weights = tasks[i].result_weights()
                for j, part in zip(state.missing[i], fresh_parts):
                    parts[i][j] = part
                    self.cache.put(state.keys[i][j], part, weight=weights[j])

        # The aggregated series the run materialized stay in the bounded
        # process-wide memo (repro.graphseries.aggregate_cached) on
        # purpose: validation and one-shot follow-ups re-read the series
        # a sweep just built.  Callers wanting the memory back call
        # clear_aggregate_cache().

        self.progress.on_finish(state.progress_total)
        return [tasks[i].assemble(parts[i]) for i in range(len(tasks))]

    def run(
        self,
        stream: LinkStream,
        tasks: Sequence[DeltaTask],
        *,
        shards: int | str | None = None,
        cancel: CancelToken | None = None,
    ) -> list:
        """Evaluate every task on ``stream``; ``results[i]`` matches
        ``tasks[i]``.  Cached results are never recomputed: each task's
        sub-results (one per measure for fused tasks) are probed and
        stored individually, and tasks with partial hits are narrowed to
        exactly their missing measures before execution.

        ``shards`` overrides the engine's shard policy for this run (see
        the class docstring); sharded or not, the returned results are
        bit-identical.  ``cancel`` defaults to the calling thread's
        :func:`~repro.engine.cancel.cancel_scope` token, so deadlines set
        at a request boundary reach every nested sweep.
        """
        state = self._prepare(stream, list(tasks), shards)
        if cancel is None:
            cancel = current_cancel_token()
        fresh: list = []
        if state.to_run:
            fresh = self.backend.run(
                stream, state.run_units, tick=state.tick, cancel=cancel
            )
        return self._finish(state, fresh)

    def submit(
        self,
        stream: LinkStream,
        tasks: Sequence[DeltaTask],
        *,
        shards: int | str | None = None,
        cancel: CancelToken | None = None,
    ) -> EngineFuture:
        """Like :meth:`run`, but non-blocking: cache probing happens now
        (synchronously — it is cheap), execution is queued, and the
        returned :class:`EngineFuture` resolves from the backend's pool
        callbacks.  A fully-cached plan returns an already-done future.

        Requires a backend with ``submit_plan`` (the ``async`` backend);
        other backends fall back to blocking in this call, preserving
        the future-shaped API.
        """
        state = self._prepare(stream, list(tasks), shards)
        if cancel is None:
            cancel = current_cancel_token()
        future = EngineFuture()
        if not state.to_run:
            future._complete(self._finish(state, []))
            return future

        submit_plan = getattr(self.backend, "submit_plan", None)
        if submit_plan is None:
            try:
                fresh = self.backend.run(
                    stream, state.run_units, tick=state.tick, cancel=cancel
                )
                future._complete(self._finish(state, fresh))
            except BaseException as exc:
                future._fail(exc)
            return future

        handle = submit_plan(
            stream, state.run_units, tick=state.tick, cancel=cancel
        )

        def _on_plan_done(done_handle) -> None:
            try:
                fresh = done_handle.result(timeout=0)
                future._complete(self._finish(state, fresh))
            except BaseException as exc:
                future._fail(exc)

        handle.add_done_callback(_on_plan_done)
        return future

    def close(self) -> None:
        """Release backend workers (the cache stays usable)."""
        self.backend.close()

    def __enter__(self) -> "SweepEngine":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:
        return (
            f"SweepEngine(backend={self.backend!r}, cache={self.cache!r}, "
            f"shards={self.shards!r})"
        )


def cache_max_bytes_from_env(environ=None) -> int | None:
    """The ``REPRO_CACHE_MAX_BYTES`` disk-store cap, validated.

    Shared by every consumer of the variable (the default engine, the
    CLI's engine builder, ``repro cache``), so a malformed value fails
    the same clean way everywhere.
    """
    env = os.environ if environ is None else environ
    text = env.get(CACHE_MAX_BYTES_ENV_VAR) or None
    if text is None:
        return None
    try:
        return int(text)
    except ValueError:
        raise EngineError(
            f"bad {CACHE_MAX_BYTES_ENV_VAR} value {text!r}: "
            "expected a byte count"
        ) from None


def engine_from_env(environ=None) -> SweepEngine:
    """Build an engine from ``REPRO_ENGINE`` / ``REPRO_CACHE_DIR`` /
    ``REPRO_CACHE_MAX_BYTES`` / ``REPRO_SHARDS``."""
    env = os.environ if environ is None else environ
    cache_dir = env.get(CACHE_DIR_ENV_VAR) or None
    return SweepEngine(
        env.get(ENGINE_ENV_VAR) or None,
        cache=SweepCache.build(
            disk_dir=cache_dir,
            disk_max_bytes=cache_max_bytes_from_env(env),
        ),
        shards=env.get(SHARDS_ENV_VAR) or None,
    )


_default_engine: SweepEngine | None = None


def default_engine() -> SweepEngine:
    """The process-wide engine, built from the environment on first use."""
    global _default_engine
    if _default_engine is None:
        _default_engine = engine_from_env()
    return _default_engine


def set_default_engine(engine: SweepEngine | None) -> None:
    """Replace the process-wide engine (``None`` re-reads the environment
    on next use)."""
    global _default_engine
    _default_engine = engine


def resolve_engine(engine: SweepEngine | str | None) -> SweepEngine:
    """The engine a sweep should use: an instance as-is, a backend name
    as a fresh cached engine, ``None`` as the process default."""
    if engine is None:
        return default_engine()
    if isinstance(engine, SweepEngine):
        return engine
    return SweepEngine(engine, cache=SweepCache.build())


@contextmanager
def engine_scope(engine: SweepEngine | str | None) -> Iterator[SweepEngine]:
    """Resolve ``engine`` for the duration of one analysis call.

    Sweep entry points accept an engine instance, a backend name, or
    ``None``.  A name means "a private engine for this call": it is
    built once here — so refinement rounds and repeated internal sweeps
    share its cache — and its worker pool is closed on exit.  Instances
    and the process default are passed through untouched; their
    lifetime belongs to the caller.
    """
    owns = not (engine is None or isinstance(engine, SweepEngine))
    resolved = resolve_engine(engine)
    try:
        yield resolved
    finally:
        if owns:
            resolved.close()
