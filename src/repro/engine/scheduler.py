"""The sweep engine: plan in, results out.

:class:`SweepEngine` is the seam between the sweep callers
(:func:`~repro.core.saturation.occupancy_method` and friends) and the
execution machinery.  ``run(stream, tasks)``:

1. probes the :class:`~repro.engine.cache.SweepCache` for every task
   (keyed on the stream fingerprint + task parameters),
2. hands only the misses to the :class:`ExecutionBackend`,
3. stores the fresh results and returns everything in task order.

The process-wide **default engine** is what sweeps use when no engine is
passed explicitly.  It is configured from the environment on first use:

* ``REPRO_ENGINE`` — backend spec, e.g. ``serial`` (default), ``thread``,
  ``process``, or ``thread:8`` to pin the worker count;
* ``REPRO_CACHE_DIR`` — adds a persistent on-disk result store.

An in-memory cache is always on for the default engine: results are
immutable and deterministic, so reuse is free correctness-wise and turns
refinement rounds, stability re-runs, and repeated interactive sweeps
into lookups.
"""

from __future__ import annotations

import os
from collections.abc import Iterator, Sequence
from contextlib import contextmanager

from repro.engine.backends import ExecutionBackend, get_backend
from repro.engine.cache import MISS, SweepCache
from repro.engine.progress import NULL_PROGRESS, ProgressListener
from repro.engine.tasks import DeltaTask
from repro.linkstream.stream import LinkStream

#: Environment variable selecting the default engine's backend.
ENGINE_ENV_VAR = "REPRO_ENGINE"
#: Environment variable adding a disk store to the default engine.
CACHE_DIR_ENV_VAR = "REPRO_CACHE_DIR"


class SweepEngine:
    """Executes sweep plans through a backend, behind a result cache.

    Parameters
    ----------
    backend:
        An :class:`ExecutionBackend`, a backend name (``"serial"``,
        ``"thread"``, ``"process"``, optionally ``"name:jobs"``), or
        ``None`` for serial.
    cache:
        A :class:`SweepCache`, or ``None`` to disable caching entirely.
    jobs:
        Worker count when ``backend`` is given by name.
    progress:
        A :class:`ProgressListener` notified as tasks complete.
    """

    def __init__(
        self,
        backend: str | ExecutionBackend | None = None,
        *,
        cache: SweepCache | None = None,
        jobs: int | None = None,
        progress: ProgressListener | None = None,
    ) -> None:
        self.backend = get_backend(backend, jobs=jobs)
        self.cache = cache
        self.progress = progress if progress is not None else NULL_PROGRESS

    def run(self, stream: LinkStream, tasks: Sequence[DeltaTask]) -> list:
        """Evaluate every task on ``stream``; ``results[i]`` matches
        ``tasks[i]``.  Cached results are never recomputed."""
        tasks = list(tasks)
        total = len(tasks)
        self.progress.on_start(total)
        if not tasks:
            self.progress.on_finish(total)
            return []

        results: list = [MISS] * total
        pending: list[int] = []
        keys: list[str | None] = [None] * total
        if self.cache is not None:
            fingerprint = stream.fingerprint()
            for i, task in enumerate(tasks):
                keys[i] = task.cache_key(fingerprint)
                results[i] = self.cache.get(keys[i])
                if results[i] is MISS:
                    pending.append(i)
        else:
            pending = list(range(total))

        done = total - len(pending)
        if done:
            self.progress.on_advance(done, total, cached=True)

        if pending:
            counter = {"done": done}

            def tick(n: int) -> None:
                counter["done"] += n
                self.progress.on_advance(counter["done"], total)

            fresh = self.backend.run(
                stream, [tasks[i] for i in pending], tick=tick
            )
            for i, value in zip(pending, fresh):
                results[i] = value
                if self.cache is not None:
                    self.cache.put(keys[i], value)

        self.progress.on_finish(total)
        return results

    def close(self) -> None:
        """Release backend workers (the cache stays usable)."""
        self.backend.close()

    def __enter__(self) -> "SweepEngine":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:
        return f"SweepEngine(backend={self.backend!r}, cache={self.cache!r})"


def engine_from_env(environ=None) -> SweepEngine:
    """Build an engine from ``REPRO_ENGINE`` / ``REPRO_CACHE_DIR``."""
    env = os.environ if environ is None else environ
    cache_dir = env.get(CACHE_DIR_ENV_VAR) or None
    return SweepEngine(
        env.get(ENGINE_ENV_VAR) or None,
        cache=SweepCache.build(disk_dir=cache_dir),
    )


_default_engine: SweepEngine | None = None


def default_engine() -> SweepEngine:
    """The process-wide engine, built from the environment on first use."""
    global _default_engine
    if _default_engine is None:
        _default_engine = engine_from_env()
    return _default_engine


def set_default_engine(engine: SweepEngine | None) -> None:
    """Replace the process-wide engine (``None`` re-reads the environment
    on next use)."""
    global _default_engine
    _default_engine = engine


def resolve_engine(engine: SweepEngine | str | None) -> SweepEngine:
    """The engine a sweep should use: an instance as-is, a backend name
    as a fresh cached engine, ``None`` as the process default."""
    if engine is None:
        return default_engine()
    if isinstance(engine, SweepEngine):
        return engine
    return SweepEngine(engine, cache=SweepCache.build())


@contextmanager
def engine_scope(engine: SweepEngine | str | None) -> Iterator[SweepEngine]:
    """Resolve ``engine`` for the duration of one analysis call.

    Sweep entry points accept an engine instance, a backend name, or
    ``None``.  A name means "a private engine for this call": it is
    built once here — so refinement rounds and repeated internal sweeps
    share its cache — and its worker pool is closed on exit.  Instances
    and the process default are passed through untouched; their
    lifetime belongs to the caller.
    """
    owns = not (engine is None or isinstance(engine, SweepEngine))
    resolved = resolve_engine(engine)
    try:
        yield resolved
    finally:
        if owns:
            resolved.close()
