"""The measure layer: what a sweep evaluates at each Δ — as plugins.

A :class:`MeasureSpec` names **one quantity** computable from the series
aggregated at one Δ.  The contract is declarative: a measure is a frozen
dataclass whose fields *are* its parameter schema, and it declares

* how it feeds — :attr:`~MeasureSpec.scans` measures contribute a scan
  consumer via :meth:`~MeasureSpec.make_collector` (a trip collector or
  a state accumulator riding the single backward pass);
  :attr:`~MeasureSpec.has_payload` measures do per-series work via
  :meth:`~MeasureSpec.series_payload` (carried by one shard when the
  evaluation is sharded);
* its cache identity — :meth:`~MeasureSpec.token` is derived
  automatically from the dataclass fields and hashed into the measure's
  per-Δ cache key (:attr:`~MeasureSpec.scoring_fields` names pure
  post-processing parameters excluded from the shard-collector identity,
  so shard entries are shared across sweeps that differ only in
  scoring);
* its shard-merge rule — :meth:`~MeasureSpec.finalize` receives one
  collector per destination shard (length 1 when unsharded) and must
  fold them into the per-Δ result, so sharded and unsharded paths are
  bit-identical by construction;
* its eviction class — :attr:`~MeasureSpec.cache_weight` ranks how
  expensive the result is to recompute; the disk store sweeps
  cheap-to-recompute entries first.

Measures register by name into :data:`MEASURE_REGISTRY` through
:func:`register_measure` — the same API third-party code uses at
runtime, no engine changes required: the scheduler's multi-result
protocol (``result_keys`` / ``narrow`` / ``split_result`` /
``assemble``) and the within-Δ sharding are generic over the registry.
Registered names resolve everywhere a measure is accepted —
``occupancy_method(measures=...)``, ``analyze_stream(measures=...)``,
and the CLI's ``--measures name[:k=v,...]`` (see
:func:`parse_measures_arg`).

Writing a measure
-----------------
Subclass :class:`MeasureSpec` as a frozen dataclass, give every
parameter a default (the registry resolves bare names by instantiating
with defaults), and register it::

    from dataclasses import dataclass
    from repro.engine import MeasureSpec, register_measure

    @register_measure
    @dataclass(frozen=True)
    class HopCount(MeasureSpec):
        \"\"\"Total minimal-trip hops at each Δ.\"\"\"

        scale: float = 1.0        # a parameter: part of the cache key

        scans = True              # feeds on the backward scan

        @property
        def name(self) -> str:
            return "hop_count"

        def make_collector(self):
            from repro.temporal import CountingCollector
            return CountingCollector()

        def finalize(self, delta, geometry, payload, collectors):
            merged = self.make_collector()
            for collector in collectors:
                merged.merge(collector)        # the shard-merge rule
            return self.scale * merged.num_trips

    result = occupancy_method(stream, measures=("hop_count",))
    result.companions["hop_count"]             # one value per Δ

The collector must implement the scan's consumer protocol (``record``
for trip collectors, ``observe_row``/``close_run`` — optionally
``begin`` — for state accumulators) plus in-place ``merge`` and
``empty`` when the measure should shard.  Collectors may additionally
implement the batched feeds (``record_batch`` / ``observe_rows``) to
receive whole windows from the batched scan kernel in one call;
without them the kernel adapts back to per-source ``record`` /
per-row ``observe_row`` calls in the classic order, so plain
collectors keep working unchanged.  ``finalize`` must fold into
*fresh* accumulators: shard collectors may live in the sweep cache,
which must stay pristine.
"""

from __future__ import annotations

import dataclasses
import typing
import warnings
from abc import ABC, abstractmethod
from collections.abc import Sequence
from dataclasses import dataclass, field
from typing import Any

import numpy as np

from repro.core.occupancy import OccupancyCollector
from repro.core.uniformity import score_distribution
from repro.graphseries.metrics import component_sizes, series_metrics
from repro.temporal.collectors import TripListCollector
from repro.temporal.reachability import (
    DistanceTotals,
    EarliestArrivalAccumulator,
)
from repro.temporal.trips import TripSet
from repro.utils.errors import EngineError


@dataclass(frozen=True)
class SeriesGeometry:
    """Shape of the aggregated series, identical across shards of one Δ."""

    num_nodes: int
    num_windows: int
    num_nonempty_windows: int


def _freeze(value: Any) -> Any:
    """A hashable, stable-``repr`` stand-in for a parameter value."""
    if isinstance(value, list):
        return tuple(_freeze(item) for item in value)
    return value


@dataclass(frozen=True)
class MeasureSpec(ABC):
    """One quantity measurable from the series aggregated at one Δ.

    Subclasses are frozen dataclasses (hashable, picklable) whose fields
    form the measure's parameter schema.  A measure either feeds on the
    backward scan (it contributes a collector / accumulator via
    :meth:`make_collector`) or on the series itself
    (:meth:`series_payload`), or both; :meth:`finalize` assembles the
    final per-Δ result from the collected state.  Finalization always
    goes through the *merge* shape — a list of collectors, one per shard
    (length 1 for an unsharded evaluation) — so sharded and unsharded
    paths are bit-identical by construction.
    """

    @property
    @abstractmethod
    def name(self) -> str:
        """Unique short name of the measure (``occupancy``, ``trips``,
        ...); the key under which its result is emitted."""

    #: Whether the measure contributes a collector to the backward scan.
    #: (A class attribute, not a dataclass field: it is part of the
    #: measure's *kind*, not of its parameters.)
    scans = False
    #: Whether the measure needs per-series (non-scan) work.  Carried by
    #: a single shard when the evaluation is sharded.
    has_payload = False
    #: Field names that only affect pure post-processing (scoring), not
    #: what the scan collector accumulates; excluded from
    #: :meth:`collector_token` so shard cache entries are shared across
    #: sweeps differing only in scoring.  (A class attribute — no
    #: annotation — so it never becomes a dataclass field itself.)
    scoring_fields = ()
    #: Relative cost of recomputing this measure's cached results; the
    #: disk store's LRU sweep evicts lighter (cheaper) entries first.
    cache_weight = 1.0

    def params(self) -> dict[str, Any]:
        """The declarative parameter mapping — the dataclass fields."""
        return {
            f.name: getattr(self, f.name) for f in dataclasses.fields(self)
        }

    def token(self) -> tuple:
        """Full result identity, derived from the parameter schema.

        Sorted ``(field, value)`` pairs of every dataclass field —
        automatically part of the measure's cache key, so a plugin
        measure never has to hand-roll key material for its parameters.
        """
        return tuple(
            sorted((key, _freeze(value)) for key, value in self.params().items())
        )

    def collector_token(self) -> tuple:
        """Scan-collector identity — :meth:`token` minus the
        :attr:`scoring_fields`."""
        skip = set(self.scoring_fields)
        return tuple(
            sorted(
                (key, _freeze(value))
                for key, value in self.params().items()
                if key not in skip
            )
        )

    def make_collector(self):
        """A fresh scan consumer for one evaluation (``None`` when the
        measure does not feed on the scan)."""
        return None

    def series_payload(self, series) -> Any:
        """Non-scan work on the aggregated series (``None`` if none)."""
        return None

    @abstractmethod
    def finalize(
        self,
        delta: float,
        geometry: SeriesGeometry,
        payload: Any,
        collectors: list,
    ) -> Any:
        """Assemble the per-Δ result from shard collectors + payload.

        ``collectors`` holds one collector per shard, in shard order
        (empty when :attr:`scans` is false).  Implementations must fold
        into *fresh* accumulators — shard collectors may live in the
        sweep cache, which must stay pristine.
        """


# ---------------------------------------------------------------------------
# The registry: measures resolvable by name, built-in and user-defined.
# ---------------------------------------------------------------------------

#: Measure classes by name.  Populated by :func:`register_measure` —
#: the built-ins below register exactly like third-party plugins.
MEASURE_REGISTRY: dict[str, type[MeasureSpec]] = {}


def register_measure(cls=None, *, replace: bool = False):
    """Register a :class:`MeasureSpec` subclass under its name.

    Usable as a plain call (``register_measure(MyMeasure)``) or a class
    decorator (``@register_measure``).  The class must be instantiable
    with no arguments — every parameter needs a default — because bare
    names (``measures=("trips",)``, CLI ``--measures trips``) resolve by
    instantiating with defaults.  Registering the same class again is a
    no-op; registering a *different* class under an occupied name raises
    :class:`~repro.utils.errors.EngineError` unless ``replace=True``.

    Returns the class, so registration composes with other decorators.
    """

    def apply(cls):
        if not (isinstance(cls, type) and issubclass(cls, MeasureSpec)):
            raise EngineError(
                f"register_measure expects a MeasureSpec subclass, got {cls!r}"
            )
        try:
            probe = cls()
        except TypeError as exc:
            raise EngineError(
                f"measure class {cls.__name__} must be instantiable with no "
                f"arguments (give every parameter a default): {exc}"
            ) from exc
        name = probe.name
        if not isinstance(name, str) or not name:
            raise EngineError(
                f"measure class {cls.__name__} must expose a non-empty "
                f"string name, got {name!r}"
            )
        current = MEASURE_REGISTRY.get(name)
        if current is not None and current is not cls and not replace:
            raise EngineError(
                f"measure name {name!r} is already registered to "
                f"{current.__name__}; pass replace=True to override it"
            )
        MEASURE_REGISTRY[name] = cls
        return cls

    return apply if cls is None else apply(cls)


def unregister_measure(name: str) -> None:
    """Remove a measure from the registry (no-op for unknown names)."""
    MEASURE_REGISTRY.pop(name, None)


# ---------------------------------------------------------------------------
# Entry-point discovery: installed packages register without being imported.
# ---------------------------------------------------------------------------

#: The ``importlib.metadata`` entry-point group scanned for third-party
#: measures.  A distribution declares, e.g. in ``pyproject.toml``::
#:
#:     [project.entry-points."repro.measures"]
#:     hop_count = "mypkg.measures:HopCount"
#:
#: The target may be a :class:`MeasureSpec` subclass (registered
#: directly) or a zero-argument callable (invoked as a registration
#: hook, for packages registering several measures at once).
ENTRY_POINT_GROUP = "repro.measures"

#: ``(entry point name, error message)`` for every entry point that
#: failed to load on the last scan.  Broken plugins never break the
#: registry — they are recorded here, warned about once, and skipped.
ENTRY_POINT_FAILURES: list[tuple[str, str]] = []

_entry_points_loaded = False


def _entry_points():
    """The raw entry points of :data:`ENTRY_POINT_GROUP` (separated out
    so tests can monkeypatch the environment's installed packages)."""
    from importlib import metadata

    return list(metadata.entry_points(group=ENTRY_POINT_GROUP))


def load_entry_point_measures(*, reload: bool = False) -> list[str]:
    """Scan the :data:`ENTRY_POINT_GROUP` entry points once per process.

    Runs automatically at registry first use (:func:`available_measures`,
    :func:`measure_schema`, :func:`build_measure`), so merely *installing*
    a measure package makes its names resolvable — no import side effects
    required in user code.  Returns the entry-point names that loaded;
    failures land in :data:`ENTRY_POINT_FAILURES` with a warning instead
    of crashing the registry (one broken plugin must not take down every
    analysis).
    """
    global _entry_points_loaded
    if _entry_points_loaded and not reload:
        return []
    _entry_points_loaded = True
    ENTRY_POINT_FAILURES.clear()
    loaded: list[str] = []
    try:
        points = _entry_points()
    except Exception as exc:  # metadata itself unusable: degrade quietly
        ENTRY_POINT_FAILURES.append(("<scan>", str(exc)))
        return loaded
    for point in points:
        try:
            target = point.load()
            if isinstance(target, type) and issubclass(target, MeasureSpec):
                register_measure(target)
            elif callable(target):
                target()
            else:
                raise EngineError(
                    f"entry point target {target!r} is neither a "
                    "MeasureSpec subclass nor a callable registration hook"
                )
        except Exception as exc:
            ENTRY_POINT_FAILURES.append((point.name, str(exc)))
            warnings.warn(
                f"broken measure entry point {point.name!r} "
                f"({ENTRY_POINT_GROUP}): {exc}",
                RuntimeWarning,
                stacklevel=2,
            )
        else:
            loaded.append(point.name)
    return loaded


def available_measures() -> list[str]:
    """Measure names accepted by name (CLI ``--measures`` and friends)."""
    load_entry_point_measures()
    return sorted(MEASURE_REGISTRY)


def measure_schema(measure: "str | type[MeasureSpec]") -> dict[str, type]:
    """Parameter schema of a measure: field name -> annotated type.

    Accepts a registered name or a :class:`MeasureSpec` subclass.  This
    is what the CLI's ``name:key=value`` parameter coercion runs on —
    and what its error messages print.
    """
    if isinstance(measure, str):
        load_entry_point_measures()
        if measure not in MEASURE_REGISTRY:
            raise EngineError(
                f"unknown measure {measure!r}; available: {available_measures()}"
            )
        measure = MEASURE_REGISTRY[measure]
    hints = typing.get_type_hints(measure)
    return {
        f.name: hints.get(f.name, str) for f in dataclasses.fields(measure)
    }


def describe_measures() -> list[dict]:
    """Introspection records for every registered measure, sorted by
    name — what ``repro measures list`` prints.

    Each record carries the measure's name, class, one-line summary
    (the class docstring's first line), feeding mode flags, and its
    declarative parameter schema as ``{"name", "type", "default"}``
    dicts in field order.
    """
    records = []
    for name in available_measures():
        cls = MEASURE_REGISTRY[name]
        schema = measure_schema(cls)
        defaults = cls().params()
        doc = (cls.__doc__ or "").strip().splitlines()
        records.append(
            {
                "name": name,
                "class": f"{cls.__module__}.{cls.__qualname__}",
                "summary": doc[0] if doc else "",
                "scans": bool(cls.scans),
                "has_payload": bool(cls.has_payload),
                "params": [
                    {
                        "name": key,
                        "type": getattr(kind, "__name__", str(kind)),
                        "default": defaults[key],
                    }
                    for key, kind in schema.items()
                ],
            }
        )
    return records


def _describe_schema(name: str, schema: dict[str, type]) -> str:
    if not schema:
        return f"measure {name!r} takes no parameters"
    rendered = ", ".join(
        f"{key}=<{getattr(kind, '__name__', str(kind))}>"
        for key, kind in schema.items()
    )
    return f"measure {name!r} parameters: {rendered}"


def _coerce_param(name: str, key: str, text: str, kind) -> Any:
    """One ``key=value`` CLI parameter, coerced to its annotated type."""
    origin = typing.get_origin(kind)
    try:
        if origin is tuple:
            item = (typing.get_args(kind) or (str,))[0]
            return tuple(
                _coerce_param(name, key, part, item)
                for part in text.split("+")
                if part
            )
        if kind is bool:
            lowered = text.strip().lower()
            if lowered in ("1", "true", "yes", "on"):
                return True
            if lowered in ("0", "false", "no", "off"):
                return False
            raise ValueError(f"expected a boolean, got {text!r}")
        if kind is int:
            return int(text)
        if kind is float:
            return float(text)
        if kind is str:
            return text
    except ValueError as exc:
        raise EngineError(
            f"bad value for measure parameter {name}:{key}={text!r}: {exc}"
        ) from None
    raise EngineError(
        f"measure parameter {name}:{key} has unsupported type "
        f"{getattr(kind, '__name__', kind)!r} for text parsing; pass a "
        f"{MEASURE_REGISTRY.get(name, MeasureSpec).__name__} instance instead"
    )


def build_measure(name: str, params: "dict[str, str] | None" = None) -> MeasureSpec:
    """Instantiate a registered measure from text parameters.

    ``params`` maps field names to their textual values (as parsed from
    ``name:key=value,...``); values are coerced through the measure's
    declared parameter schema.  Unknown names and unknown or malformed
    parameters raise :class:`~repro.utils.errors.EngineError` with the
    available alternatives spelled out.
    """
    load_entry_point_measures()
    if name not in MEASURE_REGISTRY:
        raise EngineError(
            f"unknown measure {name!r}; available: {available_measures()}"
        )
    cls = MEASURE_REGISTRY[name]
    if not params:
        return cls()
    schema = measure_schema(cls)
    kwargs: dict[str, Any] = {}
    for key, text in params.items():
        if key not in schema:
            raise EngineError(
                f"unknown parameter {key!r} for measure {name!r}; "
                + _describe_schema(name, schema)
            )
        kwargs[key] = _coerce_param(name, key, text, schema[key])
    return cls(**kwargs)


def _parse_param_item(name: str, item: str) -> tuple[str, str]:
    key, sep, value = item.partition("=")
    key = key.strip()
    if not sep or not key:
        raise EngineError(
            f"malformed measure parameter {item!r} for {name!r}: expected "
            f"key=value ('{name}:key=value'); "
            + _describe_schema(name, measure_schema(name))
        )
    return key, value.strip()


def parse_measure_spec(text: str) -> MeasureSpec:
    """One measure from a ``name[:key=value[,key=value...]]`` spec string.

    The textual little language behind the CLI's ``--measures`` (and
    accepted anywhere a measure name is: ``measures=("trips:max_samples=
    64",)``).  Values coerce through the measure's parameter schema;
    tuple-typed parameters separate items with ``+``
    (``occupancy:methods=mk+std``).
    """
    specs = parse_measures_arg(text)
    if len(specs) != 1:
        raise EngineError(
            f"expected a single measure spec, got {len(specs)} in {text!r}"
        )
    return specs[0]


def parse_measures_arg(text: str) -> tuple[MeasureSpec, ...]:
    """A measure set from the CLI's ``--measures`` argument.

    Grammar: comma-separated measures, each ``name`` or
    ``name:key=value`` with further ``key=value`` items riding the
    following commas — ``occupancy,trips:max_samples=64,seed=3,components``
    is ``occupancy``, ``trips(max_samples=64, seed=3)``, ``components``.
    A token containing ``=`` but no ``:`` continues the preceding
    measure's parameter list.
    """
    groups: list[tuple[str, dict[str, str]]] = []
    for token in (piece.strip() for piece in text.split(",")):
        if not token:
            continue
        if ":" in token:
            name, _, first = token.partition(":")
            name = name.strip()
            if not name:
                raise EngineError(
                    f"malformed measure spec {token!r}: expected "
                    "name[:key=value,...]"
                )
            params: dict[str, str] = {}
            groups.append((name, params))
            first = first.strip()
            if first:
                key, value = _parse_param_item(name, first)
                params[key] = value
        elif "=" in token:
            if not groups:
                raise EngineError(
                    f"measure parameter {token!r} appears before any "
                    "measure name; expected name[:key=value,...]"
                )
            name, params = groups[-1]
            key, value = _parse_param_item(name, token)
            params[key] = value
        else:
            groups.append((token, {}))
    if not groups:
        raise EngineError("--measures needs at least one measure name")
    return tuple(build_measure(name, params) for name, params in groups)


def resolve_measure(spec: "str | MeasureSpec") -> MeasureSpec:
    """A :class:`MeasureSpec` from a spec string or an instance.

    Strings go through :func:`parse_measure_spec`, so both bare
    registered names (``"trips"``) and parameterized specs
    (``"trips:max_samples=64"``) resolve; instances return as-is.
    """
    if isinstance(spec, MeasureSpec):
        return spec
    if isinstance(spec, str):
        return parse_measure_spec(spec)
    raise EngineError(
        f"expected a measure name or MeasureSpec instance, got {spec!r}"
    )


def normalize_measures(
    measures: "Sequence[str | MeasureSpec] | str | MeasureSpec",
) -> tuple[MeasureSpec, ...]:
    """Resolve a measure-set spec into a tuple of unique measures.

    Accepts a single name/instance or a sequence; names resolve through
    :data:`MEASURE_REGISTRY`.  Duplicate measure names are rejected —
    one fused task emits exactly one result per name.
    """
    if isinstance(measures, (str, MeasureSpec)):
        measures = (measures,)
    resolved = tuple(resolve_measure(m) for m in measures)
    if not resolved:
        raise EngineError("a measure set needs at least one measure")
    names = [m.name for m in resolved]
    if len(set(names)) != len(names):
        raise EngineError(f"duplicate measure names in set: {names}")
    return resolved


# ---------------------------------------------------------------------------
# Built-in measures.
# ---------------------------------------------------------------------------


@register_measure
@dataclass(frozen=True)
class OccupancyMeasure(MeasureSpec):
    """Occupancy-rate distribution of all minimal trips, scored against
    the uniform density — the occupancy method's per-Δ quantity
    (Section 4), finalized as a
    :class:`~repro.core.saturation.SweepPoint`."""

    methods: tuple[str, ...] = ("mk",)
    bins: int = 4096
    exact: bool = False

    scans = True
    has_payload = False
    # Scoring methods deliberately excluded from the collector identity:
    # the collector is the same whatever statistic scores it at finalize
    # time.
    scoring_fields = ("methods",)

    @property
    def name(self) -> str:
        return "occupancy"

    def make_collector(self) -> OccupancyCollector:
        return OccupancyCollector(bins=self.bins, exact=self.exact)

    def finalize(self, delta, geometry, payload, collectors):
        from repro.core.saturation import SweepPoint

        merged = OccupancyCollector(bins=self.bins, exact=self.exact)
        for collector in collectors:
            merged.merge(collector)
        distribution = merged.distribution()
        return SweepPoint(
            delta=float(delta),
            num_windows=geometry.num_windows,
            num_nonempty_windows=geometry.num_nonempty_windows,
            num_trips=merged.num_trips,
            distribution=distribution,
            scores=score_distribution(distribution, self.methods),
        )


@register_measure
@dataclass(frozen=True)
class ClassicalMeasure(MeasureSpec):
    """Classical parameters of the aggregated series (Section 3): the
    snapshot means plus the distance statistics, finalized as a
    :class:`~repro.core.classical.ClassicalPoint`.

    The distance sums ride the same backward scan as every other
    measure, via a :class:`~repro.temporal.reachability.DistanceTotals`
    accumulator; the snapshot means are per-series payload work.
    """

    scans = True
    has_payload = True

    @property
    def name(self) -> str:
        return "classical"

    def make_collector(self) -> DistanceTotals:
        return DistanceTotals()

    def series_payload(self, series):
        return series_metrics(series)

    def finalize(self, delta, geometry, payload, collectors):
        from repro.core.classical import ClassicalPoint

        merged = DistanceTotals()
        for collector in collectors:
            merged.merge(collector)
        distances = merged.stats(geometry.num_nodes, geometry.num_windows)
        return ClassicalPoint(float(delta), payload, distances)


@register_measure
@dataclass(frozen=True)
class MetricsMeasure(MeasureSpec):
    """Snapshot metrics only — the classical parameters without the
    distance statistics, so no scan contribution at all.  Finalized as a
    distance-free :class:`~repro.core.classical.ClassicalPoint`."""

    scans = False
    has_payload = True
    # Payload-only and cheap: first in line for cache eviction.
    cache_weight = 0.25

    @property
    def name(self) -> str:
        return "metrics"

    def series_payload(self, series):
        return series_metrics(series)

    def finalize(self, delta, geometry, payload, collectors):
        from repro.core.classical import ClassicalPoint

        return ClassicalPoint(float(delta), payload, None)


@dataclass(frozen=True)
class TripSample:
    """Bounded sample of the minimal trips at one Δ, with exact totals.

    ``trips`` holds at most ``max_samples`` minimal trips in canonical
    ``(u, v, dep, arr)`` order, selected by the deterministic priority
    sketch of :func:`~repro.temporal.collectors.trip_priorities` — a
    uniform sample that is a pure function of the trip set, identical
    whatever the backend or shard layout.  The totals (``num_trips``,
    ``hops_total``, ``duration_total``) always count *every* minimal
    trip, exactly.
    """

    delta: float
    num_trips: int
    hops_total: int
    duration_total: float
    max_samples: int
    trips: TripSet = field(repr=False)

    @property
    def mean_hops(self) -> float:
        """Mean hop count over all minimal trips (not just the sample)."""
        return self.hops_total / self.num_trips if self.num_trips else float("nan")

    @property
    def mean_duration(self) -> float:
        """Mean duration in window counts over all minimal trips."""
        return (
            self.duration_total / self.num_trips
            if self.num_trips
            else float("nan")
        )

    def describe(self) -> str:
        return (
            f"{self.num_trips} minimal trips "
            f"({len(self.trips)} sampled, cap {self.max_samples}); "
            f"mean hops {self.mean_hops:.3f}, "
            f"mean duration {self.mean_duration:.3f} windows"
        )


@register_measure
@dataclass(frozen=True)
class TripsMeasure(MeasureSpec):
    """Bounded minimal-trip samples plus exact trip totals.

    Materializes Section 5's raw scan output — the minimal trips
    themselves, with their durations and hop counts — as a per-Δ
    :class:`TripSample`: at most ``max_samples`` trips retained through
    the capped :class:`~repro.temporal.collectors.TripListCollector`
    (reservoir-style bottom-k priority sketch, so the sample is
    identical across backends and shard layouts) alongside exact
    trip/hop/duration totals over the full population.
    """

    max_samples: int = 512
    seed: int = 0

    scans = True
    has_payload = False
    # Expensive to recompute (full scan + materialized samples): evicted
    # last from a capped disk store.
    cache_weight = 4.0

    def __post_init__(self) -> None:
        if self.max_samples < 1:
            raise EngineError("max_samples must be a positive integer")

    @property
    def name(self) -> str:
        return "trips"

    def make_collector(self) -> TripListCollector:
        return TripListCollector(max_trips=self.max_samples, seed=self.seed)

    def finalize(self, delta, geometry, payload, collectors):
        merged = TripListCollector(max_trips=self.max_samples, seed=self.seed)
        for collector in collectors:
            merged.merge(collector)
        sample = merged.trips()
        # Canonical order: the retained set is order-free (a bottom-k
        # sketch); sort by trip identity so equal samples are equal
        # arrays whatever the merge order was.
        order = np.lexsort((sample.arr, sample.dep, sample.v, sample.u))
        return TripSample(
            delta=float(delta),
            num_trips=merged.num_recorded,
            hops_total=merged.hops_total,
            duration_total=merged.duration_total,
            max_samples=self.max_samples,
            trips=TripSet(
                sample.u[order],
                sample.v[order],
                sample.dep[order],
                sample.arr[order],
                sample.hops[order],
                sample.durations[order],
            ),
        )


@dataclass(frozen=True)
class ComponentsPoint:
    """Component-size evidence of the series aggregated at one Δ.

    ``size_counts[s]`` is how many connected components of size ``s``
    appear across the nonempty windows (weak connectivity; with
    ``include_isolated`` every edge-free node counts as a size-1
    component of its window).
    """

    delta: float
    num_windows: int
    num_nonempty_windows: int
    include_isolated: bool
    size_counts: np.ndarray = field(repr=False)

    @property
    def num_components(self) -> int:
        """Total component count across the nonempty windows."""
        return int(self.size_counts.sum())

    @property
    def largest_size(self) -> int:
        """Largest component size seen in any window."""
        nonzero = np.flatnonzero(self.size_counts)
        return int(nonzero[-1]) if nonzero.size else 0

    @property
    def mean_components_per_window(self) -> float:
        """Mean component count over the nonempty windows."""
        if not self.num_nonempty_windows:
            return float("nan")
        return self.num_components / self.num_nonempty_windows

    @property
    def mean_size(self) -> float:
        """Mean component size over all counted components."""
        total = self.num_components
        if not total:
            return float("nan")
        sizes = np.arange(self.size_counts.size, dtype=np.int64)
        return int((sizes * self.size_counts).sum()) / total

    def describe(self) -> str:
        return (
            f"{self.num_components} components over "
            f"{self.num_nonempty_windows} nonempty windows; "
            f"largest {self.largest_size}, mean size {self.mean_size:.3f}"
        )


@register_measure
@dataclass(frozen=True)
class ComponentsMeasure(MeasureSpec):
    """Per-window component-size histograms of the aggregated series.

    Pure per-series (payload) work — no scan contribution — folding each
    nonempty window's weakly-connected component sizes into one
    histogram per Δ (:class:`ComponentsPoint`).  The fragmentation view
    the classical means compress away: the whole size distribution, not
    just the largest-component mean.
    """

    include_isolated: bool = False

    scans = False
    has_payload = True
    # Payload-only, cheaper than scan measures, dearer than bare means.
    cache_weight = 0.5

    @property
    def name(self) -> str:
        return "components"

    def series_payload(self, series):
        counts = np.zeros(series.num_nodes + 1, dtype=np.int64)
        for __, u, v in series.edge_groups():
            sizes = component_sizes(series.num_nodes, u, v)
            np.add.at(counts, sizes, 1)
            if self.include_isolated:
                touched = np.union1d(u, v).size
                counts[1] += series.num_nodes - touched
        return counts

    def finalize(self, delta, geometry, payload, collectors):
        return ComponentsPoint(
            delta=float(delta),
            num_windows=geometry.num_windows,
            num_nonempty_windows=geometry.num_nonempty_windows,
            include_isolated=self.include_isolated,
            size_counts=payload,
        )


@dataclass(frozen=True)
class ReachabilityPoint:
    """Per-pair earliest-arrival summaries of the series at one Δ.

    For every ordered pair ``(u, v)`` of distinct nodes:
    ``pair_reachable_steps[u, v]`` counts the departure steps from which
    ``u`` reaches ``v``; ``pair_distance_sum[u, v]`` sums the
    corresponding earliest-arrival distances in window counts
    (``arrival - departure + 1``); ``pair_hops_sum[u, v]`` sums the
    minimum hop counts.  All exact ``int64``, diagonal zeroed (the paper
    considers pairs of distinct nodes).
    """

    delta: float
    num_steps: int
    pair_reachable_steps: np.ndarray = field(repr=False)
    pair_distance_sum: np.ndarray = field(repr=False)
    pair_hops_sum: np.ndarray = field(repr=False)

    @property
    def num_nodes(self) -> int:
        return self.pair_reachable_steps.shape[0]

    @property
    def reachable_pairs(self) -> int:
        """Ordered pairs reachable from at least one departure step."""
        return int((self.pair_reachable_steps > 0).sum())

    def reachable_fraction(self, u: int, v: int) -> float:
        """Share of departure steps from which ``u`` reaches ``v``."""
        return int(self.pair_reachable_steps[u, v]) / self.num_steps

    def mean_distance(self, u: int, v: int) -> float:
        """Mean earliest-arrival distance of the pair, in window counts
        (``nan`` when the pair is never reachable)."""
        count = int(self.pair_reachable_steps[u, v])
        if not count:
            return float("nan")
        return int(self.pair_distance_sum[u, v]) / count

    def distance_stats(self):
        """The global :class:`~repro.temporal.reachability.DistanceStats`
        these per-pair sums refine — bit-identical to the ``classical``
        measure's distance statistics at the same Δ."""
        from repro.temporal.reachability import DistanceStats

        n = self.num_nodes
        count = int(self.pair_reachable_steps.sum())
        dist = int(self.pair_distance_sum.sum())
        hops = int(self.pair_hops_sum.sum())
        total_possible = n * (n - 1) * self.num_steps
        return DistanceStats(
            mean_distance_steps=dist / count if count else float("inf"),
            mean_distance_hops=hops / count if count else float("inf"),
            reachable_fraction=count / total_possible if total_possible else 0.0,
            reachable_count=count,
        )

    def describe(self) -> str:
        n = self.num_nodes
        possible = n * (n - 1)
        return (
            f"{self.reachable_pairs}/{possible} ordered pairs reachable; "
            f"mean distance "
            f"{self.distance_stats().mean_distance_steps:.3f} windows"
        )


@register_measure
@dataclass(frozen=True)
class ReachabilityMeasure(MeasureSpec):
    """Per-pair earliest-arrival summaries from the arrival matrix.

    Rides the backward scan through an
    :class:`~repro.temporal.reachability.EarliestArrivalAccumulator`:
    the same closed-form departure-run folding as the classical distance
    statistics, kept per ordered pair instead of summed globally.  The
    shard-merge rule is a plain column scatter — each destination shard
    owns disjoint arrival-matrix columns — so sharded results are
    bit-identical by construction.
    """

    scans = True
    has_payload = False
    # Scan-fed and n^2-sized: dearer to recompute than the scalar
    # measures, cheaper than materialized trip samples.
    cache_weight = 2.0

    @property
    def name(self) -> str:
        return "reachability"

    def make_collector(self) -> EarliestArrivalAccumulator:
        return EarliestArrivalAccumulator()

    def finalize(self, delta, geometry, payload, collectors):
        n = geometry.num_nodes
        reach = np.zeros((n, n), dtype=np.int64)
        dist = np.zeros((n, n), dtype=np.int64)
        hops = np.zeros((n, n), dtype=np.int64)
        for accumulator in collectors:
            if accumulator.cols is None:
                # The accumulator never saw a scan (empty consumer set
                # cannot happen for a scans=True measure) — defensive.
                continue
            reach[:, accumulator.cols] = accumulator.reach_steps
            dist[:, accumulator.cols] = accumulator.dist_sum
            hops[:, accumulator.cols] = accumulator.hops_sum
        np.fill_diagonal(reach, 0)
        np.fill_diagonal(dist, 0)
        np.fill_diagonal(hops, 0)
        return ReachabilityPoint(
            delta=float(delta),
            num_steps=geometry.num_windows,
            pair_reachable_steps=reach,
            pair_distance_sum=dist,
            pair_hops_sum=hops,
        )
