"""Execution backends: how a plan of :class:`DeltaTask`s actually runs.

Every backend takes ``(stream, tasks)`` and returns the per-task results
in task order — the contract that keeps γ bit-identical whatever the
execution strategy.  Three strategies are built in:

* :class:`SerialBackend` — a plain loop, the default; exactly today's
  behaviour and the reference the others are tested against.
* :class:`ThreadBackend` — a shared thread pool.  The numpy kernels
  release the GIL for long stretches (sorting, histogramming), so
  threads already overlap usefully without any pickling cost.
* :class:`ProcessBackend` — a process pool fed *chunks* of tasks, so the
  columnar event arrays are pickled once per chunk rather than once per
  Δ.  Best for large streams where each Δ evaluation dominates.

A fourth strategy serves long-lived processes:

* :class:`AsyncBackend` — a thread pool that *also* accepts plans
  non-blockingly (:meth:`~AsyncBackend.submit_plan` returns a
  :class:`PlanHandle` immediately); many concurrent submitters share the
  one bounded pool, their tasks interleaving FIFO, so no request can
  starve the others.  The analysis service's job queue runs on it.

Backends are picked by name (``get_backend("thread")``), optionally with
a worker count (``"process:4"``), and keep their pools alive across runs
so repeated sweeps amortize the startup cost.

Every ``run``/``submit_plan`` accepts an optional
:class:`~repro.engine.cancel.CancelToken`.  Workers check the token
before evaluating each task; a cancelled (or deadline-expired) token
raises :class:`~repro.utils.errors.JobCancelled` naming the task it
stopped at, which rides the backends' existing fail-fast path — pending
tasks of the plan are cancelled exactly as after any task failure.
"""

from __future__ import annotations

import math
import os
import threading
from abc import ABC, abstractmethod
from collections.abc import Callable, Sequence
from concurrent.futures import Executor, ProcessPoolExecutor, ThreadPoolExecutor
from concurrent.futures import TimeoutError as _FuturesTimeout
from functools import partial

from repro.engine.cancel import CancelToken
from repro.engine.tasks import DeltaTask
from repro.linkstream.stream import LinkStream
from repro.utils.errors import EngineError

TickCallback = Callable[[int], None]


def _default_jobs() -> int:
    return max(os.cpu_count() or 1, 1)


def _task_label(task: DeltaTask) -> str:
    """Human identity of a task for error messages: kind plus Δ."""
    return f"{task.kind} task at delta={task.delta:g}"


def _wrap_task_failure(task: DeltaTask, exc: BaseException) -> EngineError:
    """An :class:`EngineError` naming the failing task.  Callers raise it
    with ``from exc`` so the traceback keeps the numeric frames."""
    return EngineError(f"{_task_label(task)} failed: {exc}")


class ExecutionBackend(ABC):
    """Executes a plan of independent tasks, preserving task order."""

    name: str = "abstract"

    @property
    def workers(self) -> int:
        """How many tasks can make progress at once (1 when in-process)."""
        return 1

    @abstractmethod
    def run(
        self,
        stream: LinkStream,
        tasks: Sequence[DeltaTask],
        *,
        tick: TickCallback | None = None,
        cancel: CancelToken | None = None,
    ) -> list:
        """Evaluate every task on ``stream``; ``results[i]`` matches
        ``tasks[i]``.  ``tick(n)`` is called as batches of ``n`` tasks
        complete (progress reporting).  ``cancel`` is checked at task
        boundaries: once it reads cancelled, the plan fails fast with
        :class:`~repro.utils.errors.JobCancelled` naming the task it
        stopped at, and pending tasks are abandoned."""

    def close(self) -> None:
        """Release any pooled workers (idempotent)."""

    def __enter__(self) -> "ExecutionBackend":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"


class SerialBackend(ExecutionBackend):
    """Evaluate tasks one by one in the calling thread (the default)."""

    name = "serial"

    def run(self, stream, tasks, *, tick=None, cancel=None):
        results = []
        for task in tasks:
            if cancel is not None:
                cancel.guard(task)
            results.append(task.evaluate(stream))
            if tick is not None:
                tick(1)
        return results


class _PooledBackend(ExecutionBackend):
    """Shared lazy-pool plumbing for the thread and process backends."""

    def __init__(self, jobs: int | None = None) -> None:
        if jobs is not None and jobs < 1:
            raise EngineError("jobs must be a positive integer")
        self._jobs = jobs or _default_jobs()
        self._pool: Executor | None = None

    @property
    def jobs(self) -> int:
        return self._jobs

    @property
    def workers(self) -> int:
        return self._jobs

    @abstractmethod
    def _make_pool(self) -> Executor: ...

    def _ensure_pool(self) -> Executor:
        if self._pool is None:
            self._pool = self._make_pool()
        return self._pool

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown()
            self._pool = None

    def __repr__(self) -> str:
        return f"{type(self).__name__}(jobs={self._jobs})"


class ThreadBackend(_PooledBackend):
    """Evaluate tasks on a persistent thread pool."""

    name = "thread"

    def _make_pool(self) -> Executor:
        return ThreadPoolExecutor(
            max_workers=self._jobs, thread_name_prefix="repro-sweep"
        )

    def run(self, stream, tasks, *, tick=None, cancel=None):
        if len(tasks) <= 1:
            return _run_serial_wrapped(stream, tasks, tick, cancel)
        pool = self._ensure_pool()
        futures = [
            pool.submit(_guarded_evaluate, task, stream, cancel) for task in tasks
        ]
        results = []
        for i, future in enumerate(futures):
            try:
                results.append(future.result())
            except BaseException as exc:
                # Don't leave the rest of the plan burning CPU on a sweep
                # that already failed (or was interrupted), and don't lose
                # which Δ failed.
                _cancel_pending(futures[i + 1 :])
                if isinstance(exc, EngineError) or not isinstance(exc, Exception):
                    raise
                raise _wrap_task_failure(tasks[i], exc) from exc
            if tick is not None:
                tick(1)
        return results


def _cancel_pending(futures) -> None:
    """Best-effort cancellation of not-yet-started futures."""
    for future in futures:
        future.cancel()


def _guarded_evaluate(task: DeltaTask, stream: LinkStream, cancel) -> object:
    """Worker entry point for thread pools: check the cancel token at
    the last moment before evaluating, so a cancelled plan abandons
    every task that has not actually started."""
    if cancel is not None:
        cancel.guard(task)
    return task.evaluate(stream)


def _run_serial_wrapped(stream, tasks, tick, cancel=None) -> list:
    """Serial fallback for pooled backends' tiny plans, keeping their
    error contract: failures are wrapped with the task identity."""
    results = []
    for task in tasks:
        if cancel is not None:
            cancel.guard(task)
        try:
            results.append(task.evaluate(stream))
        except EngineError:
            raise
        except Exception as exc:
            raise _wrap_task_failure(task, exc) from exc
        if tick is not None:
            tick(1)
    return results


def _evaluate_chunk(stream: LinkStream, tasks: Sequence[DeltaTask]) -> list:
    """Worker entry point: evaluate one chunk of tasks on one stream.

    Failures are wrapped here, worker-side, so the task identity (kind
    and Δ) survives the pickling boundary back to the parent process.
    """
    results = []
    for task in tasks:
        try:
            results.append(task.evaluate(stream))
        except EngineError:
            raise
        except Exception as exc:
            raise _wrap_task_failure(task, exc) from exc
    return results


class ProcessBackend(_PooledBackend):
    """Evaluate chunked task batches on a persistent process pool.

    Parameters
    ----------
    jobs:
        Worker processes (default: the CPU count).
    chunk_size:
        Tasks per submitted batch.  Default: enough chunks for ~4 waves
        per worker, so stragglers balance while the stream's columnar
        arrays are still pickled only once per chunk.
    """

    name = "process"

    def __init__(self, jobs: int | None = None, *, chunk_size: int | None = None) -> None:
        super().__init__(jobs)
        if chunk_size is not None and chunk_size < 1:
            raise EngineError("chunk_size must be a positive integer")
        self._chunk_size = chunk_size

    def _make_pool(self) -> Executor:
        return ProcessPoolExecutor(max_workers=self._jobs)

    def _chunks(self, tasks: Sequence[DeltaTask]) -> list[Sequence[DeltaTask]]:
        size = self._chunk_size
        if size is None:
            size = max(1, math.ceil(len(tasks) / (4 * self._jobs)))
        return [tasks[i : i + size] for i in range(0, len(tasks), size)]

    def run(self, stream, tasks, *, tick=None, cancel=None):
        if len(tasks) <= 1:
            return _run_serial_wrapped(stream, tasks, tick, cancel)
        if cancel is not None:
            cancel.guard(tasks[0])
        pool = self._ensure_pool()
        chunks = self._chunks(tasks)
        futures = [pool.submit(_evaluate_chunk, stream, chunk) for chunk in chunks]
        results = []
        for i, future in enumerate(futures):
            try:
                chunk_results = self._collect(future, futures[i:], chunks[i], cancel)
            except BaseException:
                # The worker already named the failing task (see
                # _evaluate_chunk); just stop the remaining chunks.
                _cancel_pending(futures[i + 1 :])
                raise
            results.extend(chunk_results)
            if tick is not None:
                tick(len(chunk_results))
        return results

    @staticmethod
    def _collect(future, remaining, chunk, cancel):
        """One chunk's results, polling the cancel token while waiting.

        Cancellation is chunk-granular and best-effort: a token cannot
        cross the process boundary, so not-yet-started chunks are
        cancelled while the chunk currently in a worker finishes on its
        own (its result is discarded by the raised
        :class:`~repro.utils.errors.JobCancelled`).
        """
        if cancel is None:
            return future.result()
        while True:
            try:
                return future.result(timeout=0.1)
            except _FuturesTimeout:
                if cancel.cancelled:
                    _cancel_pending(remaining)
                    cancel.guard(chunk[0])


class PlanHandle:
    """A submitted plan's pending results (the async backend's future).

    ``results[i]`` matches ``tasks[i]``, exactly like a blocking
    :meth:`ExecutionBackend.run` — but the handle is returned the moment
    the plan's tasks are queued, and resolves from pool callbacks with
    no thread blocked per plan.  The first task failure wins, cancels
    every not-yet-started task of the plan (the fail-fast contract), and
    becomes the handle's error.
    """

    def __init__(self, tasks: Sequence[DeltaTask], tick: TickCallback | None) -> None:
        self._tasks = tasks
        self._tick = tick
        self._results: list = [None] * len(tasks)
        self._remaining = len(tasks)
        self._error: BaseException | None = None
        # Reentrant: cancelling pending futures fires their callbacks
        # synchronously on this thread, re-entering _on_task_done.
        self._lock = threading.RLock()
        self._done = threading.Event()
        self._futures: list = []
        self._callbacks: list[Callable[["PlanHandle"], None]] = []

    def _attach(self, futures: Sequence) -> None:
        """Wire the plan's futures in; callbacks on already-finished
        futures fire immediately, so attachment is race-free."""
        # The lock is reentrant, so holding it here stays safe even when
        # an already-finished future fires _on_task_done synchronously.
        with self._lock:
            self._futures = list(futures)
        if not futures:
            self._settle()
            return
        for i, future in enumerate(futures):
            future.add_done_callback(partial(self._on_task_done, i))

    def _on_task_done(self, index: int, future) -> None:
        callbacks = None
        with self._lock:
            if self._done.is_set():
                return
            try:
                self._results[index] = future.result()
            except BaseException as exc:
                if self._error is None:
                    if isinstance(exc, EngineError) or not isinstance(exc, Exception):
                        self._error = exc
                    else:
                        wrapped = _wrap_task_failure(self._tasks[index], exc)
                        wrapped.__cause__ = exc
                        self._error = wrapped
                    _cancel_pending(self._futures)
            self._remaining -= 1
            if self._remaining == 0:
                callbacks = self._settle_locked()
        if self._error is None and self._tick is not None:
            self._tick(1)
        if callbacks is not None:
            self._fire(callbacks)

    def _settle(self) -> None:
        with self._lock:
            callbacks = self._settle_locked()
        self._fire(callbacks)

    def _settle_locked(self) -> list:
        self._done.set()
        callbacks, self._callbacks = self._callbacks, []
        return callbacks

    def _fire(self, callbacks) -> None:
        for callback in callbacks:
            callback(self)

    def done(self) -> bool:
        return self._done.is_set()

    def add_done_callback(self, callback: Callable[["PlanHandle"], None]) -> None:
        """Run ``callback(handle)`` once the plan settles (immediately if
        it already has).  Runs on the thread finishing the last task."""
        with self._lock:
            if not self._done.is_set():
                self._callbacks.append(callback)
                return
        callback(self)

    def result(self, timeout: float | None = None) -> list:
        """Block for the plan's results (or raise its first failure)."""
        if not self._done.wait(timeout):
            raise EngineError(
                f"plan of {len(self._tasks)} tasks not done within {timeout}s"
            )
        if self._error is not None:
            raise self._error
        return self._results

    def __repr__(self) -> str:
        if not self._done.is_set():
            return f"PlanHandle(pending, {self._remaining}/{len(self._tasks)} tasks left)"
        state = "failed" if self._error is not None else "done"
        return f"PlanHandle({state}, {len(self._tasks)} tasks)"


class AsyncBackend(ThreadBackend):
    """A thread backend that also accepts plans without blocking.

    :meth:`submit_plan` queues every task on the shared pool and returns
    a :class:`PlanHandle` immediately; results assemble from pool
    callbacks.  Many plans interleave FIFO on the one bounded pool, so
    concurrent requests share workers fairly.  The blocking ``run`` is
    inherited, so the async backend drops into any engine unchanged.
    """

    name = "async"

    def submit_plan(
        self,
        stream: LinkStream,
        tasks: Sequence[DeltaTask],
        *,
        tick: TickCallback | None = None,
        cancel: CancelToken | None = None,
    ) -> PlanHandle:
        handle = PlanHandle(tasks, tick)
        pool = self._ensure_pool()
        futures = [
            pool.submit(_guarded_evaluate, task, stream, cancel) for task in tasks
        ]
        handle._attach(futures)
        return handle


_BACKENDS: dict[str, type[ExecutionBackend]] = {
    SerialBackend.name: SerialBackend,
    ThreadBackend.name: ThreadBackend,
    ProcessBackend.name: ProcessBackend,
    AsyncBackend.name: AsyncBackend,
}


def available_backends() -> list[str]:
    """Names accepted by :func:`get_backend` (and ``REPRO_ENGINE``)."""
    return sorted(_BACKENDS)


def get_backend(
    spec: str | ExecutionBackend | None,
    *,
    jobs: int | None = None,
) -> ExecutionBackend:
    """Resolve a backend from a name, a ``"name:jobs"`` spec, or an
    instance (returned as-is).  ``None`` means the serial default.  An
    explicit ``jobs`` argument wins over a ``:jobs`` suffix in the spec
    (so a CLI ``--jobs`` overrides a ``REPRO_ENGINE=thread:16`` default).

    The serial backend runs in the calling thread and has no workers, so
    any worker count attached to it (``"serial:8"``, or ``jobs=`` with a
    serial spec) is a configuration mistake and raises
    :class:`EngineError` rather than being silently dropped.
    """
    if isinstance(spec, ExecutionBackend):
        return spec
    if spec is None:
        spec = SerialBackend.name
    name, _, jobs_part = spec.partition(":")
    name = name.strip().lower()
    if jobs_part:
        try:
            spec_jobs = int(jobs_part)
        except ValueError:
            raise EngineError(f"bad worker count in backend spec {spec!r}") from None
        if jobs is None:
            jobs = spec_jobs
    if name not in _BACKENDS:
        raise EngineError(
            f"unknown backend {name!r}; available: {available_backends()}"
        )
    cls = _BACKENDS[name]
    if cls is SerialBackend:
        if jobs is not None:
            raise EngineError(
                "the serial backend runs in-process and has no workers; "
                f"drop the worker count (got jobs={jobs}) or pick "
                "'thread' or 'process'"
            )
        return SerialBackend()
    return cls(jobs)
