"""Density-convergence ("mature graph") selector (after Soundarajan et
al., reference [39]).

Their approach grows each window until the forming snapshot "matures" —
its structure stops changing fast — then starts the next window.  The
paper points out the motivation differs from the saturation scale:
information loss can set in *before* the snapshot's statistics converge.

Implementation: reuse the adaptive aggregation engine
(:func:`repro.graphseries.aggregation.aggregate_adaptive`) and report
the distribution of mature-window lengths; the suggested constant Δ is
their median.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.graphseries.aggregation import aggregate_adaptive
from repro.linkstream.stream import LinkStream
from repro.utils.errors import ValidationError


@dataclass(frozen=True)
class ConvergenceResult:
    """Outcome of the mature-graph selector."""

    delta: float
    window_lengths: np.ndarray
    boundaries: np.ndarray
    growth_tolerance: float


def convergence_scale(
    stream: LinkStream,
    *,
    growth_tolerance: float = 0.1,
    probe: float | None = None,
    max_window: float | None = None,
) -> ConvergenceResult:
    """Suggest Δ as the median length of density-converged windows.

    Parameters mirror
    :func:`~repro.graphseries.aggregation.aggregate_adaptive`.
    """
    __, boundaries = aggregate_adaptive(
        stream,
        growth_tolerance=growth_tolerance,
        probe=probe,
        max_window=max_window,
    )
    lengths = np.diff(boundaries)
    if not lengths.size:
        raise ValidationError("adaptive aggregation produced no windows")
    return ConvergenceResult(
        delta=float(np.median(lengths)),
        window_lengths=lengths,
        boundaries=boundaries,
        growth_tolerance=growth_tolerance,
    )
