"""Loss/noise trade-off selector (after Sulo et al., reference [41]).

Their method balances two opposing pressures as Δ grows: the
*information loss* inside windows increases while the *noise* (erratic
variation between consecutive snapshots) decreases.  The selected scale
minimizes the sum of the two normalized quantities.

The paper contrasts this with the occupancy method: the trade-off result
depends on how the two metrics are weighted, and neither metric shows a
qualitative change at the chosen scale.  Our implementation uses:

* loss(Δ) — fraction of the stream's shortest transitions collapsed into
  a single window (the paper's own Section 8 loss measure);
* noise(Δ) — mean Jaccard *distance* between the edge sets of
  consecutive nonempty snapshots.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.validation import shortest_transitions, transitions_lost_fraction
from repro.graphseries.aggregation import aggregate
from repro.linkstream.stream import LinkStream
from repro.utils.errors import SweepError


def _snapshot_edge_sets(stream: LinkStream, delta: float) -> list[set[int]]:
    series = aggregate(stream, delta)
    n = series.num_nodes
    return [
        set((u * n + v).tolist()) for __, u, v in series.edge_groups()
    ]


def _mean_jaccard_distance(edge_sets: list[set[int]]) -> float:
    if len(edge_sets) < 2:
        return 0.0
    distances = []
    for left, right in zip(edge_sets[:-1], edge_sets[1:]):
        union = len(left | right)
        inter = len(left & right)
        distances.append(1.0 - inter / union if union else 0.0)
    return float(np.mean(distances))


@dataclass(frozen=True)
class TradeoffResult:
    """Outcome of the loss/noise trade-off selector."""

    delta: float
    deltas: np.ndarray
    loss: np.ndarray
    noise: np.ndarray
    objective: np.ndarray
    loss_weight: float


def tradeoff_scale(
    stream: LinkStream,
    deltas: np.ndarray,
    *,
    loss_weight: float = 0.5,
) -> TradeoffResult:
    """Pick the Δ minimizing ``w·loss + (1-w)·noise`` (both min-max
    normalized over the grid).

    ``loss_weight`` exposes the arbitrary ponderation the paper
    criticizes — the ablation bench sweeps it to show the selected scale
    moves with it, unlike the occupancy method which has no such knob.
    """
    deltas = np.asarray(deltas, dtype=np.float64)
    if deltas.size < 2:
        raise SweepError("trade-off selector needs at least two candidate periods")
    if not 0.0 <= loss_weight <= 1.0:
        raise SweepError("loss_weight must be in [0, 1]")
    transitions = shortest_transitions(stream)
    origin = stream.t_min
    loss = np.array(
        [transitions_lost_fraction(transitions, float(d), origin=origin) for d in deltas]
    )
    noise = np.array(
        [_mean_jaccard_distance(_snapshot_edge_sets(stream, float(d))) for d in deltas]
    )

    def normalize(x: np.ndarray) -> np.ndarray:
        lo, hi = x.min(), x.max()
        return np.zeros_like(x) if hi == lo else (x - lo) / (hi - lo)

    objective = loss_weight * normalize(loss) + (1.0 - loss_weight) * normalize(noise)
    best = int(np.argmin(objective))
    return TradeoffResult(
        delta=float(deltas[best]),
        deltas=deltas,
        loss=loss,
        noise=noise,
        objective=objective,
        loss_weight=loss_weight,
    )
