"""Baseline aggregation-scale selectors from the paper's related work.

Three alternative ways to pick an aggregation period, implemented for
head-to-head comparison with the occupancy method (Section 1.2 discusses
why each answers a *different* question than the saturation scale):

* :func:`tradeoff_scale` — loss/noise trade-off (Sulo, Berger-Wolf &
  Grossman, MLG 2010 — reference [41]).
* :func:`periodicity_scale` — dominant-periodicity analysis (Clauset &
  Eagle, DIMACS 2007 — reference [7]).
* :func:`convergence_scale` — "mature graph" density convergence
  (Soundarajan et al., WWW 2016 — reference [39]).
"""

from repro.baselines.convergence import ConvergenceResult, convergence_scale
from repro.baselines.periodicity import PeriodicityResult, periodicity_scale
from repro.baselines.tradeoff import TradeoffResult, tradeoff_scale

__all__ = [
    "tradeoff_scale",
    "TradeoffResult",
    "periodicity_scale",
    "PeriodicityResult",
    "convergence_scale",
    "ConvergenceResult",
]
