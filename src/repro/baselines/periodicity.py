"""Periodicity-based selector (after Clauset & Eagle, reference [7]).

Their observation: the time series of snapshot statistics loses
self-similarity at an offset close to *half the period of the highest
visible frequency* in its spectrum; that half-period is the suggested
aggregation scale.  The paper notes this targets a different goal than
the saturation scale — most of a network's activity happens well below
its periodicity modes (circadian traces get Δ ≈ 12 h regardless of their
actual pace), so this baseline over-aggregates fast streams.

Implementation: FFT of the event-count profile at a fine resolution,
dominant positive frequency by spectral power, Δ = period / 2.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.linkstream.statistics import activity_profile
from repro.linkstream.stream import LinkStream
from repro.utils.errors import ValidationError


@dataclass(frozen=True)
class PeriodicityResult:
    """Outcome of the periodicity selector."""

    delta: float
    dominant_period: float
    frequencies: np.ndarray
    power: np.ndarray
    bin_width: float


def periodicity_scale(
    stream: LinkStream,
    *,
    bin_width: float | None = None,
) -> PeriodicityResult:
    """Suggest Δ as half of the dominant activity period.

    ``bin_width`` sets the resolution of the event-count series the
    spectrum is computed on (default: 1/1000 of the span, floored at the
    timestamp resolution).
    """
    if stream.num_events < 4:
        raise ValidationError("periodicity analysis needs a few events")
    if bin_width is None:
        bin_width = max(stream.span / 1000.0, stream.resolution())
    __, counts = activity_profile(stream, bin_width)
    if counts.size < 4:
        raise ValidationError("profile too short; reduce bin_width")
    signal = counts.astype(np.float64) - counts.mean()
    spectrum = np.fft.rfft(signal)
    power = np.abs(spectrum) ** 2
    frequencies = np.fft.rfftfreq(signal.size, d=bin_width)
    # Skip the DC component; pick the strongest strictly positive frequency.
    idx = 1 + int(np.argmax(power[1:]))
    dominant_frequency = frequencies[idx]
    if dominant_frequency <= 0:
        raise ValidationError("no positive dominant frequency found")
    dominant_period = 1.0 / dominant_frequency
    return PeriodicityResult(
        delta=dominant_period / 2.0,
        dominant_period=dominant_period,
        frequencies=frequencies,
        power=power,
        bin_width=bin_width,
    )
