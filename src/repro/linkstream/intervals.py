"""Interval-event streams (links with duration).

Section 9 of the paper lists links-with-duration as the key extension of
the occupancy method: phone calls or physical contacts exist over a time
*interval* rather than at an instant.  The paper's related work ([12, 3])
notes such networks are usually *measured* by periodic sampling, which
reduces them to punctual link streams.

:class:`IntervalStream` stores ``(u, v, start, end)`` quadruplets and its
:meth:`IntervalStream.sample` method performs exactly that periodic
sampling, producing a punctual :class:`~repro.linkstream.stream.LinkStream`
on which the occupancy method runs unchanged.
"""

from __future__ import annotations

from collections.abc import Hashable, Iterable

import numpy as np

from repro.linkstream.stream import LinkStream
from repro.utils.errors import LinkStreamError


class IntervalStream:
    """A collection of lasting links ``(u, v, [start, end])``.

    Parameters mirror :class:`~repro.linkstream.stream.LinkStream`, with
    the timestamp column replaced by an interval per event.
    """

    __slots__ = ("_u", "_v", "_start", "_end", "_directed", "_num_nodes", "_labels")

    def __init__(
        self,
        u: Iterable[int],
        v: Iterable[int],
        start: Iterable[float],
        end: Iterable[float],
        *,
        directed: bool = True,
        num_nodes: int | None = None,
        labels: list[Hashable] | None = None,
    ) -> None:
        u_arr = np.asarray(u, dtype=np.int64)
        v_arr = np.asarray(v, dtype=np.int64)
        start_arr = np.asarray(start, dtype=np.float64)
        end_arr = np.asarray(end, dtype=np.float64)
        shapes = {u_arr.shape, v_arr.shape, start_arr.shape, end_arr.shape}
        if len(shapes) != 1 or u_arr.ndim != 1:
            raise LinkStreamError("u, v, start, end must be 1-d arrays of equal length")
        if np.any(end_arr < start_arr):
            raise LinkStreamError("interval end must not precede start")
        if u_arr.size and np.any(u_arr == v_arr):
            raise LinkStreamError("self-loops are not valid interval events")
        inferred = int(max(u_arr.max(), v_arr.max())) + 1 if u_arr.size else 0
        if num_nodes is None:
            num_nodes = inferred
        elif num_nodes < inferred:
            raise LinkStreamError("num_nodes smaller than max index + 1")
        order = np.lexsort((v_arr, u_arr, start_arr))
        self._u = u_arr[order]
        self._v = v_arr[order]
        self._start = start_arr[order]
        self._end = end_arr[order]
        self._directed = bool(directed)
        self._num_nodes = int(num_nodes)
        self._labels = labels

    @property
    def num_nodes(self) -> int:
        return self._num_nodes

    @property
    def num_intervals(self) -> int:
        return self._u.size

    @property
    def directed(self) -> bool:
        return self._directed

    @property
    def total_duration(self) -> float:
        """Sum of interval lengths over all events."""
        return float((self._end - self._start).sum())

    def __len__(self) -> int:
        return self.num_intervals

    def sample(self, resolution: float, *, offset: float = 0.0) -> LinkStream:
        """Reduce to a punctual link stream by periodic sampling.

        A probe fires at times ``offset + k * resolution``; every interval
        that covers a probe time emits one punctual event at that time.
        This mirrors how sensor deployments (RFID contact studies, etc.)
        actually record lasting links, and is the documented path for
        running the occupancy method on interval data.

        Intervals shorter than ``resolution`` may be missed entirely —
        exactly the measurement noise discussed in the paper's related
        work.
        """
        if resolution <= 0:
            raise LinkStreamError("sampling resolution must be positive")
        if not self.num_intervals:
            return LinkStream([], [], [], directed=self._directed, num_nodes=self._num_nodes)
        first = np.ceil((self._start - offset) / resolution)
        last = np.floor((self._end - offset) / resolution)
        hits = np.maximum(last - first + 1, 0).astype(np.int64)
        total = int(hits.sum())
        u_out = np.repeat(self._u, hits)
        v_out = np.repeat(self._v, hits)
        t_out = np.empty(total, dtype=np.float64)
        cursor = 0
        for i in range(self.num_intervals):
            count = hits[i]
            if count:
                ticks = first[i] + np.arange(count)
                t_out[cursor : cursor + count] = offset + ticks * resolution
                cursor += count
        return LinkStream(
            u_out,
            v_out,
            t_out,
            directed=self._directed,
            num_nodes=self._num_nodes,
            labels=self._labels,
        )

    def coverage(self, resolution: float, *, offset: float = 0.0) -> float:
        """Fraction of intervals that emit at least one sampled event."""
        if not self.num_intervals:
            return 1.0
        first = np.ceil((self._start - offset) / resolution)
        last = np.floor((self._end - offset) / resolution)
        return float(np.mean(last >= first))
