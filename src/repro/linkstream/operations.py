"""Whole-stream surgery operations.

These functions return new :class:`~repro.linkstream.stream.LinkStream`
objects; streams themselves are immutable.
"""

from __future__ import annotations

from collections.abc import Hashable, Mapping, Sequence

import numpy as np

from repro.linkstream.stream import LinkStream
from repro.utils.errors import LinkStreamError
from repro.utils.rng import ensure_rng


def concatenate(streams: Sequence[LinkStream]) -> LinkStream:
    """Union of several streams over a shared label space.

    Nodes are matched by label; the result's node set is the union in
    first-seen order.  All inputs must agree on directedness.
    """
    if not streams:
        raise LinkStreamError("cannot concatenate an empty list of streams")
    directed = streams[0].directed
    if any(s.directed != directed for s in streams):
        raise LinkStreamError("cannot mix directed and undirected streams")

    labels: list[Hashable] = []
    index: dict[Hashable, int] = {}
    for stream in streams:
        for lab in stream.labels:
            if lab not in index:
                index[lab] = len(labels)
                labels.append(lab)

    chunks_u, chunks_v, chunks_t = [], [], []
    for stream in streams:
        remap = np.array([index[lab] for lab in stream.labels], dtype=np.int64)
        if stream.num_events:
            chunks_u.append(remap[stream.sources])
            chunks_v.append(remap[stream.targets])
            chunks_t.append(np.asarray(stream.timestamps, dtype=np.float64))
    if chunks_u:
        u = np.concatenate(chunks_u)
        v = np.concatenate(chunks_v)
        t = np.concatenate(chunks_t)
    else:
        u = v = t = np.empty(0, dtype=np.int64)
    return LinkStream(u, v, t, directed=directed, num_nodes=len(labels), labels=labels)


def deduplicate(stream: LinkStream) -> LinkStream:
    """Drop exact duplicate events ``(u, v, t)``."""
    if not stream.num_events:
        return stream.copy()
    stacked = np.stack([stream.timestamps, stream.sources, stream.targets])
    __, keep = np.unique(stacked, axis=1, return_index=True)
    keep.sort()
    return LinkStream(
        stream.sources[keep],
        stream.targets[keep],
        stream.timestamps[keep],
        directed=stream.directed,
        num_nodes=stream.num_nodes,
        labels=stream.labels,
    )


def relabel(stream: LinkStream, mapping: Mapping[Hashable, Hashable]) -> LinkStream:
    """Rename nodes; labels missing from ``mapping`` keep their old name."""
    new_labels = [mapping.get(lab, lab) for lab in stream.labels]
    if len(set(new_labels)) != len(new_labels):
        raise LinkStreamError("relabeling collapses two nodes onto the same label")
    return LinkStream(
        stream.sources,
        stream.targets,
        stream.timestamps,
        directed=stream.directed,
        num_nodes=stream.num_nodes,
        labels=new_labels,
    )


def reverse_time(stream: LinkStream) -> LinkStream:
    """Mirror the stream in time: event at ``t`` moves to ``t_max - (t - t_min)``.

    Useful for testing time-symmetric properties (a temporal path of the
    reversed stream is a reversed temporal path of the original when links
    are undirected).
    """
    if not stream.num_events:
        return stream.copy()
    mirrored = stream.t_max - (stream.timestamps - stream.t_min)
    return LinkStream(
        stream.sources,
        stream.targets,
        mirrored,
        directed=stream.directed,
        num_nodes=stream.num_nodes,
        labels=stream.labels,
    )


def subsample_events(
    stream: LinkStream,
    fraction: float,
    *,
    seed: int | np.random.Generator | None = None,
) -> LinkStream:
    """Keep each event independently with probability ``fraction``."""
    if not 0.0 <= fraction <= 1.0:
        raise LinkStreamError(f"fraction must be in [0, 1], got {fraction}")
    rng = ensure_rng(seed)
    mask = rng.random(stream.num_events) < fraction
    return LinkStream(
        stream.sources[mask],
        stream.targets[mask],
        stream.timestamps[mask],
        directed=stream.directed,
        num_nodes=stream.num_nodes,
        labels=stream.labels,
    )
