"""The :class:`LinkStream` container.

Events are stored column-wise in numpy arrays (source index, target index,
timestamp), sorted by timestamp.  Node labels are kept separately so the
numeric core always works on dense indices ``0..n-1`` — the layout every
downstream algorithm (aggregation, reachability) expects.

Timestamps may be integers or floats; the paper's method works for both
discrete and continuous time (Section 2).
"""

from __future__ import annotations

import hashlib
from collections.abc import Hashable, Iterable, Iterator

import numpy as np

from repro.utils.errors import LinkStreamError


class LinkStream:
    """A finite collection of interaction triplets ``(u, v, t)``.

    Parameters
    ----------
    u, v:
        Integer node indices in ``0..num_nodes-1``, one entry per event.
    t:
        Event timestamps (int or float), one entry per event.  Events are
        re-sorted by ``(t, u, v)`` on construction.
    directed:
        Whether ``(u, v, t)`` means ``u -> v`` only.  The four traces the
        paper studies (messages, e-mails, wall posts) are directed.
    num_nodes:
        Size of the node set ``V``.  Defaults to ``max(u, v) + 1``; may be
        larger to include isolated nodes.
    labels:
        Optional external labels, ``labels[i]`` naming node ``i``.
    """

    __slots__ = (
        "_u",
        "_v",
        "_t",
        "_directed",
        "_num_nodes",
        "_labels",
        "_label_index",
        "_distinct_t",
        "_resolution",
        "_fingerprint",
    )

    def __init__(
        self,
        u: Iterable[int],
        v: Iterable[int],
        t: Iterable[float],
        *,
        directed: bool = True,
        num_nodes: int | None = None,
        labels: Iterable[Hashable] | None = None,
    ) -> None:
        u_arr = np.asarray(u, dtype=np.int64)
        v_arr = np.asarray(v, dtype=np.int64)
        t_arr = np.asarray(t)
        if not (u_arr.shape == v_arr.shape == t_arr.shape) or u_arr.ndim != 1:
            raise LinkStreamError("u, v, t must be one-dimensional arrays of equal length")
        if t_arr.dtype.kind not in "iuf":
            raise LinkStreamError(f"timestamps must be numeric, got dtype {t_arr.dtype}")
        if t_arr.dtype.kind == "f":
            if not np.all(np.isfinite(t_arr)):
                raise LinkStreamError("timestamps must be finite")
            t_arr = t_arr.astype(np.float64)
        else:
            t_arr = t_arr.astype(np.int64)
        if u_arr.size:
            lo = min(u_arr.min(), v_arr.min())
            hi = max(u_arr.max(), v_arr.max())
            if lo < 0:
                raise LinkStreamError("node indices must be non-negative")
            if np.any(u_arr == v_arr):
                raise LinkStreamError("self-loops (u == v) are not valid link-stream events")
        else:
            hi = -1
        inferred = int(hi) + 1
        if num_nodes is None:
            num_nodes = inferred
        elif num_nodes < inferred:
            raise LinkStreamError(f"num_nodes={num_nodes} smaller than max index + 1 = {inferred}")

        if not directed:
            swap = u_arr > v_arr
            u_arr, v_arr = np.where(swap, v_arr, u_arr), np.where(swap, u_arr, v_arr)

        order = np.lexsort((v_arr, u_arr, t_arr))
        self._u = u_arr[order]
        self._v = v_arr[order]
        self._t = t_arr[order]
        self._u.setflags(write=False)
        self._v.setflags(write=False)
        self._t.setflags(write=False)
        self._directed = bool(directed)
        self._num_nodes = int(num_nodes)

        if labels is not None:
            label_arr = list(labels)
            if len(label_arr) != self._num_nodes:
                raise LinkStreamError(
                    f"labels has {len(label_arr)} entries for {self._num_nodes} nodes"
                )
            if len(set(label_arr)) != len(label_arr):
                raise LinkStreamError("labels must be unique")
            self._labels = label_arr
        else:
            self._labels = None
        self._label_index = None
        # Lazy caches: the event arrays are frozen, so these never go stale.
        self._distinct_t = None
        self._resolution = None
        self._fingerprint = None

    # -- constructors ----------------------------------------------------

    @classmethod
    def from_triples(
        cls,
        triples: Iterable[tuple[Hashable, Hashable, float]],
        *,
        directed: bool = True,
    ) -> "LinkStream":
        """Build a stream from ``(u_label, v_label, t)`` triples.

        Labels may be any hashable values; they are mapped to dense indices
        in first-seen order.
        """
        labels: list[Hashable] = []
        index: dict[Hashable, int] = {}
        us: list[int] = []
        vs: list[int] = []
        ts: list[float] = []
        for lu, lv, t in triples:
            for lab in (lu, lv):
                if lab not in index:
                    index[lab] = len(labels)
                    labels.append(lab)
            us.append(index[lu])
            vs.append(index[lv])
            ts.append(t)
        return cls(us, vs, ts, directed=directed, num_nodes=len(labels), labels=labels)

    # -- basic accessors ---------------------------------------------------

    @property
    def num_nodes(self) -> int:
        """Size of the node set ``V``."""
        return self._num_nodes

    @property
    def num_events(self) -> int:
        """Number of triplets in the stream (with multiplicity)."""
        return self._t.size

    @property
    def directed(self) -> bool:
        return self._directed

    @property
    def sources(self) -> np.ndarray:
        """Read-only source index array, sorted by event time."""
        return self._u

    @property
    def targets(self) -> np.ndarray:
        """Read-only target index array, sorted by event time."""
        return self._v

    @property
    def timestamps(self) -> np.ndarray:
        """Read-only timestamp array, ascending."""
        return self._t

    @property
    def labels(self) -> list[Hashable]:
        """External node labels (identity labels if none were given)."""
        if self._labels is None:
            return list(range(self._num_nodes))
        return list(self._labels)

    @property
    def t_min(self) -> float:
        """Earliest event time (raises on an empty stream)."""
        if not self._t.size:
            raise LinkStreamError("empty stream has no t_min")
        return self._t[0].item()

    @property
    def t_max(self) -> float:
        """Latest event time (raises on an empty stream)."""
        if not self._t.size:
            raise LinkStreamError("empty stream has no t_max")
        return self._t[-1].item()

    @property
    def span(self) -> float:
        """Length ``t_max - t_min`` of the observed period."""
        return self.t_max - self.t_min

    def __len__(self) -> int:
        return self.num_events

    def __repr__(self) -> str:
        kind = "directed" if self._directed else "undirected"
        if self.num_events:
            window = f", over [{self._t[0]}, {self._t[-1]}]"
        else:
            window = ""
        return (
            f"LinkStream({kind}, {self.num_nodes} nodes, {self.num_events} events{window})"
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, LinkStream):
            return NotImplemented
        return (
            self._directed == other._directed
            and self._num_nodes == other._num_nodes
            and self.labels == other.labels
            and np.array_equal(self._u, other._u)
            and np.array_equal(self._v, other._v)
            and np.array_equal(self._t, other._t)
        )

    def __hash__(self) -> int:  # streams are mutable-looking but frozen
        return hash((self._directed, self._num_nodes, self._t.tobytes()))

    # -- label mapping -----------------------------------------------------

    def label_of(self, index: int) -> Hashable:
        """External label of node ``index``."""
        if self._labels is None:
            return index
        return self._labels[index]

    def index_of(self, label: Hashable) -> int:
        """Dense index of the node carrying ``label``."""
        if self._labels is None:
            idx = int(label)
            if not 0 <= idx < self._num_nodes:
                raise LinkStreamError(f"unknown node label {label!r}")
            return idx
        if self._label_index is None:
            self._label_index = {lab: i for i, lab in enumerate(self._labels)}
        try:
            return self._label_index[label]
        except KeyError:
            raise LinkStreamError(f"unknown node label {label!r}") from None

    def events(self) -> Iterator[tuple[Hashable, Hashable, float]]:
        """Iterate events as ``(u_label, v_label, t)`` in time order."""
        for u, v, t in zip(self._u, self._v, self._t):
            yield self.label_of(int(u)), self.label_of(int(v)), t.item()

    # -- time structure ------------------------------------------------------

    def distinct_timestamps(self) -> np.ndarray:
        """Sorted array of distinct event times (cached, read-only)."""
        if self._distinct_t is None:
            distinct = np.unique(self._t)
            distinct.setflags(write=False)
            self._distinct_t = distinct
        return self._distinct_t

    def resolution(self) -> float:
        """Smallest positive gap between distinct timestamps (cached).

        This is the finest meaningful aggregation period (the paper sweeps
        Δ from the timestamp resolution up to the full span).
        """
        if self._resolution is None:
            distinct = self.distinct_timestamps()
            if distinct.size < 2:
                raise LinkStreamError(
                    "need at least two distinct timestamps for a resolution"
                )
            self._resolution = float(np.diff(distinct).min())
        return self._resolution

    def fingerprint(self) -> str:
        """Content hash of the stream (cached).

        Covers the event arrays, their dtypes, directedness, and the node
        count — everything that determines the outcome of an aggregation
        or a sweep.  Node labels are deliberately excluded: relabeling
        does not change any measured quantity.  Used by
        :mod:`repro.engine` to key its sweep cache.
        """
        if self._fingerprint is None:
            digest = hashlib.sha256()
            digest.update(
                f"v1|{int(self._directed)}|{self._num_nodes}|{self._t.dtype.str}|".encode()
            )
            digest.update(self._u.tobytes())
            digest.update(self._v.tobytes())
            digest.update(self._t.tobytes())
            self._fingerprint = digest.hexdigest()
        return self._fingerprint

    # -- derived streams -----------------------------------------------------

    def restrict_time(self, start: float, end: float, *, half_open: bool = True) -> "LinkStream":
        """Sub-stream of events with ``start <= t < end`` (or ``<= end``)."""
        if half_open:
            mask = (self._t >= start) & (self._t < end)
        else:
            mask = (self._t >= start) & (self._t <= end)
        return self._replace_events(self._u[mask], self._v[mask], self._t[mask])

    def restrict_nodes(self, labels: Iterable[Hashable]) -> "LinkStream":
        """Sub-stream induced by a node subset; nodes are re-indexed densely."""
        keep_idx = sorted({self.index_of(lab) for lab in labels})
        lookup = np.full(self._num_nodes, -1, dtype=np.int64)
        for new, old in enumerate(keep_idx):
            lookup[old] = new
        mask = (lookup[self._u] >= 0) & (lookup[self._v] >= 0)
        new_labels = [self.label_of(old) for old in keep_idx]
        return LinkStream(
            lookup[self._u[mask]],
            lookup[self._v[mask]],
            self._t[mask],
            directed=self._directed,
            num_nodes=len(keep_idx),
            labels=new_labels if self._labels is not None else None,
        )

    def to_undirected(self) -> "LinkStream":
        """Forget edge direction (pairs are canonicalized)."""
        if not self._directed:
            return self
        return LinkStream(
            self._u,
            self._v,
            self._t,
            directed=False,
            num_nodes=self._num_nodes,
            labels=self._labels,
        )

    def shift_time(self, offset: float) -> "LinkStream":
        """Translate all timestamps by ``offset``."""
        return self._replace_events(self._u, self._v, self._t + offset)

    def scale_time(self, factor: float) -> "LinkStream":
        """Multiply all timestamps by a positive ``factor``."""
        if factor <= 0:
            raise LinkStreamError("time scale factor must be positive")
        return self._replace_events(self._u, self._v, self._t * factor)

    def copy(self) -> "LinkStream":
        return self._replace_events(self._u, self._v, self._t)

    def _replace_events(self, u: np.ndarray, v: np.ndarray, t: np.ndarray) -> "LinkStream":
        return LinkStream(
            u,
            v,
            t,
            directed=self._directed,
            num_nodes=self._num_nodes,
            labels=self._labels,
        )
