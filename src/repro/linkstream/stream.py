"""The :class:`LinkStream` container.

Events are stored column-wise in numpy arrays (source index, target index,
timestamp), sorted by timestamp.  Node labels are kept separately so the
numeric core always works on dense indices ``0..n-1`` — the layout every
downstream algorithm (aggregation, reachability) expects.

Timestamps may be integers or floats; the paper's method works for both
discrete and continuous time (Section 2).

Since the storage refactor the arrays live behind a pluggable
:class:`repro.storage.StreamStorage` backend: ``LinkStream`` keeps the
semantics (validation, canonical sort, labels, fingerprints) and
delegates the bytes.  Streams built directly wrap an in-memory
:class:`~repro.storage.ColumnarStorage`; catalog datasets opened via
:func:`repro.datasets.catalog.open_dataset` wrap a lazy
:class:`~repro.storage.PartitionedStorage` — bit-identical either way.
"""

from __future__ import annotations

import hashlib
from collections.abc import Hashable, Iterable, Iterator

import numpy as np

from repro.storage.base import StreamStorage
from repro.storage.columnar import ColumnarStorage, freeze_columns
from repro.utils.errors import AppendOrderError, LinkStreamError


class LinkStream:
    """A finite collection of interaction triplets ``(u, v, t)``.

    Parameters
    ----------
    u, v:
        Integer node indices in ``0..num_nodes-1``, one entry per event.
    t:
        Event timestamps (int or float), one entry per event.  Events are
        re-sorted by ``(t, u, v)`` on construction.
    directed:
        Whether ``(u, v, t)`` means ``u -> v`` only.  The four traces the
        paper studies (messages, e-mails, wall posts) are directed.
    num_nodes:
        Size of the node set ``V``.  Defaults to ``max(u, v) + 1``; may be
        larger to include isolated nodes.
    labels:
        Optional external labels, ``labels[i]`` naming node ``i``.
    """

    __slots__ = (
        "_storage",
        "_directed",
        "_num_nodes",
        "_labels",
        "_label_index",
        "_distinct_t",
        "_resolution",
        "_fingerprint",
        "_chain",
    )

    def __init__(
        self,
        u: Iterable[int],
        v: Iterable[int],
        t: Iterable[float],
        *,
        directed: bool = True,
        num_nodes: int | None = None,
        labels: Iterable[Hashable] | None = None,
    ) -> None:
        u_arr = np.asarray(u, dtype=np.int64)
        v_arr = np.asarray(v, dtype=np.int64)
        t_arr = np.asarray(t)
        if not (u_arr.shape == v_arr.shape == t_arr.shape) or u_arr.ndim != 1:
            raise LinkStreamError("u, v, t must be one-dimensional arrays of equal length")
        if t_arr.dtype.kind not in "iuf":
            raise LinkStreamError(f"timestamps must be numeric, got dtype {t_arr.dtype}")
        if t_arr.dtype.kind == "f":
            if not np.all(np.isfinite(t_arr)):
                raise LinkStreamError("timestamps must be finite")
            t_arr = t_arr.astype(np.float64)
        else:
            t_arr = t_arr.astype(np.int64)
        if u_arr.size:
            lo = min(u_arr.min(), v_arr.min())
            hi = max(u_arr.max(), v_arr.max())
            if lo < 0:
                raise LinkStreamError("node indices must be non-negative")
            if np.any(u_arr == v_arr):
                raise LinkStreamError("self-loops (u == v) are not valid link-stream events")
        else:
            hi = -1
        inferred = int(hi) + 1
        if num_nodes is None:
            num_nodes = inferred
        elif num_nodes < inferred:
            raise LinkStreamError(f"num_nodes={num_nodes} smaller than max index + 1 = {inferred}")

        if not directed:
            swap = u_arr > v_arr
            u_arr, v_arr = np.where(swap, v_arr, u_arr), np.where(swap, u_arr, v_arr)

        order = np.lexsort((v_arr, u_arr, t_arr))
        self._storage = ColumnarStorage(
            *freeze_columns(u_arr[order], v_arr[order], t_arr[order])
        )
        self._directed = bool(directed)
        self._num_nodes = int(num_nodes)

        if labels is not None:
            label_arr = list(labels)
            if len(label_arr) != self._num_nodes:
                raise LinkStreamError(
                    f"labels has {len(label_arr)} entries for {self._num_nodes} nodes"
                )
            if len(set(label_arr)) != len(label_arr):
                raise LinkStreamError("labels must be unique")
            self._labels = label_arr
        else:
            self._labels = None
        self._label_index = None
        # Lazy caches: the event arrays are frozen, so these never go
        # stale.  extend() never mutates them either — it builds a *new*
        # stream (whose caches start empty), so staleness cannot leak
        # across an append.
        self._distinct_t = None
        self._resolution = None
        self._fingerprint = None
        # Prefix-fingerprint chain: ``(event_count, fingerprint)`` pairs
        # recorded by extend(), oldest first.  Content-derived streams
        # start with an empty chain.
        self._chain = ()

    # -- constructors ----------------------------------------------------

    @classmethod
    def from_triples(
        cls,
        triples: Iterable[tuple[Hashable, Hashable, float]],
        *,
        directed: bool = True,
    ) -> "LinkStream":
        """Build a stream from ``(u_label, v_label, t)`` triples.

        Labels may be any hashable values; they are mapped to dense indices
        in first-seen order.
        """
        labels: list[Hashable] = []
        index: dict[Hashable, int] = {}
        us: list[int] = []
        vs: list[int] = []
        ts: list[float] = []
        for lu, lv, t in triples:
            for lab in (lu, lv):
                if lab not in index:
                    index[lab] = len(labels)
                    labels.append(lab)
            us.append(index[lu])
            vs.append(index[lv])
            ts.append(t)
        return cls(us, vs, ts, directed=directed, num_nodes=len(labels), labels=labels)

    @classmethod
    def from_storage(
        cls,
        storage: StreamStorage,
        *,
        directed: bool = True,
        num_nodes: int,
        labels: Iterable[Hashable] | None = None,
        fingerprint: str | None = None,
    ) -> "LinkStream":
        """Wrap an existing storage backend as a stream (trusted path).

        The backend's columns must already be in canonical
        ``lexsort((v, u, t))`` order with validation done (undirected
        pairs canonicalized, no self-loops) — exactly what every
        :class:`~repro.storage.StreamStorage` implementation guarantees.
        No per-event work happens here, so a lazy backend stays lazy:
        ``num_events``/``t_min``/``t_max`` answer from metadata, and the
        event bytes load only when an algorithm touches the columns.

        ``fingerprint`` pre-seeds the content hash (a catalog manifest
        records the one computed at ingest), letting engine cache keys
        be derived without materializing anything.
        """
        stream = object.__new__(cls)
        stream._storage = storage
        stream._directed = bool(directed)
        stream._num_nodes = int(num_nodes)
        if labels is not None:
            label_list = list(labels)
            if len(label_list) != stream._num_nodes:
                raise LinkStreamError(
                    f"labels has {len(label_list)} entries for "
                    f"{stream._num_nodes} nodes"
                )
            stream._labels = label_list
        else:
            stream._labels = None
        stream._label_index = None
        stream._distinct_t = None
        stream._resolution = None
        stream._fingerprint = fingerprint
        stream._chain = tuple(storage.fingerprint_chain())
        return stream

    # -- basic accessors ---------------------------------------------------

    @property
    def storage(self) -> StreamStorage:
        """The :class:`~repro.storage.StreamStorage` backend holding the
        event columns."""
        return self._storage

    # The private column aliases below are how the rest of this class
    # (and only this class — no other module touches them) reads the
    # event arrays; they force a lazy backend to materialize.
    @property
    def _u(self) -> np.ndarray:
        return self._storage.sources

    @property
    def _v(self) -> np.ndarray:
        return self._storage.targets

    @property
    def _t(self) -> np.ndarray:
        return self._storage.timestamps

    @property
    def num_nodes(self) -> int:
        """Size of the node set ``V``."""
        return self._num_nodes

    @property
    def num_events(self) -> int:
        """Number of triplets in the stream (with multiplicity)."""
        return self._storage.num_events

    @property
    def directed(self) -> bool:
        return self._directed

    @property
    def sources(self) -> np.ndarray:
        """Read-only source index array, sorted by event time."""
        return self._u

    @property
    def targets(self) -> np.ndarray:
        """Read-only target index array, sorted by event time."""
        return self._v

    @property
    def timestamps(self) -> np.ndarray:
        """Read-only timestamp array, ascending."""
        return self._t

    @property
    def labels(self) -> list[Hashable]:
        """External node labels (identity labels if none were given)."""
        if self._labels is None:
            return list(range(self._num_nodes))
        return list(self._labels)

    @property
    def t_min(self) -> float:
        """Earliest event time (raises on an empty stream)."""
        bounds = self._storage.time_range()
        if bounds is None:
            raise LinkStreamError("empty stream has no t_min")
        return bounds[0]

    @property
    def t_max(self) -> float:
        """Latest event time (raises on an empty stream)."""
        bounds = self._storage.time_range()
        if bounds is None:
            raise LinkStreamError("empty stream has no t_max")
        return bounds[1]

    @property
    def span(self) -> float:
        """Length ``t_max - t_min`` of the observed period."""
        return self.t_max - self.t_min

    def __len__(self) -> int:
        return self.num_events

    def __repr__(self) -> str:
        kind = "directed" if self._directed else "undirected"
        bounds = self._storage.time_range()
        if bounds is not None:
            window = f", over [{bounds[0]}, {bounds[1]}]"
        else:
            window = ""
        return (
            f"LinkStream({kind}, {self.num_nodes} nodes, {self.num_events} events{window})"
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, LinkStream):
            return NotImplemented
        return (
            self._directed == other._directed
            and self._num_nodes == other._num_nodes
            and self.labels == other.labels
            and np.array_equal(self._u, other._u)
            and np.array_equal(self._v, other._v)
            and np.array_equal(self._t, other._t)
        )

    def __hash__(self) -> int:  # streams are mutable-looking but frozen
        return hash((self._directed, self._num_nodes, self._t.tobytes()))

    # -- label mapping -----------------------------------------------------

    def label_of(self, index: int) -> Hashable:
        """External label of node ``index``."""
        if self._labels is None:
            return index
        return self._labels[index]

    def index_of(self, label: Hashable) -> int:
        """Dense index of the node carrying ``label``."""
        if self._labels is None:
            idx = int(label)
            if not 0 <= idx < self._num_nodes:
                raise LinkStreamError(f"unknown node label {label!r}")
            return idx
        if self._label_index is None:
            self._label_index = {lab: i for i, lab in enumerate(self._labels)}
        try:
            return self._label_index[label]
        except KeyError:
            raise LinkStreamError(f"unknown node label {label!r}") from None

    def events(self) -> Iterator[tuple[Hashable, Hashable, float]]:
        """Iterate events as ``(u_label, v_label, t)`` in time order."""
        for u, v, t in zip(self._u, self._v, self._t):
            yield self.label_of(int(u)), self.label_of(int(v)), t.item()

    # -- time structure ------------------------------------------------------

    def distinct_timestamps(self) -> np.ndarray:
        """Sorted array of distinct event times (cached, read-only)."""
        if self._distinct_t is None:
            distinct = np.unique(self._t)
            distinct.setflags(write=False)
            self._distinct_t = distinct
        return self._distinct_t

    def resolution(self) -> float:
        """Smallest positive gap between distinct timestamps (cached).

        This is the finest meaningful aggregation period (the paper sweeps
        Δ from the timestamp resolution up to the full span).
        """
        if self._resolution is None:
            distinct = self.distinct_timestamps()
            if distinct.size < 2:
                raise LinkStreamError(
                    "need at least two distinct timestamps for a resolution"
                )
            self._resolution = float(np.diff(distinct).min())
        return self._resolution

    def fingerprint(self) -> str:
        """Content hash of the stream (cached).

        Covers the event arrays, their dtypes, directedness, and the node
        count — everything that determines the outcome of an aggregation
        or a sweep.  Node labels are deliberately excluded: relabeling
        does not change any measured quantity.  Used by
        :mod:`repro.engine` to key its sweep cache.
        """
        if self._fingerprint is None:
            digest = hashlib.sha256()
            digest.update(
                f"v1|{int(self._directed)}|{self._num_nodes}|"
                f"{self._storage.time_dtype.str}|".encode()
            )
            digest.update(self._u.tobytes())
            digest.update(self._v.tobytes())
            digest.update(self._t.tobytes())
            self._fingerprint = digest.hexdigest()
        return self._fingerprint

    # -- appending -----------------------------------------------------------

    @property
    def fingerprint_chain(self) -> tuple[tuple[int, str], ...]:
        """Prefix fingerprints recorded by :meth:`extend`.

        A tuple of ``(event_count, fingerprint)`` pairs, oldest first:
        one entry per ancestor this stream was grown from, each giving
        the content fingerprint the stream had when it held exactly
        ``event_count`` events.  Streams not built by ``extend`` have an
        empty chain.
        """
        return self._chain

    def prefix_fingerprint(self, num_events: int) -> str:
        """Fingerprint of the stream's first ``num_events`` events.

        Because appends are strictly time-increasing, the first
        ``num_events`` rows of the (time-sorted) event arrays *are* the
        historical prefix, so any prefix fingerprint is recoverable
        without re-sorting.  Boundaries recorded by :meth:`extend` are
        answered from the chain in O(1); other cuts hash the prefix
        slices directly.  The prefix is fingerprinted with *this*
        stream's node count (for chain boundaries the recorded —
        historically exact — value is returned instead).
        """
        if not 0 <= num_events <= self.num_events:
            raise LinkStreamError(
                f"prefix of {num_events} events out of range for a stream "
                f"of {self.num_events}"
            )
        if num_events == self.num_events:
            return self.fingerprint()
        for count, known in self._chain:
            if count == num_events:
                return known
        digest = hashlib.sha256()
        digest.update(
            f"v1|{int(self._directed)}|{self._num_nodes}|"
            f"{self._storage.time_dtype.str}|".encode()
        )
        digest.update(self._u[:num_events].tobytes())
        digest.update(self._v[:num_events].tobytes())
        digest.update(self._t[:num_events].tobytes())
        return digest.hexdigest()

    def extend(self, events, v=None, t=None) -> "LinkStream":
        """A new stream holding this stream's events plus an appended batch.

        Accepts either an iterable of ``(u, v, t)`` index triples
        (``stream.extend(events)``) or three parallel arrays
        (``stream.extend(u, v, t)``).  The append-only contract: every
        new timestamp must be **strictly greater** than :attr:`t_max`,
        otherwise :class:`AppendOrderError` is raised — an in-order
        append keeps the existing events a literal prefix of the new
        arrays, which is what makes prefix fingerprints, cached
        aggregations, and checkpointed scan state reusable.

        The returned stream is constructed exactly as a from-scratch
        build over the concatenated events (bit-identical arrays and
        fingerprint), and additionally records this stream's
        ``(num_events, fingerprint)`` on its :attr:`fingerprint_chain`.

        Node handling: appended indices may name new nodes only on
        unlabeled streams (``num_nodes`` grows; pre-size ``num_nodes``
        when registering a stream you intend to grow, since a node-set
        change blocks warm scan resume).  Appending float timestamps to
        an integer-time stream is rejected — it would flip the time
        dtype and with it every recorded fingerprint.
        """
        if v is None:
            rows = list(events)
            u_new = np.asarray([r[0] for r in rows], dtype=np.int64)
            v_new = np.asarray([r[1] for r in rows], dtype=np.int64)
            t_new = np.asarray([r[2] for r in rows])
        else:
            if t is None:
                raise LinkStreamError("extend needs either triples or all of u, v, t")
            u_new = np.asarray(events, dtype=np.int64)
            v_new = np.asarray(v, dtype=np.int64)
            t_new = np.asarray(t)
        if not (u_new.shape == v_new.shape == t_new.shape) or u_new.ndim != 1:
            raise LinkStreamError("appended u, v, t must be one-dimensional and equal length")

        chain_entry = (self.num_events, self.fingerprint())
        if not t_new.size:
            # Empty batch: same content, same fingerprint — but record
            # the boundary so the append lineage stays explicit.
            grown = self.copy()
            grown._chain = self._chain + (chain_entry,)
            grown._fingerprint = self._fingerprint
            return grown

        if t_new.dtype.kind not in "iuf":
            raise LinkStreamError(f"timestamps must be numeric, got dtype {t_new.dtype}")
        if t_new.dtype.kind == "f" and not np.all(np.isfinite(t_new)):
            raise LinkStreamError("timestamps must be finite")
        if self.num_events:
            if self._t.dtype.kind == "i" and t_new.dtype.kind == "f":
                raise LinkStreamError(
                    "cannot append float timestamps to an integer-time stream: "
                    "the time dtype (part of every fingerprint) would change; "
                    "rebuild the base stream with float times first"
                )
            if not np.all(t_new > self._t[-1]):
                raise AppendOrderError(
                    f"appended timestamps must all be strictly greater than "
                    f"t_max={self.t_max}; got min {np.asarray(t_new).min()}"
                )
        if u_new.size:
            hi = int(max(u_new.max(), v_new.max()))
            if hi >= self._num_nodes and self._labels is not None:
                raise LinkStreamError(
                    f"appended event names node index {hi} but the labeled "
                    f"stream has only {self._num_nodes} nodes"
                )
        if not self.num_events:
            # Empty base: delegate entirely to the constructor so the
            # time dtype comes out exactly as a from-scratch build.
            grown = LinkStream(
                u_new,
                v_new,
                t_new,
                directed=self._directed,
                num_nodes=max(self._num_nodes, int(max(u_new.max(), v_new.max())) + 1)
                if u_new.size
                else self._num_nodes,
                labels=self._labels,
            )
            grown._chain = self._chain + (chain_entry,)
            return grown
        num_nodes = self._num_nodes
        if u_new.size:
            num_nodes = max(num_nodes, int(max(u_new.max(), v_new.max())) + 1)
        grown = LinkStream(
            np.concatenate([self._u, u_new]),
            np.concatenate([self._v, v_new]),
            np.concatenate([self._t, t_new.astype(self._t.dtype)]),
            directed=self._directed,
            num_nodes=num_nodes,
            labels=self._labels,
        )
        grown._chain = self._chain + (chain_entry,)
        return grown

    # -- derived streams -----------------------------------------------------

    def restrict_time(self, start: float, end: float, *, half_open: bool = True) -> "LinkStream":
        """Sub-stream of events with ``start <= t < end`` (or ``<= end``).

        Alias of :meth:`slice_time` (kept for the historical name): the
        time-major canonical order makes the restriction a contiguous
        row range, so it is answered by the storage backend without a
        mask scan — and without loading non-overlapping partitions on
        out-of-core backends.
        """
        return self.slice_time(start, end, half_open=half_open)

    def slice_time(self, start: float, end: float, *, half_open: bool = True) -> "LinkStream":
        """Sub-stream of events with ``start <= t < end`` (or ``<= end``).

        Delegates to :meth:`StreamStorage.slice_time`: the node set,
        labels, and directedness are preserved (as ``restrict_time``
        always did), and on a :class:`~repro.storage.PartitionedStorage`
        backend only the partitions overlapping the range are ever
        loaded — this is the engine's narrow-span entry point.
        """
        sliced = self._storage.slice_time(start, end, half_open=half_open)
        return LinkStream.from_storage(
            sliced,
            directed=self._directed,
            num_nodes=self._num_nodes,
            labels=self._labels,
        )

    def restrict_nodes(self, labels: Iterable[Hashable]) -> "LinkStream":
        """Sub-stream induced by a node subset; nodes are re-indexed densely."""
        keep_idx = sorted({self.index_of(lab) for lab in labels})
        lookup = np.full(self._num_nodes, -1, dtype=np.int64)
        for new, old in enumerate(keep_idx):
            lookup[old] = new
        mask = (lookup[self._u] >= 0) & (lookup[self._v] >= 0)
        new_labels = [self.label_of(old) for old in keep_idx]
        return LinkStream(
            lookup[self._u[mask]],
            lookup[self._v[mask]],
            self._t[mask],
            directed=self._directed,
            num_nodes=len(keep_idx),
            labels=new_labels if self._labels is not None else None,
        )

    def to_undirected(self) -> "LinkStream":
        """Forget edge direction (pairs are canonicalized)."""
        if not self._directed:
            return self
        return LinkStream(
            self._u,
            self._v,
            self._t,
            directed=False,
            num_nodes=self._num_nodes,
            labels=self._labels,
        )

    def shift_time(self, offset: float) -> "LinkStream":
        """Translate all timestamps by ``offset``."""
        return self._replace_events(self._u, self._v, self._t + offset)

    def scale_time(self, factor: float) -> "LinkStream":
        """Multiply all timestamps by a positive ``factor``."""
        if factor <= 0:
            raise LinkStreamError("time scale factor must be positive")
        return self._replace_events(self._u, self._v, self._t * factor)

    def copy(self) -> "LinkStream":
        return self._replace_events(self._u, self._v, self._t)

    def _replace_events(self, u: np.ndarray, v: np.ndarray, t: np.ndarray) -> "LinkStream":
        return LinkStream(
            u,
            v,
            t,
            directed=self._directed,
            num_nodes=self._num_nodes,
            labels=self._labels,
        )
