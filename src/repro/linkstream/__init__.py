"""Link-stream substrate.

A *link stream* (the paper's raw input) is a finite collection of triplets
``(u, v, t)``: nodes ``u`` and ``v`` interact at time ``t``.  This package
provides the columnar :class:`LinkStream` container, file readers/writers,
stream surgery operations and descriptive statistics.
"""

from repro.linkstream.intervals import IntervalStream
from repro.linkstream.io import (
    iter_triples,
    read_csv,
    read_event_arrays,
    read_jsonl,
    read_tsv,
    write_csv,
    write_jsonl,
    write_tsv,
)
from repro.linkstream.operations import (
    concatenate,
    deduplicate,
    relabel,
    reverse_time,
    subsample_events,
)
from repro.linkstream.statistics import (
    activity_profile,
    burstiness,
    circadian_profile,
    inter_contact_times,
    mean_activity_per_node_per_day,
    mean_inter_contact_time,
    node_event_counts,
    pair_event_counts,
    stream_summary,
)
from repro.linkstream.stream import LinkStream

__all__ = [
    "LinkStream",
    "IntervalStream",
    "read_tsv",
    "write_tsv",
    "read_csv",
    "write_csv",
    "read_jsonl",
    "write_jsonl",
    "read_event_arrays",
    "iter_triples",
    "concatenate",
    "deduplicate",
    "relabel",
    "reverse_time",
    "subsample_events",
    "node_event_counts",
    "pair_event_counts",
    "inter_contact_times",
    "mean_inter_contact_time",
    "mean_activity_per_node_per_day",
    "activity_profile",
    "circadian_profile",
    "burstiness",
    "stream_summary",
]
