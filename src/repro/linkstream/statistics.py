"""Descriptive statistics of link streams.

Section 5 of the paper interprets the saturation scale against the traces'
*activity* (messages per person per day) and Section 6 against the *mean
inter-contact time* of nodes; this module computes those quantities plus
the usual companions (activity profiles, burstiness, circadian rhythm).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.linkstream.stream import LinkStream
from repro.utils.errors import LinkStreamError
from repro.utils.timeunits import DAY


def node_event_counts(stream: LinkStream) -> np.ndarray:
    """Number of events each node participates in (as source or target)."""
    counts = np.zeros(stream.num_nodes, dtype=np.int64)
    np.add.at(counts, stream.sources, 1)
    np.add.at(counts, stream.targets, 1)
    return counts


def pair_event_counts(stream: LinkStream) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Distinct node pairs and their event counts.

    Returns ``(u, v, count)`` arrays; for undirected streams pairs are
    canonical (``u < v``).
    """
    if not stream.num_events:
        empty = np.empty(0, dtype=np.int64)
        return empty, empty.copy(), empty.copy()
    key = stream.sources.astype(np.int64) * stream.num_nodes + stream.targets
    unique_keys, counts = np.unique(key, return_counts=True)
    return unique_keys // stream.num_nodes, unique_keys % stream.num_nodes, counts


def inter_contact_times(stream: LinkStream) -> np.ndarray:
    """Per-node gaps between consecutive events, pooled over all nodes.

    For each node, take the sorted times of the events it participates in
    and collect consecutive differences.  Nodes with fewer than two events
    contribute nothing.
    """
    if not stream.num_events:
        return np.empty(0, dtype=np.float64)
    # Duplicate each event for both endpoints, then sort by (node, time):
    # consecutive rows with the same node give the gaps.
    nodes = np.concatenate([stream.sources, stream.targets])
    times = np.concatenate([stream.timestamps, stream.timestamps]).astype(np.float64)
    order = np.lexsort((times, nodes))
    nodes = nodes[order]
    times = times[order]
    same_node = nodes[1:] == nodes[:-1]
    gaps = times[1:] - times[:-1]
    return gaps[same_node]


def mean_inter_contact_time(stream: LinkStream) -> float:
    """Mean of :func:`inter_contact_times` (the x-axis of Figure 6 left)."""
    gaps = inter_contact_times(stream)
    if not gaps.size:
        raise LinkStreamError("stream has no node with two events")
    return float(gaps.mean())


def mean_activity_per_node_per_day(stream: LinkStream) -> float:
    """Events per node per day — the paper's activity statistic.

    Section 5 reports 0.66 (Irvine), 0.12 (Facebook), 0.29 (Enron) and
    2.22 (Manufacturing) messages sent per person per day.
    """
    if stream.num_events < 2:
        raise LinkStreamError("activity needs at least two events")
    days = stream.span / DAY
    if days <= 0:
        raise LinkStreamError("stream span must be positive")
    return stream.num_events / stream.num_nodes / days


def activity_profile(
    stream: LinkStream, bin_width: float
) -> tuple[np.ndarray, np.ndarray]:
    """Event counts per time bin of width ``bin_width``.

    Returns ``(bin_starts, counts)``; bins cover ``[t_min, t_max]``.
    """
    if bin_width <= 0:
        raise LinkStreamError("bin_width must be positive")
    if not stream.num_events:
        return np.empty(0), np.empty(0, dtype=np.int64)
    start = stream.t_min
    num_bins = int(np.floor((stream.t_max - start) / bin_width)) + 1
    index = np.floor((stream.timestamps - start) / bin_width).astype(np.int64)
    index = np.clip(index, 0, num_bins - 1)
    counts = np.bincount(index, minlength=num_bins)
    return start + bin_width * np.arange(num_bins), counts


def circadian_profile(
    stream: LinkStream, *, day_length: float = DAY, bins: int = 24
) -> np.ndarray:
    """Fraction of events per phase-of-day bin (default: 24 hourly bins)."""
    if bins <= 0:
        raise LinkStreamError("bins must be positive")
    if not stream.num_events:
        return np.zeros(bins)
    phase = np.mod(stream.timestamps, day_length) / day_length
    index = np.minimum((phase * bins).astype(np.int64), bins - 1)
    counts = np.bincount(index, minlength=bins).astype(np.float64)
    return counts / counts.sum()


def burstiness(stream: LinkStream) -> float:
    """Goh–Barabási burstiness ``(σ - μ) / (σ + μ)`` of inter-contact times.

    0 for a Poisson process, positive for bursty activity (real traces),
    negative for regular activity.
    """
    gaps = inter_contact_times(stream)
    if not gaps.size:
        raise LinkStreamError("stream has no node with two events")
    mu = gaps.mean()
    sigma = gaps.std()
    if sigma + mu == 0:
        return 0.0
    return float((sigma - mu) / (sigma + mu))


@dataclass(frozen=True)
class StreamSummary:
    """Headline statistics of a link stream (one row of the Section 5 table)."""

    num_nodes: int
    num_events: int
    span_seconds: float
    distinct_pairs: int
    activity_per_node_per_day: float
    mean_inter_contact_seconds: float
    burstiness: float

    def as_dict(self) -> dict[str, float]:
        return {
            "num_nodes": self.num_nodes,
            "num_events": self.num_events,
            "span_seconds": self.span_seconds,
            "distinct_pairs": self.distinct_pairs,
            "activity_per_node_per_day": self.activity_per_node_per_day,
            "mean_inter_contact_seconds": self.mean_inter_contact_seconds,
            "burstiness": self.burstiness,
        }


def stream_summary(stream: LinkStream) -> StreamSummary:
    """Compute a :class:`StreamSummary` (used by the dataset table bench).

    Statistics that need repeat contacts (inter-contact time,
    burstiness) come out as ``nan`` when no node has two events.
    """
    pair_u, __, __ = pair_event_counts(stream)
    gaps = inter_contact_times(stream)
    if gaps.size:
        inter_contact = float(gaps.mean())
        bursty = burstiness(stream)
    else:
        inter_contact = float("nan")
        bursty = float("nan")
    return StreamSummary(
        num_nodes=stream.num_nodes,
        num_events=stream.num_events,
        span_seconds=float(stream.span),
        distinct_pairs=int(pair_u.size),
        activity_per_node_per_day=mean_activity_per_node_per_day(stream),
        mean_inter_contact_seconds=inter_contact,
        burstiness=bursty,
    )
