"""Readers and writers for link streams.

Supported formats:

* **TSV / CSV** — one event per line.  The default column order
  ``u v t`` matches the KONECT / SNAP dumps of the paper's four traces;
  the order is configurable via ``columns``.
* **JSON lines** — one ``{"u": ..., "v": ..., "t": ...}`` object per line,
  convenient for labeled nodes.

Lines starting with ``#`` or ``%`` are treated as comments in the
delimited formats (KONECT uses ``%``).

All readers and writers transparently handle gzip compression: a path
ending in ``.gz`` (e.g. ``out.contact.gz`` as KONECT distributes its
dumps) is decompressed/compressed on the fly, so full-scale traces load
without pre-extraction.
"""

from __future__ import annotations

import gzip
import json
from collections.abc import Hashable, Iterable
from pathlib import Path
from typing import TextIO

from repro.linkstream.stream import LinkStream
from repro.utils.errors import LinkStreamError

_COMMENT_PREFIXES = ("#", "%")


def _open_text(path: str | Path, mode: str) -> TextIO:
    """Open ``path`` for text reading/writing, gunzipping ``.gz`` files."""
    if str(path).endswith(".gz"):
        return gzip.open(path, mode + "t", encoding="utf-8")
    return open(path, mode, encoding="utf-8")


def _parse_delimited(
    path: str | Path,
    delimiter: str | None,
    columns: str,
    directed: bool,
) -> LinkStream:
    order = columns.split()
    if sorted(order) != ["t", "u", "v"]:
        raise LinkStreamError(f"columns must be a permutation of 'u v t', got {columns!r}")
    iu, iv, it = order.index("u"), order.index("v"), order.index("t")

    def triples() -> Iterable[tuple[Hashable, Hashable, float]]:
        with _open_text(path, "r") as handle:
            for lineno, line in enumerate(handle, start=1):
                line = line.strip()
                if not line or line.startswith(_COMMENT_PREFIXES):
                    continue
                parts = line.split(delimiter)
                if len(parts) < 3:
                    raise LinkStreamError(f"{path}:{lineno}: expected >= 3 fields, got {len(parts)}")
                try:
                    t = float(parts[it])
                except ValueError:
                    raise LinkStreamError(f"{path}:{lineno}: bad timestamp {parts[it]!r}") from None
                yield parts[iu], parts[iv], t

    return LinkStream.from_triples(triples(), directed=directed)


def read_tsv(
    path: str | Path,
    *,
    columns: str = "u v t",
    directed: bool = True,
) -> LinkStream:
    """Read a tab/whitespace-separated event file."""
    return _parse_delimited(path, None, columns, directed)


def read_csv(
    path: str | Path,
    *,
    columns: str = "u v t",
    directed: bool = True,
) -> LinkStream:
    """Read a comma-separated event file."""
    return _parse_delimited(path, ",", columns, directed)


def read_jsonl(path: str | Path, *, directed: bool = True) -> LinkStream:
    """Read a JSON-lines event file with ``u``, ``v``, ``t`` keys."""

    def triples() -> Iterable[tuple[Hashable, Hashable, float]]:
        with _open_text(path, "r") as handle:
            for lineno, line in enumerate(handle, start=1):
                line = line.strip()
                if not line:
                    continue
                record = json.loads(line)
                try:
                    yield record["u"], record["v"], float(record["t"])
                except KeyError as missing:
                    raise LinkStreamError(f"{path}:{lineno}: missing key {missing}") from None

    return LinkStream.from_triples(triples(), directed=directed)


def write_tsv(stream: LinkStream, path: str | Path, *, columns: str = "u v t") -> None:
    """Write one ``u<TAB>v<TAB>t`` line per event (order configurable)."""
    _write_delimited(stream, path, "\t", columns)


def write_csv(stream: LinkStream, path: str | Path, *, columns: str = "u v t") -> None:
    """Write one ``u,v,t`` line per event (order configurable)."""
    _write_delimited(stream, path, ",", columns)


def _write_delimited(stream: LinkStream, path: str | Path, sep: str, columns: str) -> None:
    order = columns.split()
    if sorted(order) != ["t", "u", "v"]:
        raise LinkStreamError(f"columns must be a permutation of 'u v t', got {columns!r}")
    with _open_text(path, "w") as handle:
        for u, v, t in stream.events():
            fields = {"u": u, "v": v, "t": t}
            handle.write(sep.join(str(fields[c]) for c in order))
            handle.write("\n")


def write_jsonl(stream: LinkStream, path: str | Path) -> None:
    """Write one JSON object per event."""
    with _open_text(path, "w") as handle:
        for u, v, t in stream.events():
            handle.write(json.dumps({"u": u, "v": v, "t": t}))
            handle.write("\n")
