"""Readers and writers for link streams.

Supported formats:

* **TSV / CSV** — one event per line.  The default column order
  ``u v t`` matches the KONECT / SNAP dumps of the paper's four traces;
  the order is configurable via ``columns``.
* **JSON lines** — one ``{"u": ..., "v": ..., "t": ...}`` object per line,
  convenient for labeled nodes.

Lines starting with ``#`` or ``%`` are treated as comments in the
delimited formats (KONECT uses ``%``).

All readers and writers transparently handle gzip compression: a path
ending in ``.gz`` (e.g. ``out.contact.gz`` as KONECT distributes its
dumps) is decompressed/compressed on the fly, so full-scale traces load
without pre-extraction.
"""

from __future__ import annotations

import gzip
import json
import os
from collections.abc import Hashable, Iterator
from pathlib import Path
from typing import TextIO

import numpy as np

from repro.linkstream.stream import LinkStream
from repro.utils.errors import LinkStreamError

_COMMENT_PREFIXES = ("#", "%")

#: Chunk size (events) for the bounded-memory array readers used by the
#: dataset catalog's ingest path.
INGEST_CHUNK_ENV_VAR = "REPRO_INGEST_CHUNK_EVENTS"
DEFAULT_INGEST_CHUNK_EVENTS = 65536


def ingest_chunk_events() -> int:
    """Ingest chunk size: ``REPRO_INGEST_CHUNK_EVENTS`` or the default."""
    raw = os.environ.get(INGEST_CHUNK_ENV_VAR)
    if raw is None:
        return DEFAULT_INGEST_CHUNK_EVENTS
    try:
        value = int(raw)
    except ValueError:
        raise LinkStreamError(
            f"{INGEST_CHUNK_ENV_VAR} must be a positive integer, got {raw!r}"
        ) from None
    if value <= 0:
        raise LinkStreamError(
            f"{INGEST_CHUNK_ENV_VAR} must be a positive integer, got {raw!r}"
        )
    return value


def _open_text(path: str | Path, mode: str) -> TextIO:
    """Open ``path`` for text reading/writing, gunzipping ``.gz`` files."""
    if str(path).endswith(".gz"):
        return gzip.open(path, mode + "t", encoding="utf-8")
    return open(path, mode, encoding="utf-8")


def _iter_delimited_triples(
    path: str | Path, delimiter: str | None, columns: str
) -> Iterator[tuple[Hashable, Hashable, float]]:
    order = columns.split()
    if sorted(order) != ["t", "u", "v"]:
        raise LinkStreamError(f"columns must be a permutation of 'u v t', got {columns!r}")
    iu, iv, it = order.index("u"), order.index("v"), order.index("t")
    with _open_text(path, "r") as handle:
        for lineno, line in enumerate(handle, start=1):
            line = line.strip()
            if not line or line.startswith(_COMMENT_PREFIXES):
                continue
            parts = line.split(delimiter)
            if len(parts) < 3:
                raise LinkStreamError(f"{path}:{lineno}: expected >= 3 fields, got {len(parts)}")
            try:
                t = float(parts[it])
            except ValueError:
                raise LinkStreamError(f"{path}:{lineno}: bad timestamp {parts[it]!r}") from None
            yield parts[iu], parts[iv], t


def _iter_jsonl_triples(
    path: str | Path,
) -> Iterator[tuple[Hashable, Hashable, float]]:
    with _open_text(path, "r") as handle:
        for lineno, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            record = json.loads(line)
            try:
                yield record["u"], record["v"], float(record["t"])
            except KeyError as missing:
                raise LinkStreamError(f"{path}:{lineno}: missing key {missing}") from None


def iter_triples(
    path: str | Path, *, fmt: str = "tsv", columns: str = "u v t"
) -> Iterator[tuple[Hashable, Hashable, float]]:
    """Iterate ``(u_label, v_label, t)`` triples of any supported format."""
    if fmt == "tsv":
        return _iter_delimited_triples(path, None, columns)
    if fmt == "csv":
        return _iter_delimited_triples(path, ",", columns)
    if fmt == "jsonl":
        return _iter_jsonl_triples(path)
    raise LinkStreamError(f"unknown stream format {fmt!r} (tsv, csv, jsonl)")


def read_event_arrays(
    path: str | Path,
    *,
    fmt: str = "tsv",
    columns: str = "u v t",
    chunk_events: int | None = None,
) -> tuple[np.ndarray, np.ndarray, np.ndarray, list[Hashable]]:
    """Read an event file into dense index/timestamp columns, chunked.

    The catalog's ingest reader: labels are mapped to dense indices in
    first-seen order (exactly as :meth:`LinkStream.from_triples`), but
    parsed rows are flushed into numpy columns every ``chunk_events``
    events (``REPRO_INGEST_CHUNK_EVENTS``, default 65536) so peak
    ingest memory holds one
    chunk of Python objects plus the packed columns — not a Python list
    of every event in the file.

    Returns ``(u, v, t, labels)``; feed them to ``LinkStream`` with
    ``num_nodes=len(labels)`` to get a stream identical to the
    whole-file readers' output.
    """
    if chunk_events is None:
        chunk_events = ingest_chunk_events()
    if chunk_events <= 0:
        raise LinkStreamError(f"chunk_events must be positive, got {chunk_events}")
    labels: list[Hashable] = []
    index: dict[Hashable, int] = {}
    u_parts: list[np.ndarray] = []
    v_parts: list[np.ndarray] = []
    t_parts: list[np.ndarray] = []
    us: list[int] = []
    vs: list[int] = []
    ts: list[float] = []

    def flush() -> None:
        if us:
            u_parts.append(np.asarray(us, dtype=np.int64))
            v_parts.append(np.asarray(vs, dtype=np.int64))
            t_parts.append(np.asarray(ts, dtype=np.float64))
            us.clear()
            vs.clear()
            ts.clear()

    for lu, lv, t in iter_triples(path, fmt=fmt, columns=columns):
        for lab in (lu, lv):
            if lab not in index:
                index[lab] = len(labels)
                labels.append(lab)
        us.append(index[lu])
        vs.append(index[lv])
        ts.append(t)
        if len(ts) >= chunk_events:
            flush()
    flush()
    if u_parts:
        u = np.concatenate(u_parts)
        v = np.concatenate(v_parts)
        t_arr = np.concatenate(t_parts)
    else:
        u = np.empty(0, dtype=np.int64)
        v = np.empty(0, dtype=np.int64)
        t_arr = np.empty(0, dtype=np.float64)
    return u, v, t_arr, labels


def _parse_delimited(
    path: str | Path,
    delimiter: str | None,
    columns: str,
    directed: bool,
) -> LinkStream:
    return LinkStream.from_triples(
        _iter_delimited_triples(path, delimiter, columns), directed=directed
    )


def read_tsv(
    path: str | Path,
    *,
    columns: str = "u v t",
    directed: bool = True,
) -> LinkStream:
    """Read a tab/whitespace-separated event file."""
    return _parse_delimited(path, None, columns, directed)


def read_csv(
    path: str | Path,
    *,
    columns: str = "u v t",
    directed: bool = True,
) -> LinkStream:
    """Read a comma-separated event file."""
    return _parse_delimited(path, ",", columns, directed)


def read_jsonl(path: str | Path, *, directed: bool = True) -> LinkStream:
    """Read a JSON-lines event file with ``u``, ``v``, ``t`` keys."""
    return LinkStream.from_triples(_iter_jsonl_triples(path), directed=directed)


def write_tsv(stream: LinkStream, path: str | Path, *, columns: str = "u v t") -> None:
    """Write one ``u<TAB>v<TAB>t`` line per event (order configurable)."""
    _write_delimited(stream, path, "\t", columns)


def write_csv(stream: LinkStream, path: str | Path, *, columns: str = "u v t") -> None:
    """Write one ``u,v,t`` line per event (order configurable)."""
    _write_delimited(stream, path, ",", columns)


def _write_delimited(stream: LinkStream, path: str | Path, sep: str, columns: str) -> None:
    order = columns.split()
    if sorted(order) != ["t", "u", "v"]:
        raise LinkStreamError(f"columns must be a permutation of 'u v t', got {columns!r}")
    with _open_text(path, "w") as handle:
        for u, v, t in stream.events():
            fields = {"u": u, "v": v, "t": t}
            handle.write(sep.join(str(fields[c]) for c in order))
            handle.write("\n")


def write_jsonl(stream: LinkStream, path: str | Path) -> None:
    """Write one JSON object per event."""
    with _open_text(path, "w") as handle:
        for u, v, t in stream.events():
            handle.write(json.dumps({"u": u, "v": v, "t": t}))
            handle.write("\n")
