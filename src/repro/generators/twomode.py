"""Two-mode synthetic networks (Section 6, Figure 6 right).

The paper: *"two-mode networks that are built by 10 alternations of one
period of high activity and one period of low activity, which are time
uniform networks with parameters N1, T1 and N2, T2 respectively.  N1, N2
and the whole length T = 10(T1 + T2) of study are fixed and we vary the
ratio between T1 and T2."*

The interesting finding these networks exhibit: the saturation scale
stays pinned to the high-activity value until low-activity time occupies
~70–80 % of the study, then rises progressively to the low-activity
value — γ respects the informative part of the dynamics.
"""

from __future__ import annotations

import numpy as np

from repro.generators.uniform import time_uniform_stream
from repro.linkstream.operations import concatenate
from repro.linkstream.stream import LinkStream
from repro.utils.errors import ValidationError
from repro.utils.rng import ensure_rng


def two_mode_stream(
    num_nodes: int,
    links_high: int,
    span_high: float,
    links_low: int,
    span_low: float,
    *,
    alternations: int = 10,
    integer_times: bool = True,
    seed: int | np.random.Generator | None = None,
) -> LinkStream:
    """Alternate high-activity and low-activity time-uniform periods.

    Each of the ``alternations`` rounds is one high period (``links_high``
    events per pair over ``span_high``) followed by one low period
    (``links_low`` over ``span_low``).  Either span may be zero, which
    skips that mode entirely (the ρ = 0 % and ρ = 100 % endpoints).
    """
    if alternations < 1:
        raise ValidationError("need at least one alternation")
    if span_high < 0 or span_low < 0:
        raise ValidationError("spans must be non-negative")
    if span_high == 0 and span_low == 0:
        raise ValidationError("at least one mode must have positive span")
    rng = ensure_rng(seed)
    pieces: list[LinkStream] = []
    clock = 0.0
    for __ in range(alternations):
        if span_high > 0:
            pieces.append(
                time_uniform_stream(
                    num_nodes,
                    links_high,
                    span_high,
                    t_start=clock,
                    integer_times=integer_times,
                    seed=rng,
                )
            )
            clock += span_high
        if span_low > 0:
            pieces.append(
                time_uniform_stream(
                    num_nodes,
                    links_low,
                    span_low,
                    t_start=clock,
                    integer_times=integer_times,
                    seed=rng,
                )
            )
            clock += span_low
    return concatenate(pieces)


def two_mode_stream_by_rho(
    num_nodes: int,
    links_high: int,
    links_low: int,
    total_span: float,
    rho: float,
    *,
    alternations: int = 10,
    integer_times: bool = True,
    seed: int | np.random.Generator | None = None,
) -> LinkStream:
    """Two-mode stream parameterized by the low-activity time share ρ.

    ``ρ = T2 / (T1 + T2)`` per the paper; the total span ``T`` and the
    per-period link counts stay fixed while the split varies.
    """
    if not 0.0 <= rho <= 1.0:
        raise ValidationError("rho must be in [0, 1]")
    if total_span <= 0:
        raise ValidationError("total span must be positive")
    period = total_span / alternations
    span_low = period * rho
    span_high = period - span_low
    return two_mode_stream(
        num_nodes,
        links_high,
        span_high,
        links_low,
        span_low,
        alternations=alternations,
        integer_times=integer_times,
        seed=seed,
    )
