"""Circadian heavy-tailed replica generator.

Offline stand-in for the paper's four real traces (Irvine messages,
Facebook wall posts, Enron e-mails, Manufacturing e-mails).  The
occupancy method responds to the *timing structure* of a stream — the
per-node event rate and its temporal heterogeneity (Section 6 shows both
drivers explicitly) — so the replica reproduces:

* the published node count, event count and span (hence the per-capita
  activity the paper correlates γ with);
* circadian rhythm (day/night intensity contrast, weekend damping) —
  the heterogeneity human traces exhibit;
* heavy-tailed node activity and a sparse underlying social graph —
  hubs and repeated pairs, as in message/e-mail networks.

See DESIGN.md §3 for the substitution rationale.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.linkstream.stream import LinkStream
from repro.utils.errors import ValidationError
from repro.utils.rng import ensure_rng
from repro.utils.timeunits import HOUR


@dataclass(frozen=True)
class ReplicaParameters:
    """Knobs of the replica generator.

    Parameters
    ----------
    num_nodes, num_events, span:
        Matched to the published trace statistics.
    directed:
        Message/e-mail events are directed.
    activity_exponent:
        Power-law exponent of node activity weights (1 = mild skew).
    contacts_per_node:
        Mean out-degree of the underlying social graph.
    day_night_contrast:
        Ratio between peak (working-hours) and trough (night) intensity.
    weekend_factor:
        Multiplier applied to the intensity on days 5 and 6 of each week.
    """

    num_nodes: int
    num_events: int
    span: float
    directed: bool = True
    activity_exponent: float = 1.2
    contacts_per_node: int = 10
    day_night_contrast: float = 8.0
    weekend_factor: float = 0.4


def _hourly_intensity(params: ReplicaParameters) -> np.ndarray:
    """Relative event intensity per hour of the whole span."""
    hours = int(np.ceil(params.span / HOUR))
    hour_index = np.arange(hours)
    hour_of_day = hour_index % 24
    day_index = hour_index // 24
    # Smooth diurnal curve peaking mid-afternoon, troughing at night.
    phase = 2.0 * np.pi * (hour_of_day - 14.0) / 24.0
    contrast = max(params.day_night_contrast, 1.0)
    base = (1.0 + np.cos(phase)) / 2.0  # 1 at peak, 0 at trough
    intensity = 1.0 + (contrast - 1.0) * base
    weekend = (day_index % 7) >= 5
    intensity = np.where(weekend, intensity * params.weekend_factor, intensity)
    return intensity


def _sample_times(params: ReplicaParameters, rng: np.random.Generator) -> np.ndarray:
    """Integer-second timestamps from the inhomogeneous hourly intensity."""
    intensity = _hourly_intensity(params)
    probabilities = intensity / intensity.sum()
    per_hour = rng.multinomial(params.num_events, probabilities)
    hours = np.repeat(np.arange(per_hour.size), per_hour)
    within = rng.integers(0, int(HOUR), size=params.num_events)
    times = hours * int(HOUR) + within
    return np.minimum(times, int(params.span) - 1)


def _social_graph(
    params: ReplicaParameters, rng: np.random.Generator
) -> tuple[list[np.ndarray], np.ndarray]:
    """Per-node contact lists (hub-biased) and the node activity weights."""
    n = params.num_nodes
    ranks = rng.permutation(n) + 1
    weights = ranks.astype(np.float64) ** (-params.activity_exponent)
    weights /= weights.sum()
    contacts: list[np.ndarray] = []
    degree = min(params.contacts_per_node, n - 1)
    for node in range(n):
        adjusted = weights.copy()
        adjusted[node] = 0.0
        adjusted /= adjusted.sum()
        size = max(int(rng.poisson(degree)), 1)
        size = min(size, n - 1)
        partners = rng.choice(n, size=size, replace=False, p=adjusted)
        contacts.append(partners)
    return contacts, weights


def circadian_replica(
    params: ReplicaParameters,
    *,
    seed: int | np.random.Generator | None = None,
) -> LinkStream:
    """Generate a replica stream from :class:`ReplicaParameters`."""
    if params.num_nodes < 2:
        raise ValidationError("need at least two nodes")
    if params.num_events < 2:
        raise ValidationError("need at least two events")
    if params.span <= 0:
        raise ValidationError("span must be positive")
    rng = ensure_rng(seed)
    times = _sample_times(params, rng)
    contacts, weights = _social_graph(params, rng)
    senders = rng.choice(params.num_nodes, size=params.num_events, p=weights)
    if params.num_events >= params.num_nodes:
        # Real traces define their node set by participation (Definition 1:
        # V is the set of nodes involved in L), so every node sends at
        # least one message; the heavy tail lives in the remaining events.
        # Forced senders are scattered uniformly over the event sequence
        # so participation does not correlate with time of day.
        positions = rng.choice(params.num_events, size=params.num_nodes, replace=False)
        senders[positions] = rng.permutation(params.num_nodes)
    receivers = np.empty(params.num_events, dtype=np.int64)
    for i, sender in enumerate(senders):
        partners = contacts[sender]
        receivers[i] = partners[rng.integers(0, partners.size)]
    return LinkStream(
        senders,
        receivers,
        times,
        directed=params.directed,
        num_nodes=params.num_nodes,
    )
