"""Synthetic link-stream generators.

* :func:`time_uniform_stream` / :func:`two_mode_stream` — the Section 6
  synthetic families used to characterize the saturation scale.
* :func:`circadian_replica` — a heavy-tailed, circadian message-network
  model standing in for the paper's four real traces (offline
  substitution; see DESIGN.md §3).
"""

from repro.generators.replica import ReplicaParameters, circadian_replica
from repro.generators.twomode import two_mode_stream, two_mode_stream_by_rho
from repro.generators.uniform import time_uniform_stream

__all__ = [
    "time_uniform_stream",
    "two_mode_stream",
    "two_mode_stream_by_rho",
    "circadian_replica",
    "ReplicaParameters",
]
