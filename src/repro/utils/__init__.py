"""Small shared helpers: errors, time-unit parsing, RNG plumbing, ASCII plots.

These utilities carry no domain logic of their own; they exist so the
domain packages (``repro.linkstream``, ``repro.core``, ...) stay focused.
"""

from repro.utils.errors import (
    AggregationError,
    LinkStreamError,
    ReproError,
    SweepError,
    ValidationError,
)
from repro.utils.rng import ensure_rng
from repro.utils.timeunits import (
    DAY,
    HOUR,
    MINUTE,
    SECOND,
    WEEK,
    format_duration,
    parse_duration,
)

__all__ = [
    "AggregationError",
    "LinkStreamError",
    "ReproError",
    "SweepError",
    "ValidationError",
    "ensure_rng",
    "SECOND",
    "MINUTE",
    "HOUR",
    "DAY",
    "WEEK",
    "format_duration",
    "parse_duration",
]
