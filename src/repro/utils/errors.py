"""Exception hierarchy for the repro library.

All library errors derive from :class:`ReproError` so callers can catch
one base class.  Subclasses mark which subsystem rejected the input.
"""


class ReproError(Exception):
    """Base class for every error raised by the repro library."""


class LinkStreamError(ReproError):
    """Invalid link-stream construction or operation."""


class AggregationError(ReproError):
    """Invalid aggregation request (bad window length, empty stream...)."""


class SweepError(ReproError):
    """Invalid aggregation-period sweep specification."""


class ValidationError(ReproError):
    """Invalid argument outside the other categories."""


class EngineError(ReproError):
    """Invalid sweep-engine configuration (unknown backend, bad cache...)."""
