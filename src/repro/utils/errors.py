"""Exception hierarchy for the repro library.

All library errors derive from :class:`ReproError` so callers can catch
one base class.  Subclasses mark which subsystem rejected the input.
"""


class ReproError(Exception):
    """Base class for every error raised by the repro library."""


class LinkStreamError(ReproError):
    """Invalid link-stream construction or operation."""


class AppendOrderError(LinkStreamError):
    """An append batch violates the append-only contract: every event
    handed to :meth:`LinkStream.extend` must be strictly later than the
    stream's last event.  Out-of-order (or in-place, ``t == t_max``)
    appends would rewrite history the prefix fingerprints already
    vouch for, so they are rejected with this named error instead of
    being silently re-sorted in."""


class StorageError(ReproError):
    """A stream-storage backend failed (missing or corrupt partition
    file, malformed catalog manifest, unknown dataset...).  Messages
    about partition problems always name the offending file so an
    operator can re-fetch or re-ingest exactly that shard."""


class AggregationError(ReproError):
    """Invalid aggregation request (bad window length, empty stream...)."""


class SweepError(ReproError):
    """Invalid aggregation-period sweep specification."""


class ValidationError(ReproError):
    """Invalid argument outside the other categories."""


class EngineError(ReproError):
    """Invalid sweep-engine configuration (unknown backend, bad cache...)."""


class JobCancelled(EngineError):
    """A sweep or job was cancelled before it completed (explicit
    cancellation or an expired deadline).  The message names the reason
    and, when raised from inside a plan, the task it stopped at."""


class AdmissionError(EngineError):
    """A job queue refused a submission because it is at capacity (the
    429-style rejection of the analysis service)."""


class ServiceError(ReproError):
    """An analysis-service request failed (daemon-side rejection mapped
    back by the client, unknown job or stream, transport failure...)."""

    def __init__(self, message: str, *, status: int | None = None) -> None:
        super().__init__(message)
        #: HTTP status of the failing response (``None`` off the wire).
        self.status = status
