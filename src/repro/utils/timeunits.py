"""Time-unit helpers.

The paper reports every scale in human units (``18h``, ``46h``, ``12h``)
while all library computations run in seconds.  This module converts both
ways so datasets, results and reports can use readable durations.
"""

from __future__ import annotations

import re

from repro.utils.errors import ValidationError

SECOND = 1.0
MINUTE = 60.0
HOUR = 3600.0
DAY = 86400.0
WEEK = 7 * DAY

_UNITS = {
    "s": SECOND,
    "sec": SECOND,
    "second": SECOND,
    "seconds": SECOND,
    "m": MINUTE,
    "min": MINUTE,
    "minute": MINUTE,
    "minutes": MINUTE,
    "h": HOUR,
    "hour": HOUR,
    "hours": HOUR,
    "d": DAY,
    "day": DAY,
    "days": DAY,
    "w": WEEK,
    "week": WEEK,
    "weeks": WEEK,
}

_DURATION_RE = re.compile(r"^\s*([0-9]*\.?[0-9]+)\s*([a-zA-Z]*)\s*$")


def parse_duration(text: str | float | int) -> float:
    """Convert a human duration such as ``"18h"`` or ``"2.5 days"`` to seconds.

    Numbers (or numeric strings without a unit) are taken as seconds.

    >>> parse_duration("18h")
    64800.0
    >>> parse_duration(90)
    90.0
    """
    if isinstance(text, (int, float)):
        return float(text)
    match = _DURATION_RE.match(text)
    if match is None:
        raise ValidationError(f"cannot parse duration: {text!r}")
    value, unit = match.groups()
    if not unit:
        return float(value)
    factor = _UNITS.get(unit.lower())
    if factor is None:
        raise ValidationError(f"unknown time unit {unit!r} in {text!r}")
    return float(value) * factor


def format_duration(seconds: float) -> str:
    """Render a duration in seconds with the most readable unit.

    >>> format_duration(64800.0)
    '18h'
    >>> format_duration(90)
    '1.5min'
    """
    seconds = float(seconds)
    if seconds != seconds:  # NaN
        return "n/a"
    if seconds < 0:
        return "-" + format_duration(-seconds)
    for unit, factor in (("d", DAY), ("h", HOUR), ("min", MINUTE)):
        if seconds >= factor:
            value = seconds / factor
            return f"{value:.3g}{unit}"
    return f"{seconds:.3g}s"
