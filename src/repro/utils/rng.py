"""Random-number-generator plumbing shared by all generators."""

from __future__ import annotations

import numpy as np

from repro.utils.errors import ValidationError


def ensure_rng(seed: int | np.random.Generator | None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for ``seed``.

    Accepts ``None`` (fresh entropy), an integer seed, or an existing
    generator (returned unchanged so callers can share one stream).
    """
    if seed is None or isinstance(seed, (int, np.integer)):
        return np.random.default_rng(seed)
    if isinstance(seed, np.random.Generator):
        return seed
    raise ValidationError(f"expected seed int, Generator or None, got {type(seed).__name__}")
