"""Unit tests for whole-stream operations."""

import numpy as np
import pytest

from repro.linkstream import (
    LinkStream,
    concatenate,
    deduplicate,
    relabel,
    reverse_time,
    subsample_events,
)
from repro.utils.errors import LinkStreamError


class TestConcatenate:
    def test_merges_label_spaces(self):
        first = LinkStream.from_triples([("a", "b", 1)])
        second = LinkStream.from_triples([("b", "c", 2)])
        merged = concatenate([first, second])
        assert merged.num_nodes == 3
        assert merged.num_events == 2
        assert [e[:2] for e in merged.events()] == [("a", "b"), ("b", "c")]

    def test_rejects_mixed_directedness(self):
        directed = LinkStream([0], [1], [0], directed=True)
        undirected = LinkStream([0], [1], [0], directed=False)
        with pytest.raises(LinkStreamError):
            concatenate([directed, undirected])

    def test_rejects_empty_list(self):
        with pytest.raises(LinkStreamError):
            concatenate([])

    def test_single_stream_passthrough(self, chain_stream):
        merged = concatenate([chain_stream])
        assert merged.num_events == chain_stream.num_events


class TestDeduplicate:
    def test_drops_exact_duplicates(self):
        stream = LinkStream([0, 0, 1], [1, 1, 2], [5, 5, 6])
        assert deduplicate(stream).num_events == 2

    def test_keeps_same_pair_at_other_times(self):
        stream = LinkStream([0, 0], [1, 1], [5, 6])
        assert deduplicate(stream).num_events == 2

    def test_empty_stream_ok(self):
        stream = LinkStream([], [], [])
        assert deduplicate(stream).num_events == 0


class TestRelabel:
    def test_renames(self):
        stream = LinkStream.from_triples([("a", "b", 0)])
        renamed = relabel(stream, {"a": "alice"})
        assert set(renamed.labels) == {"alice", "b"}

    def test_collision_rejected(self):
        stream = LinkStream.from_triples([("a", "b", 0)])
        with pytest.raises(LinkStreamError):
            relabel(stream, {"a": "b"})


class TestReverseTime:
    def test_mirrors_timestamps(self, chain_stream):
        mirrored = reverse_time(chain_stream)
        assert mirrored.timestamps.tolist() == [1, 3, 5]
        # Events attached to their new times: last event is now first.
        assert mirrored.t_min == chain_stream.t_min
        assert mirrored.t_max == chain_stream.t_max

    def test_involution(self, medium_stream):
        twice = reverse_time(reverse_time(medium_stream))
        assert twice == medium_stream


class TestSubsample:
    def test_fraction_one_keeps_all(self, medium_stream):
        assert subsample_events(medium_stream, 1.0).num_events == medium_stream.num_events

    def test_fraction_zero_drops_all(self, medium_stream):
        assert subsample_events(medium_stream, 0.0).num_events == 0

    def test_fraction_half_is_roughly_half(self, medium_stream):
        sampled = subsample_events(medium_stream, 0.5, seed=1)
        ratio = sampled.num_events / medium_stream.num_events
        assert 0.3 < ratio < 0.7

    def test_bad_fraction_rejected(self, medium_stream):
        with pytest.raises(LinkStreamError):
            subsample_events(medium_stream, 1.5)

    def test_deterministic_with_seed(self, medium_stream):
        a = subsample_events(medium_stream, 0.5, seed=3)
        b = subsample_events(medium_stream, 0.5, seed=3)
        assert a == b
