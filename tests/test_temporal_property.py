"""Property-based cross-validation of the temporal engine.

Three independent implementations are compared on random instances:
the backward numpy scan (production), repeated forward scans, and
exhaustive DFS path enumeration (Definitions 2/5/7 taken literally).
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graphseries import aggregate
from repro.temporal import (
    TripListCollector,
    bruteforce_minimal_trips,
    check_pareto,
    enumerate_temporal_paths,
    minimal_trips_from_paths,
    scan_series,
    scan_stream,
)
from tests.strategies import link_streams


def _normalize(tuples):
    return sorted((a, b, float(c), float(d), e) for a, b, c, d, e in tuples)


def _scan_series_trips(series):
    collector = TripListCollector()
    scan_series(series, collector)
    return collector.trips()


@settings(max_examples=120, deadline=None)
@given(stream=link_streams(), delta=st.sampled_from([1.0, 2.0, 3.0, 5.0]))
def test_backward_scan_matches_forward_oracle_on_series(stream, delta):
    series = aggregate(stream, delta)
    got = _normalize(_scan_series_trips(series).as_tuples())
    expected = _normalize(bruteforce_minimal_trips(series).as_tuples())
    assert got == expected


@settings(max_examples=120, deadline=None)
@given(stream=link_streams())
def test_backward_scan_matches_forward_oracle_on_stream(stream):
    collector = TripListCollector()
    scan_stream(stream, collector)
    got = _normalize(collector.trips().as_tuples())
    expected = _normalize(bruteforce_minimal_trips(stream).as_tuples())
    assert got == expected


@settings(max_examples=60, deadline=None)
@given(stream=link_streams(max_nodes=4, max_events=6, max_time=8), delta=st.sampled_from([1.0, 2.0]))
def test_backward_scan_matches_dfs_ground_truth(stream, delta):
    series = aggregate(stream, delta)
    hop_count = series.num_edges_total * (1 if series.directed else 2)
    if hop_count > 12:
        return  # keep DFS tractable
    paths = enumerate_temporal_paths(series, max_hops=series.num_steps + 1)
    truth = _normalize(minimal_trips_from_paths(paths))
    got = _normalize(_scan_series_trips(series).as_tuples())
    assert got == truth


@settings(max_examples=120, deadline=None)
@given(stream=link_streams(), delta=st.sampled_from([1.0, 2.0, 4.0]))
def test_trip_invariants(stream, delta):
    """Structural invariants of minimal trips (Definition 5 + Remark 2)."""
    series = aggregate(stream, delta)
    trips = _scan_series_trips(series)
    if not len(trips):
        return
    # Pareto staircase per pair.
    assert check_pareto(trips)
    # Durations and hop bounds: 1 <= hops <= duration (graph-series mode).
    assert np.all(trips.durations == trips.arr - trips.dep + 1)
    assert np.all(trips.hops >= 1)
    assert np.all(trips.hops <= trips.durations)
    # Occupancy in (0, 1].
    occ = trips.occupancy_rates()
    assert np.all(occ > 0) and np.all(occ <= 1)
    # No self trips by default.
    assert np.all(trips.u != trips.v)
    # Departures and arrivals land on existing windows.
    steps = set(series.nonempty_steps().tolist())
    assert set(trips.dep.astype(int).tolist()) <= steps
    assert set(trips.arr.astype(int).tolist()) <= steps


@settings(max_examples=80, deadline=None)
@given(stream=link_streams())
def test_every_event_is_a_one_hop_trip(stream):
    """Each deduplicated (pair, window) edge yields the 1-hop minimal trip."""
    series = aggregate(stream, 2.0)
    trips = _scan_series_trips(series)
    found = {
        (int(u), int(v), int(d))
        for u, v, d, a in zip(trips.u, trips.v, trips.dep, trips.arr)
        if d == a
    }
    for step, us, vs in series.edge_groups():
        for a, b in zip(us.tolist(), vs.tolist()):
            assert (a, b, step) in found
            if not series.directed:
                assert (b, a, step) in found


@settings(max_examples=60, deadline=None)
@given(stream=link_streams(), delta=st.sampled_from([2.0, 4.0]))
def test_series_reachability_never_exceeds_stream_reachability(stream, delta):
    """Aggregation only destroys temporal reachability, never creates it.

    A series temporal path hops through strictly increasing windows; each
    hop is backed by a stream event inside its window, and events in later
    windows are strictly later in time — so the hops lift to a valid
    stream temporal path.  Hence the set of connected (u, v) pairs of the
    series is a subset of the stream's.
    """
    collector = TripListCollector()
    scan_stream(stream, collector)
    stream_pairs = {(int(a), int(b)) for a, b in zip(collector.trips().u, collector.trips().v)}
    series = aggregate(stream, delta)
    series_trips = _scan_series_trips(series)
    series_pairs = {(int(a), int(b)) for a, b in zip(series_trips.u, series_trips.v)}
    assert series_pairs <= stream_pairs
