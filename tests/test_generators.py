"""Unit tests for the synthetic generators (Section 6 families + replica)."""

import numpy as np
import pytest

from repro.generators import (
    ReplicaParameters,
    circadian_replica,
    time_uniform_stream,
    two_mode_stream,
    two_mode_stream_by_rho,
)
from repro.generators.uniform import expected_mean_intercontact
from repro.linkstream import (
    burstiness,
    circadian_profile,
    mean_inter_contact_time,
    node_event_counts,
    pair_event_counts,
)
from repro.utils.errors import ValidationError
from repro.utils.timeunits import DAY


class TestTimeUniform:
    def test_exact_event_count(self):
        stream = time_uniform_stream(10, 3, 1000.0, seed=0)
        assert stream.num_events == 45 * 3
        assert not stream.directed

    def test_every_pair_covered(self):
        stream = time_uniform_stream(6, 2, 1000.0, seed=0)
        u, v, counts = pair_event_counts(stream)
        assert u.size == 15
        assert np.all(counts == 2)

    def test_times_within_span(self):
        stream = time_uniform_stream(5, 4, 500.0, t_start=100.0, seed=1)
        assert stream.t_min >= 100.0
        assert stream.t_max < 600.0

    def test_mean_intercontact_matches_formula(self):
        n, links, span = 20, 12, 50000.0
        stream = time_uniform_stream(n, links, span, seed=2)
        expected = expected_mean_intercontact(n, links, span)
        assert mean_inter_contact_time(stream) == pytest.approx(expected, rel=0.1)

    def test_parameter_validation(self):
        with pytest.raises(ValidationError):
            time_uniform_stream(1, 3, 100.0)
        with pytest.raises(ValidationError):
            time_uniform_stream(5, 0, 100.0)
        with pytest.raises(ValidationError):
            time_uniform_stream(5, 3, 0.0)

    def test_deterministic_with_seed(self):
        a = time_uniform_stream(8, 2, 1000.0, seed=7)
        b = time_uniform_stream(8, 2, 1000.0, seed=7)
        assert a == b


class TestTwoMode:
    def test_event_count(self):
        stream = two_mode_stream(6, 4, 100.0, 1, 100.0, alternations=3, seed=0)
        pairs = 15
        assert stream.num_events == 3 * pairs * (4 + 1)

    def test_activity_contrast_visible(self):
        stream = two_mode_stream(6, 20, 100.0, 1, 100.0, alternations=4, seed=0)
        # First half of each 200s cycle must hold ~20/21 of its events.
        phase = np.mod(stream.timestamps, 200.0)
        dense = float(np.mean(phase < 100.0))
        assert dense > 0.9

    def test_rho_zero_and_one_are_single_mode(self):
        high_only = two_mode_stream_by_rho(6, 10, 1, 1000.0, 0.0, seed=0)
        low_only = two_mode_stream_by_rho(6, 10, 1, 1000.0, 1.0, seed=0)
        pairs = 15
        assert high_only.num_events == 10 * pairs * 10
        assert low_only.num_events == 1 * pairs * 10

    def test_rho_validation(self):
        with pytest.raises(ValidationError):
            two_mode_stream_by_rho(6, 10, 1, 1000.0, 1.5)

    def test_span_validation(self):
        with pytest.raises(ValidationError):
            two_mode_stream(6, 1, 0.0, 1, 0.0)


class TestReplica:
    @pytest.fixture(scope="class")
    def replica(self):
        params = ReplicaParameters(
            num_nodes=80, num_events=4000, span=14 * DAY
        )
        return circadian_replica(params, seed=0)

    def test_matches_requested_sizes(self, replica):
        assert replica.num_nodes == 80
        assert replica.num_events == 4000
        assert replica.span <= 14 * DAY
        assert replica.directed

    def test_is_bursty(self, replica):
        assert burstiness(replica) > 0.1

    def test_has_circadian_rhythm(self, replica):
        profile = circadian_profile(replica)
        # Afternoon hours must dominate the night.
        assert profile[12:18].sum() > 3 * profile[0:6].sum()

    def test_activity_is_heavy_tailed(self, replica):
        counts = np.sort(node_event_counts(replica))[::-1]
        top_decile = counts[: len(counts) // 10].sum()
        assert top_decile > 0.2 * counts.sum()

    def test_no_self_loops(self, replica):
        assert np.all(replica.sources != replica.targets)

    def test_validation(self):
        with pytest.raises(ValidationError):
            circadian_replica(ReplicaParameters(1, 100, 100.0))
        with pytest.raises(ValidationError):
            circadian_replica(ReplicaParameters(5, 1, 100.0))
        with pytest.raises(ValidationError):
            circadian_replica(ReplicaParameters(5, 100, 0.0))

    def test_deterministic(self):
        params = ReplicaParameters(num_nodes=20, num_events=200, span=2 * DAY)
        assert circadian_replica(params, seed=3) == circadian_replica(params, seed=3)
