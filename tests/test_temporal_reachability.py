"""Unit tests for the backward reachability scan on known instances."""

import numpy as np
import pytest

from repro.graphseries import GraphSeries, aggregate
from repro.linkstream import LinkStream
from repro.temporal import (
    CountingCollector,
    DistanceTotals,
    TripListCollector,
    scan_series,
    scan_stream,
    series_distance_stats,
)


def series_trips(series):
    collector = TripListCollector()
    scan_series(series, collector)
    return sorted(collector.trips().as_tuples())


class TestChain:
    """Stream 0->1 (t=1), 1->2 (t=3), 2->3 (t=5)."""

    def test_series_per_timestamp(self, chain_stream):
        series = aggregate(chain_stream, 1.0)  # steps 0,2,4 carry the edges
        trips = series_trips(series)
        # Direct trips: (0,1,0,0), (1,2,2,2), (2,3,4,4)
        assert (0, 1, 0, 0, 1) in trips
        assert (1, 2, 2, 2, 1) in trips
        assert (2, 3, 4, 4, 1) in trips
        # Chained minimal trips with exact hop counts.
        assert (0, 2, 0, 2, 2) in trips
        assert (0, 3, 0, 4, 3) in trips
        assert (1, 3, 2, 4, 2) in trips
        assert len(trips) == 6

    def test_direction_respected(self, chain_stream):
        series = aggregate(chain_stream, 1.0)
        trips = series_trips(series)
        assert not any(t[0] == 3 for t in trips)  # nothing departs node 3

    def test_full_aggregation_only_single_links(self, chain_stream):
        series = aggregate(chain_stream, chain_stream.span + 1)
        trips = series_trips(series)
        # One window: every edge is a 1-hop trip with occupancy 1; no chains.
        assert trips == [
            (0, 1, 0, 0, 1),
            (1, 2, 0, 0, 1),
            (2, 3, 0, 0, 1),
        ]

    def test_same_window_links_do_not_chain(self, chain_stream):
        # Delta=5 puts events 1,3,5 into windows 0,0,0 -> no 2-hop trips.
        series = aggregate(chain_stream, 5.0)
        trips = series_trips(series)
        assert all(t[4] == 1 for t in trips)


class TestUndirected:
    def test_both_directions_usable(self):
        stream = LinkStream([0, 1], [1, 2], [1, 2], directed=False)
        series = aggregate(stream, 1.0)
        trips = series_trips(series)
        assert (0, 2, 0, 1, 2) in trips  # 0-1 then 1-2
        assert (2, 1, 1, 1, 1) in trips  # reverse direction of edge (1,2)

    def test_cycle_not_reported_without_include_self(self):
        stream = LinkStream([0, 1], [1, 0], [1, 2], directed=True)
        series = aggregate(stream, 1.0)
        trips = series_trips(series)
        assert not any(t[0] == t[1] for t in trips)

    def test_cycle_reported_with_include_self(self):
        stream = LinkStream([0, 1], [1, 0], [1, 2], directed=True)
        series = aggregate(stream, 1.0)
        collector = TripListCollector()
        scan_series(series, collector, include_self=True)
        trips = sorted(collector.trips().as_tuples())
        assert (0, 0, 0, 1, 2) in trips


class TestTieBreaking:
    def test_min_hops_among_equal_arrival_routes(self):
        # Two routes 0 -> 3 both arriving at step 4: 0->2@1 then 2->3@5
        # (2 hops) and 0->1@1 then 1->?@...: use parallel relays.
        stream = LinkStream([0, 0, 1, 2], [1, 2, 2, 3], [1, 1, 3, 5])
        series = aggregate(stream, 1.0)
        trips = {(t[0], t[1], t[2], t[3]): t[4] for t in series_trips(series)}
        # Routes: 0->2@0 -> 3@4 (2 hops) and 0->1@0 -> 2@2 -> 3@4 (3 hops).
        assert trips[(0, 3, 0, 4)] == 2

    def test_tie_update_propagates_to_earlier_departures(self):
        # From node 0, a 3-hop route departs at step 2 and a 2-hop route
        # departs at step 1, both arriving at step 4.  The minimal trip
        # (0,3,2,4) keeps 3 hops, but node 5 hopping to 0 at step 0 must
        # see the 2-hop continuation: trip (5,3,0,4) has 1+2 = 3 hops.
        stream = LinkStream(
            [5, 0, 0, 1, 2, 4],
            [0, 4, 1, 2, 3, 3],
            [0, 1, 2, 3, 4, 4],
        )
        series = aggregate(stream, 1.0)
        trips = {(t[0], t[1], t[2], t[3]): t[4] for t in series_trips(series)}
        assert trips[(0, 3, 2, 4)] == 3
        assert (0, 3, 1, 4) not in trips  # dominated by the dep-2 trip
        assert trips[(5, 3, 0, 4)] == 3  # uses the 2-hop continuation

    def test_later_departure_with_fewer_hops_is_separate_trip(self):
        # 0->1->2 over [1,4]; direct 0->2 at 6: both minimal (Pareto).
        stream = LinkStream([0, 1, 0], [1, 2, 2], [1, 4, 6])
        series = aggregate(stream, 1.0)
        trips = series_trips(series)
        assert (0, 2, 0, 3, 2) in trips
        assert (0, 2, 5, 5, 1) in trips


class TestStreamScan:
    def test_durations_use_stream_convention(self, chain_stream):
        collector = TripListCollector()
        scan_stream(chain_stream, collector)
        trips = collector.trips()
        lookup = {
            (int(u), int(v), d, a): dur
            for u, v, d, a, dur in zip(trips.u, trips.v, trips.dep, trips.arr, trips.durations)
        }
        assert lookup[(0, 1, 1, 1)] == 0  # single event: zero duration
        assert lookup[(0, 3, 1, 5)] == 4

    def test_simultaneous_events_do_not_chain(self):
        stream = LinkStream([0, 1], [1, 2], [5, 5])
        collector = TripListCollector()
        scan_stream(stream, collector)
        trips = collector.trips()
        assert not any((u, v) == (0, 2) for u, v in zip(trips.u, trips.v))

    def test_float_timestamps(self):
        stream = LinkStream([0, 1], [1, 2], [0.5, 1.25])
        collector = TripListCollector()
        scan_stream(stream, collector)
        trips = sorted(collector.trips().as_tuples())
        assert (0, 2, 0.5, 1.25, 2) in trips


class TestCollectors:
    def test_counting_collector_matches_list(self, medium_stream):
        series = aggregate(medium_stream, 50.0)
        listing = TripListCollector()
        counting = CountingCollector()
        scan_series(series, listing)
        result = scan_series(series, counting)
        assert counting.num_trips == len(listing.trips())
        assert result.num_trips == counting.num_trips

    def test_scan_without_collector_still_counts(self, medium_stream):
        series = aggregate(medium_stream, 50.0)
        collector = TripListCollector()
        scan_series(series, collector)
        assert scan_series(series).num_trips == len(collector.trips())


class TestDistances:
    def test_single_edge_distances(self):
        stream = LinkStream([0], [1], [0], num_nodes=2)
        series = aggregate(stream, 1.0)
        stats = series_distance_stats(series)
        # One window; only (0 -> 1, depart step 0): distance 1 step, 1 hop.
        assert stats.reachable_count == 1
        assert stats.mean_distance_steps == pytest.approx(1.0)
        assert stats.mean_distance_hops == pytest.approx(1.0)

    def test_unreachable_pairs_excluded(self):
        stream = LinkStream([0], [1], [0], num_nodes=3)
        series = aggregate(stream, 1.0)
        stats = series_distance_stats(series)
        assert stats.reachable_count == 1
        assert stats.reachable_fraction == pytest.approx(1 / 6)

    def test_empty_window_runs_counted(self):
        # Edge at t=0 and t=10; delta=1 -> 11 windows; departures 0..10
        # all reach 1 via some edge... only via edges at steps 0 and 10.
        stream = LinkStream([0, 0], [1, 1], [0, 10], num_nodes=2)
        series = aggregate(stream, 1.0)
        stats = series_distance_stats(series)
        # Departing at step t <= 10 arrives at step 0 if t == 0 else step 10.
        # d_time = 1 for t=0; 10-t+1 for 1<=t<=10 -> values 1,10,9,...,1.
        expected = (1 + sum(range(1, 11))) / 11
        assert stats.reachable_count == 11
        assert stats.mean_distance_steps == pytest.approx(expected)

    def test_distance_totals_ride_a_shared_scan(self, medium_stream):
        # The accumulator is an ordinary scan consumer: feeding it next
        # to a trip collector changes neither the trips nor the stats.
        series = aggregate(medium_stream, 50.0)
        alone = series_distance_stats(series)
        totals = DistanceTotals()
        collector = TripListCollector()
        fused = scan_series(series, [collector, totals])
        assert totals.stats(series.num_nodes, series.num_steps) == alone
        assert fused.num_trips == len(collector.trips())

    def test_distance_shards_merge_to_full_scan(self, medium_stream):
        series = aggregate(medium_stream, 50.0)
        reference = series_distance_stats(series)
        merged = DistanceTotals()
        for i in range(3):
            shard = DistanceTotals()
            scan_series(
                series, shard, targets=np.arange(i, series.num_nodes, 3)
            )
            merged.merge(shard)
        assert merged.stats(series.num_nodes, series.num_steps) == reference
