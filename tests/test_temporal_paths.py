"""Unit and property tests for forward scans and path reconstruction."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graphseries import aggregate
from repro.linkstream import LinkStream
from repro.temporal import (
    TripListCollector,
    earliest_arrival_path,
    forward_earliest_arrival,
    scan_series,
    temporal_path_is_valid,
)
from repro.utils.errors import ValidationError
from tests.strategies import link_streams


class TestForwardScan:
    def test_chain(self, chain_stream):
        series = aggregate(chain_stream, 1.0)
        arrival, hops = forward_earliest_arrival(series, 0, 0)
        assert arrival.tolist() == [np.inf, 0, 2, 4]
        assert hops[1:].tolist() == [1, 2, 3]

    def test_departure_time_filters(self, chain_stream):
        series = aggregate(chain_stream, 1.0)
        arrival, __ = forward_earliest_arrival(series, 0, 1)
        # The 0->1 edge at step 0 is no longer usable.
        assert np.isinf(arrival[1])

    def test_cycle_return(self):
        stream = LinkStream([0, 1], [1, 0], [1, 2], directed=True)
        series = aggregate(stream, 1.0)
        arrival, hops = forward_earliest_arrival(series, 0, 0)
        assert arrival[0] == 1  # returns to itself via the cycle
        assert hops[0] == 2

    def test_on_stream_directly(self, chain_stream):
        arrival, hops = forward_earliest_arrival(chain_stream, 0, 0)
        assert arrival.tolist() == [np.inf, 1, 3, 5]

    def test_rejects_unknown_type(self):
        with pytest.raises(ValidationError):
            forward_earliest_arrival([1, 2, 3], 0, 0)


class TestPathReconstruction:
    def test_chain_path(self, chain_stream):
        series = aggregate(chain_stream, 1.0)
        path = earliest_arrival_path(series, 0, 3, 0)
        assert path == [(0, 1, 0), (1, 2, 2), (2, 3, 4)]
        assert temporal_path_is_valid(series, path)

    def test_unreachable_returns_none(self, chain_stream):
        series = aggregate(chain_stream, 1.0)
        assert earliest_arrival_path(series, 3, 0, 0) is None

    def test_same_node_rejected(self, chain_stream):
        series = aggregate(chain_stream, 1.0)
        with pytest.raises(ValidationError):
            earliest_arrival_path(series, 1, 1, 0)

    def test_path_on_stream(self, chain_stream):
        path = earliest_arrival_path(chain_stream, 0, 2, 0)
        assert path == [(0, 1, 1), (1, 2, 3)]
        assert temporal_path_is_valid(chain_stream, path)


class TestParetoStates:
    def test_later_fewer_hop_relay_regression(self):
        """Regression: the min-hop path realizing a minimal trip may relay
        through a node's *later, fewer-hop* state.  Here node 3 is first
        reached in 3 hops at t=2 but also in 2 hops at t=3; the earliest
        path 0 -> 2 (arriving t=4) must use the latter: 3 hops, not 4.
        (Found by hypothesis; a single earliest-arrival state per node
        gets this wrong.)
        """
        stream = LinkStream(
            [0, 1, 3, 1, 2], [1, 4, 4, 3, 3], [0, 1, 2, 3, 4],
            directed=False, num_nodes=5,
        )
        arrival, hops = forward_earliest_arrival(stream, 0, 0)
        assert arrival[2] == 4
        assert hops[2] == 3
        path = earliest_arrival_path(stream, 0, 2, 0)
        assert temporal_path_is_valid(stream, path)
        assert len(path) == 3
        assert path[-1][2] == 4


class TestPathValidity:
    def test_rejects_time_violation(self, chain_stream):
        assert not temporal_path_is_valid(chain_stream, [(0, 1, 3), (1, 2, 3)])

    def test_rejects_broken_chain(self, chain_stream):
        assert not temporal_path_is_valid(chain_stream, [(0, 1, 1), (2, 3, 5)])

    def test_rejects_missing_edge(self, chain_stream):
        assert not temporal_path_is_valid(chain_stream, [(0, 3, 1)])

    def test_rejects_empty(self, chain_stream):
        assert not temporal_path_is_valid(chain_stream, [])


@settings(max_examples=80, deadline=None)
@given(stream=link_streams(), delta=st.sampled_from([1.0, 2.0]))
def test_reconstructed_paths_realize_minimal_trips(stream, delta):
    """For every minimal trip, reconstruction yields a valid temporal path
    departing and arriving exactly at the trip's bounds with the trip's
    hop count."""
    series = aggregate(stream, delta)
    collector = TripListCollector()
    scan_series(series, collector)
    trips = collector.trips()
    for u, v, dep, arr, hops in trips.as_tuples()[:40]:
        path = earliest_arrival_path(series, u, v, dep)
        assert path is not None
        assert temporal_path_is_valid(series, path)
        assert path[0][0] == u and path[-1][1] == v
        assert path[0][2] == dep, "minimal trips depart exactly at dep"
        assert path[-1][2] == arr
        assert len(path) == hops
