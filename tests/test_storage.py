"""Storage backends and the dataset catalog: bit-identity out of core.

Covers the :class:`StreamStorage` contract for the in-memory
:class:`ColumnarStorage` default and the on-disk
:class:`PartitionedStorage`, the ``repro.datasets.catalog`` layer
(ingest/open/list/info/reindex and the ``repro datasets`` CLI), the
engine's span plumbing (``AnalysisTask.span`` slices through the
backend; span-less cache keys stay byte-identical), and the headline
property: ingest → partitioned catalog → analyze is bit-identical to
the in-memory stream on both scan kernels, while ``STORAGE_COUNTS``
proves a task whose windows span k partitions opens exactly k files.
"""

import os
import pickle
import tempfile

import numpy as np
import pytest
from hypothesis import assume, given, settings
from strategies import link_streams

from repro.core import analyze_stream
from repro.datasets import (
    dataset_info,
    ingest_file,
    ingest_stream,
    list_datasets,
    open_dataset,
    reindex_dataset,
)
from repro.datasets.catalog import catalog_root
from repro.engine import SweepEngine, plan_measure_sweep
from repro.engine.tasks import AnalysisShardTask, AnalysisTask
from repro.linkstream import LinkStream, write_tsv
from repro.reporting import render_analysis
from repro.storage import (
    STORAGE_COUNTS,
    ColumnarStorage,
    PartitionedStorage,
)
from repro.storage.partitioned import (
    chain_boundaries,
    parse_partition_filename,
    partition_filename,
    plan_partition_cuts,
)
from repro.utils.errors import EngineError, StorageError


def sample_stream(num_events: int = 24, *, directed: bool = True) -> LinkStream:
    """Small deterministic stream with ties and a few repeated pairs."""
    u = [i % 5 for i in range(num_events)]
    v = [(i + 1 + i // 7) % 5 for i in range(num_events)]
    t = [float(i // 2) for i in range(num_events)]  # paired timestamps
    u = [a if a != b else (a + 1) % 5 for a, b in zip(u, v)]
    return LinkStream(u, v, t, directed=directed, num_nodes=5)


def point_key(point) -> tuple:
    """Flatten a SweepPoint for bit-identity comparison (its occupancy
    distribution defines no ``__eq__``)."""
    return (
        point.delta,
        point.num_windows,
        point.num_nonempty_windows,
        point.num_trips,
        tuple(sorted(point.scores.items())),
    )


def snapshot_counts() -> dict:
    return dict(STORAGE_COUNTS)


def counts_delta(before: dict) -> dict:
    return {key: STORAGE_COUNTS[key] - before[key] for key in before}


class TestColumnarStorage:
    def test_linkstream_delegates_to_columnar_backend(self):
        stream = sample_stream()
        assert isinstance(stream.storage, ColumnarStorage)
        u, v, t = stream.storage.columns()
        assert u is stream.sources and v is stream.targets
        assert not u.flags.writeable
        assert stream.storage.num_events == stream.num_events
        assert stream.storage.time_range() == (stream.t_min, stream.t_max)
        assert stream.storage.num_timestamps() == len(stream.distinct_timestamps())

    def test_slice_time_matches_mask_selection(self):
        stream = sample_stream()
        storage = stream.storage
        sliced = storage.slice_time(2.0, 7.0)
        t = stream.timestamps
        mask = (t >= 2.0) & (t < 7.0)
        np.testing.assert_array_equal(sliced.timestamps, t[mask])
        np.testing.assert_array_equal(sliced.sources, stream.sources[mask])
        closed = storage.slice_time(2.0, 7.0, half_open=False)
        mask_closed = (t >= 2.0) & (t <= 7.0)
        np.testing.assert_array_equal(closed.timestamps, t[mask_closed])

    def test_slice_nodes_keeps_both_endpoint_events(self):
        stream = sample_stream()
        kept = stream.storage.slice_nodes([0, 1, 2])
        assert kept.num_events
        assert set(np.unique(kept.sources)) <= {0, 1, 2}
        assert set(np.unique(kept.targets)) <= {0, 1, 2}

    def test_to_events_round_trips(self):
        stream = sample_stream(num_events=8)
        events = list(stream.storage.to_events())
        assert len(events) == 8
        rebuilt = ColumnarStorage.from_events(
            np.array([e[0] for e in events]),
            np.array([e[1] for e in events]),
            np.array([e[2] for e in events]),
        )
        np.testing.assert_array_equal(
            rebuilt.timestamps, stream.timestamps
        )

    def test_empty_storage_metadata(self):
        empty = ColumnarStorage.from_events(
            np.empty(0, dtype=np.int64),
            np.empty(0, dtype=np.int64),
            np.empty(0, dtype=np.float64),
        )
        assert empty.num_events == 0
        assert empty.time_range() is None
        assert empty.num_timestamps() == 0
        assert empty.fingerprint_chain() == ()

    def test_unknown_options_rejected(self):
        with pytest.raises(StorageError, match="unknown ColumnarStorage"):
            ColumnarStorage.from_events(
                np.zeros(1, dtype=np.int64),
                np.ones(1, dtype=np.int64),
                np.zeros(1, dtype=np.float64),
                bogus=True,
            )


class TestPartitionPlanning:
    def test_cuts_cover_and_never_split_timestamp_runs(self):
        t = np.array([0.0, 0.0, 0.0, 1.0, 1.0, 2.0, 3.0, 3.0, 3.0, 4.0])
        cuts = plan_partition_cuts(t, 2)
        assert cuts[0][0] == 0 and cuts[-1][1] == t.size
        for (_, hi), (lo, _) in zip(cuts, cuts[1:]):
            assert hi == lo
        for lo, hi in cuts:
            if hi < t.size:
                assert t[hi - 1] != t[hi]

    def test_chain_boundaries_cap(self):
        cuts = [(i * 10, (i + 1) * 10) for i in range(40)]
        picked = chain_boundaries(cuts, limit=16)
        assert len(picked) <= 16
        assert picked == sorted(picked)
        interior = {hi for _, hi in cuts[:-1]}
        assert set(picked) <= interior

    def test_filename_round_trip_negative_times(self):
        name = partition_filename(3, -2.5, 7.0)
        assert "/" not in name and "-2.5" not in name.split("_", 1)[1]
        assert parse_partition_filename(name, "f") == (3, -2.5, 7.0)
        with pytest.raises(StorageError, match="malformed"):
            parse_partition_filename("part-xx_0_1.npz", "f")


class TestPartitionedStorage:
    def make_dataset(self, tmp_path, stream, partition_events=4):
        return ingest_stream(
            stream,
            "unit",
            root=str(tmp_path),
            partition_events=partition_events,
        )

    def test_open_answers_metadata_without_loading(self, tmp_path):
        stream = sample_stream()
        self.make_dataset(tmp_path, stream)
        before = snapshot_counts()
        reopened = open_dataset("unit", root=str(tmp_path))
        assert reopened.num_events == stream.num_events
        assert reopened.t_min == stream.t_min
        assert reopened.t_max == stream.t_max
        assert reopened.storage.num_timestamps() == len(
            stream.distinct_timestamps()
        )
        assert reopened.fingerprint() == stream.fingerprint()
        assert counts_delta(before)["partitions_opened"] == 0

    def test_round_trip_is_equal_and_bit_identical(self, tmp_path):
        stream = sample_stream()
        self.make_dataset(tmp_path, stream)
        reopened = open_dataset("unit", root=str(tmp_path))
        assert reopened == stream
        np.testing.assert_array_equal(reopened.sources, stream.sources)
        np.testing.assert_array_equal(reopened.targets, stream.targets)
        np.testing.assert_array_equal(reopened.timestamps, stream.timestamps)
        assert reopened.timestamps.dtype == stream.timestamps.dtype

    def test_slice_time_opens_only_overlapping_partitions(self, tmp_path):
        stream = sample_stream()  # t = 0..11, 4 events per partition
        manifest = self.make_dataset(tmp_path, stream, partition_events=4)
        total = len(manifest["partitions"])
        assert total >= 4
        entries = manifest["partitions"]
        # A span covering exactly the middle two partitions.
        start = entries[1]["t_min"]
        end = entries[2]["t_max"] + 0.5
        expected = sum(
            1
            for e in entries
            if e["t_max"] >= start and e["t_min"] < end
        )
        assert expected == 2
        reopened = open_dataset("unit", root=str(tmp_path))
        before = snapshot_counts()
        sliced = reopened.slice_time(start, end)
        delta = counts_delta(before)
        assert delta["partitions_opened"] == 0  # pruning reads no bytes
        assert delta["partitions_pruned"] == total - expected
        assert sliced == stream.restrict_time(start, end)
        assert counts_delta(before)["partitions_opened"] == expected

    def test_restrict_time_goes_through_storage_pruning(self, tmp_path):
        stream = sample_stream()
        self.make_dataset(tmp_path, stream, partition_events=4)
        reopened = open_dataset("unit", root=str(tmp_path))
        before = snapshot_counts()
        restricted = reopened.restrict_time(0.0, 2.0)
        assert counts_delta(before)["partitions_pruned"] > 0
        assert restricted == stream.restrict_time(0.0, 2.0)

    def test_missing_partition_error_names_file(self, tmp_path):
        stream = sample_stream()
        manifest = self.make_dataset(tmp_path, stream)
        victim = manifest["partitions"][1]["file"]
        os.unlink(tmp_path / "unit" / victim)
        reopened = open_dataset("unit", root=str(tmp_path))
        with pytest.raises(StorageError, match=victim.replace(".", r"\.")) as err:
            reopened.sources
        assert "missing partition file" in str(err.value)

    def test_corrupt_partition_error_names_file(self, tmp_path):
        stream = sample_stream()
        manifest = self.make_dataset(tmp_path, stream)
        victim = manifest["partitions"][0]["file"]
        (tmp_path / "unit" / victim).write_bytes(b"not a zip archive")
        reopened = open_dataset("unit", root=str(tmp_path))
        with pytest.raises(StorageError, match="corrupt partition file") as err:
            reopened.sources
        assert victim in str(err.value)

    def test_verify_catches_silent_bit_flip(self, tmp_path):
        stream = sample_stream()
        manifest = self.make_dataset(tmp_path, stream)
        victim = tmp_path / "unit" / manifest["partitions"][0]["file"]
        with np.load(victim) as archive:
            u, v, t = archive["u"].copy(), archive["v"], archive["t"]
        u[0] += 1
        np.savez(victim, u=u, v=v, t=t)
        lax = open_dataset("unit", root=str(tmp_path))
        lax.sources  # loads fine without verification
        strict = open_dataset("unit", root=str(tmp_path), verify=True)
        with pytest.raises(StorageError, match="content hash mismatch"):
            strict.sources

    def test_manifest_format_guard(self, tmp_path):
        stream = sample_stream()
        self.make_dataset(tmp_path, stream)
        manifest_path = tmp_path / "unit" / "manifest.json"
        manifest_path.write_text('{"format": "other-v9"}')
        with pytest.raises(StorageError, match="unsupported manifest format"):
            open_dataset("unit", root=str(tmp_path))

    def test_fingerprint_chain_matches_prefix_fingerprints(self, tmp_path):
        stream = sample_stream()
        self.make_dataset(tmp_path, stream, partition_events=4)
        reopened = open_dataset("unit", root=str(tmp_path))
        chain = reopened.fingerprint_chain
        assert chain  # interior partition cuts recorded
        for count, fingerprint in chain:
            assert fingerprint == stream.prefix_fingerprint(count)

    def test_pickle_ships_handle_not_bytes(self, tmp_path):
        stream = sample_stream()
        self.make_dataset(tmp_path, stream)
        reopened = open_dataset("unit", root=str(tmp_path))
        reopened.sources  # materialize the cache, then drop it on pickle
        clone = pickle.loads(pickle.dumps(reopened))
        assert clone == stream
        sliced = reopened.slice_time(2.0, 5.0)
        clone_sliced = pickle.loads(pickle.dumps(sliced))
        assert clone_sliced == stream.restrict_time(2.0, 5.0)

    def test_partition_events_env_override(self, tmp_path, monkeypatch):
        stream = sample_stream()
        monkeypatch.setenv("REPRO_PARTITION_EVENTS", "6")
        manifest = ingest_stream(stream, "env", root=str(tmp_path))
        assert manifest["partition_events"] == 6
        assert len(manifest["partitions"]) == stream.num_events // 6
        monkeypatch.setenv("REPRO_PARTITION_EVENTS", "zero")
        with pytest.raises(StorageError, match="REPRO_PARTITION_EVENTS"):
            ingest_stream(stream, "bad", root=str(tmp_path))


class TestCatalog:
    def test_root_resolution(self, tmp_path, monkeypatch):
        monkeypatch.delenv("REPRO_DATASETS_DIR", raising=False)
        with pytest.raises(StorageError, match="no catalog root configured"):
            catalog_root()
        monkeypatch.setenv("REPRO_DATASETS_DIR", str(tmp_path))
        assert catalog_root() == str(tmp_path)
        assert catalog_root("/elsewhere") == "/elsewhere"

    def test_ingest_refuses_overwrite_without_force(self, tmp_path):
        stream = sample_stream()
        ingest_stream(stream, "dup", root=str(tmp_path))
        with pytest.raises(StorageError, match="already exists"):
            ingest_stream(stream, "dup", root=str(tmp_path))
        ingest_stream(stream, "dup", root=str(tmp_path), overwrite=True)

    def test_invalid_dataset_name_rejected(self, tmp_path):
        with pytest.raises(StorageError, match="invalid dataset name"):
            ingest_stream(sample_stream(), "../escape", root=str(tmp_path))

    def test_list_and_info(self, tmp_path):
        assert list_datasets(str(tmp_path)) == []
        ingest_stream(sample_stream(), "alpha", root=str(tmp_path))
        ingest_stream(sample_stream(12), "beta", root=str(tmp_path))
        names = [entry["name"] for entry in list_datasets(str(tmp_path))]
        assert names == ["alpha", "beta"]
        info = dataset_info("beta", root=str(tmp_path))
        assert info["events"] == 12
        assert info["nodes"] == 5
        assert info["fingerprint"] == sample_stream(12).fingerprint()

    def test_ingest_file_matches_whole_file_reader(self, tmp_path):
        stream = sample_stream()
        events = tmp_path / "events.tsv"
        write_tsv(stream, events)
        ingest_file(
            events, "fromfile", root=str(tmp_path / "cat"), chunk_events=5
        )
        reopened = open_dataset("fromfile", root=str(tmp_path / "cat"))
        # TSV timestamps parse to float64 on both paths.
        from repro.linkstream import read_tsv

        assert reopened == read_tsv(events)
        assert reopened.fingerprint() == read_tsv(events).fingerprint()

    def test_labeled_stream_round_trips(self, tmp_path):
        stream = LinkStream.from_triples(
            [("ana", "bob", 1.0), ("bob", "cal", 2.0), ("cal", "ana", 3.0)]
        )
        ingest_stream(stream, "named", root=str(tmp_path))
        reopened = open_dataset("named", root=str(tmp_path))
        assert reopened == stream
        assert reopened.labels == stream.labels

    def test_reindex_reproduces_manifest(self, tmp_path):
        stream = sample_stream()
        original = ingest_stream(
            stream, "rebuild", root=str(tmp_path), partition_events=4
        )
        rebuilt = reindex_dataset("rebuild", root=str(tmp_path))
        assert rebuilt["fingerprint"] == original["fingerprint"]
        assert rebuilt["manifest_digest"] == original["manifest_digest"]
        assert rebuilt["chain"] == original["chain"]  # content unchanged
        assert open_dataset("rebuild", root=str(tmp_path)) == stream

    def test_reindex_recovers_from_lost_manifest(self, tmp_path):
        stream = sample_stream()
        original = ingest_stream(
            stream, "lost", root=str(tmp_path), partition_events=4
        )
        os.unlink(tmp_path / "lost" / "manifest.json")
        rebuilt = reindex_dataset("lost", root=str(tmp_path))
        assert rebuilt["fingerprint"] == original["fingerprint"]
        assert rebuilt["chain"] == []  # no prior manifest to vouch for it
        assert open_dataset("lost", root=str(tmp_path)) == stream

    def test_reindex_names_corrupt_file(self, tmp_path):
        manifest = ingest_stream(
            sample_stream(), "hurt", root=str(tmp_path), partition_events=4
        )
        victim = manifest["partitions"][2]["file"]
        (tmp_path / "hurt" / victim).write_bytes(b"garbage")
        with pytest.raises(StorageError, match="corrupt partition file") as err:
            reindex_dataset("hurt", root=str(tmp_path))
        assert victim in str(err.value)


class TestDatasetsCli:
    @pytest.fixture()
    def events_file(self, tmp_path):
        path = tmp_path / "toy.tsv"
        write_tsv(sample_stream(), path)
        return path

    def run(self, argv):
        from repro.cli import main

        return main(argv)

    def test_bare_datasets_still_lists_replicas(self, capsys, monkeypatch):
        monkeypatch.delenv("REPRO_DATASETS_DIR", raising=False)
        assert self.run(["datasets"]) == 0
        out = capsys.readouterr().out
        assert "irvine" in out
        assert "no dataset catalog configured" in out

    def test_ingest_list_info_index(self, tmp_path, events_file, capsys):
        root = str(tmp_path / "cat")
        assert (
            self.run(
                [
                    "datasets",
                    "ingest",
                    "toy",
                    "--events",
                    str(events_file),
                    "--root",
                    root,
                    "--partition-events",
                    "4",
                ]
            )
            == 0
        )
        assert "ingested" in capsys.readouterr().out
        assert self.run(["datasets", "list", "--root", root]) == 0
        assert "toy" in capsys.readouterr().out
        assert self.run(["datasets", "info", "toy", "--root", root, "--verify"]) == 0
        out = capsys.readouterr().out
        assert "fingerprint" in out and "partitions ok" in out
        assert self.run(["datasets", "index", "toy", "--root", root]) == 0
        assert "reindexed" in capsys.readouterr().out

    def test_env_var_supplies_root(self, tmp_path, events_file, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_DATASETS_DIR", str(tmp_path / "cat"))
        assert (
            self.run(["datasets", "ingest", "toy", "--events", str(events_file)])
            == 0
        )
        capsys.readouterr()
        assert self.run(["datasets", "list"]) == 0
        assert "toy" in capsys.readouterr().out

    def test_usage_errors_exit_2(self, tmp_path, capsys, monkeypatch):
        monkeypatch.delenv("REPRO_DATASETS_DIR", raising=False)
        assert self.run(["datasets", "info", "toy"]) == 2  # no root
        assert self.run(["datasets", "ingest", "toy"]) == 2  # no --events
        assert (
            self.run(["datasets", "info", "ghost", "--root", str(tmp_path)]) == 2
        )
        err = capsys.readouterr().err
        assert "manifest" in err


class TestSpanTasks:
    MEASURES = ("occupancy",)

    def test_span_none_leaves_tokens_byte_identical(self):
        from repro.engine import normalize_measures

        specs = normalize_measures(self.MEASURES)
        plain = AnalysisTask(delta=2.0, measures=specs)
        spanned = AnalysisTask(delta=2.0, measures=specs, span=(0.0, 4.0))
        assert len(plain._token()) == 3  # the historical shape
        assert plain._token() == AnalysisTask(delta=2.0, measures=specs, span=None)._token()
        assert spanned._token() != plain._token()
        assert ("span", ("0.0", "4.0")) in spanned._token()
        stream = sample_stream()
        key_plain = plain.measure_key(stream.fingerprint(), specs[0])
        key_spanned = spanned.measure_key(stream.fingerprint(), specs[0])
        assert key_plain != key_spanned

    def test_span_validation(self):
        from repro.engine import normalize_measures

        specs = normalize_measures(self.MEASURES)
        for bad in ((3.0, 3.0), (5.0, 1.0), (0.0, float("inf"))):
            with pytest.raises(EngineError, match="span"):
                AnalysisTask(delta=1.0, measures=specs, span=bad)
            with pytest.raises(EngineError, match="span"):
                AnalysisShardTask(delta=1.0, measures=specs, span=bad)

    def test_shards_propagate_span(self):
        from repro.engine import normalize_measures

        specs = normalize_measures(self.MEASURES)
        task = AnalysisTask(delta=2.0, measures=specs, span=(0.0, 6.0))
        shards = task.shard(3)
        assert all(s.span == (0.0, 6.0) for s in shards)
        assert task.narrow([0]).span == (0.0, 6.0)

    def test_spanned_evaluation_equals_restricted_stream(self):
        stream = sample_stream()
        tasks_spanned = plan_measure_sweep(
            [2.0, 3.0], self.MEASURES, span=(0.0, 6.0)
        )
        tasks_plain = plan_measure_sweep([2.0, 3.0], self.MEASURES)
        restricted = stream.restrict_time(0.0, 6.0)
        with SweepEngine("serial") as engine:
            spanned = engine.run(stream, tasks_spanned)
            direct = engine.run(restricted, tasks_plain)
        for a, b in zip(spanned, direct):
            assert point_key(a["occupancy"]) == point_key(b["occupancy"])

    def test_spanned_task_opens_exactly_k_partitions(self, tmp_path):
        stream = sample_stream()
        manifest = ingest_stream(
            stream, "sweep", root=str(tmp_path), partition_events=4
        )
        entries = manifest["partitions"]
        total = len(entries)
        span = (entries[1]["t_min"], entries[1]["t_max"] + 0.25)
        k = sum(
            1
            for e in entries
            if e["t_max"] >= span[0] and e["t_min"] < span[1]
        )
        assert 0 < k < total
        reopened = open_dataset("sweep", root=str(tmp_path))
        tasks = plan_measure_sweep([1.0], self.MEASURES, span=span)
        before = snapshot_counts()
        with SweepEngine("serial") as engine:
            [result] = engine.run(reopened, tasks)
        delta = counts_delta(before)
        assert delta["partitions_opened"] == k
        assert delta["partitions_pruned"] == total - k
        restricted = stream.restrict_time(*span)
        with SweepEngine("serial") as engine:
            [expected] = engine.run(
                restricted, plan_measure_sweep([1.0], self.MEASURES)
            )
        assert point_key(result["occupancy"]) == point_key(
            expected["occupancy"]
        )


class TestServiceOnPartitionedStreams:
    def test_register_dataset_serves_bit_identical_text(self, tmp_path):
        from repro.service.daemon import AnalysisService

        stream = sample_stream()
        ingest_stream(stream, "svc", root=str(tmp_path), partition_events=4)
        with AnalysisService(runners=1) as service:
            before = snapshot_counts()
            fingerprint = service.register_dataset("svc", root=str(tmp_path))
            assert fingerprint == stream.fingerprint()
            assert counts_delta(before)["partitions_opened"] == 0
            job = service.submit_analyze(
                fingerprint, num_deltas=6, validate=True, timeout=120
            )
            served = service.result(job.id, wait=120)["result"]["text"]
        offline = render_analysis(
            analyze_stream(stream, num_deltas=6, validate=True)
        )
        assert served == offline

    def test_unknown_dataset_maps_to_repro_error(self, tmp_path):
        from repro.service.daemon import AnalysisService

        with AnalysisService(runners=1) as service:
            with pytest.raises(StorageError, match="manifest"):
                service.register_dataset("ghost", root=str(tmp_path))


class TestRoundTripProperty:
    """Ingest → PartitionedStorage → analyze ≡ in-memory, bit for bit."""

    @settings(max_examples=12, deadline=None)
    @given(stream=link_streams(min_events=4, max_events=14))
    def test_partitioned_analysis_is_bit_identical(self, stream):
        assume(stream.t_max > stream.t_min)  # analyze needs a positive span
        with tempfile.TemporaryDirectory() as root:
            ingest_stream(stream, "prop", root=root, partition_events=3)
            reopened = open_dataset("prop", root=root)
            assert reopened.fingerprint() == stream.fingerprint()
            assert reopened == stream
            for kernel in ("legacy", "batched"):
                with pytest.MonkeyPatch.context() as mp:
                    mp.setenv("REPRO_SCAN_KERNEL", kernel)
                    report_mem = analyze_stream(stream, num_deltas=5)
                    report_disk = analyze_stream(reopened, num_deltas=5)
                assert render_analysis(report_mem) == render_analysis(
                    report_disk
                )
                assert report_mem.gamma == report_disk.gamma

    @settings(max_examples=10, deadline=None)
    @given(stream=link_streams(min_events=3, max_events=12))
    def test_slices_agree_with_in_memory_selection(self, stream):
        with tempfile.TemporaryDirectory() as root:
            ingest_stream(stream, "prop", root=root, partition_events=3)
            reopened = open_dataset("prop", root=root)
            span = (stream.t_min + 1.0, max(stream.t_min + 2.0, stream.t_max))
            assert reopened.restrict_time(*span) == stream.restrict_time(*span)
            assert reopened.slice_time(*span) == stream.slice_time(*span)
