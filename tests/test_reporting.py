"""Unit tests for tables and ASCII charts."""

import numpy as np
import pytest

from repro.reporting import format_float, line_chart, render_table, scatter_chart
from repro.utils.errors import ValidationError


class TestFormatFloat:
    def test_compact(self):
        assert format_float(0.123456) == "0.1235"
        assert format_float(1234567.0) == "1.235e+06"

    def test_specials(self):
        assert format_float(float("nan")) == "nan"
        assert format_float(float("inf")) == "inf"
        assert format_float(float("-inf")) == "-inf"


class TestTable:
    def test_alignment(self):
        text = render_table(["name", "value"], [["a", 1.0], ["bb", 22.5]])
        lines = text.splitlines()
        assert lines[0].startswith("name")
        assert len(set(len(l) for l in lines[:2])) == 1  # header/rule aligned

    def test_title(self):
        text = render_table(["x"], [[1.0]], title="Table 1")
        assert text.splitlines()[0] == "Table 1"

    def test_row_width_mismatch(self):
        with pytest.raises(ValidationError):
            render_table(["a", "b"], [[1.0]])

    def test_empty_headers_rejected(self):
        with pytest.raises(ValidationError):
            render_table([], [])

    def test_no_rows_ok(self):
        text = render_table(["a"], [])
        assert "a" in text


class TestCharts:
    def test_line_chart_contains_markers(self):
        xs = np.linspace(1, 10, 20)
        text = line_chart(xs, xs**2, width=40, height=10)
        assert "o" in text
        assert "+" + "-" * 40 in text

    def test_logx(self):
        xs = np.geomspace(1, 1e6, 30)
        text = line_chart(xs, np.log(xs), logx=True, width=40, height=8)
        assert "1e+06" in text

    def test_multiple_series_get_legend(self):
        data = {
            "rise": ([1, 2, 3], [1, 2, 3]),
            "fall": ([1, 2, 3], [3, 2, 1]),
        }
        text = scatter_chart(data, width=30, height=8)
        assert "o=rise" in text
        assert "x=fall" in text

    def test_non_finite_points_dropped(self):
        text = line_chart([1, 2, 3], [1, float("nan"), 3], width=20, height=5)
        assert isinstance(text, str)

    def test_all_bad_points_rejected(self):
        with pytest.raises(ValidationError):
            line_chart([1], [float("nan")], width=10, height=5)

    def test_empty_rejected(self):
        with pytest.raises(ValidationError):
            scatter_chart({})
