"""Tests for within-Δ sharding: the targets-restricted scan, collector
merges, shard tasks, the scheduler's shard policy, and cache isolation.

The contract: sharding is invisible in the results — every backend and
every shard policy returns γ, per-Δ scores, trip counts, and
distributions **bit-identical** to the unsharded serial reference.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import occupancy_method
from repro.core.distribution import OccupancyDistribution
from repro.core.occupancy import OccupancyCollector, series_occupancy, series_occupancy_shard
from repro.engine import (
    AUTO_SHARDS,
    AnalysisShardTask,
    AnalysisTask,
    ClassicalMeasure,
    MetricsMeasure,
    OccupancyMeasure,
    ProcessBackend,
    SweepCache,
    SweepEngine,
    ThreadBackend,
    normalize_shards,
    plan_shard_expansion,
)
from repro.generators import time_uniform_stream, two_mode_stream_by_rho
from repro.graphseries import aggregate
from repro.linkstream import LinkStream
from repro.temporal.collectors import CountingCollector, TripListCollector
from repro.temporal.reachability import DistanceTotals, scan_series
from repro.utils.errors import EngineError, ValidationError


@pytest.fixture(scope="module")
def stream() -> LinkStream:
    return time_uniform_stream(12, 6, 5000.0, seed=0)


@pytest.fixture(scope="module")
def series(stream):
    return aggregate(stream, 500.0)


def occupancy_task(delta: float, **measure_kwargs) -> AnalysisTask:
    return AnalysisTask(
        delta=delta, measures=(OccupancyMeasure(**measure_kwargs),)
    )


def assert_identical_sweeps(a, b):
    assert a.gamma == b.gamma
    assert a.deltas.tolist() == b.deltas.tolist()
    for pa, pb in zip(a.points, b.points):
        assert pa.scores == pb.scores
        assert pa.num_trips == pb.num_trips
        assert pa.num_windows == pb.num_windows
        assert pa.num_nonempty_windows == pb.num_nonempty_windows
        assert pa.distribution.values.tolist() == pb.distribution.values.tolist()
        assert pa.distribution.weights.tolist() == pb.distribution.weights.tolist()


class TestScanTargets:
    def test_disjoint_targets_partition_the_trip_set(self, series):
        full = scan_series(series)
        shard_trips = [
            scan_series(
                series, targets=np.arange(i, series.num_nodes, 3)
            ).num_trips
            for i in range(3)
        ]
        assert sum(shard_trips) == full.num_trips
        assert all(count > 0 for count in shard_trips)

    def test_full_target_set_matches_unrestricted(self, series):
        collector_full = TripListCollector()
        scan_series(series, collector_full)
        collector_all = TripListCollector()
        scan_series(
            collector=collector_all,
            series=series,
            targets=np.arange(series.num_nodes),
        )
        full = collector_full.trips()
        restricted = collector_all.trips()
        assert full.v.tolist() == restricted.v.tolist()
        assert full.durations.tolist() == restricted.durations.tolist()

    def test_restricted_scan_only_reports_chosen_destinations(self, series):
        targets = np.array([0, 5, 7])
        collector = TripListCollector()
        scan_series(series, collector, targets=targets)
        assert set(collector.trips().v.tolist()) <= set(targets.tolist())

    def test_empty_targets_rejected(self, series):
        with pytest.raises(ValidationError):
            scan_series(series, targets=np.array([], dtype=np.int64))

    def test_out_of_range_targets_rejected(self, series):
        with pytest.raises(ValidationError):
            scan_series(series, targets=[series.num_nodes])
        with pytest.raises(ValidationError):
            scan_series(series, targets=[-1])

    def test_distance_totals_compose_with_targets(self, series):
        # Distance statistics used to be incompatible with a target
        # restriction (the hard-wired compute_distances flag); as a
        # collector-style measure they now shard like everything else.
        reference = DistanceTotals()
        scan_series(series, reference)
        merged = DistanceTotals()
        for i in range(3):
            shard = DistanceTotals()
            scan_series(series, shard, targets=np.arange(i, series.num_nodes, 3))
            merged.merge(shard)
        assert merged.stats(series.num_nodes, series.num_steps) == (
            reference.stats(series.num_nodes, series.num_steps)
        )

    def test_multi_collector_scan_feeds_all_consumers_once(self, series):
        # One pass, many measures: a fused consumer set sees exactly what
        # dedicated single-consumer scans see.
        occupancy_alone, num_trips = series_occupancy(series)
        totals_alone = DistanceTotals()
        scan_series(series, totals_alone)

        occupancy = OccupancyCollector()
        totals = DistanceTotals()
        counting = CountingCollector()
        result = scan_series(series, [occupancy, totals, counting])
        assert counting.num_trips == num_trips == occupancy.num_trips
        assert result.num_trips == num_trips
        fused_distribution = occupancy.distribution()
        assert fused_distribution.values.tolist() == occupancy_alone.values.tolist()
        assert fused_distribution.weights.tolist() == occupancy_alone.weights.tolist()
        assert totals.stats(series.num_nodes, series.num_steps) == (
            totals_alone.stats(series.num_nodes, series.num_steps)
        )

    def test_unknown_consumer_rejected(self, series):
        with pytest.raises(ValidationError, match="neither a trip collector"):
            scan_series(series, object())


class TestCollectorMerges:
    def test_occupancy_shards_merge_bit_identically(self, series):
        reference, num_trips = series_occupancy(series)
        shards = [
            series_occupancy_shard(series, np.arange(i, series.num_nodes, 4))
            for i in range(4)
        ]
        merged = OccupancyCollector()
        for shard in shards:
            merged.merge(shard)
        assert merged.num_trips == num_trips
        distribution = merged.distribution()
        assert distribution.values.tolist() == reference.values.tolist()
        assert distribution.weights.tolist() == reference.weights.tolist()
        assert distribution.total_weight == reference.total_weight

    def test_exact_mode_shards_merge_bit_identically(self, series):
        reference, __ = series_occupancy(series, exact=True)
        merged = OccupancyCollector(exact=True)
        for i in range(3):
            merged.merge(
                series_occupancy_shard(
                    series, np.arange(i, series.num_nodes, 3), exact=True
                )
            )
        distribution = merged.distribution()
        assert distribution.values.tolist() == reference.values.tolist()
        assert distribution.weights.tolist() == reference.weights.tolist()

    def test_empty_shards_merge_and_only_final_assembly_fails(self):
        # A destination subset can legitimately receive zero trips: the
        # empty collector must merge like any other, and only a merged
        # total of zero may fail — at final assembly.
        empty_a = OccupancyCollector()
        empty_b = OccupancyCollector()
        assert empty_a.empty
        merged = OccupancyCollector().merge(empty_a).merge(empty_b)
        assert merged.empty
        with pytest.raises(ValidationError, match="no minimal trips"):
            merged.distribution()
        # Empty + loaded merges keep the loaded mass bit-identical.
        loaded = OccupancyCollector()
        values = np.array([0.25, 1.0])
        loaded.record(
            0, 0.0, np.arange(2), values, np.ones(2, dtype=np.int64), 1.0 / values
        )
        combined = OccupancyCollector().merge(empty_a).merge(loaded)
        assert not combined.empty
        assert combined.num_trips == 2
        reference = loaded.distribution()
        assert combined.distribution().values.tolist() == reference.values.tolist()
        # Exact mode: same contract.
        combined_exact = OccupancyCollector(exact=True).merge(
            OccupancyCollector(exact=True)
        )
        assert combined_exact.empty
        with pytest.raises(ValidationError, match="no minimal trips"):
            combined_exact.distribution()

    def test_empty_destination_shard_comes_back_mergeable(self):
        # Node 2 never receives an edge: its shard is empty but the
        # partition still reassembles the full distribution.
        stream = LinkStream([0, 0], [1, 1], [0, 10], num_nodes=3, directed=True)
        series = aggregate(stream, 1.0)
        reference, num_trips = series_occupancy(series)
        shards = [
            series_occupancy_shard(series, np.array([node]))
            for node in range(series.num_nodes)
        ]
        assert shards[2].empty  # no trips arrive at node 2
        merged = OccupancyCollector()
        for shard in shards:
            merged.merge(shard)
        assert merged.num_trips == num_trips
        assert merged.distribution().values.tolist() == reference.values.tolist()

    @settings(max_examples=25, deadline=None)
    @given(
        splits=st.lists(
            st.lists(st.floats(0.01, 1.0), min_size=1, max_size=8),
            min_size=2,
            max_size=4,
        )
    )
    def test_occupancy_merge_is_associative(self, splits):
        """((a + b) + c) and (a + (b + c)) build the same distribution."""

        def collector_for(values):
            collector = OccupancyCollector(bins=16)
            arr = np.asarray(values)
            collector.record(
                0,
                0.0,
                np.arange(arr.size),
                arr,  # arrivals: unused by the collector
                np.ones(arr.size, dtype=np.int64),
                1.0 / arr,  # durations chosen so hops/durations == values
            )
            return collector

        left = collector_for(splits[0])
        for chunk in splits[1:]:
            left.merge(collector_for(chunk))
        right_tail = collector_for(splits[-1])
        for chunk in reversed(splits[1:-1]):
            right_tail = collector_for(chunk).merge(right_tail)
        right = collector_for(splits[0]).merge(right_tail)
        assert left.num_trips == right.num_trips
        assert left.distribution().values.tolist() == right.distribution().values.tolist()
        assert left.distribution().weights.tolist() == right.distribution().weights.tolist()

    @settings(max_examples=25, deadline=None)
    @given(
        batches=st.lists(
            st.tuples(
                st.integers(1, 5),  # trips in the batch
                st.integers(1, 9),  # hop count
                st.integers(1, 20),  # duration
            ),
            min_size=2,
            max_size=6,
        ),
        split=st.integers(1, 5),
    )
    def test_counting_and_triplist_merge_match_single_collector(self, batches, split):
        split = min(split, len(batches) - 1)

        def record_into(counting, trip_list, batch):
            count, hops, duration = batch
            targets = np.arange(1, count + 1)
            arrivals = np.full(count, float(duration))
            hop_arr = np.full(count, hops, dtype=np.int64)
            durations = np.full(count, float(duration))
            counting.record(0, 0.0, targets, arrivals, hop_arr, durations)
            trip_list.record(0, 0.0, targets, arrivals, hop_arr, durations)

        whole_count, whole_trips = CountingCollector(), TripListCollector()
        for batch in batches:
            record_into(whole_count, whole_trips, batch)

        parts = [(CountingCollector(), TripListCollector()) for _ in range(2)]
        for i, batch in enumerate(batches):
            record_into(*parts[0 if i < split else 1], batch)
        merged_count = parts[0][0].merge(parts[1][0])
        merged_trips = parts[0][1].merge(parts[1][1])

        assert merged_count.num_trips == whole_count.num_trips
        assert merged_count.max_hops == whole_count.max_hops
        assert merged_count.max_duration == whole_count.max_duration
        assert len(merged_trips.trips()) == len(whole_trips.trips())
        assert (
            sorted(merged_trips.trips().durations.tolist())
            == sorted(whole_trips.trips().durations.tolist())
        )

    def test_mismatched_merges_rejected(self):
        with pytest.raises(ValidationError):
            OccupancyCollector(bins=16).merge(OccupancyCollector(bins=32))
        with pytest.raises(ValidationError):
            OccupancyCollector(exact=True).merge(OccupancyCollector(exact=False))
        with pytest.raises(ValidationError):
            OccupancyCollector().merge(CountingCollector())
        with pytest.raises(ValidationError):
            DistanceTotals().merge(CountingCollector())

    def test_exact_mode_merge_ignores_bin_counts(self):
        # Bins are meaningless in exact mode; differing sizes must not
        # crash the merge (regression: raw numpy broadcast error).
        a = OccupancyCollector(exact=True, bins=16)
        b = OccupancyCollector(exact=True, bins=32)
        values = np.array([0.5, 1.0])
        for collector in (a, b):
            collector.record(
                0,
                0.0,
                np.arange(2),
                values,
                np.ones(2, dtype=np.int64),
                1.0 / values,
            )
        merged = a.merge(b)
        assert merged.num_trips == 4
        assert merged.distribution().total_weight == 4

    def test_sum_of_histograms_matches_single_histogram(self):
        rng = np.random.default_rng(5)
        shards = [rng.integers(0, 50, size=32) for _ in range(3)]
        ones = [3, 0, 7]
        pooled = OccupancyDistribution.sum_of_histograms(shards, ones_counts=ones)
        single = OccupancyDistribution.from_histogram(
            sum(shards), ones_count=float(sum(ones))
        )
        assert pooled.values.tolist() == single.values.tolist()
        assert pooled.weights.tolist() == single.weights.tolist()

    def test_sum_of_histograms_rejects_mixed_resolutions(self):
        with pytest.raises(ValidationError):
            OccupancyDistribution.sum_of_histograms(
                [np.ones(8, dtype=np.int64), np.ones(16, dtype=np.int64)]
            )

    def test_sum_of_histograms_rejects_corrupt_counts(self):
        # Float counts from a lossy round-trip must not be silently
        # floored; negative counts are never valid.
        with pytest.raises(ValidationError, match="integral"):
            OccupancyDistribution.sum_of_histograms([np.array([1.0, 2.4])])
        with pytest.raises(ValidationError, match="non-negative"):
            OccupancyDistribution.sum_of_histograms([np.array([1, -2])])
        # Integer-valued floats (a clean serialization round-trip) pass.
        pooled = OccupancyDistribution.sum_of_histograms([np.array([1.0, 2.0])])
        assert pooled.total_weight == 3
        # ones_counts get the same scrutiny as bin counts.
        with pytest.raises(ValidationError, match="one entry per"):
            OccupancyDistribution.sum_of_histograms(
                [np.ones(4)], ones_counts=[1, 2]
            )
        with pytest.raises(ValidationError, match="non-negative integers"):
            OccupancyDistribution.sum_of_histograms([np.ones(4)], ones_counts=[-1])


class TestShardTasks:
    def test_shard_then_merge_equals_evaluate(self, stream):
        task = occupancy_task(500.0, methods=("mk", "std"))
        direct = task.evaluate(stream)["occupancy"]
        pieces = task.shard(3)
        assert [p.shard_index for p in pieces] == [0, 1, 2]
        merged = task.merge_shards([p.evaluate(stream) for p in pieces])["occupancy"]
        assert merged.scores == direct.scores
        assert merged.num_trips == direct.num_trips
        assert merged.num_windows == direct.num_windows
        assert (
            merged.distribution.values.tolist()
            == direct.distribution.values.tolist()
        )

    def test_fused_task_shards_every_measure(self, stream):
        task = AnalysisTask(
            delta=500.0, measures=(OccupancyMeasure(), ClassicalMeasure())
        )
        direct = task.evaluate(stream)
        pieces = task.shard(4)
        merged = task.merge_shards([p.evaluate(stream) for p in pieces])
        assert merged["occupancy"].scores == direct["occupancy"].scores
        assert merged["classical"].distances == direct["classical"].distances
        assert merged["classical"].snapshot == direct["classical"].snapshot

    def test_shard_of_one_means_no_split(self):
        assert occupancy_task(10.0).shard(1) is None

    def test_scanless_tasks_do_not_shard(self):
        # Snapshot metrics never touch the scan: nothing to split.
        metrics_only = AnalysisTask(delta=10.0, measures=(MetricsMeasure(),))
        assert metrics_only.shard(4) is None
        plan = plan_shard_expansion([occupancy_task(10.0), metrics_only], 4)
        assert plan.sharded == [True, False]
        assert len(plan.subtasks) == 5

    def test_merge_rejects_incomplete_or_foreign_shards(self, stream):
        task = occupancy_task(500.0)
        pieces = task.shard(3)
        results = [p.evaluate(stream) for p in pieces]
        with pytest.raises(EngineError):
            task.merge_shards(results[:2])  # missing a shard
        with pytest.raises(EngineError):
            task.merge_shards([])
        other = occupancy_task(250.0)
        with pytest.raises(EngineError):
            other.merge_shards(results)  # wrong delta

    def test_merge_rejects_shards_missing_a_measure(self, stream):
        # Shards cached by an occupancy-only sweep cannot satisfy a
        # fused occupancy+classical merge.
        fused = AnalysisTask(
            delta=500.0, measures=(OccupancyMeasure(), ClassicalMeasure())
        )
        occupancy_only = occupancy_task(500.0)
        results = [p.evaluate(stream) for p in occupancy_only.shard(2)]
        with pytest.raises(EngineError, match="classical"):
            fused.merge_shards(results)

    def test_shard_task_validates_spec(self):
        with pytest.raises(EngineError):
            AnalysisShardTask(
                delta=10.0,
                measures=(OccupancyMeasure(),),
                shard_index=2,
                num_shards=2,
            )
        with pytest.raises(EngineError):
            AnalysisShardTask(
                delta=10.0,
                measures=(OccupancyMeasure(),),
                shard_index=0,
                num_shards=0,
            )
        with pytest.raises(EngineError):
            AnalysisShardTask(delta=10.0, measures=(), shard_index=0, num_shards=1)


class TestShardCacheKeys:
    def test_shard_spec_isolates_cache_keys(self):
        fingerprint = "f" * 64
        full = occupancy_task(10.0)
        keys = set(full.result_keys(fingerprint))
        for num_shards in (2, 3):
            for task in full.shard(num_shards):
                keys.add(task.cache_key(fingerprint))
        assert len(keys) == 1 + 2 + 3  # measure key + every shard, all distinct

    def test_shard_layouts_do_not_collide_in_a_live_cache(self, stream):
        engine = SweepEngine(cache=SweepCache.build())
        deltas = [50.0, 500.0]
        two = occupancy_method(stream, deltas=deltas, engine=engine, shards=2)
        three = occupancy_method(stream, deltas=deltas, engine=engine, shards=3)
        plain = occupancy_method(
            stream, deltas=deltas, engine=SweepEngine(cache=None)
        )
        assert_identical_sweeps(plain, two)
        assert_identical_sweeps(plain, three)

    def test_shard_entries_shared_across_scoring_methods(self, stream):
        # Shard results are raw collectors; scoring happens at merge
        # time, so a re-sweep under a different selection statistic must
        # reuse every shard entry and only re-score.
        engine = SweepEngine(cache=SweepCache.build())
        occupancy_method(stream, deltas=[50.0, 500.0], engine=engine, shards=2)
        assert engine.cache.misses == 2 + 4  # measure keys + shard keys
        occupancy_method(
            stream, deltas=[50.0, 500.0], method="std", engine=engine, shards=2
        )
        assert engine.cache.misses == 6 + 2  # only the new measure keys missed
        assert engine.cache.hits >= 4  # every shard scan was reused

    def test_merged_points_warm_the_unsharded_key(self, stream, monkeypatch):
        calls = {"full": 0}
        from repro.temporal.reachability import scan_series as real_scan

        def counting(series, collector=None, **kwargs):
            if kwargs.get("targets") is None:
                calls["full"] += 1
            return real_scan(series, collector, **kwargs)

        monkeypatch.setattr("repro.engine.incremental.scan_series", counting)
        engine = SweepEngine(cache=SweepCache.build())
        sharded = occupancy_method(stream, deltas=[50.0, 500.0], engine=engine, shards=2)
        assert calls["full"] == 0  # the sharded path never runs a full scan
        rerun = occupancy_method(stream, deltas=[50.0, 500.0], engine=engine)
        assert calls["full"] == 0  # merged points were cached per measure
        assert_identical_sweeps(sharded, rerun)


class TestShardedSweeps:
    @pytest.fixture(scope="class")
    def streams(self):
        return [
            time_uniform_stream(10, 5, 4000.0, seed=1),
            two_mode_stream_by_rho(8, 30, 3, 6000.0, 0.5, seed=2),
        ]

    def test_serial_backend_sharded_matches_unsharded(self, streams):
        for stream in streams:
            plain = occupancy_method(stream, engine=SweepEngine(cache=None))
            sharded = occupancy_method(
                stream, engine=SweepEngine(cache=None), shards=3
            )
            assert_identical_sweeps(plain, sharded)

    def test_thread_backend_sharded_matches_unsharded(self, streams):
        with SweepEngine(ThreadBackend(jobs=4), cache=None) as engine:
            for stream in streams:
                plain = occupancy_method(stream, engine=SweepEngine(cache=None))
                sharded = occupancy_method(stream, engine=engine, shards=4)
                assert_identical_sweeps(plain, sharded)

    def test_process_backend_sharded_matches_unsharded(self, streams):
        with SweepEngine(ProcessBackend(jobs=2), cache=None) as engine:
            for stream in streams:
                plain = occupancy_method(stream, engine=SweepEngine(cache=None))
                sharded = occupancy_method(stream, engine=engine, shards=2)
                assert_identical_sweeps(plain, sharded)

    def test_exact_mode_sharded_matches_unsharded(self, stream):
        plain = occupancy_method(
            stream, deltas=[50.0, 500.0], exact=True, engine=SweepEngine(cache=None)
        )
        sharded = occupancy_method(
            stream,
            deltas=[50.0, 500.0],
            exact=True,
            engine=SweepEngine(cache=None),
            shards=3,
        )
        assert_identical_sweeps(plain, sharded)

    def test_more_shards_than_nodes_is_capped(self, stream):
        plain = occupancy_method(
            stream, deltas=[50.0, 500.0], engine=SweepEngine(cache=None)
        )
        sharded = occupancy_method(
            stream,
            deltas=[50.0, 500.0],
            engine=SweepEngine(cache=None),
            shards=10 * stream.num_nodes,
        )
        assert_identical_sweeps(plain, sharded)


class TestShardPolicy:
    def test_normalize_accepts_auto_ints_and_strings(self):
        assert normalize_shards(None) == AUTO_SHARDS
        assert normalize_shards("auto") == AUTO_SHARDS
        assert normalize_shards(" AUTO ") == AUTO_SHARDS
        assert normalize_shards(4) == 4
        assert normalize_shards("4") == 4

    @pytest.mark.parametrize("bad", ["bogus", "0", 0, -1, 2.5, True])
    def test_normalize_rejects_nonsense(self, bad):
        with pytest.raises(EngineError):
            normalize_shards(bad)

    def test_auto_shards_only_small_plans(self, stream):
        engine = SweepEngine(ThreadBackend(jobs=8), cache=SweepCache.build())
        # 2 tasks < 8 workers: each Δ splits into 4 shards -> the cache
        # sees 2 measure-key probes plus 8 shard-key probes.
        occupancy_method(stream, deltas=[50.0, 500.0], engine=engine)
        assert engine.cache.misses == 2 + 8
        engine.close()

    def test_auto_never_shards_large_plans(self, stream):
        engine = SweepEngine(ThreadBackend(jobs=2), cache=SweepCache.build())
        occupancy_method(stream, num_deltas=8, engine=engine)
        assert engine.cache.misses == 8  # one probe per Δ, no shard keys
        engine.close()

    def test_serial_auto_never_shards(self, stream):
        engine = SweepEngine(cache=SweepCache.build())
        occupancy_method(stream, deltas=[50.0, 500.0], engine=engine)
        assert engine.cache.misses == 2

    def test_env_var_sets_default_policy(self, monkeypatch):
        from repro.engine import engine_from_env

        monkeypatch.setenv("REPRO_SHARDS", "3")
        assert engine_from_env().shards == 3
        monkeypatch.setenv("REPRO_SHARDS", "junk")
        with pytest.raises(EngineError):
            engine_from_env()

    def test_concurrent_shards_aggregate_once_per_delta(self, stream, monkeypatch):
        # The per-process series memo must hold under the exact load
        # auto-sharding creates: all shards of one Δ starting at once.
        import threading

        import repro.graphseries.aggregation as agg_mod

        calls = []
        real = agg_mod.aggregate

        def counting(s, delta, *, origin=None):
            calls.append(delta)
            return real(s, delta, origin=origin)

        monkeypatch.setattr(agg_mod, "aggregate", counting)
        agg_mod.clear_aggregate_cache()
        task = occupancy_task(123.0)
        pieces = task.shard(4)
        barrier = threading.Barrier(4)
        results = [None] * 4

        def evaluate(i):
            barrier.wait()
            results[i] = pieces[i].evaluate(stream)

        threads = [threading.Thread(target=evaluate, args=(i,)) for i in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert calls == [123.0]  # one aggregation served all four shards
        merged = task.merge_shards(results)["occupancy"]
        assert merged.scores == task.evaluate(stream)["occupancy"].scores

    def test_warm_sharded_run_reports_cached_progress(self, stream):
        import io

        from repro.engine import StderrProgress

        buffer = io.StringIO()
        engine = SweepEngine(
            ThreadBackend(jobs=8),
            cache=SweepCache.build(),
            progress=StderrProgress(buffer),
        )
        occupancy_method(stream, deltas=[50.0, 500.0], engine=engine)
        cold = buffer.getvalue()
        assert "sweep 8/8" in cold  # sharded path reports executed subtasks
        occupancy_method(stream, deltas=[50.0, 500.0], engine=engine)
        warm = buffer.getvalue()[len(cold):]
        assert "(2 cached)" in warm  # whole-point hits, at task granularity
        seen = len(buffer.getvalue())
        # Mixed warm/cold: 2 whole-point hits + 1 new Δ sharded 3 ways
        # (3 tasks, 8 workers) -> 5 units, 2 of them cached.
        occupancy_method(stream, deltas=[50.0, 500.0, 5000.0], engine=engine)
        mixed = buffer.getvalue()[seen:]
        assert "sweep 5/5" in mixed
        assert "(2 cached)" in mixed
        engine.close()

    def test_run_override_beats_engine_policy(self, stream):
        engine = SweepEngine(ThreadBackend(jobs=8), cache=SweepCache.build(), shards=1)
        occupancy_method(stream, deltas=[50.0, 500.0], engine=engine)
        assert engine.cache.misses == 2  # engine policy: never shard
        # An explicit per-call policy wins over the engine's: fresh Δs
        # probe 2 measure keys and 4 shard keys despite engine shards=1.
        occupancy_method(stream, deltas=[60.0, 600.0], engine=engine, shards=2)
        assert engine.cache.misses == 2 + 2 + 4
        engine.close()
