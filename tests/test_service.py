"""Tests for the analysis service: daemon, job queue wiring, client.

The acceptance contract: a running daemon handles many concurrent
analyze requests through one shared worker pool; identical concurrent
requests coalesce to a single computation (verified by scan counters);
warm repeat requests perform zero scans; every response is bit-identical
to offline ``repro analyze``; the backlog is bounded (429) and deadlines
cancel pending work naming the task the plan stopped at.
"""

from __future__ import annotations

import re
import threading
import time
from dataclasses import dataclass

import pytest

from repro.core import analyze_stream
from repro.engine import (
    MeasureSpec,
    SweepCache,
    SweepEngine,
    parse_measures_arg,
    register_measure,
    unregister_measure,
)
from repro.generators import time_uniform_stream
from repro.linkstream import read_tsv, write_tsv
from repro.reporting import render_analysis
from repro.service import AnalysisService, ServiceClient
from repro.service.daemon import ServiceServer
from repro.temporal.reachability import SCAN_COUNTS
from repro.utils.errors import (
    AdmissionError,
    JobCancelled,
    ReproError,
    ServiceError,
)


@dataclass(frozen=True)
class SnailMeasure(MeasureSpec):
    """A deliberately slow payload measure: keeps computations in flight
    long enough for coalescing/deadline tests to be deterministic."""

    pause: float = 0.05

    has_payload = True

    @property
    def name(self) -> str:
        return "snail"

    def series_payload(self, series):
        time.sleep(self.pause)
        return len(series)

    def finalize(self, delta, geometry, payload, collectors):
        return payload


@pytest.fixture(scope="module", autouse=True)
def _snail_registered():
    register_measure(SnailMeasure)
    yield
    unregister_measure("snail")


@pytest.fixture(scope="module")
def stream():
    return time_uniform_stream(12, 6, 5000.0, seed=3)


@pytest.fixture
def service():
    # jobs=2 keeps auto-sharding off for the grids used here (enough
    # tasks per plan), so scan counts stay exactly one per Δ.
    with AnalysisService(jobs=2, runners=2, max_pending=8) as svc:
        yield svc


def offline_text(stream, *, measures="occupancy", **kwargs) -> str:
    """What `repro analyze` prints for this stream, computed offline on a
    private engine (fresh cache, serial backend)."""
    if isinstance(measures, str):
        measures = parse_measures_arg(measures)
    with SweepEngine("serial", cache=SweepCache.build()) as engine:
        report = analyze_stream(
            stream, validate=False, engine=engine, measures=measures, **kwargs
        )
    return render_analysis(report)


def wait_for_running(job, timeout: float = 10.0) -> None:
    deadline = time.monotonic() + timeout
    while job.state == "queued" and time.monotonic() < deadline:
        time.sleep(0.005)
    assert job.state == "running"


class TestServiceCore:
    def test_register_stream_is_idempotent(self, service, stream):
        first = service.register_stream(stream)
        second = service.register_stream(stream)
        assert first == second
        assert len(service.list_streams()) == 1

    def test_unknown_fingerprint_is_404(self, service):
        with pytest.raises(ServiceError, match="unknown stream") as excinfo:
            service.submit_analyze("deadbeef")
        assert excinfo.value.status == 404

    def test_unknown_job_is_404(self, service):
        with pytest.raises(ServiceError, match="unknown job") as excinfo:
            service.status("nope")
        assert excinfo.value.status == 404

    def test_analyze_result_matches_offline(self, service, stream):
        fingerprint = service.register_stream(stream)
        job = service.submit_analyze(fingerprint, num_deltas=8)
        result = job.result(60)
        assert result["kind"] == "analyze"
        assert result["text"] == offline_text(stream, num_deltas=8)
        assert result["gamma"] > 0

    def test_concurrent_requests_bit_identical(self, service, stream):
        """8 concurrent analyze requests through the one shared pool, all
        byte-for-byte equal to the offline rendering."""
        fingerprint = service.register_stream(stream)
        jobs, errors = [], []
        lock = threading.Lock()

        def submit():
            try:
                job = service.submit_analyze(fingerprint, num_deltas=8)
                with lock:
                    jobs.append(job)
            except Exception as exc:  # pragma: no cover - fail loudly below
                with lock:
                    errors.append(exc)

        threads = [threading.Thread(target=submit) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        expected = offline_text(stream, num_deltas=8)
        texts = {job.result(60)["text"] for job in jobs}
        assert texts == {expected}

    def test_identical_concurrent_submissions_coalesce_to_one_scan(
        self, service, stream
    ):
        """N identical in-flight submissions -> exactly one computation:
        the scan counters advance by a single request's worth."""
        fingerprint = service.register_stream(stream)
        kwargs = dict(measures="occupancy,snail:pause=0.08", num_deltas=6)
        before = SCAN_COUNTS["series"]
        first = service.submit_analyze(fingerprint, **kwargs)
        attached = [service.submit_analyze(fingerprint, **kwargs) for _ in range(5)]
        results = [job.result(60) for job in [first, *attached]]
        burst_scans = SCAN_COUNTS["series"] - before
        assert all(job.coalesced for job in attached)
        assert service.queue.stats()["coalesced"] == 5
        # The 6-request burst cost exactly what one offline run costs on
        # the same stream and grid — one computation, not six.
        before = SCAN_COUNTS["series"]
        expected = offline_text(stream, **kwargs)
        single_scans = SCAN_COUNTS["series"] - before
        assert single_scans > 0
        assert burst_scans == single_scans
        assert {r["text"] for r in results} == {expected}

    def test_warm_repeat_performs_zero_scans(self, service, stream):
        fingerprint = service.register_stream(stream)
        first = service.submit_analyze(fingerprint, num_deltas=6).result(60)
        before_series = SCAN_COUNTS["series"]
        before_stream = SCAN_COUNTS["stream"]
        again = service.submit_analyze(fingerprint, num_deltas=6).result(60)
        assert SCAN_COUNTS["series"] == before_series
        assert SCAN_COUNTS["stream"] == before_stream
        assert again["text"] == first["text"]

    def test_admission_control_rejects_when_full(self, stream):
        with AnalysisService(jobs=2, runners=1, max_pending=1) as svc:
            fingerprint = svc.register_stream(stream)
            slow = svc.submit_analyze(
                fingerprint, measures="occupancy,snail:pause=0.2", num_deltas=4
            )
            wait_for_running(slow)
            # The runner is busy: this distinct request fills the single
            # backlog slot, the next one is turned away.
            queued = svc.submit_analyze(fingerprint, num_deltas=5)
            with pytest.raises(AdmissionError, match="job queue full"):
                svc.submit_analyze(fingerprint, num_deltas=7)
            assert svc.queue.stats()["rejected"] == 1
            slow.result(60)
            queued.result(60)

    def test_deadline_cancellation_names_delta_and_kind(self, stream):
        with AnalysisService(jobs=2, runners=1) as svc:
            fingerprint = svc.register_stream(stream)
            job = svc.submit_analyze(
                fingerprint,
                measures="occupancy,snail:pause=0.1",
                num_deltas=12,
                timeout=0.25,
            )
            with pytest.raises(JobCancelled) as excinfo:
                job.result(60)
            assert job.state == "cancelled"
            # The deadline cut the sweep mid-plan: the error names the
            # fused task kind and the Δ it stopped at.
            assert re.search(
                r"deadline exceeded before analysis task at delta=[0-9.e+-]+",
                str(excinfo.value),
            )

    def test_append_registers_grown_stream_with_lineage(self, service, stream):
        fingerprint = service.register_stream(stream)
        t0 = int(stream.t_max)
        response = service.append_events(
            fingerprint, [[0, 1, t0 + 1], [2, 3, t0 + 2]]
        )
        assert response["parent"] == fingerprint
        assert response["appended"] == 2
        assert response["num_events"] == stream.num_events + 2
        grown = service.stream(response["fingerprint"])
        assert grown.fingerprint_chain[-1] == (stream.num_events, fingerprint)
        # Both registrations stay addressable.
        fingerprints = {s["fingerprint"] for s in service.list_streams()}
        assert {fingerprint, response["fingerprint"]} <= fingerprints

    def test_append_rejects_out_of_order_batch(self, service, stream):
        fingerprint = service.register_stream(stream)
        with pytest.raises(ReproError, match="strictly greater"):
            service.append_events(fingerprint, [[0, 1, int(stream.t_min)]])

    def test_append_validates_triples(self, service, stream):
        fingerprint = service.register_stream(stream)
        with pytest.raises(ServiceError, match="triple") as excinfo:
            service.append_events(fingerprint, [[0, 1]])
        assert excinfo.value.status == 400
        with pytest.raises(ServiceError, match="number"):
            service.append_events(fingerprint, [[0, 1, "soon"]])

    def test_append_then_analyze_matches_offline(self, service, stream):
        fingerprint = service.register_stream(stream)
        service.submit_analyze(fingerprint, num_deltas=6).result(60)
        t0 = int(stream.t_max)
        events = [[0, 1, t0 + 40], [4, 5, t0 + 90], [1, 2, t0 + 130]]
        response = service.append_events(fingerprint, events)
        warm = service.submit_analyze(
            response["fingerprint"], num_deltas=6
        ).result(60)
        grown = stream.extend([tuple(e) for e in events])
        assert warm["text"] == offline_text(grown, num_deltas=6)

    def test_sweep_job(self, service, stream):
        fingerprint = service.register_stream(stream)
        job = service.submit_sweep(
            fingerprint, measures="occupancy,trips:max_samples=4", num_deltas=5
        )
        result = job.result(60)
        assert result["kind"] == "sweep"
        assert result["measures"] == ["occupancy", "trips"]
        assert len(result["deltas"]) == len(result["summaries"]["trips"])


@pytest.fixture(scope="module")
def daemon(stream, _snail_registered):
    """A live HTTP daemon on an ephemeral port (module-scoped: warm
    state across requests is exactly the daemon's value proposition)."""
    service = AnalysisService(jobs=2, runners=2, max_pending=8)
    server = ServiceServer(("127.0.0.1", 0), service)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    client = ServiceClient(f"http://127.0.0.1:{server.server_address[1]}")
    yield client
    server.shutdown()
    server.server_close()
    service.close()


@pytest.fixture(scope="module")
def events_file(tmp_path_factory, stream):
    path = tmp_path_factory.mktemp("service") / "events.tsv"
    write_tsv(stream, path)
    return path


class TestHTTPDaemon:
    def test_health(self, daemon):
        payload = daemon.health()
        assert payload["status"] == "ok"
        assert "queue" in payload

    def test_upload_analyze_fetch_roundtrip(self, daemon, events_file):
        fingerprint = daemon.upload_stream(str(events_file))
        job = daemon.analyze(fingerprint, num_deltas=8)
        assert job["state"] in ("queued", "running", "done")
        result = daemon.fetch(job["job_id"], wait=60)
        # Bit-identity against an offline analyze of the same file (the
        # file, not the in-memory stream: TSV rounds timestamps).
        assert result["text"] == offline_text(read_tsv(events_file), num_deltas=8)

    def test_upload_is_idempotent(self, daemon, events_file):
        first = daemon.upload_stream(str(events_file))
        second = daemon.upload_stream(str(events_file))
        assert first == second
        assert len([s for s in daemon.streams() if s["fingerprint"] == first]) == 1

    def test_status_and_jobs_listing(self, daemon, events_file):
        fingerprint = daemon.upload_stream(str(events_file))
        job = daemon.analyze(fingerprint, num_deltas=6)
        status = daemon.status(job["job_id"])
        assert status["job_id"] == job["job_id"]
        assert any(j["job_id"] == job["job_id"] for j in daemon.jobs())
        daemon.fetch(job["job_id"], wait=60)

    def test_result_before_done_is_409(self, daemon, events_file):
        fingerprint = daemon.upload_stream(str(events_file))
        job = daemon.analyze(
            fingerprint, measures="occupancy,snail:pause=0.2", num_deltas=4
        )
        with pytest.raises(ServiceError, match="not done yet") as excinfo:
            daemon.fetch(job["job_id"])
        assert excinfo.value.status == 409
        daemon.fetch(job["job_id"], wait=60)  # drain

    def test_client_error_mapping(self, daemon):
        # Unknown stream -> 404 ServiceError.
        with pytest.raises(ServiceError) as excinfo:
            daemon.analyze("deadbeef")
        assert excinfo.value.status == 404
        # Unknown job -> 404.
        with pytest.raises(ServiceError) as excinfo:
            daemon.status("nope")
        assert excinfo.value.status == 404
        # Unknown path -> 404 with the API hint.
        with pytest.raises(ServiceError, match="API is under") as excinfo:
            daemon._request("GET", "/v2/health")
        assert excinfo.value.status == 404

    def test_bad_measures_is_client_error(self, daemon, events_file):
        fingerprint = daemon.upload_stream(str(events_file))
        with pytest.raises(ServiceError) as excinfo:
            daemon.analyze(fingerprint, measures="doesnotexist")
        assert excinfo.value.status == 400

    def test_cancelled_job_maps_to_jobcancelled(self, daemon, events_file):
        fingerprint = daemon.upload_stream(str(events_file))
        job = daemon.analyze(
            fingerprint,
            measures="occupancy,snail:pause=0.1",
            num_deltas=12,
            timeout=0.25,
        )
        with pytest.raises(JobCancelled, match="task at delta="):
            daemon.fetch(job["job_id"], wait=60)

    def test_admission_maps_to_admissionerror(self, stream):
        service = AnalysisService(jobs=2, runners=1, max_pending=1)
        server = ServiceServer(("127.0.0.1", 0), service)
        threading.Thread(target=server.serve_forever, daemon=True).start()
        client = ServiceClient(f"http://127.0.0.1:{server.server_address[1]}")
        try:
            fingerprint = service.register_stream(stream)
            slow = service.submit_analyze(
                fingerprint, measures="occupancy,snail:pause=0.3", num_deltas=4
            )
            wait_for_running(slow)
            client.analyze(fingerprint, num_deltas=5)  # fills the backlog
            with pytest.raises(AdmissionError):
                client.analyze(fingerprint, num_deltas=7)
            slow.result(60)
        finally:
            server.shutdown()
            server.server_close()
            service.close()

    def test_explicit_cancel_roundtrip(self, daemon, events_file):
        fingerprint = daemon.upload_stream(str(events_file))
        job = daemon.analyze(
            fingerprint, measures="occupancy,snail:pause=0.3", num_deltas=6
        )
        cancelled = daemon.cancel(job["job_id"])
        assert cancelled["state"] == "cancelled"
        with pytest.raises(JobCancelled):
            daemon.fetch(job["job_id"], wait=10)

    def test_shutdown_endpoint(self, stream):
        service = AnalysisService(jobs=2, runners=1)
        server = ServiceServer(("127.0.0.1", 0), service)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        client = ServiceClient(f"http://127.0.0.1:{server.server_address[1]}")
        try:
            assert client.shutdown()["status"] == "shutting down"
            thread.join(timeout=10)
            assert not thread.is_alive()
        finally:
            server.server_close()
            service.close()

    def test_unreachable_daemon_is_service_error(self):
        client = ServiceClient("http://127.0.0.1:9", timeout=2)
        with pytest.raises(ServiceError, match="cannot reach"):
            client.health()
