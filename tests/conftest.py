"""Shared fixtures: small deterministic streams used across the suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.linkstream import LinkStream


@pytest.fixture
def figure1_stream() -> LinkStream:
    """A toy stream modeled on Figure 1 of the paper.

    Five nodes a..e (0..4), twelve timestamps; contains the bold
    temporal path e -> d -> a -> b used in the figure.
    """
    triples = [
        ("a", "b", 1),
        ("b", "c", 2),
        ("e", "d", 3),
        ("c", "d", 4),
        ("d", "a", 5),
        ("a", "b", 7),
        ("b", "e", 8),
        ("d", "c", 9),
        ("c", "a", 10),
        ("a", "e", 11),
        ("e", "b", 12),
    ]
    return LinkStream.from_triples(triples, directed=False)


@pytest.fixture
def chain_stream() -> LinkStream:
    """0 -> 1 -> 2 -> 3 with one event per hop at times 1, 3, 5."""
    return LinkStream([0, 1, 2], [1, 2, 3], [1, 3, 5], directed=True)


@pytest.fixture
def medium_stream() -> LinkStream:
    """A deterministic 30-node, 400-event random stream (integration tests)."""
    rng = np.random.default_rng(42)
    n, m = 30, 400
    u = rng.integers(0, n, m)
    v = rng.integers(0, n, m)
    mask = u != v
    t = rng.integers(0, 5000, m)[mask]
    return LinkStream(u[mask], v[mask], t, directed=True, num_nodes=n)
