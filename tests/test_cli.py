"""Tests for the command-line interface."""

import numpy as np
import pytest

from repro.cli import main
from repro.generators import time_uniform_stream
from repro.linkstream import read_tsv, write_tsv


@pytest.fixture
def events_file(tmp_path):
    stream = time_uniform_stream(10, 6, 5000.0, seed=0)
    path = tmp_path / "events.tsv"
    write_tsv(stream, path)
    return path


class TestAnalyze:
    def test_prints_gamma(self, events_file, capsys):
        code = main(["analyze", str(events_file), "--num-deltas", "8", "--undirected"])
        out = capsys.readouterr().out
        assert code == 0
        assert "saturation scale gamma" in out
        assert "<-- gamma" in out

    def test_validate_flag(self, events_file, capsys):
        code = main(
            ["analyze", str(events_file), "--num-deltas", "8", "--validate", "--undirected"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "transitions collapse" in out
        assert "recommendation" in out

    def test_missing_file_fails_cleanly(self, tmp_path, capsys):
        code = main(["analyze", str(tmp_path / "nope.tsv")])
        assert code == 2
        assert "error" in capsys.readouterr().err

    def test_alternative_method(self, events_file, capsys):
        code = main(
            ["analyze", str(events_file), "--num-deltas", "8", "--method", "cre"]
        )
        assert code == 0
        assert "'cre'" in capsys.readouterr().out

    def test_unknown_method_fails_cleanly(self, events_file, capsys):
        code = main(["analyze", str(events_file), "--method", "bogus"])
        assert code == 2

    def test_measures_add_classical_columns(self, events_file, capsys):
        code = main(
            [
                "analyze",
                str(events_file),
                "--num-deltas",
                "6",
                "--measures",
                "occupancy,classical",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "density" in out
        assert "d_time" in out
        assert "<-- gamma" in out

    def test_measures_metrics_only_columns(self, events_file, capsys):
        code = main(
            [
                "analyze",
                str(events_file),
                "--num-deltas",
                "6",
                "--measures",
                "occupancy,metrics",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "density" in out
        assert "d_time" not in out  # no distance scanning was requested

    def test_measures_must_include_occupancy(self, events_file, capsys):
        code = main(
            ["analyze", str(events_file), "--measures", "classical"]
        )
        assert code == 2
        assert "occupancy" in capsys.readouterr().err

    def test_unknown_measure_fails_cleanly(self, events_file, capsys):
        code = main(
            ["analyze", str(events_file), "--measures", "occupancy,bogus"]
        )
        assert code == 2

    def test_measures_do_not_change_occupancy_evidence(self, events_file, capsys):
        code = main(["analyze", str(events_file), "--num-deltas", "6"])
        assert code == 0
        plain = capsys.readouterr().out
        code = main(
            [
                "analyze",
                str(events_file),
                "--num-deltas",
                "6",
                "--measures",
                "occupancy,classical",
            ]
        )
        assert code == 0
        fused = capsys.readouterr().out
        # Same gamma line; the occupancy columns are bit-identical, the
        # fused run only appends classical columns.
        gamma_line = next(l for l in plain.splitlines() if "saturation scale" in l)
        assert gamma_line in fused


class TestAnalyzeEngine:
    def test_thread_backend_matches_serial(self, events_file, capsys):
        code = main(["analyze", str(events_file), "--num-deltas", "8"])
        assert code == 0
        serial_out = capsys.readouterr().out
        code = main(
            [
                "analyze",
                str(events_file),
                "--num-deltas",
                "8",
                "--backend",
                "thread",
                "--jobs",
                "2",
            ]
        )
        assert code == 0
        assert capsys.readouterr().out == serial_out  # bit-identical evidence

    def test_cache_dir_persists_results(self, events_file, tmp_path, capsys):
        cache_dir = tmp_path / "sweep-cache"
        args = [
            "analyze",
            str(events_file),
            "--num-deltas",
            "8",
            "--cache-dir",
            str(cache_dir),
        ]
        assert main(args) == 0
        cold_out = capsys.readouterr().out
        entries = list(cache_dir.rglob("*.pkl"))
        assert entries  # per-delta results written
        assert main(args) == 0  # warm re-run, served from disk
        assert capsys.readouterr().out == cold_out

    def test_progress_flag_writes_stderr(self, events_file, capsys):
        code = main(["analyze", str(events_file), "--num-deltas", "8", "--progress"])
        assert code == 0
        assert "sweep" in capsys.readouterr().err

    def test_unknown_backend_rejected(self, events_file):
        with pytest.raises(SystemExit):
            main(["analyze", str(events_file), "--backend", "gpu"])

    def test_sharded_analysis_matches_serial(self, events_file, capsys):
        code = main(["analyze", str(events_file), "--num-deltas", "8"])
        assert code == 0
        serial_out = capsys.readouterr().out
        code = main(
            [
                "analyze",
                str(events_file),
                "--num-deltas",
                "8",
                "--backend",
                "thread",
                "--jobs",
                "2",
                "--shards",
                "2",
            ]
        )
        assert code == 0
        assert capsys.readouterr().out == serial_out  # bit-identical evidence

    def test_bad_shards_value_fails_cleanly(self, events_file, capsys):
        code = main(["analyze", str(events_file), "--shards", "lots"])
        assert code == 2
        assert "shard" in capsys.readouterr().err

    def test_jobs_with_serial_backend_fails_cleanly(self, events_file, capsys):
        # Regression: a worker count on the (default) serial backend was
        # silently discarded; now it is a clean configuration error.
        code = main(["analyze", str(events_file), "--jobs", "4"])
        assert code == 2
        assert "serial" in capsys.readouterr().err


class TestAggregate:
    def test_writes_window_edges(self, events_file, tmp_path, capsys):
        out_path = tmp_path / "series.tsv"
        code = main(
            [
                "aggregate",
                str(events_file),
                "--delta",
                "500",
                "--output",
                str(out_path),
            ]
        )
        assert code == 0
        lines = [l for l in out_path.read_text().splitlines() if not l.startswith("#")]
        assert lines
        windows = {int(l.split("\t")[0]) for l in lines}
        assert max(windows) <= 10

    def test_human_delta_units(self, events_file, tmp_path):
        out_path = tmp_path / "series.tsv"
        code = main(
            ["aggregate", str(events_file), "--delta", "10min", "--output", str(out_path)]
        )
        assert code == 0


class TestGenerate:
    def test_uniform_roundtrip(self, tmp_path, capsys):
        out_path = tmp_path / "synth.tsv"
        code = main(
            [
                "generate",
                "uniform",
                "--output",
                str(out_path),
                "--nodes",
                "8",
                "--links-per-pair",
                "3",
                "--span",
                "1000",
            ]
        )
        assert code == 0
        stream = read_tsv(out_path)
        assert stream.num_events == 28 * 3

    def test_dataset_replica(self, tmp_path):
        out_path = tmp_path / "enron.tsv"
        code = main(["generate", "enron", "--output", str(out_path)])
        assert code == 0
        assert read_tsv(out_path).num_events > 1000

    def test_two_mode(self, tmp_path):
        out_path = tmp_path / "tm.tsv"
        code = main(
            [
                "generate",
                "two-mode",
                "--output",
                str(out_path),
                "--nodes",
                "6",
                "--links-per-pair",
                "10",
                "--span",
                "2000",
                "--rho",
                "0.5",
            ]
        )
        assert code == 0
        assert read_tsv(out_path).num_events > 0


class TestDatasets:
    def test_lists_all(self, capsys):
        code = main(["datasets"])
        out = capsys.readouterr().out
        assert code == 0
        for name in ("irvine", "facebook", "enron", "manufacturing"):
            assert name in out


class TestCachePrewarm:
    def test_prewarm_then_analyze_is_fully_warm(self, events_file, tmp_path, capsys):
        from repro.temporal.reachability import SCAN_COUNTS

        cache_dir = tmp_path / "cache"
        code = main(
            [
                "cache", "prewarm", str(events_file),
                "--cache-dir", str(cache_dir),
                "--num-deltas", "6",
                "--measures", "occupancy,classical",
                "--undirected",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "prewarmed 6 window lengths x 2 measures" in out
        assert cache_dir.is_dir()
        # The replayed sweep spec serves the matching analyze without a
        # single backward scan.
        before = SCAN_COUNTS["series"]
        code = main(
            [
                "analyze", str(events_file),
                "--num-deltas", "6",
                "--measures", "occupancy,classical",
                "--cache-dir", str(cache_dir),
                "--undirected",
            ]
        )
        assert code == 0
        assert "<-- gamma" in capsys.readouterr().out
        assert SCAN_COUNTS["series"] - before == 0

    def test_prewarm_requires_events(self, tmp_path, capsys):
        code = main(["cache", "prewarm", "--cache-dir", str(tmp_path)])
        assert code == 2
        assert "event file" in capsys.readouterr().err

    def test_stats_rejects_events(self, events_file, tmp_path, capsys):
        code = main(
            ["cache", "stats", str(events_file), "--cache-dir", str(tmp_path)]
        )
        assert code == 2
        assert "takes no event file" in capsys.readouterr().err

    def test_prewarm_parameterized_measures(self, events_file, tmp_path, capsys):
        cache_dir = tmp_path / "cache"
        code = main(
            [
                "cache", "prewarm", str(events_file),
                "--cache-dir", str(cache_dir),
                "--num-deltas", "5",
                "--measures", "trips:max_samples=8,components",
                "--undirected",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "trips, components" in out

    def test_prewarm_unknown_measure_fails_cleanly(
        self, events_file, tmp_path, capsys
    ):
        code = main(
            [
                "cache", "prewarm", str(events_file),
                "--cache-dir", str(tmp_path),
                "--measures", "bogus",
            ]
        )
        assert code == 2
        assert "unknown measure" in capsys.readouterr().err


class TestMeasuresList:
    def test_measures_list_command(self, capsys):
        code = main(["measures", "list"])
        out = capsys.readouterr().out
        assert code == 0
        assert "registered measures" in out
        assert "occupancy" in out
        assert "trips" in out
        assert "max_samples: int" in out  # schema with types and defaults
        assert "repro.measures" in out  # the entry-point group is advertised

    def test_analyze_measures_list_needs_no_events(self, capsys):
        code = main(["analyze", "--measures-list"])
        out = capsys.readouterr().out
        assert code == 0
        assert "registered measures" in out

    def test_measures_list_outputs_match(self, capsys):
        main(["measures", "list"])
        via_measures = capsys.readouterr().out
        main(["analyze", "--measures-list"])
        via_analyze = capsys.readouterr().out
        assert via_measures == via_analyze

    def test_analyze_without_events_or_list_fails_cleanly(self, capsys):
        code = main(["analyze"])
        err = capsys.readouterr().err
        assert code == 2
        assert "event file" in err
