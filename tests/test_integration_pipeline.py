"""Integration tests: the full paper pipeline end-to-end."""

import numpy as np
import pytest

from repro.core import (
    elongation_at,
    occupancy_method,
    transition_loss_curve,
)
from repro.datasets import load
from repro.generators import time_uniform_stream
from repro.linkstream import LinkStream, write_tsv, read_tsv


class TestFullPipeline:
    @pytest.fixture(scope="class")
    def stream(self):
        return time_uniform_stream(15, 8, 20000.0, seed=3)

    @pytest.fixture(scope="class")
    def result(self, stream):
        return occupancy_method(stream, num_deltas=14, extra_methods=("std", "cre", "shannon10"))

    def test_gamma_near_intercontact_scale(self, stream, result):
        """For time-uniform networks gamma tracks the mean inter-contact
        time (Figure 6 left: gamma is roughly a quarter of it)."""
        from repro.linkstream import mean_inter_contact_time

        ict = mean_inter_contact_time(stream)
        assert 0.05 * ict < result.gamma < 2.0 * ict

    def test_loss_at_gamma_moderate(self, stream, result):
        """At gamma, a substantial but not total share of shortest
        transitions is lost (~48% for Irvine in the paper)."""
        curve = transition_loss_curve(stream, result.deltas)
        at_gamma = curve.lost_at(result.gamma)
        assert 0.05 < at_gamma < 0.95

    def test_elongation_modest_at_gamma(self, stream, result):
        """Elongation at gamma stays near 1 for the typical trip (the
        mean is tail-sensitive on small dense synthetics, so assert the
        median and a loose mean bound)."""
        point = elongation_at(stream, result.gamma)
        assert point.median_factor < 2.0
        assert point.mean_factor < 10.0

    def test_elongation_explodes_beyond_gamma(self, stream, result):
        far = elongation_at(stream, min(50 * result.gamma, stream.span / 2))
        near = elongation_at(stream, result.gamma)
        assert far.mean_factor > near.mean_factor

    def test_mk_and_shannon_agree(self, result):
        """Section 7: the recommended selectors land close together.  On
        small dense synthetics the std selector can prefer the bimodal
        fine-resolution distribution, so the full five-way comparison
        lives in the Figure 7 bench on the Irvine replica; here we check
        the two distribution-shape methods agree."""
        gammas = [result.gamma_for(m) for m in ("mk", "shannon10")]
        assert max(gammas) / min(gammas) < 8.0


class TestDatasetRoundTrip:
    def test_replica_through_disk_and_method(self, tmp_path):
        stream = load("manufacturing", scale="paper", seed=1)
        # Cut the stream down so the test stays fast.
        sub = stream.restrict_time(stream.t_min, stream.t_min + stream.span / 6)
        path = tmp_path / "events.tsv"
        write_tsv(sub, path)
        back = read_tsv(path)
        assert back.num_events == sub.num_events
        result = occupancy_method(back, num_deltas=8)
        assert 60.0 < result.gamma < back.span


class TestReproducibility:
    def test_occupancy_method_is_deterministic(self):
        stream = time_uniform_stream(10, 5, 5000.0, seed=9)
        first = occupancy_method(stream, num_deltas=10)
        second = occupancy_method(stream, num_deltas=10)
        assert first.gamma == second.gamma
        assert np.array_equal(first.scores(), second.scores())
