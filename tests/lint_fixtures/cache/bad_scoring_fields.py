"""Fixture: scoring_fields naming a field that does not exist."""

from dataclasses import dataclass

from repro.engine import MeasureSpec


@dataclass(frozen=True)
class ScoredMeasure(MeasureSpec):
    bins: int = 16

    scoring_fields = ("bin_count",)

    @property
    def name(self) -> str:
        return "scored"
