"""Fixture: key builders without a reviewable *_VERSION constant."""

import hashlib

COMPUTED_VERSION = 1 + 2


def cache_key(task) -> str:
    return hashlib.sha256(repr(task).encode()).hexdigest()


def measure_key(task) -> str:
    return hashlib.sha256(repr((COMPUTED_VERSION, task)).encode()).hexdigest()
