"""Fixture: a measure and key builder that satisfy every cache-key rule."""

import hashlib
from dataclasses import dataclass
from typing import ClassVar

from repro.engine import MeasureSpec

KEY_VERSION = 1


@dataclass(frozen=True)
class WellKeyedMeasure(MeasureSpec):
    bins: int = 16
    top_k: int = 3

    scans = True
    scoring_fields = ("top_k",)
    _table: ClassVar[dict] = {}

    @property
    def name(self) -> str:
        return "well_keyed"


def cache_key(task) -> str:
    return hashlib.sha256(repr((KEY_VERSION, task)).encode()).hexdigest()
