"""Fixture: the PR-4 bug shape — a parameter that escapes the cache key."""

from dataclasses import dataclass

from repro.engine import MeasureSpec


@dataclass(frozen=True)
class ShadowComponentsMeasure(MeasureSpec):
    min_size: int = 1

    include_isolated = False  # plain attr: invisible to token()

    @property
    def name(self) -> str:
        return "shadow_components"
