"""Fixture: hand-rolled token() that will drop any field added later."""

from dataclasses import dataclass

from repro.engine import MeasureSpec


@dataclass(frozen=True)
class HandRolledMeasure(MeasureSpec):
    scale: float = 1.0

    def token(self) -> tuple:
        return ("hand-rolled", self.scale)

    @property
    def name(self) -> str:
        return "hand_rolled"
