"""Fixture: a file that does not parse."""


def broken(:
    pass
