"""Fixture: a collector that sharded scans cannot reassemble."""


class LonelyCollector:
    def __init__(self) -> None:
        self.values: list = []

    def record(self, trip) -> None:
        self.values.append(trip)
