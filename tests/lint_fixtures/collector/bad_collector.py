"""Fixture: a collector that sharded scans cannot reassemble."""


class LonelyCollector:
    def __init__(self) -> None:
        self.values: list = []

    def record(self, trip) -> None:
        self.values.append(trip)


class BatchOnlyCollector:
    """Batched feed without merge/empty — just as unshardable."""

    def __init__(self) -> None:
        self.count = 0

    def record_batch(self, sources, dep, targets, arrivals, hops, durations) -> None:
        self.count += targets.size
