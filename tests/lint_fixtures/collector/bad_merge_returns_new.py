"""Fixture: merge() builds a fresh collector instead of folding in place."""


class RebuildingCollector:
    def __init__(self) -> None:
        self.count = 0

    def record(self, trip) -> None:
        self.count += 1

    def merge(self, other) -> "RebuildingCollector":
        merged = RebuildingCollector()
        merged.count = self.count + other.count
        return merged

    @property
    def empty(self) -> bool:
        return self.count == 0
