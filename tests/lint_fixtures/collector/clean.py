"""Fixture: the full collector contract, satisfied."""

from typing import Protocol


class CollectorProtocol(Protocol):
    def record(self, trip) -> None: ...


class WellBehavedCollector:
    def __init__(self) -> None:
        self.count = 0

    def record(self, trip) -> None:
        self.count += 1

    def merge(self, other) -> "WellBehavedCollector":
        self.count += other.count
        return self

    @property
    def empty(self) -> bool:
        return self.count == 0
