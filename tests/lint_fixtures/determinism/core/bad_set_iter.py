"""Fixture: set iteration leaking hash order into results."""


def flatten(groups: dict[int, set[int]]) -> list[int]:
    out: list[int] = []
    for key in sorted(groups):
        for member in groups[key]:
            out.append(member)
    return out


def first_three() -> list[int]:
    candidates = {3, 1, 2}
    return [value for value in candidates][:3]
