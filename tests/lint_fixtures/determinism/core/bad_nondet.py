"""Fixture: process-local state folded into an evaluation path."""

import random
import time


def jitter() -> float:
    return random.random() + time.time()


def identity_key(obj) -> int:
    return id(obj)
