"""Fixture: the deterministic shapes of the same operations."""

import time


def flatten(groups: dict[int, set[int]]) -> list[int]:
    out: list[int] = []
    for key in sorted(groups):
        for member in sorted(groups[key]):
            out.append(member)
    return out


def elapsed(start: float) -> float:
    return time.monotonic() - start


class SumDurationCollector:
    def __init__(self) -> None:
        self.total = 0
        self.count = 0

    def record(self, trip) -> None:
        self.total += int(trip.duration)
        self.count += 1

    def merge(self, other) -> None:
        self.total += other.total
        self.count += other.count

    @property
    def empty(self) -> bool:
        return self.count == 0
