"""Fixture: float accumulation inside an integer-exact collector."""


class MeanDurationCollector:
    def __init__(self) -> None:
        self.total = 0.0
        self.count = 0

    def record(self, trip) -> None:
        self.total += trip.duration / max(trip.hops, 1)
        self.count += 1

    def merge(self, other) -> None:
        self.total += other.total
        self.count += other.count

    @property
    def empty(self) -> bool:
        return self.count == 0


class BatchedMeanCollector:
    """Same defect through the batched feed: float += in record_batch."""

    def __init__(self) -> None:
        self.total = 0.0
        self.count = 0

    def record_batch(self, sources, dep, targets, arrivals, hops, durations) -> None:
        self.total += durations.sum() / 2.0
        self.count += targets.size

    def merge(self, other) -> None:
        self.total += other.total
        self.count += other.count

    @property
    def empty(self) -> bool:
        return self.count == 0
