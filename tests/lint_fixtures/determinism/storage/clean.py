"""Fixture: the deterministic shapes of the same storage operations."""

import hashlib


def partition_spans(files: set[str]) -> list[str]:
    return [name for name in sorted(files)]


def partition_tag(path: str) -> str:
    return hashlib.sha256(path.encode("utf-8")).hexdigest()
