"""Fixture: hash-order and process-local state in a storage backend."""


def partition_spans(files: set[str]) -> list[str]:
    return [name for name in files]


def partition_tag(path: str) -> int:
    return hash(path)
