"""Fixture: disciplined locking — writes under the lock, helpers *_locked."""

import threading


class TidyCounter:
    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._count = 0
        self._last = None

    def bump(self, value) -> None:
        with self._lock:
            self._bump_locked(value)

    def _bump_locked(self, value) -> None:
        self._count += 1
        self._last = value
