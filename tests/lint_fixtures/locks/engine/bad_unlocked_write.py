"""Fixture: private state written without the instance lock."""

import threading


class RacyCounter:
    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._count = 0
        self._last = None

    def bump(self, value) -> None:
        self._count += 1
        with self._lock:
            self._last = value
