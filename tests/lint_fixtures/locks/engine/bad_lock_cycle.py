"""Fixture: two classes taking each other's locks in opposite orders."""

import threading


class AlphaRegistry:
    def __init__(self, beta) -> None:
        self._lock = threading.Lock()
        self.beta = beta

    def alpha_forward(self) -> None:
        with self._lock:
            self.beta.beta_backward()

    def alpha_touch(self) -> None:
        with self._lock:
            pass


class BetaRegistry:
    def __init__(self, alpha) -> None:
        self._lock = threading.Lock()
        self.alpha = alpha

    def beta_backward(self) -> None:
        with self._lock:
            pass

    def beta_poke(self) -> None:
        with self._lock:
            self.alpha.alpha_touch()
