"""Fixture: a lock-owning *test double* with an unlocked write.

The lock rules cover ``tests/`` too — fakes that model concurrent
engine parts (counting backends, recording evaluators) must honour the
same discipline as the real classes they stand in for.
"""

import threading


class CountingFakeBackend:
    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._submitted = 0
        self._results = []

    def submit(self, task) -> None:
        self._submitted += 1
        with self._lock:
            self._results.append(task)
