"""Fixture: a disciplined test double — every write under its lock."""

import threading


class RecordingFakeBackend:
    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._submitted = 0
        self._results = []

    def submit(self, task) -> None:
        with self._lock:
            self._submitted += 1
            self._results.append(task)

    def drain(self) -> list:
        with self._lock:
            drained = list(self._results)
            self._results = []
            return drained
