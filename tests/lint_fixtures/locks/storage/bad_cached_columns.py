"""Fixture: lazily-cached columns written outside the handle's lock."""

import threading


class RacyColumnCache:
    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._columns = None

    def columns(self, loader):
        if self._columns is None:
            self._columns = loader()
        return self._columns
