"""Fixture: the cached-columns handle with its write under the lock."""

import threading


class TidyColumnCache:
    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._columns = None

    def columns(self, loader):
        with self._lock:
            if self._columns is None:
                self._columns = loader()
            return self._columns
