"""Fixture: an inline suppression silencing a real finding."""


class QuietProbe:  # repro: ignore[collector-contract] -- demo: not a shard collector
    def record(self, trip) -> None:
        return None
