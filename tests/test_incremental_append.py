"""Incremental append: extend contract, warm reuse, bit-identity.

Covers the append-only :meth:`LinkStream.extend` contract (ordering,
dtype, and node-set guards; the chained prefix fingerprint), the
memo-staleness regression (a grown stream never inherits its base's
memoized statistics), the checkpoint/resume scan machinery behind
:class:`IncrementalScanSession`, blocked-column per-pair reachability
against the brute-force oracle, and the headline property: extend +
analyze is bit-identical to from-scratch analysis, on both scan
kernels, including straddling-window and empty appends.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine import incremental
from repro.engine.incremental import IncrementalScanSession
from repro.engine.measures import ClassicalMeasure, OccupancyMeasure
from repro.engine.tasks import AnalysisTask
from repro.generators import time_uniform_stream
from repro.graphseries import aggregate
from repro.graphseries.aggregation import (
    AGGREGATION_COUNTS,
    aggregate_cached,
    aggregate_prefix_extended,
    clear_aggregate_cache,
)
from repro.linkstream import LinkStream
from repro.temporal import (
    CheckpointRecorder,
    CountingCollector,
    DistanceTotals,
    EarliestArrivalAccumulator,
    ResumePlan,
    SCAN_WINDOWS,
    TripListCollector,
    blocked_pair_reachability,
    bruteforce_pair_reachability,
    scan_series,
)
from repro.utils.errors import (
    AppendOrderError,
    LinkStreamError,
    ValidationError,
)
from tests.strategies import link_streams


@pytest.fixture(autouse=True)
def fresh_stores():
    """Every test starts from cold process-global stores."""
    incremental.clear_incremental_store()
    clear_aggregate_cache()
    yield
    incremental.clear_incremental_store()
    clear_aggregate_cache()


def small_stream(seed=3, n=12, m=200, span=2000.0, directed=True):
    rng = np.random.default_rng(seed)
    u = rng.integers(0, n, m)
    v = rng.integers(0, n, m)
    keep = u != v
    t = np.sort(rng.uniform(0.0, span, int(keep.sum())))
    return LinkStream(u[keep], v[keep], t, directed=directed, num_nodes=n)


def append_batch(stream, seed=4, m=30, span=300.0):
    rng = np.random.default_rng(seed)
    n = stream.num_nodes
    u = rng.integers(0, n, m)
    v = rng.integers(0, n, m)
    keep = u != v
    t0 = float(stream.t_max)
    t = np.sort(rng.uniform(t0 + 1e-9, t0 + span, int(keep.sum())))
    return u[keep], v[keep], t


def scratch_equivalent(grown):
    """The same events built from scratch (no chain, fresh fingerprint)."""
    return LinkStream(
        grown.sources.copy(),
        grown.targets.copy(),
        grown.timestamps.copy(),
        directed=grown.directed,
        num_nodes=grown.num_nodes,
    )


class TestExtendContract:
    def test_extend_matches_from_scratch(self):
        base = small_stream()
        u, v, t = append_batch(base)
        grown = base.extend(u, v, t)
        scratch = scratch_equivalent(grown)
        assert grown.fingerprint() == scratch.fingerprint()
        assert np.array_equal(grown.timestamps, scratch.timestamps)
        assert grown.num_events == base.num_events + u.size

    def test_triples_mode_matches_array_mode(self):
        base = small_stream()
        u, v, t = append_batch(base)
        by_arrays = base.extend(u, v, t)
        by_triples = base.extend(list(zip(u.tolist(), v.tolist(), t.tolist())))
        assert by_arrays.fingerprint() == by_triples.fingerprint()

    def test_out_of_order_append_rejected_by_name(self):
        base = small_stream()
        with pytest.raises(AppendOrderError):
            base.extend([(0, 1, float(base.t_max))])  # equal, not greater
        with pytest.raises(AppendOrderError):
            base.extend([(0, 1, float(base.t_min))])

    def test_partially_ordered_batch_rejected_atomically(self):
        base = small_stream()
        t0 = float(base.t_max)
        with pytest.raises(AppendOrderError):
            base.extend([(0, 1, t0 + 1.0), (1, 2, t0 - 1.0)])
        # Nothing about the base changed.
        assert base.fingerprint() == scratch_equivalent(base).fingerprint()

    def test_empty_batch_keeps_fingerprint_and_records_boundary(self):
        base = small_stream()
        grown = base.extend([])
        assert grown.fingerprint() == base.fingerprint()
        assert grown.fingerprint_chain[-1] == (
            base.num_events,
            base.fingerprint(),
        )

    def test_chain_records_every_ancestor(self):
        base = small_stream()
        u, v, t = append_batch(base, seed=5)
        first = base.extend(u, v, t)
        u2, v2, t2 = append_batch(first, seed=6)
        second = first.extend(u2, v2, t2)
        counts = [entry[0] for entry in second.fingerprint_chain]
        prints = [entry[1] for entry in second.fingerprint_chain]
        assert counts == [base.num_events, first.num_events]
        assert prints == [base.fingerprint(), first.fingerprint()]

    def test_prefix_fingerprint_matches_ancestor_and_scratch(self):
        base = small_stream()
        u, v, t = append_batch(base)
        grown = base.extend(u, v, t)
        # Chain hit: served without rehashing, but it must be the true hash.
        assert grown.prefix_fingerprint(base.num_events) == base.fingerprint()
        # Arbitrary prefix: recomputed over the event arrays.
        k = base.num_events // 2
        prefix = LinkStream(
            base.sources[:k].copy(),
            base.targets[:k].copy(),
            base.timestamps[:k].copy(),
            directed=base.directed,
            num_nodes=base.num_nodes,
        )
        assert grown.prefix_fingerprint(k) == prefix.fingerprint()
        assert grown.prefix_fingerprint(grown.num_events) == grown.fingerprint()

    def test_float_append_on_integer_time_stream_rejected(self):
        base = time_uniform_stream(8, 1, 500.0, seed=1)
        assert base.timestamps.dtype.kind == "i"
        with pytest.raises(LinkStreamError, match="integer-time"):
            base.extend([(0, 1, float(base.t_max) + 0.5)])

    def test_nan_timestamp_rejected_loudly(self):
        base = small_stream()
        with pytest.raises(LinkStreamError, match="finite"):
            base.extend([(0, 1, float("nan"))])

    def test_labeled_stream_rejects_new_nodes(self):
        base = LinkStream(
            [0, 1, 0],
            [1, 2, 2],
            [1.0, 2.0, 3.0],
            labels=["a", "b", "c"],
        )
        with pytest.raises(LinkStreamError, match="labeled"):
            base.extend([(0, base.num_nodes, 9.0)])

    def test_unlabeled_stream_grows_node_set(self):
        base = small_stream(n=5)
        grown = base.extend([(0, 7, float(base.t_max) + 1.0)])
        assert grown.num_nodes == 8


class TestMemoStalenessRegression:
    """A grown stream must never serve its base's memoized values."""

    def test_resolution_and_distinct_timestamps_recomputed(self):
        base = small_stream()
        # Warm every memo on the base.
        base_resolution = base.resolution()
        base_distinct = base.distinct_timestamps()
        base.fingerprint()
        t0 = float(base.t_max)
        # An appended event much closer in time than any existing pair.
        grown = base.extend([(0, 1, t0 + 1e-7), (1, 2, t0 + 1.5e-7)])
        scratch = scratch_equivalent(grown)
        assert grown.resolution() == scratch.resolution()
        assert grown.resolution() < base_resolution
        assert np.array_equal(
            grown.distinct_timestamps(), scratch.distinct_timestamps()
        )
        # The base's own memos are untouched.
        assert base.resolution() == base_resolution
        assert np.array_equal(base.distinct_timestamps(), base_distinct)

    def test_aggregate_cached_keys_on_content_not_object(self):
        base = small_stream()
        delta = 100.0
        series_base = aggregate_cached(base, delta)
        u, v, t = append_batch(base)
        grown = base.extend(u, v, t)
        series_grown = aggregate_cached(grown, delta)
        assert series_grown.num_steps >= series_base.num_steps
        fresh = aggregate(scratch_equivalent(grown), delta)
        assert np.array_equal(series_grown.edge_steps, fresh.edge_steps)
        assert np.array_equal(series_grown.edge_sources, fresh.edge_sources)
        assert np.array_equal(series_grown.edge_targets, fresh.edge_targets)
        # The base's cached series still serves the base.
        again = aggregate_cached(base, delta)
        assert again is series_base

    def test_empty_extend_hits_the_same_cache_entry(self):
        base = small_stream()
        delta = 100.0
        series_base = aggregate_cached(base, delta)
        grown = base.extend([])
        assert aggregate_cached(grown, delta) is series_base


class TestPrefixSplicedAggregation:
    def test_splice_is_bit_identical_and_counted(self):
        base = small_stream()
        u, v, t = append_batch(base)
        grown = base.extend(u, v, t)
        for delta in (30.0, 170.0, 1500.0):
            prefix = aggregate(base, delta, origin=float(base.t_min))
            before = AGGREGATION_COUNTS["incremental"]
            spliced = aggregate_prefix_extended(
                grown,
                delta,
                prefix_series=prefix,
                prefix_events=base.num_events,
            )
            assert AGGREGATION_COUNTS["incremental"] == before + 1
            fresh = aggregate(grown, delta)
            assert np.array_equal(spliced.edge_steps, fresh.edge_steps)
            assert np.array_equal(spliced.edge_sources, fresh.edge_sources)
            assert np.array_equal(spliced.edge_targets, fresh.edge_targets)
            assert spliced.num_steps == fresh.num_steps


def _consumer_set():
    return [
        DistanceTotals(),
        TripListCollector(max_trips=64, seed=11),
        CountingCollector(),
        EarliestArrivalAccumulator(),
    ]


def _consumer_state(consumers):
    totals, trips, counting, acc = consumers
    trip_set = trips.trips()
    return (
        (totals.dist_sum, totals.hops_sum, totals.count_sum),
        (
            trip_set.u.tolist(),
            trip_set.v.tolist(),
            trip_set.dep.tolist(),
            trip_set.arr.tolist(),
            trip_set.hops.tolist(),
        ),
        counting.num_trips,
        (
            acc.reach_steps.tolist(),
            acc.dist_sum.tolist(),
            acc.hops_sum.tolist(),
        ),
    )


class TestCheckpointResume:
    def test_recorded_scan_equals_plain_scan(self):
        series = aggregate(small_stream(), 40.0)
        recorder = CheckpointRecorder()
        recorded = _consumer_set()
        result = scan_series(series, recorded, checkpoints=recorder)
        plain = _consumer_set()
        baseline = scan_series(series, plain)
        assert result.num_trips == baseline.num_trips
        assert _consumer_state(recorded) == _consumer_state(plain)
        assert len(recorder.checkpoints) == len(recorder.spans)
        assert recorder.checkpoints, "a dense series must checkpoint"

    def test_resume_requires_segment_support(self):
        series = aggregate(small_stream(), 40.0)

        class Opaque:  # repro: ignore[collector-contract] -- deliberately non-conforming
            def record(self, *args, **kwargs):
                pass

        with pytest.raises(ValidationError, match="segment_handoff"):
            scan_series(series, Opaque(), checkpoints=CheckpointRecorder())

    def test_resume_plan_validates_span_alignment(self):
        series = aggregate(small_stream(), 40.0)
        recorder = CheckpointRecorder()
        scan_series(series, _consumer_set(), checkpoints=recorder)
        with pytest.raises(ValidationError):
            ResumePlan(
                recorder.checkpoints,
                recorder.spans[:-1],
                recorder.span_trips,
                limit=series.num_steps,
            )

    def test_zero_budget_recorder_captures_nothing(self):
        series = aggregate(small_stream(), 40.0)
        recorder = CheckpointRecorder(max_bytes=0)
        consumers = _consumer_set()
        result = scan_series(series, consumers, checkpoints=recorder)
        plain = _consumer_set()
        baseline = scan_series(series, plain)
        assert not recorder.checkpoints
        assert result.num_trips == baseline.num_trips
        assert _consumer_state(consumers) == _consumer_state(plain)


class TestBlockedPairReachability:
    @pytest.mark.parametrize("directed", [True, False])
    @pytest.mark.parametrize("block_cols", [1, 3, 7, 64])
    def test_matches_bruteforce_oracle(self, directed, block_cols):
        series = aggregate(small_stream(n=7, m=120, directed=directed), 90.0)
        got = blocked_pair_reachability(series, block_cols=block_cols)
        expected = bruteforce_pair_reachability(series)
        for got_matrix, expected_matrix in zip(got, expected):
            assert np.array_equal(got_matrix, expected_matrix)

    def test_env_var_sets_block_width(self, monkeypatch):
        series = aggregate(small_stream(n=6, m=60), 200.0)
        monkeypatch.setenv("REPRO_REACH_BLOCK_COLS", "2")
        got = blocked_pair_reachability(series)
        expected = bruteforce_pair_reachability(series)
        for got_matrix, expected_matrix in zip(got, expected):
            assert np.array_equal(got_matrix, expected_matrix)

    def test_invalid_block_width_rejected(self, monkeypatch):
        series = aggregate(small_stream(n=6, m=60), 200.0)
        with pytest.raises(ValidationError):
            blocked_pair_reachability(series, block_cols=0)
        monkeypatch.setenv("REPRO_REACH_BLOCK_COLS", "many")
        with pytest.raises(ValidationError):
            blocked_pair_reachability(series)


class TestIncrementalSession:
    def test_warm_append_rescans_fewer_windows(self):
        base = small_stream(m=600, span=6000.0)
        u, v, t = append_batch(base, m=40, span=300.0)
        grown = base.extend(u, v, t)
        delta = 100.0
        cold_session = IncrementalScanSession(base, delta=delta)
        cold_session.scan(_consumer_set())

        def windows(run):
            before = dict(SCAN_WINDOWS)
            run()
            return sum(SCAN_WINDOWS[k] - before[k] for k in SCAN_WINDOWS)

        warm_consumers = _consumer_set()
        warm_session = IncrementalScanSession(grown, delta=delta)
        warm_windows = windows(lambda: warm_session.scan(warm_consumers))

        incremental.clear_incremental_store()
        clear_aggregate_cache()
        cold_consumers = _consumer_set()
        rebuilt = IncrementalScanSession(grown, delta=delta)
        cold_windows = windows(lambda: rebuilt.scan(cold_consumers))

        assert warm_windows < cold_windows
        assert _consumer_state(warm_consumers) == _consumer_state(cold_consumers)

    def test_counters_track_splice_resume_record(self):
        base = small_stream(m=400, span=4000.0)
        u, v, t = append_batch(base, m=30)
        grown = base.extend(u, v, t)
        session = IncrementalScanSession(base, delta=80.0)
        session.series()
        session.scan(_consumer_set())
        before = dict(incremental.INCREMENTAL_COUNTS)
        warm = IncrementalScanSession(grown, delta=80.0)
        warm.series()
        warm.scan(_consumer_set())
        after = incremental.INCREMENTAL_COUNTS
        assert after["splices"] == before["splices"] + 1
        assert after["resumes"] == before["resumes"] + 1
        assert after["records"] == before["records"] + 1

    def test_disabled_store_records_nothing(self, monkeypatch):
        monkeypatch.setenv("REPRO_INCREMENTAL", "0")
        session = IncrementalScanSession(small_stream(), delta=100.0)
        session.scan(_consumer_set())
        stats = incremental.incremental_stats()
        assert stats["streams"] == 0
        assert stats["scan_records"] == 0

    def test_byte_budget_bounds_the_store(self, monkeypatch):
        monkeypatch.setenv("REPRO_INCREMENTAL_MAX_BYTES", "1")
        for seed in range(4):
            session = IncrementalScanSession(
                small_stream(seed=seed), delta=100.0
            )
            session.scan(_consumer_set())
        stats = incremental.incremental_stats()
        # Eviction always keeps the most recent entry, nothing more.
        assert stats["streams"] == 1

    def test_analysis_task_warm_equals_cold(self):
        base = small_stream(m=500, span=5000.0)
        u, v, t = append_batch(base, m=50)
        grown = base.extend(u, v, t)
        task = AnalysisTask(
            delta=120.0, measures=(OccupancyMeasure(), ClassicalMeasure())
        )
        task.evaluate(base)
        warm = task.evaluate(grown)
        incremental.clear_incremental_store()
        clear_aggregate_cache()
        cold = task.evaluate(grown)
        assert repr(warm) == repr(cold)


@st.composite
def append_scenarios(draw):
    """A base stream plus a strictly-later append batch (may be empty)."""
    base = draw(link_streams(min_events=2, max_events=12, max_time=16))
    batch_size = draw(st.integers(0, 6))
    n = base.num_nodes
    events = []
    t_last = int(base.t_max)
    for _ in range(batch_size):
        t_last = t_last + draw(st.integers(1, 3))
        u = draw(st.integers(0, n - 1))
        v = draw(st.integers(0, n - 1).filter(lambda x, u=u: x != u))
        events.append((u, v, t_last))
    return base, events


@settings(max_examples=50, deadline=None)
@given(
    scenario=append_scenarios(),
    delta=st.sampled_from([1.0, 2.0, 5.0]),
    kernel=st.sampled_from(["batched", "legacy"]),
)
def test_extend_analyze_bit_identical_to_from_scratch(scenario, delta, kernel):
    """The headline property: warm append-then-analyze == from-scratch.

    Random base x random append batch (possibly empty, possibly landing
    in the base's last window) x Δ grid x both scan kernels: recording a
    scan on the base, extending, and resuming must be bit-identical to a
    cold scan of the rebuilt stream — same trips in the same order, same
    accumulator matrices, same spliced series.
    """
    base, events = scenario
    incremental.clear_incremental_store()
    clear_aggregate_cache()
    warm_base = IncrementalScanSession(base, delta=delta)
    warm_base.series()
    warm_base.scan(_consumer_set(), kernel=kernel)
    grown = base.extend(events)
    warm = IncrementalScanSession(grown, delta=delta)
    warm_series = warm.series()
    warm_consumers = _consumer_set()
    warm.scan(warm_consumers, kernel=kernel)

    scratch = scratch_equivalent(grown)
    cold_series = aggregate(scratch, delta)
    assert np.array_equal(warm_series.edge_steps, cold_series.edge_steps)
    assert np.array_equal(warm_series.edge_sources, cold_series.edge_sources)
    assert np.array_equal(warm_series.edge_targets, cold_series.edge_targets)
    cold_consumers = _consumer_set()
    scan_series(cold_series, cold_consumers, kernel=kernel)
    assert _consumer_state(warm_consumers) == _consumer_state(cold_consumers)
