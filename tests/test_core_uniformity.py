"""Unit tests for the selection-method registry (Section 7)."""

import numpy as np
import pytest

from repro.core import (
    OccupancyDistribution,
    available_methods,
    get_method,
    score_distribution,
    shannon_method,
    uniform_reference,
)
from repro.utils.errors import ValidationError


class TestRegistry:
    def test_all_five_paper_methods_present(self):
        names = available_methods()
        for expected in ("mk", "std", "cv", "shannon10", "cre"):
            assert expected in names

    def test_unknown_method_rejected(self):
        with pytest.raises(ValidationError):
            get_method("nope")

    def test_dynamic_shannon_lookup(self):
        method = get_method("shannon25")
        dist = uniform_reference(1000)
        assert method.score(dist) == pytest.approx(np.log(25), abs=1e-2)

    def test_shannon_method_validates_slots(self):
        with pytest.raises(ValidationError):
            shannon_method(1)

    def test_descriptions_and_flags(self):
        assert get_method("mk").recommended
        assert not get_method("cv").recommended
        assert "entropy" in get_method("cre").description


class TestScoring:
    def test_uniform_maximizes_every_recommended_method(self):
        """The uniform density must outscore concentrated distributions
        under every recommended selector (that is the whole point)."""
        uniform = uniform_reference(2048)
        low = OccupancyDistribution(np.linspace(0.01, 0.1, 50))
        high = OccupancyDistribution([1.0])
        for name in ("mk", "std", "shannon10", "cre"):
            score = get_method(name).score
            assert score(uniform) > score(low), name
            assert score(uniform) > score(high), name

    def test_cv_degenerates_to_low_mean(self):
        """The variation coefficient prefers tiny-mean distributions —
        the failure mode the paper reports."""
        uniform = uniform_reference(2048)
        low = OccupancyDistribution([0.001, 0.01], [1, 1])
        cv = get_method("cv").score
        assert cv(low) > cv(uniform)

    def test_score_distribution_batches(self):
        dist = uniform_reference(128)
        scores = score_distribution(dist, ("mk", "std"))
        assert set(scores) == {"mk", "std"}
        assert scores["mk"] == pytest.approx(dist.mk_proximity())
