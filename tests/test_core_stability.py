"""Unit tests for the γ-stability analysis."""

import numpy as np
import pytest

from repro.core import gamma_stability
from repro.generators import time_uniform_stream
from repro.utils.errors import ValidationError


@pytest.fixture(scope="module")
def stable_stream():
    return time_uniform_stream(12, 8, 8000.0, seed=2)


class TestGammaStability:
    @pytest.fixture(scope="class")
    def result(self, request):
        stream = time_uniform_stream(12, 8, 8000.0, seed=2)
        return gamma_stability(
            stream, num_resamples=6, fraction=0.8, seed=0, num_deltas=10, bins=1024
        )

    def test_collects_requested_resamples(self, result):
        assert result.gammas.size == 6
        assert result.fraction == 0.8

    def test_gamma_is_stable_on_homogeneous_stream(self, result):
        # Time-uniform streams have a well-defined scale: subsampled
        # gammas stay within a small factor of each other.
        assert result.spread_factor < 6.0
        assert result.within_factor(4.0) >= 0.5

    def test_quantiles_ordered(self, result):
        q10, q50, q90 = result.quantiles()
        assert q10 <= q50 <= q90

    def test_parameter_validation(self, stable_stream):
        with pytest.raises(ValidationError):
            gamma_stability(stable_stream, fraction=0.0)
        with pytest.raises(ValidationError):
            gamma_stability(stable_stream, num_resamples=1)

    def test_deterministic_given_seed(self, stable_stream):
        a = gamma_stability(
            stable_stream, num_resamples=3, seed=5, num_deltas=8, bins=512
        )
        b = gamma_stability(
            stable_stream, num_resamples=3, seed=5, num_deltas=8, bins=512
        )
        assert np.array_equal(a.gammas, b.gammas)
