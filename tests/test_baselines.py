"""Unit tests for the related-work baseline selectors."""

import numpy as np
import pytest

from repro.baselines import convergence_scale, periodicity_scale, tradeoff_scale
from repro.linkstream import LinkStream
from repro.utils.errors import SweepError, ValidationError
from repro.utils.timeunits import DAY, HOUR


@pytest.fixture(scope="module")
def daily_stream():
    """A strongly daily-periodic stream: bursts at hour 12 of each day."""
    rng = np.random.default_rng(0)
    days = 20
    per_day = 40
    times = np.concatenate(
        [d * DAY + 12 * HOUR + rng.integers(0, int(2 * HOUR), per_day) for d in range(days)]
    )
    u = rng.integers(0, 15, times.size)
    v = (u + 1 + rng.integers(0, 14, times.size)) % 15
    return LinkStream(u, v, times, num_nodes=15)


class TestTradeoff:
    def test_picks_interior_scale(self, medium_stream):
        deltas = np.geomspace(1, medium_stream.span, 12)
        result = tradeoff_scale(medium_stream, deltas)
        assert result.delta in deltas.tolist()
        # Loss rises toward 1 (events at exactly t_max may spill into a
        # final sliver window, so it can stop marginally short).
        assert result.loss[-1] > 0.95
        assert 0 <= result.objective.min() <= 1

    def test_weight_moves_the_answer(self, medium_stream):
        """The arbitrariness the paper criticizes: the selected scale
        depends on the loss/noise ponderation."""
        deltas = np.geomspace(1, medium_stream.span, 16)
        loss_heavy = tradeoff_scale(medium_stream, deltas, loss_weight=0.95)
        noise_heavy = tradeoff_scale(medium_stream, deltas, loss_weight=0.05)
        assert loss_heavy.delta <= noise_heavy.delta

    def test_validation(self, medium_stream):
        with pytest.raises(SweepError):
            tradeoff_scale(medium_stream, np.array([1.0]))
        with pytest.raises(SweepError):
            tradeoff_scale(medium_stream, np.array([1.0, 2.0]), loss_weight=2.0)


class TestPeriodicity:
    def test_detects_daily_rhythm(self, daily_stream):
        result = periodicity_scale(daily_stream, bin_width=HOUR)
        assert result.dominant_period == pytest.approx(DAY, rel=0.15)
        assert result.delta == pytest.approx(DAY / 2, rel=0.15)

    def test_needs_events(self):
        with pytest.raises(ValidationError):
            periodicity_scale(LinkStream([0], [1], [0]))

    def test_spectrum_exposed(self, daily_stream):
        result = periodicity_scale(daily_stream, bin_width=HOUR)
        assert result.frequencies.size == result.power.size
        assert result.power[0] == pytest.approx(0.0, abs=1e-6)  # mean removed


class TestConvergence:
    def test_windows_cover_stream(self, medium_stream):
        result = convergence_scale(medium_stream, probe=50.0)
        assert result.delta > 0
        assert result.window_lengths.sum() == pytest.approx(
            result.boundaries[-1] - result.boundaries[0]
        )

    def test_probes_affect_granularity(self, medium_stream):
        fine = convergence_scale(medium_stream, probe=20.0)
        coarse = convergence_scale(medium_stream, probe=2000.0)
        assert fine.window_lengths.size >= coarse.window_lengths.size
